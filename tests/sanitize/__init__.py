"""Tests for the runtime transport sanitizer (:mod:`repro.sanitize`)."""

"""Tests for the runtime transport sanitizer.

Two layers:

* **violation tests** — deliberately break each invariant through the
  real transport objects and assert :class:`SanitizerError` carries the
  right invariant name;
* **activation tests** — prove the hooks are genuinely live during a
  sanitized end-to-end session (via ``checks_run`` counters) and
  genuinely free when disabled.
"""

import heapq
import random

import pytest

from repro import sanitize
from repro.cdn.origin import Origin
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.initializer import Scheme
from repro.media.source import StreamProfile
from repro.quic.cc import make_controller
from repro.quic.cc.bbr import BbrMode, BbrSender
from repro.quic.config import QuicConfig
from repro.quic.connection import Connection, Role
from repro.quic.frames import AckFrame
from repro.quic.loss_recovery import LossRecovery
from repro.quic.pacer import Pacer
from repro.quic.rtt import RttEstimator
from repro.sanitize import SanitizerError, TransportSanitizer
from repro.simnet.engine import EventLoop
from repro.simnet.path import NetworkConditions


@pytest.fixture(autouse=True)
def _sanitizer_off_between_tests():
    """Each test starts from the disabled baseline, whatever WIRA_SANITIZE says."""
    previous = sanitize.ACTIVE
    sanitize.disable()
    yield
    sanitize.ACTIVE = previous


def make_bbr():
    controller = make_controller("bbr", rtt=RttEstimator(initial_rtt=0.1))
    assert isinstance(controller, BbrSender)
    return controller


def expect_violation(invariant):
    return pytest.raises(SanitizerError, match=rf"\[{invariant}\]")


# ---------------------------------------------------------------------------
# clock_monotonic


class TestClockMonotonic:
    def test_past_event_rejected_by_checked_loop(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        with sanitize.sanitized() as san:
            loop.run()
            assert loop.now == 1.0
            # call_at refuses past times, so corrupt the heap directly —
            # the sanitizer is the backstop behind that API guard.
            heapq.heappush(loop._heap, (0.5, 10_000, None, lambda: None, ()))
            loop._pending += 1
            with expect_violation("clock_monotonic"):
                loop.run()
            assert san.checks_run["clock_monotonic"] >= 1

    def test_error_carries_invariant_and_time(self):
        san = TransportSanitizer()
        with pytest.raises(SanitizerError) as excinfo:
            san.check_clock(now=2.0, when=1.0)
        assert excinfo.value.invariant == "clock_monotonic"
        assert excinfo.value.sim_time == 2.0

    def test_forward_progress_clean(self):
        loop = EventLoop()
        ticks = []
        for t in (0.1, 0.2, 0.3):
            loop.call_at(t, ticks.append, t)
        with sanitize.sanitized() as san:
            loop.run()
        assert ticks == [0.1, 0.2, 0.3]
        assert san.checks_run["clock_monotonic"] == 3


# ---------------------------------------------------------------------------
# pacer_tokens


class TestPacerTokens:
    def test_runaway_debt_rejected(self):
        pacer = Pacer(rate_bps=8e6, burst_bytes=12_520)
        with sanitize.sanitized():
            # One unpaced burst is tolerated (handshake packets bypass
            # the pacer); a second back-to-back mega-send is corruption.
            with expect_violation("pacer_tokens"):
                for _ in range(4):
                    pacer.on_packet_sent(size=30_000, now=0.0)

    def test_nonpositive_rate_rejected(self):
        pacer = Pacer(rate_bps=8e6)
        pacer._rate_bps = 0.0  # bypass the set_rate guard
        with sanitize.sanitized():
            with expect_violation("pacer_tokens"):
                pacer.on_packet_sent(size=1_252, now=0.0)

    def test_bounded_debt_tolerated(self):
        pacer = Pacer(rate_bps=8e6, burst_bytes=12_520)
        with sanitize.sanitized() as san:
            pacer.on_packet_sent(size=12_520, now=0.0)  # drain the bucket
            pacer.on_packet_sent(size=12_520, now=0.0)  # one burst of debt
            assert san.checks_run["pacer_tokens"] >= 2

    def test_normal_paced_flow_clean(self):
        pacer = Pacer(rate_bps=8e6)
        with sanitize.sanitized() as san:
            now = 0.0
            for _ in range(50):
                now += pacer.time_until_send(1_252, now)
                pacer.on_packet_sent(1_252, now)
            assert san.checks_run["pacer_tokens"] > 50


# ---------------------------------------------------------------------------
# packet_number_monotonic / cwnd_bounds (Connection send path)


def make_connection():
    loop = EventLoop()
    return Connection(
        loop, Role.SERVER, lambda datagram: True, QuicConfig(), rng=random.Random(7)
    )


class TestPacketNumbers:
    def test_regressed_packet_number_rejected(self):
        connection = make_connection()
        with sanitize.sanitized() as san:
            san.check_packet_sent(connection, 5, now=0.0)
            with expect_violation("packet_number_monotonic"):
                san.check_packet_sent(connection, 5, now=0.1)

    def test_error_carries_connection_id(self):
        connection = make_connection()
        san = TransportSanitizer()
        san.check_packet_sent(connection, 3, now=0.0)
        with pytest.raises(SanitizerError) as excinfo:
            san.check_packet_sent(connection, 2, now=0.1)
        assert excinfo.value.invariant == "packet_number_monotonic"
        assert excinfo.value.connection_id == connection.connection_id

    def test_strictly_increasing_clean(self):
        connection = make_connection()
        san = TransportSanitizer()
        for pn in range(10):
            san.check_packet_sent(connection, pn, now=pn * 0.01)
        assert san.checks_run["packet_number_monotonic"] == 10


class TestCwndBounds:
    def test_zero_cwnd_rejected(self):
        connection = make_connection()
        connection.cc._cwnd = 0
        with sanitize.sanitized() as san:
            with expect_violation("cwnd_bounds"):
                san.check_packet_sent(connection, 0, now=0.0)

    def test_absurd_cwnd_rejected(self):
        connection = make_connection()
        connection.cc._cwnd = sanitize.MAX_CWND_BYTES + 1
        with sanitize.sanitized() as san:
            with expect_violation("cwnd_bounds"):
                san.check_packet_sent(connection, 0, now=0.0)

    def test_single_mss_window_is_legal(self):
        # Wira's min(FF_Size, BDP) clamp admits one-packet windows; the
        # sanitizer's floor is deliberately 1 MSS, not LSQUIC's 2.
        connection = make_connection()
        connection.cc._cwnd = connection.config.mss
        san = TransportSanitizer()
        san.check_packet_sent(connection, 0, now=0.0)
        assert san.checks_run["cwnd_bounds"] == 1


# ---------------------------------------------------------------------------
# ack_range


def forge_ack(largest_acked, ranges):
    """Build an AckFrame bypassing ``__post_init__`` validation.

    The constructor already rejects malformed frames; the sanitizer is
    the backstop for frames corrupted after construction (or decoded by
    a buggy parser), so the fixtures must skip the front-door check.
    """
    frame = object.__new__(AckFrame)
    object.__setattr__(frame, "largest_acked", largest_acked)
    object.__setattr__(frame, "ack_delay_us", 0)
    object.__setattr__(frame, "ranges", tuple(ranges))
    return frame


class TestAckRange:
    def make_recovery_with_sent(self, count=3):
        recovery = LossRecovery(RttEstimator(initial_rtt=0.1))
        from repro.quic.sent_packet import SentPacket

        with sanitize.sanitized():
            for pn in range(count):
                recovery.on_packet_sent(
                    SentPacket(packet_number=pn, sent_time=pn * 0.01, size=1_200,
                               ack_eliciting=True, in_flight=True)
                )
        return recovery

    def test_ack_beyond_largest_sent_rejected(self):
        recovery = self.make_recovery_with_sent(count=1)
        with sanitize.sanitized():
            with expect_violation("ack_range"):
                recovery.on_ack_received(AckFrame(9, 0, ((9, 9),)), now=0.1)

    def test_malformed_range_rejected(self):
        recovery = self.make_recovery_with_sent()
        with sanitize.sanitized():
            with expect_violation("ack_range"):
                recovery.on_ack_received(forge_ack(2, ((2, 1),)), now=0.1)

    def test_overlapping_ranges_rejected(self):
        recovery = self.make_recovery_with_sent(count=6)
        with sanitize.sanitized():
            with expect_violation("ack_range"):
                recovery.on_ack_received(AckFrame(5, 0, ((3, 5), (2, 4))), now=0.1)

    def test_leading_range_must_match_largest_acked(self):
        recovery = self.make_recovery_with_sent()
        with sanitize.sanitized():
            with expect_violation("ack_range"):
                recovery.on_ack_received(forge_ack(2, ((0, 1),)), now=0.1)

    def test_valid_ack_clean(self):
        recovery = self.make_recovery_with_sent(count=5)
        with sanitize.sanitized() as san:
            result = recovery.on_ack_received(AckFrame(4, 0, ((3, 4), (0, 1))), now=0.1)
        assert len(result.newly_acked) == 4
        assert san.checks_run["ack_range"] == 1

    def test_suppressed_scope_allows_peer_misbehaviour(self):
        recovery = self.make_recovery_with_sent(count=1)
        with sanitize.sanitized():
            with sanitize.suppressed():
                result = recovery.on_ack_received(AckFrame(9, 0, ((9, 9),)), now=0.1)
            assert not result.newly_acked
            assert sanitize.enabled()  # restored after the scope


# ---------------------------------------------------------------------------
# bbr_transition


class TestBbrTransition:
    def test_skipping_drain_rejected(self):
        bbr = make_bbr()
        assert bbr.mode == BbrMode.STARTUP
        with sanitize.sanitized():
            with expect_violation("bbr_transition"):
                bbr._set_mode(BbrMode.PROBE_BW, now=0.0)

    def test_probe_rtt_from_startup_rejected(self):
        bbr = make_bbr()
        with sanitize.sanitized():
            with expect_violation("bbr_transition"):
                bbr._set_mode(BbrMode.PROBE_RTT, now=0.0)

    def test_legal_walk_clean(self):
        bbr = make_bbr()
        with sanitize.sanitized() as san:
            bbr._set_mode(BbrMode.DRAIN, now=0.0)
            bbr._set_mode(BbrMode.PROBE_BW, now=0.1)
            bbr._set_mode(BbrMode.PROBE_RTT, now=10.1)
            bbr._set_mode(BbrMode.PROBE_BW, now=10.3)
        assert bbr.mode == BbrMode.PROBE_BW
        assert san.checks_run["bbr_transition"] == 4

    def test_self_transition_tolerated(self):
        san = TransportSanitizer()
        san.check_bbr_transition(BbrMode.STARTUP, BbrMode.STARTUP, now=0.0)
        assert san.checks_run["bbr_transition"] == 1

    def test_natural_startup_exit_under_sanitizer(self):
        # Feed a steady full pipe so BBR organically walks
        # STARTUP -> DRAIN -> PROBE_BW through the production _set_mode
        # funnel, with the sanitizer watching every edge.
        from tests.quic.test_bbr import drive

        bbr = BbrSender(rtt=RttEstimator(initial_rtt=0.05), mss=1252)
        with sanitize.sanitized() as san:
            drive(bbr, rounds=12)
        assert bbr.mode == BbrMode.PROBE_BW
        assert san.checks_run["bbr_transition"] >= 2


# ---------------------------------------------------------------------------
# init_override_once


class TestInitOverrideOnce:
    def test_third_window_override_rejected(self):
        cc = make_bbr()
        with sanitize.sanitized():
            cc.set_initial_window(25_000)  # provisional (pre-parser)
            cc.set_initial_window(50_000)  # corner-case-1 re-init
            with expect_violation("init_override_once"):
                cc.set_initial_window(75_000)

    def test_third_pacing_override_rejected(self):
        cc = make_bbr()
        with sanitize.sanitized():
            cc.set_initial_pacing_rate(4e6)
            cc.set_initial_pacing_rate(8e6)
            with expect_violation("init_override_once"):
                cc.set_initial_pacing_rate(16e6)

    def test_window_and_pacing_counted_separately(self):
        cc = make_bbr()
        with sanitize.sanitized() as san:
            cc.set_initial_window(25_000)
            cc.set_initial_pacing_rate(4e6)
            cc.set_initial_window(50_000)
            cc.set_initial_pacing_rate(8e6)
        assert san.checks_run["init_override_once"] == 4


# ---------------------------------------------------------------------------
# Activation semantics


class TestActivation:
    def test_disabled_by_default_and_zero_cost_hooks(self):
        assert not sanitize.enabled()
        # The same deliberate violations pass silently when disabled:
        # production tolerance is unchanged, the sanitizer only *adds*.
        pacer = Pacer(rate_bps=8e6, burst_bytes=12_520)
        for _ in range(4):
            pacer.on_packet_sent(size=30_000, now=0.0)
        cc = make_bbr()
        for window in (25_000, 50_000, 75_000):
            cc.set_initial_window(window)

    def test_enable_disable_roundtrip(self):
        san = sanitize.enable()
        assert sanitize.enabled() and sanitize.ACTIVE is san
        sanitize.disable()
        assert not sanitize.enabled() and sanitize.ACTIVE is None

    def test_sanitized_restores_previous(self):
        outer = sanitize.enable()
        with sanitize.sanitized() as inner:
            assert sanitize.ACTIVE is inner and inner is not outer
        assert sanitize.ACTIVE is outer

    def test_env_requested(self, monkeypatch):
        for value, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("off", False),
        ):
            monkeypatch.setenv("WIRA_SANITIZE", value)
            assert sanitize.env_requested() is expected
        monkeypatch.delenv("WIRA_SANITIZE")
        assert sanitize.env_requested() is False

    def test_error_is_an_assertion(self):
        # Assertion-based harnesses (pytest.raises(AssertionError), CI
        # wrappers) must catch sanitizer findings without special-casing.
        assert issubclass(SanitizerError, AssertionError)
        for invariant in sanitize.INVARIANTS:
            err = SanitizerError(invariant, "detail", connection_id=b"\x01\x02", sim_time=1.5)
            assert err.invariant == invariant
            assert f"[{invariant}]" in str(err)

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError):
            SanitizerError("definitely_not_an_invariant", "detail")


# ---------------------------------------------------------------------------
# End-to-end: a sanitized session runs clean and every hook fires.


class TestSanitizedSession:
    def run_session(self, scheme):
        origin = Origin()
        origin.add_stream(
            "demo",
            StreamProfile(first_frame_target_bytes=66_000, seed=1,
                          complexity_sigma=0.02, size_jitter=0.02),
        )
        spec = SessionSpec(
            conditions=NetworkConditions(
                bandwidth_bps=8_000_000.0, rtt=0.050, loss_rate=0.0, buffer_bytes=25_000
            ),
            scheme=scheme,
            seed=3,
        )
        return StreamingSession.from_spec(spec, origin, "demo").run()

    def test_wira_session_clean_with_all_hooks_live(self):
        with sanitize.sanitized() as san:
            result = self.run_session(Scheme.WIRA)
        assert result.completed and result.ffct is not None
        # Every invariant's hook must have actually executed: this is
        # the "verifiably active" acceptance criterion.  bbr_transition
        # is absent by design — a live-stream session is app-limited and
        # BBR never leaves STARTUP; its hook is exercised by
        # TestBbrTransition.test_natural_startup_exit_under_sanitizer.
        for invariant in (
            "clock_monotonic",
            "pacer_tokens",
            "packet_number_monotonic",
            "cwnd_bounds",
            "ack_range",
            "init_override_once",
        ):
            assert san.checks_run.get(invariant, 0) > 0, invariant

    def test_baseline_session_clean(self):
        with sanitize.sanitized() as san:
            result = self.run_session(Scheme.BASELINE)
        assert result.completed
        assert san.checks_run["clock_monotonic"] > 0

    def test_sanitized_run_matches_unsanitized_metrics(self):
        plain = self.run_session(Scheme.WIRA)
        with sanitize.sanitized():
            checked = self.run_session(Scheme.WIRA)
        # The sanitizer observes; it must never perturb the simulation.
        assert checked.ffct == plain.ffct
        assert checked.final_server_stats.packets_sent == plain.final_server_stats.packets_sent

"""Tests for BBRv1, focusing on the behaviours Wira relies on."""

import pytest

from repro.quic.cc.bbr import (
    BbrMode,
    BbrSender,
    DRAIN_GAIN,
    HIGH_GAIN,
    PACING_GAIN_CYCLE,
)
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket


MSS = 1252


def make_bbr(**kwargs):
    return BbrSender(rtt=RttEstimator(initial_rtt=0.05), mss=MSS, **kwargs)


def drive(bbr, rounds, bw_bps=8e6, rtt=0.05, start_pn=0, start_time=0.0):
    """Feed the controller a steady full pipe for ``rounds`` round trips.

    Packets depart spaced at the bottleneck rate and each is acked one
    RTT later; send and ack events interleave in time order, as they
    would on a real path, so delivery-rate samples converge to the
    configured bandwidth.
    """
    spacing = MSS * 8 / bw_bps
    per_round = max(8, int(bw_bps * rtt / 8 / MSS) + 1)
    n = rounds * per_round
    events = []
    for i in range(n):
        send_t = start_time + i * spacing
        events.append((send_t, 0, i))  # 0 = send
        events.append((send_t + rtt, 1, i))  # 1 = ack
    events.sort()
    packets = {}
    in_flight = 0
    for t, kind, i in events:
        if kind == 0:
            p = SentPacket(start_pn + i, t, MSS, True, True)
            bbr.on_packet_sent(p, in_flight, t)
            in_flight += MSS
            packets[i] = p
        else:
            in_flight -= MSS
            bbr.on_packets_acked([packets[i]], in_flight, t)
    return start_pn + n, start_time + n * spacing + rtt


def test_starts_in_startup_with_high_gain():
    bbr = make_bbr()
    assert bbr.mode == BbrMode.STARTUP
    assert bbr.pacing_gain == HIGH_GAIN


def test_default_initial_window_is_10_packets():
    bbr = make_bbr()
    assert bbr.congestion_window == 10 * MSS


def test_wira_initial_window_override():
    bbr = make_bbr()
    bbr.set_initial_window(66_000)  # FF_Size from Fig 2(a)
    assert bbr.congestion_window == 66_000


def test_wira_initial_window_floor_is_one_mss():
    bbr = make_bbr()
    bbr.set_initial_window(10)
    assert bbr.congestion_window == MSS


def test_wira_initial_pacing_override_holds_until_samples():
    bbr = make_bbr()
    bbr.set_initial_pacing_rate(8e6)  # MaxBW from the transport cookie
    assert bbr.pacing_rate_bps == 8e6


def test_default_cold_start_pacing_uses_high_gain():
    bbr = make_bbr()
    expected = HIGH_GAIN * 10 * MSS * 8 / 0.05
    assert bbr.pacing_rate_bps == pytest.approx(expected)


def test_pacing_follows_measured_bandwidth_after_samples():
    bbr = make_bbr()
    bbr.set_initial_pacing_rate(1e6)
    drive(bbr, rounds=2, bw_bps=8e6)
    bw = bbr.bandwidth_estimate()
    assert bw is not None
    assert bbr.pacing_rate_bps == pytest.approx(bbr.pacing_gain * bw)


def test_bandwidth_estimate_converges_to_path_rate():
    bbr = make_bbr()
    drive(bbr, rounds=6, bw_bps=8e6)
    assert bbr.bandwidth_estimate() == pytest.approx(8e6, rel=0.3)


def test_startup_exits_after_three_flat_rounds():
    bbr = make_bbr()
    drive(bbr, rounds=10, bw_bps=8e6)
    assert bbr.full_bandwidth_reached
    assert bbr.mode in (BbrMode.DRAIN, BbrMode.PROBE_BW)


def test_drain_uses_inverse_gain():
    bbr = make_bbr()
    pn, now = drive(bbr, rounds=10, bw_bps=8e6)
    if bbr.mode == BbrMode.DRAIN:
        assert bbr.pacing_gain == pytest.approx(DRAIN_GAIN)


def test_probe_bw_reached_and_cycles_gain():
    bbr = make_bbr()
    drive(bbr, rounds=20, bw_bps=8e6)
    assert bbr.mode == BbrMode.PROBE_BW
    assert bbr.pacing_gain in PACING_GAIN_CYCLE


def test_cwnd_tracks_bdp_in_probe_bw():
    bbr = make_bbr()
    drive(bbr, rounds=20, bw_bps=8e6, rtt=0.05)
    bdp = bbr.bandwidth_estimate() * 0.05 / 8
    assert bbr.congestion_window == pytest.approx(2.0 * bdp, rel=0.5)


def test_loss_enters_conservation_recovery():
    bbr = make_bbr()
    pn, now = drive(bbr, rounds=5, bw_bps=8e6)
    cwnd_before = bbr.congestion_window
    lost = SentPacket(pn - 1, now, MSS, True, True)
    bbr.on_packets_lost([lost], bytes_in_flight=5 * MSS, now=now)
    assert bbr.congestion_window <= max(cwnd_before, 5 * MSS + bbr._min_cwnd)


def test_recovery_exits_on_ack_of_later_packet():
    bbr = make_bbr()
    pn, now = drive(bbr, rounds=5, bw_bps=8e6)
    lost = SentPacket(pn, now, MSS, True, True)
    bbr.on_packet_sent(lost, 0, now)
    bbr.on_packets_lost([lost], bytes_in_flight=MSS, now=now)
    assert bbr._recovery_window is not None
    newer = SentPacket(pn + 1, now + 0.01, MSS, True, True)
    bbr.on_packet_sent(newer, MSS, now + 0.01)
    bbr.on_packets_acked([newer], 0, now + 0.06)
    assert bbr._recovery_window is None


def test_app_limited_samples_do_not_shrink_estimate():
    bbr = make_bbr()
    drive(bbr, rounds=5, bw_bps=8e6)
    bw_before = bbr.bandwidth_estimate()
    # Now send a trickle (app-limited): one packet per RTT.
    pn, now = 1000, 10.0
    for _ in range(5):
        p = SentPacket(pn, now, MSS, True, True)
        bbr.on_packet_sent(p, 0, now)
        bbr.on_app_limited(MSS)
        bbr.on_packets_acked([p], 0, now + 0.05)
        pn += 1
        now += 0.05
    assert bbr.bandwidth_estimate() >= bw_before * 0.5


def test_can_send_respects_cwnd():
    bbr = make_bbr()
    bbr.set_initial_window(5 * MSS)
    assert bbr.can_send(4 * MSS)
    assert not bbr.can_send(5 * MSS)

"""End-to-end connection tests over the simulated network."""

import random

import pytest

from repro.quic import Connection, HandshakeMode, QuicConfig, Role
from repro.quic.frames import HxQosFrame
from repro.quic.handshake import TAG_HQST
from repro.simnet.engine import EventLoop
from repro.simnet.path import NetworkConditions, Path


TESTBED = NetworkConditions(  # the paper's testbed (§II footnote 2)
    bandwidth_bps=8_000_000.0,
    rtt=0.050,
    loss_rate=0.0,
    buffer_bytes=25_000,
)


def make_pair(loop, conditions, mode=HandshakeMode.ZERO_RTT, tags=None, config=None, seed=0):
    rng = random.Random(seed)
    path = Path(loop, conditions, rng=random.Random(rng.getrandbits(32)))
    config = config or QuicConfig(initial_rtt=0.05)
    server = Connection(
        loop, Role.SERVER, path.send_to_client, config,
        rng=random.Random(rng.getrandbits(32)),
    )
    client = Connection(
        loop, Role.CLIENT, path.send_to_server, config,
        handshake_mode=mode, handshake_tags=tags,
        rng=random.Random(rng.getrandbits(32)),
    )
    path.deliver_to_server = server.datagram_received
    path.deliver_to_client = client.datagram_received
    return path, server, client


def run_transfer(conditions, mode, size=100_000, seed=0, loss_tags=None):
    """Client requests; server responds with `size` known bytes."""
    loop = EventLoop()
    path, server, client = make_pair(loop, conditions, mode=mode, tags=loss_tags, seed=seed)
    response = bytes(i % 251 for i in range(size))
    received = bytearray()
    done_at = []

    def on_request(stream_id, data, fin):
        if fin:
            server.send_stream_data(stream_id, response, fin=True)

    def on_response(stream_id, data, fin):
        received.extend(data)
        if fin and not done_at:
            done_at.append(loop.now)

    server.on_stream_data = on_request
    client.on_stream_data = on_response
    client.start()
    client.send_stream_data(0, b"GET /live/stream.flv", fin=True)
    loop.run(max_events=500_000)
    return loop, server, client, bytes(received), done_at


class TestZeroRtt:
    def test_transfer_completes_intact(self):
        loop, server, client, received, done = run_transfer(TESTBED, HandshakeMode.ZERO_RTT)
        assert done, "transfer did not finish"
        assert received == bytes(i % 251 for i in range(100_000))

    def test_server_has_no_handshake_rtt_sample(self):
        _, server, _, _, _ = run_transfer(TESTBED, HandshakeMode.ZERO_RTT)
        assert server.stats.handshake_rtt_sample is None

    def test_completion_time_reasonable(self):
        # 100kB at 8Mbps is ~100ms on the wire, plus ~1.5 RTT of setup;
        # BBR startup/drain dynamics add some slack.
        _, _, _, _, done = run_transfer(TESTBED, HandshakeMode.ZERO_RTT)
        assert 0.1 < done[0] < 1.0

    def test_deterministic_across_runs(self):
        _, _, _, _, done_a = run_transfer(TESTBED, HandshakeMode.ZERO_RTT, seed=5)
        _, _, _, _, done_b = run_transfer(TESTBED, HandshakeMode.ZERO_RTT, seed=5)
        assert done_a == done_b


class TestOneRtt:
    def test_transfer_completes_intact(self):
        loop, server, client, received, done = run_transfer(TESTBED, HandshakeMode.ONE_RTT)
        assert done
        assert received == bytes(i % 251 for i in range(100_000))

    def test_server_measures_handshake_rtt(self):
        _, server, _, _, _ = run_transfer(TESTBED, HandshakeMode.ONE_RTT)
        assert server.stats.handshake_rtt_sample == pytest.approx(0.05, rel=0.2)

    def test_one_rtt_slower_than_zero_rtt(self):
        _, _, _, _, done_0 = run_transfer(TESTBED, HandshakeMode.ZERO_RTT)
        _, _, _, _, done_1 = run_transfer(TESTBED, HandshakeMode.ONE_RTT)
        assert done_1[0] > done_0[0] + 0.04  # roughly one extra RTT


class TestLossRecovery:
    def test_transfer_survives_random_loss(self):
        lossy = NetworkConditions(
            bandwidth_bps=8_000_000.0, rtt=0.05, loss_rate=0.03, buffer_bytes=25_000
        )
        loop, server, client, received, done = run_transfer(lossy, HandshakeMode.ZERO_RTT, seed=11)
        assert done
        assert received == bytes(i % 251 for i in range(100_000))
        assert server.stats.packets_lost > 0
        assert server.stats.bytes_retransmitted > 0

    def test_heavy_loss_still_completes(self):
        lossy = NetworkConditions(
            bandwidth_bps=8_000_000.0, rtt=0.05, loss_rate=0.15, buffer_bytes=50_000
        )
        _, server, _, received, done = run_transfer(lossy, HandshakeMode.ZERO_RTT, seed=3, size=30_000)
        assert done
        assert len(received) == 30_000

    def test_buffer_overflow_losses_recovered(self):
        tiny_buffer = NetworkConditions(
            bandwidth_bps=2_000_000.0, rtt=0.05, loss_rate=0.0, buffer_bytes=8_000
        )
        _, server, _, received, done = run_transfer(
            tiny_buffer, HandshakeMode.ZERO_RTT, seed=4, size=60_000
        )
        assert done
        assert len(received) == 60_000


class TestWiraHooks:
    def test_server_can_initialize_window_and_rate_in_chlo_callback(self):
        loop = EventLoop()
        path, server, client = make_pair(loop, TESTBED)
        seen = {}

        def on_hello(tags, rtt_sample):
            server.cc.set_initial_window(66_000)
            server.cc.set_initial_pacing_rate(8e6)
            seen["tags"] = tags

        server.on_client_hello = on_hello
        client.start()
        loop.run(max_events=10_000)
        assert server.cc.congestion_window == 66_000
        assert server.cc.pacing_rate_bps == 8e6
        assert "tags" in seen

    def test_chlo_tags_reach_server(self):
        loop = EventLoop()
        path, server, client = make_pair(loop, TESTBED, tags={TAG_HQST: b"\x01blob"})
        captured = {}
        server.on_client_hello = lambda tags, rtt: captured.update(tags)
        client.start()
        loop.run(max_events=10_000)
        assert captured[TAG_HQST] == b"\x01blob"

    def test_hx_qos_frame_reaches_client(self):
        loop = EventLoop()
        path, server, client = make_pair(loop, TESTBED)
        got = []
        client.on_hx_qos = got.append
        server.on_client_hello = lambda tags, rtt: server.send_hx_qos(
            HxQosFrame.from_metrics(0.05, 8e6, loop.now)
        )
        client.start()
        loop.run(max_events=10_000)
        assert len(got) == 1
        assert got[0].decoded_metrics()["max_bw_bps"] == 8e6

    def test_initial_pacing_shapes_first_flight(self):
        """A very low initial pacing rate visibly delays completion."""

        def run_with_rate(rate):
            loop = EventLoop()
            path, server, client = make_pair(loop, TESTBED, seed=2)
            done = []

            def on_request(stream_id, data, fin):
                if fin:
                    server.cc.set_initial_window(66_000)
                    server.cc.set_initial_pacing_rate(rate)
                    server.send_stream_data(stream_id, b"x" * 66_000, fin=True)

            server.on_stream_data = on_request
            client.on_stream_data = (
                lambda sid, d, fin: done.append(loop.now) if fin and not done else None
            )
            client.start()
            client.send_stream_data(0, b"GET", fin=True)
            loop.run(max_events=200_000)
            return done[0]

        slow = run_with_rate(0.8e6)  # Fig 2(b): 0.8 Mbps is far too slow
        matched = run_with_rate(8e6)  # matches MaxBW
        assert slow > matched * 1.5


class TestConnectionHygiene:
    def test_server_measures_qos_metrics(self):
        _, server, _, _, _ = run_transfer(TESTBED, HandshakeMode.ZERO_RTT)
        assert server.measured_min_rtt() == pytest.approx(0.05, rel=0.3)
        assert server.measured_max_bw() is not None
        assert 1e6 < server.measured_max_bw() < 20e6

    def test_close_stops_timers(self):
        loop = EventLoop()
        path, server, client = make_pair(loop, TESTBED)
        client.start()
        loop.run(max_events=100)
        client.close()
        server.close()
        loop.run()  # must drain without new activity

    def test_stats_counters_consistent(self):
        _, server, client, _, _ = run_transfer(TESTBED, HandshakeMode.ZERO_RTT)
        assert server.stats.packets_sent > 0
        assert client.stats.packets_received > 0
        assert server.stats.data_packets_sent >= 80  # 100kB / ~1.2kB
        assert server.stats.data_loss_rate() == 0.0

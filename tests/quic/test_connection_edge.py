"""Edge-case tests for the connection state machine."""

import random

import pytest

from repro.quic import Connection, HandshakeMode, QuicConfig, Role
from repro.quic.frames import HxQosFrame
from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram
from repro.simnet.path import NetworkConditions, Path


def make_pair(loop, conditions=None, mode=HandshakeMode.ZERO_RTT, seed=0, config=None):
    conditions = conditions or NetworkConditions(bandwidth_bps=8e6, rtt=0.05, buffer_bytes=100_000)
    rng = random.Random(seed)
    path = Path(loop, conditions, rng=random.Random(rng.getrandbits(32)))
    config = config or QuicConfig(initial_rtt=0.05)
    server = Connection(loop, Role.SERVER, path.send_to_client, config,
                        rng=random.Random(rng.getrandbits(32)))
    client = Connection(loop, Role.CLIENT, path.send_to_server, config,
                        handshake_mode=mode, rng=random.Random(rng.getrandbits(32)))
    path.deliver_to_server = server.datagram_received
    path.deliver_to_client = client.datagram_received
    return path, server, client


def test_server_cannot_start_handshake():
    loop = EventLoop()
    _, server, _ = make_pair(loop)
    with pytest.raises(ValueError):
        server.start()


def test_multiple_streams_multiplex():
    loop = EventLoop()
    _, server, client = make_pair(loop)
    received = {}

    def on_data(sid, data, fin):
        received.setdefault(sid, bytearray()).extend(data)

    client.on_stream_data = on_data
    server.on_stream_data = lambda sid, d, fin: None
    client.start()
    server.send_stream_data(0, b"a" * 5_000, fin=True)
    server.send_stream_data(4, b"b" * 5_000, fin=True)
    loop.run(max_events=20_000)
    assert bytes(received[0]) == b"a" * 5_000
    assert bytes(received[4]) == b"b" * 5_000


def test_empty_write_then_fin():
    loop = EventLoop()
    _, server, client = make_pair(loop)
    done = []
    client.on_stream_data = lambda sid, d, fin: done.append(fin)
    client.start()
    server.send_stream_data(0, b"", fin=True)
    loop.run(max_events=10_000)
    assert True in done


def test_duplicate_datagram_ignored():
    loop = EventLoop()
    path, server, client = make_pair(loop)
    captured = []
    original = client.datagram_received

    def tee(datagram):
        captured.append(datagram)
        original(datagram)

    path.deliver_to_client = tee
    received = bytearray()
    client.on_stream_data = lambda sid, d, fin: received.extend(d)
    client.start()
    server.send_stream_data(0, b"payload-bytes", fin=True)
    loop.run(max_events=10_000)
    before = len(received)
    for datagram in list(captured):
        original(datagram)  # replay everything
    loop.run(max_events=10_000)
    assert len(received) == before
    assert client.stats.duplicate_packets >= 1


def test_reordered_delivery_reassembles():
    loop = EventLoop()
    path, server, client = make_pair(loop)
    # Buffer server->client datagrams and deliver them in reverse order.
    buffered = []
    path.deliver_to_client = buffered.append
    received = bytearray()
    client.on_stream_data = lambda sid, d, fin: received.extend(d)
    client.start()
    loop.run_until(0.2, max_events=5_000)
    server.send_stream_data(0, bytes(range(256)) * 20, fin=True)
    loop.run_until(0.4, max_events=5_000)
    for datagram in reversed(buffered):
        client.datagram_received(datagram)
    loop.run_until(2.0, max_events=20_000)
    assert bytes(received) == bytes(range(256)) * 20


def test_one_rtt_client_defers_request_data():
    loop = EventLoop()
    conditions = NetworkConditions(bandwidth_bps=8e6, rtt=0.1, buffer_bytes=100_000)
    path, server, client = make_pair(loop, conditions, mode=HandshakeMode.ONE_RTT)
    request_arrival = []
    server.on_stream_data = lambda sid, d, fin: request_arrival.append(loop.now)
    client.start()
    client.send_stream_data(0, b"GET /x", fin=True)
    loop.run(max_events=10_000)
    # Request cannot arrive before the REJ round trip completes (~1.5 RTT
    # after start: CHLO->REJ is 1 RTT, then request takes 0.5 RTT).
    assert request_arrival and request_arrival[0] >= 0.145


def test_hx_qos_retransmitted_after_loss():
    loop = EventLoop()
    conditions = NetworkConditions(
        bandwidth_bps=8e6, rtt=0.05, loss_rate=0.4, buffer_bytes=100_000
    )
    path, server, client = make_pair(loop, conditions, seed=9)
    got = []
    client.on_hx_qos = got.append
    server.on_stream_data = lambda sid, d, fin: None
    client.start()
    client.send_stream_data(0, b"GET", fin=True)
    loop.run(max_events=5_000)
    frame = HxQosFrame.from_metrics(0.05, 8e6, 1.0)
    for _ in range(3):  # a few tries through 40% loss
        server.send_hx_qos(frame)
    loop.run(max_events=100_000)
    assert got, "Hx_QoS frames must eventually arrive despite loss"


def test_pto_recovers_fully_lost_flight():
    loop = EventLoop()
    conditions = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, buffer_bytes=100_000)
    path, server, client = make_pair(loop, conditions)
    received = bytearray()
    client.on_stream_data = lambda sid, d, fin: received.extend(d)
    client.start()
    loop.run(max_events=5_000)
    # Blackhole the forward path for the entire first flight, then heal.
    path.forward.loss_rate = 0.999999999  # drop everything admitted
    server.send_stream_data(0, b"z" * 3_000, fin=True)
    loop.run_until(loop.now + 0.2, max_events=10_000)
    path.forward.loss_rate = 0.0
    loop.run(max_events=100_000)
    assert bytes(received) == b"z" * 3_000
    assert server.stats.pto_count >= 1 or server.stats.packets_lost >= 1


def test_stats_snapshot_is_immutable_copy():
    loop = EventLoop()
    _, server, client = make_pair(loop)
    client.start()
    loop.run(max_events=1_000)
    snap = server.stats.snapshot()
    before = snap.packets_sent
    server.send_stream_data(0, b"x" * 10_000, fin=True)
    loop.run(max_events=10_000)
    assert snap.packets_sent == before
    assert server.stats.packets_sent > before

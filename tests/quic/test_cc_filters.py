"""Tests for the windowed filter and bandwidth sampler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.cc.bandwidth_sampler import BandwidthSampler
from repro.quic.cc.windowed_filter import WindowedFilter
from repro.quic.sent_packet import SentPacket


class TestWindowedFilter:
    def test_empty_filter(self):
        f = WindowedFilter(window=10.0)
        assert f.get() is None

    def test_max_tracks_best(self):
        f = WindowedFilter(window=10.0, is_max=True)
        f.update(5.0, time=0)
        f.update(9.0, time=1)
        f.update(3.0, time=2)
        assert f.get() == 9.0

    def test_min_tracks_best(self):
        f = WindowedFilter(window=10.0, is_max=False)
        f.update(5.0, time=0)
        f.update(2.0, time=1)
        f.update(7.0, time=2)
        assert f.get() == 2.0

    def test_best_expires_out_of_window(self):
        f = WindowedFilter(window=5.0, is_max=True)
        f.update(100.0, time=0)
        for t in range(1, 12):
            f.update(10.0, time=float(t))
        assert f.get() == 10.0

    def test_new_best_resets_window(self):
        f = WindowedFilter(window=5.0, is_max=True)
        f.update(10.0, time=0)
        f.update(50.0, time=3)
        assert f.get() == 50.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowedFilter(window=0)

    def test_dominated_sample_survives_best_expiry(self):
        """Regression: a dominated-on-arrival sample must become the
        estimate once the old best ages out of the window."""
        f = WindowedFilter(window=10.0, is_max=True)
        f.update(2.0, time=0.0)
        f.update(1.0, time=1.0)
        f.update(0.0, time=11.0)
        assert f.get() == 1.0

    def test_min_filter_dominated_sample_survives_expiry(self):
        f = WindowedFilter(window=10.0, is_max=False)
        f.update(2.0, time=0.0)
        f.update(5.0, time=1.0)
        f.update(9.0, time=11.0)
        assert f.get() == 5.0

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0, max_value=100)),
            min_size=1,
            max_size=50,
        )
    )
    def test_estimate_never_below_recent_max_within_window(self, samples):
        """Property: the max filter is >= every sample in the window."""
        samples.sort(key=lambda s: s[1])
        f = WindowedFilter(window=10.0, is_max=True)
        for value, t in samples:
            f.update(value, t)
        last_t = samples[-1][1]
        in_window = [v for v, t in samples if last_t - t <= 10.0]
        assert f.get() >= max(in_window) * (1 - 1e-12)


def make_packet(pn, t, size=1000):
    return SentPacket(packet_number=pn, sent_time=t, size=size, ack_eliciting=True, in_flight=True)


class TestBandwidthSampler:
    def test_single_packet_rate(self):
        sampler = BandwidthSampler()
        p = make_packet(0, t=0.0, size=1000)
        sampler.on_packet_sent(p, bytes_in_flight=0, now=0.0)
        sample = sampler.on_packet_acked(p, now=0.1)
        # 1000 bytes over 0.1s = 80kbps
        assert sample.bandwidth_bps == pytest.approx(80_000.0)

    def test_steady_pipe_rate_reflects_delivery(self):
        """In a full pipe (sends and acks interleaved), samples converge
        to the bottleneck rate: 1000 B every 10 ms = 800 kbps."""
        sampler = BandwidthSampler()
        spacing, rtt = 0.01, 0.1
        events = []
        for i in range(40):
            events.append((i * spacing, 0, i))
            events.append((i * spacing + rtt, 1, i))
        events.sort()
        packets, in_flight, sample = {}, 0, None
        for t, kind, i in events:
            if kind == 0:
                p = make_packet(i, t=t, size=1000)
                sampler.on_packet_sent(p, bytes_in_flight=in_flight, now=t)
                packets[i] = p
                in_flight += 1000
            else:
                in_flight -= 1000
                sample = sampler.on_packet_acked(packets[i], now=t)
        assert sample.bandwidth_bps == pytest.approx(800_000.0, rel=0.05)

    def test_app_limited_flag_propagates(self):
        sampler = BandwidthSampler()
        sampler.on_app_limited()
        p = make_packet(0, t=0.0)
        sampler.on_packet_sent(p, bytes_in_flight=0, now=0.0)
        assert p.is_app_limited
        sample = sampler.on_packet_acked(p, now=0.1)
        assert sample.is_app_limited

    def test_app_limited_clears_after_delivery(self):
        sampler = BandwidthSampler()
        p0 = make_packet(0, t=0.0)
        sampler.on_packet_sent(p0, bytes_in_flight=0, now=0.0)
        sampler.note_in_flight(1000)
        assert sampler.is_app_limited
        sampler.on_packet_acked(p0, now=0.1)
        assert not sampler.is_app_limited

    def test_idle_restart_resets_clock(self):
        sampler = BandwidthSampler()
        p0 = make_packet(0, t=0.0)
        sampler.on_packet_sent(p0, bytes_in_flight=0, now=0.0)
        sampler.on_packet_acked(p0, now=0.05)
        # Long idle, then restart: the sample must not span the idle gap.
        p1 = make_packet(1, t=10.0)
        sampler.on_packet_sent(p1, bytes_in_flight=0, now=10.0)
        sample = sampler.on_packet_acked(p1, now=10.05)
        assert sample.bandwidth_bps == pytest.approx(1000 * 8 / 0.05, rel=0.01)

    def test_rtt_in_sample(self):
        sampler = BandwidthSampler()
        p = make_packet(0, t=1.0)
        sampler.on_packet_sent(p, bytes_in_flight=0, now=1.0)
        sample = sampler.on_packet_acked(p, now=1.08)
        assert sample.rtt == pytest.approx(0.08)

"""Tests for frame codecs, including the Wira Hx_QoS frame."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.frames import (
    AckFrame,
    CryptoFrame,
    FrameParseError,
    FrameType,
    HandshakeDoneFrame,
    HxId,
    HxQosFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    encode_frames,
    parse_frames,
)


def round_trip(frame):
    parsed = parse_frames(frame.encode())
    assert len(parsed) == 1
    return parsed[0]


def test_padding_round_trip():
    assert round_trip(PaddingFrame(length=7)) == PaddingFrame(length=7)


def test_ping_round_trip():
    assert round_trip(PingFrame()) == PingFrame()


def test_handshake_done_round_trip():
    assert round_trip(HandshakeDoneFrame()) == HandshakeDoneFrame()


def test_ack_single_range():
    ack = AckFrame(largest_acked=10, ack_delay_us=250, ranges=((5, 10),))
    assert round_trip(ack) == ack


def test_ack_multiple_ranges():
    ack = AckFrame(largest_acked=20, ack_delay_us=0, ranges=((18, 20), (10, 15), (0, 3)))
    assert round_trip(ack) == ack


def test_ack_acked_packet_numbers():
    ack = AckFrame(largest_acked=5, ack_delay_us=0, ranges=((4, 5), (1, 2)))
    assert ack.acked_packet_numbers() == [5, 4, 2, 1]


def test_ack_requires_ranges():
    with pytest.raises(ValueError):
        AckFrame(largest_acked=5, ack_delay_us=0, ranges=())


def test_ack_first_range_must_contain_largest():
    with pytest.raises(ValueError):
        AckFrame(largest_acked=5, ack_delay_us=0, ranges=((1, 3),))


def test_ack_invalid_range_order():
    with pytest.raises(ValueError):
        AckFrame(largest_acked=5, ack_delay_us=0, ranges=((5, 5), (4, 3)))


def test_crypto_round_trip():
    frame = CryptoFrame(offset=100, data=b"hello handshake")
    assert round_trip(frame) == frame


def test_stream_round_trip():
    frame = StreamFrame(stream_id=4, offset=1000, data=b"payload", fin=False)
    assert round_trip(frame) == frame


def test_stream_fin_round_trip():
    frame = StreamFrame(stream_id=4, offset=0, data=b"", fin=True)
    assert round_trip(frame) == frame


def test_stream_frame_type_carries_fin_bit():
    with_fin = StreamFrame(0, 0, b"x", fin=True).encode()
    without = StreamFrame(0, 0, b"x", fin=False).encode()
    assert with_fin[0] & 0x01
    assert not without[0] & 0x01


def test_hx_qos_round_trip():
    frame = HxQosFrame(((int(HxId.MIN_RTT_US), b"\x19"), (int(HxId.SEALED), b"\xde\xad")))
    assert round_trip(frame) == frame


def test_hx_qos_frame_type_is_0x1f():
    """The paper fixes the Hx_QoS packet/frame type at 0x1f (§IV-B)."""
    frame = HxQosFrame(())
    assert frame.encode()[0] == 0x1F
    assert FrameType.HX_QOS == 0x1F


def test_hx_qos_from_metrics_and_back():
    frame = HxQosFrame.from_metrics(min_rtt=0.050, max_bw_bps=8_000_000, timestamp=12.5)
    metrics = frame.decoded_metrics()
    assert metrics["min_rtt"] == pytest.approx(0.050)
    assert metrics["max_bw_bps"] == 8_000_000
    assert metrics["timestamp"] == pytest.approx(12.5)
    assert "sealed" not in metrics


def test_hx_qos_sealed_blob_carried():
    frame = HxQosFrame.from_metrics(0.02, 1e6, 1.0, sealed=b"opaque-cookie")
    assert frame.decoded_metrics()["sealed"] == b"opaque-cookie"


def test_hx_qos_metric_lookup():
    frame = HxQosFrame.from_metrics(0.02, 1e6, 1.0)
    assert frame.metric(int(HxId.MAX_BW_BPS))
    with pytest.raises(KeyError):
        frame.metric(0x77)


def test_multiple_frames_parse_in_order():
    frames = [
        AckFrame(3, 0, ((0, 3),)),
        StreamFrame(0, 0, b"abc"),
        PingFrame(),
    ]
    parsed = parse_frames(encode_frames(frames))
    assert parsed == frames


def test_padding_runs_collapse():
    data = b"\x00" * 5 + PingFrame().encode()
    parsed = parse_frames(data)
    assert parsed == [PaddingFrame(length=5), PingFrame()]


def test_unknown_frame_type_rejected():
    with pytest.raises(FrameParseError):
        parse_frames(b"\x3f")


def test_truncated_stream_frame_rejected():
    frame = StreamFrame(0, 0, b"abcdef").encode()
    with pytest.raises(FrameParseError):
        parse_frames(frame[:-3])


def test_truncated_crypto_frame_rejected():
    frame = CryptoFrame(0, b"abcdef").encode()
    with pytest.raises(FrameParseError):
        parse_frames(frame[:-1])


@given(
    stream_id=st.integers(min_value=0, max_value=2**20),
    offset=st.integers(min_value=0, max_value=2**40),
    data=st.binary(max_size=1500),
    fin=st.booleans(),
)
def test_stream_frame_round_trip_property(stream_id, offset, data, fin):
    frame = StreamFrame(stream_id, offset, data, fin)
    assert round_trip(frame) == frame


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.binary(max_size=64)),
        max_size=8,
    )
)
def test_hx_qos_round_trip_property(triples):
    frame = HxQosFrame(tuple(triples))
    assert round_trip(frame) == frame


@given(st.data())
def test_ack_round_trip_property(data):
    # Build descending, disjoint ranges from sorted distinct integers.
    points = data.draw(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=12, unique=True)
    )
    points.sort()
    ranges = []
    for i in range(0, len(points) - 1, 2):
        ranges.append((points[i], points[i + 1]))
    # Make disjoint with gaps >= 2 by construction: filter overlapping.
    cleaned = []
    for low, high in ranges:
        if not cleaned or low > cleaned[-1][1] + 1:
            cleaned.append((low, high))
    if not cleaned:
        return
    cleaned.reverse()  # descending
    ack = AckFrame(largest_acked=cleaned[0][1], ack_delay_us=data.draw(st.integers(0, 10**6)), ranges=tuple(cleaned))
    assert round_trip(ack) == ack

"""Tests for sender-side loss detection."""

import pytest

from repro import sanitize
from repro.quic.frames import AckFrame
from repro.quic.loss_recovery import K_PACKET_THRESHOLD, LossRecovery
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket


def sent(pn, t=0.0, size=1200, eliciting=True, in_flight=True):
    return SentPacket(
        packet_number=pn,
        sent_time=t,
        size=size,
        ack_eliciting=eliciting,
        in_flight=in_flight,
    )


def ack(largest, ranges=None, delay_us=0):
    return AckFrame(largest, delay_us, tuple(ranges or [(0, largest)]))


def make_recovery():
    return LossRecovery(RttEstimator(initial_rtt=0.1))


def test_bytes_in_flight_accounting():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, size=1000))
    lr.on_packet_sent(sent(1, size=500))
    assert lr.bytes_in_flight == 1500
    lr.on_ack_received(ack(0, [(0, 0)]), now=0.1)
    assert lr.bytes_in_flight == 500


def test_ack_only_packets_do_not_count_in_flight():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, in_flight=False, eliciting=False))
    assert lr.bytes_in_flight == 0


def test_rtt_sample_from_largest_newly_acked():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=1.0))
    result = lr.on_ack_received(ack(0, [(0, 0)]), now=1.05)
    assert result.rtt_sample == pytest.approx(0.05)
    assert lr.rtt.latest_rtt == pytest.approx(0.05)


def test_no_rtt_sample_from_duplicate_ack():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=0.0))
    lr.on_ack_received(ack(0, [(0, 0)]), now=0.05)
    result = lr.on_ack_received(ack(0, [(0, 0)]), now=0.2)
    assert result.rtt_sample is None
    assert not result.newly_acked


def test_packet_threshold_loss():
    lr = make_recovery()
    for pn in range(5):
        lr.on_packet_sent(sent(pn, t=pn * 0.001))
    # Ack 3 and 4; packets 0 and 1 are >= 3 behind largest acked.
    result = lr.on_ack_received(ack(4, [(3, 4)]), now=0.1)
    lost_pns = {p.packet_number for p in result.newly_lost}
    assert lost_pns == {0, 1}
    assert all(p.lost for p in result.newly_lost)


def test_time_threshold_loss():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=0.530))
    lr.on_packet_sent(sent(1, t=0.535))
    result = lr.on_ack_received(ack(1, [(1, 1)]), now=0.585)  # RTT=0.05
    # Packet 0 is only 1 behind and not yet past the time threshold...
    assert not result.newly_lost
    assert lr.loss_time is not None
    # ...but once the loss timer fires, it is declared lost.
    lost = lr.check_loss_timer(now=lr.loss_time + 1e-9)
    assert [p.packet_number for p in lost] == [0]


def test_loss_time_armed_for_pending_packet():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=0.0))
    lr.on_packet_sent(sent(1, t=0.001))
    lr.on_ack_received(ack(1, [(1, 1)]), now=0.05)
    assert lr.loss_time is not None
    assert lr.loss_time == pytest.approx(0.0 + lr.rtt.loss_delay())


def test_lost_bytes_removed_from_flight():
    lr = make_recovery()
    for pn in range(5):
        lr.on_packet_sent(sent(pn, size=1000))
    lr.on_ack_received(ack(4, [(4, 4)]), now=0.1)
    # 1 acked + 2 lost by threshold (0 and 1) leaves packets 2, 3.
    assert lr.bytes_in_flight == 2000


def test_pto_deadline_tracks_last_eliciting_send():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=1.0))
    deadline = lr.pto_deadline()
    assert deadline == pytest.approx(1.0 + lr.rtt.pto(lr.max_ack_delay))


def test_pto_backoff_doubles():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=0.0))
    first = lr.pto_deadline()
    lr.on_pto_fired(now=first)
    second = lr.pto_deadline()
    assert second - 0.0 == pytest.approx(2 * (first - 0.0))


def test_pto_resets_after_ack():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=0.0))
    lr.on_pto_fired(now=0.3)
    assert lr.pto_count == 1
    lr.on_packet_sent(sent(1, t=0.35))
    lr.on_ack_received(ack(1, [(1, 1)]), now=0.4)
    assert lr.pto_count == 0


def test_pto_returns_oldest_unresolved():
    lr = make_recovery()
    for pn in range(4):
        lr.on_packet_sent(sent(pn, t=pn * 0.01))
    probes = lr.on_pto_fired(now=1.0)
    assert [p.packet_number for p in probes] == [0, 1]


def test_no_pto_when_nothing_eliciting():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, eliciting=False, in_flight=False))
    assert lr.pto_deadline() is None


def test_ack_of_unknown_packet_ignored():
    lr = make_recovery()
    lr.on_packet_sent(sent(0))
    # Deliberate peer misbehaviour: under WIRA_SANITIZE=1 the ack_range
    # invariant would (correctly) fire, so scope the sanitizer off while
    # asserting the production-code tolerance.
    with sanitize.suppressed():
        result = lr.on_ack_received(ack(9, [(9, 9)]), now=0.1)
    assert not result.newly_acked


def test_non_in_flight_packets_never_reported_lost():
    lr = make_recovery()
    lr.on_packet_sent(sent(0, eliciting=False, in_flight=False))
    for pn in range(1, 6):
        lr.on_packet_sent(sent(pn, t=pn * 0.001))
    result = lr.on_ack_received(ack(5, [(4, 5)]), now=0.1)
    lost_pns = {p.packet_number for p in result.newly_lost}
    assert 0 not in lost_pns


def test_duplicate_ack_advances_largest_acked():
    """Regression: a pure-duplicate ACK (nothing newly acked) carrying a
    larger largest_acked must still advance it and run loss detection
    (RFC 9002: largest_acked tracks the largest acknowledged packet
    regardless of whether the ACK frame is otherwise redundant)."""
    lr = make_recovery()
    for pn in range(5):
        lr.on_packet_sent(sent(pn, t=pn * 0.001))
    lr.on_ack_received(ack(1, [(1, 1)]), now=0.05)
    assert lr.largest_acked == 1
    # Packet 4 was resolved by earlier processing (e.g. a duplicated ACK
    # datagram); this ACK then carries no newly-acked numbers.
    lr.sent_packets[4].acked = True
    result = lr.on_ack_received(ack(4, [(4, 4), (1, 1)]), now=0.051)
    assert not result.newly_acked
    assert lr.largest_acked == 4
    # Packet 0 is >= kPacketThreshold behind the advanced largest_acked.
    assert {p.packet_number for p in result.newly_lost} == {0}


def test_duplicate_ack_runs_time_threshold_loss_detection():
    """A duplicated ACK datagram arriving past the loss deadline must
    declare the pending time-threshold loss, not return early."""
    lr = make_recovery()
    lr.on_packet_sent(sent(0, t=0.0))
    lr.on_packet_sent(sent(1, t=0.001))
    lr.on_ack_received(ack(1, [(1, 1)]), now=0.05)
    assert lr.loss_time is not None  # packet 0 pending on the timer
    result = lr.on_ack_received(ack(1, [(1, 1)]), now=0.5)
    assert not result.newly_acked
    assert {p.packet_number for p in result.newly_lost} == {0}


def test_duplicate_ack_never_regresses_largest_acked():
    lr = make_recovery()
    for pn in range(3):
        lr.on_packet_sent(sent(pn, t=pn * 0.001))
    lr.on_ack_received(ack(2, [(0, 2)]), now=0.05)
    assert lr.largest_acked == 2
    result = lr.on_ack_received(ack(1, [(0, 1)]), now=0.06)
    assert not result.newly_acked
    assert lr.largest_acked == 2

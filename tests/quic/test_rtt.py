"""Tests for the RTT estimator."""

import pytest

from repro.quic.rtt import RttEstimator


def test_initial_state():
    rtt = RttEstimator(initial_rtt=0.2)
    assert not rtt.has_samples
    assert rtt.min_rtt is None
    assert rtt.smoothed_or_initial() == 0.2


def test_first_sample_seeds_all_estimates():
    rtt = RttEstimator()
    rtt.update(0.05, now=0.0)
    assert rtt.latest_rtt == 0.05
    assert rtt.smoothed_rtt == 0.05
    assert rtt.rtt_var == 0.025
    assert rtt.min_rtt == 0.05


def test_ewma_smoothing():
    rtt = RttEstimator()
    rtt.update(0.100, now=0.0)
    rtt.update(0.200, now=0.1)
    # srtt = 7/8*0.1 + 1/8*0.2
    assert rtt.smoothed_rtt == pytest.approx(0.1125)


def test_min_rtt_tracks_minimum():
    rtt = RttEstimator()
    for sample, t in [(0.08, 0.0), (0.05, 0.1), (0.09, 0.2)]:
        rtt.update(sample, now=t)
    assert rtt.min_rtt == 0.05


def test_min_rtt_window_expiry():
    rtt = RttEstimator(min_rtt_window=1.0)
    rtt.update(0.05, now=0.0)
    rtt.update(0.08, now=0.5)
    assert rtt.min_rtt == 0.05
    rtt.update(0.09, now=2.0)  # window expired; min resets to new sample
    assert rtt.min_rtt == 0.09


def test_ack_delay_subtracted_when_safe():
    rtt = RttEstimator()
    rtt.update(0.100, now=0.0)
    rtt.update(0.150, ack_delay=0.040, now=0.1)
    # Adjusted sample = 0.110 >= min_rtt 0.100, so delay is honoured.
    assert rtt.smoothed_rtt == pytest.approx(0.875 * 0.100 + 0.125 * 0.110)


def test_ack_delay_ignored_when_below_min():
    rtt = RttEstimator()
    rtt.update(0.100, now=0.0)
    rtt.update(0.105, ack_delay=0.050, now=0.1)
    # 0.105-0.050 < min_rtt, so the raw sample is used.
    assert rtt.smoothed_rtt == pytest.approx(0.875 * 0.100 + 0.125 * 0.105)


def test_pto_before_samples_uses_initial():
    rtt = RttEstimator(initial_rtt=0.25)
    assert rtt.pto() == pytest.approx(0.5)


def test_pto_formula():
    rtt = RttEstimator()
    rtt.update(0.1, now=0.0)
    expected = 0.1 + max(4 * 0.05, 0.001) + 0.025
    assert rtt.pto() == pytest.approx(expected)


def test_loss_delay_fraction():
    rtt = RttEstimator()
    rtt.update(0.08, now=0.0)
    rtt.update(0.16, now=0.1)
    assert rtt.loss_delay() == pytest.approx(9 / 8 * max(rtt.smoothed_rtt, 0.16))


def test_invalid_samples_rejected():
    rtt = RttEstimator()
    with pytest.raises(ValueError):
        rtt.update(0.0)
    with pytest.raises(ValueError):
        RttEstimator(initial_rtt=0.0)

"""Tests for the token-bucket pacer."""

import pytest

from repro.quic.pacer import Pacer


def test_burst_goes_immediately():
    pacer = Pacer(rate_bps=8_000.0, burst_bytes=3_000)
    assert pacer.time_until_send(3_000, now=0.0) == 0.0


def test_rate_limits_after_burst():
    pacer = Pacer(rate_bps=8_000.0, burst_bytes=1_000)  # 1000 B/s
    pacer.on_packet_sent(1_000, now=0.0)
    # Bucket empty; next 500B packet needs 0.5s of credit.
    assert pacer.time_until_send(500, now=0.0) == pytest.approx(0.5)


def test_tokens_refill_over_time():
    pacer = Pacer(rate_bps=8_000.0, burst_bytes=1_000)
    pacer.on_packet_sent(1_000, now=0.0)
    assert pacer.time_until_send(500, now=0.5) == 0.0


def test_tokens_capped_at_burst():
    pacer = Pacer(rate_bps=8_000_000.0, burst_bytes=1_000)
    # After a long idle period only `burst` tokens are available.
    assert pacer.time_until_send(1_000, now=100.0) == 0.0
    pacer.on_packet_sent(1_000, now=100.0)
    pacer.on_packet_sent(1_000, now=100.0)
    assert pacer.time_until_send(1_000, now=100.0) > 0.0


def test_negative_token_debt_delays_subsequent_sends():
    pacer = Pacer(rate_bps=8_000.0, burst_bytes=1_000)
    pacer.on_packet_sent(2_000, now=0.0)  # 1000B of debt
    assert pacer.time_until_send(500, now=0.0) == pytest.approx(1.5)


def test_set_rate_changes_drain_speed():
    pacer = Pacer(rate_bps=8_000.0, burst_bytes=1_000)
    pacer.on_packet_sent(1_000, now=0.0)
    pacer.set_rate(80_000.0, now=0.0)  # 10 kB/s
    assert pacer.time_until_send(500, now=0.0) == pytest.approx(0.05)


def test_pacing_spreads_packets_at_rate():
    """Sending N packets should take ~(N·size·8/rate) seconds."""
    pacer = Pacer(rate_bps=1_000_000.0, burst_bytes=1_252)
    now = 0.0
    for _ in range(50):
        wait = pacer.time_until_send(1_252, now)
        now += wait
        pacer.on_packet_sent(1_252, now)
    # 50 packets minus the 1-packet burst, at 1Mbps.
    expected = 49 * 1_252 * 8 / 1_000_000.0
    assert now == pytest.approx(expected, rel=0.05)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        Pacer(rate_bps=0.0)
    with pytest.raises(ValueError):
        Pacer(rate_bps=1.0, burst_bytes=0)
    pacer = Pacer(rate_bps=1.0)
    with pytest.raises(ValueError):
        pacer.set_rate(0.0, now=0.0)

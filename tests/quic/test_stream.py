"""Tests for stream send/receive machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.stream import RecvStream, SendStream


class TestSendStream:
    def test_chunks_come_out_in_order(self):
        s = SendStream(0)
        s.write(b"abcdefghij")
        first = s.next_chunk(4)
        second = s.next_chunk(4)
        third = s.next_chunk(4)
        assert (first.offset, first.data) == (0, b"abcd")
        assert (second.offset, second.data) == (4, b"efgh")
        assert (third.offset, third.data) == (8, b"ij")
        assert s.next_chunk(4) is None

    def test_fin_set_on_last_chunk(self):
        s = SendStream(0)
        s.write(b"abc", fin=True)
        chunk = s.next_chunk(10)
        assert chunk.fin
        assert not s.has_data_to_send()

    def test_fin_split_across_chunks(self):
        s = SendStream(0)
        s.write(b"abcdef", fin=True)
        assert not s.next_chunk(4).fin
        assert s.next_chunk(4).fin

    def test_empty_fin_chunk(self):
        s = SendStream(0)
        s.write(b"ab")
        chunk = s.next_chunk(10)
        assert not chunk.fin
        s.write(b"", fin=True)
        fin_chunk = s.next_chunk(10)
        assert fin_chunk.fin and fin_chunk.data == b""

    def test_write_after_fin_rejected(self):
        s = SendStream(0)
        s.write(b"x", fin=True)
        with pytest.raises(ValueError):
            s.write(b"y")

    def test_retransmission_takes_priority(self):
        s = SendStream(0)
        s.write(b"0123456789")
        s.next_chunk(5)  # bytes 0-4 sent
        s.on_chunk_lost(0, 5)
        chunk = s.next_chunk(10)
        assert (chunk.offset, chunk.data) == (0, b"01234")
        nxt = s.next_chunk(10)
        assert (nxt.offset, nxt.data) == (5, b"56789")

    def test_retransmission_respects_budget(self):
        s = SendStream(0)
        s.write(b"0123456789")
        s.next_chunk(10)
        s.on_chunk_lost(0, 10)
        assert s.next_chunk(4).data == b"0123"
        assert s.next_chunk(10).data == b"456789"

    def test_lost_ranges_coalesce(self):
        s = SendStream(0)
        s.write(b"0123456789")
        s.next_chunk(10)
        s.on_chunk_lost(4, 4)
        s.on_chunk_lost(0, 5)  # overlaps the first range
        chunk = s.next_chunk(100)
        assert (chunk.offset, chunk.data) == (0, b"01234567")

    def test_retransmitted_tail_regains_fin(self):
        s = SendStream(0)
        s.write(b"abcd", fin=True)
        assert s.next_chunk(10).fin
        s.on_chunk_lost(0, 4)
        assert s.next_chunk(10).fin

    def test_resend_fin(self):
        s = SendStream(0)
        s.write(b"", fin=True)
        assert s.next_chunk(10).fin
        assert not s.has_data_to_send()
        s.resend_fin()
        assert s.has_data_to_send()
        assert s.next_chunk(10).fin


class TestRecvStream:
    def test_in_order_delivery(self):
        r = RecvStream(0)
        assert r.on_frame(0, b"abc", fin=False) == b"abc"
        assert r.on_frame(3, b"def", fin=False) == b"def"
        assert r.delivered_offset == 6

    def test_out_of_order_buffered(self):
        r = RecvStream(0)
        assert r.on_frame(3, b"def", fin=False) == b""
        assert r.on_frame(0, b"abc", fin=False) == b"abcdef"

    def test_overlapping_segments(self):
        r = RecvStream(0)
        r.on_frame(0, b"abc", fin=False)
        out = r.on_frame(1, b"bcde", fin=False)
        assert out == b"de"
        assert r.delivered_offset == 5

    def test_duplicate_segments_counted(self):
        r = RecvStream(0)
        r.on_frame(0, b"abc", fin=False)
        r.on_frame(0, b"abc", fin=False)
        assert r.duplicate_bytes == 3

    def test_fin_completion(self):
        r = RecvStream(0)
        r.on_frame(0, b"abc", fin=False)
        assert not r.finished
        r.on_frame(3, b"d", fin=True)
        assert r.finished

    def test_fin_before_data(self):
        r = RecvStream(0)
        r.on_frame(3, b"d", fin=True)
        assert not r.finished
        r.on_frame(0, b"abc", fin=False)
        assert r.finished

    def test_conflicting_fin_rejected(self):
        r = RecvStream(0)
        r.on_frame(0, b"ab", fin=True)
        with pytest.raises(ValueError):
            r.on_frame(0, b"abc", fin=True)

    def test_empty_fin_frame(self):
        r = RecvStream(0)
        r.on_frame(0, b"abc", fin=False)
        r.on_frame(3, b"", fin=True)
        assert r.finished


@given(st.binary(min_size=1, max_size=5000), st.integers(min_value=1, max_value=700), st.data())
def test_send_recv_round_trip_with_reordering(payload, chunk_size, data):
    """Property: any chunking + delivery order reassembles exactly."""
    s = SendStream(0)
    s.write(payload, fin=True)
    chunks = []
    while True:
        chunk = s.next_chunk(chunk_size)
        if chunk is None:
            break
        chunks.append(chunk)
    order = data.draw(st.permutations(range(len(chunks))))
    r = RecvStream(0)
    received = bytearray()
    for index in order:
        chunk = chunks[index]
        received += r.on_frame(chunk.offset, chunk.data, chunk.fin)
    assert bytes(received) == payload
    assert r.finished

"""Tests for the CUBIC and NewReno baseline controllers."""

import pytest

from repro.quic.cc import make_controller
from repro.quic.cc.cubic import CubicSender
from repro.quic.cc.reno import RenoSender
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket

MSS = 1252


def packet(pn, t=0.0, size=MSS):
    return SentPacket(pn, t, size, True, True)


@pytest.fixture(params=[CubicSender, RenoSender])
def sender(request):
    return request.param(rtt=RttEstimator(initial_rtt=0.05), mss=MSS)


def test_registry_contains_all_controllers():
    for name in ("bbr", "cubic", "reno"):
        controller = make_controller(name)
        assert controller.congestion_window > 0
    with pytest.raises(ValueError):
        make_controller("vegas")


def test_slow_start_doubles_per_round(sender):
    assert sender.in_slow_start
    cwnd0 = sender.congestion_window
    acked = [packet(i) for i in range(10)]
    for p in acked:
        sender.on_packet_sent(p, 0, 0.0)
    sender.on_packets_acked(acked, 0, 0.05)
    assert sender.congestion_window == cwnd0 + 10 * MSS


def test_loss_multiplicatively_decreases(sender):
    for i in range(10):
        sender.on_packet_sent(packet(i), i * MSS, 0.0)
    cwnd0 = sender.congestion_window
    sender.on_packets_lost([packet(5)], 9 * MSS, 0.1)
    assert sender.congestion_window < cwnd0
    assert not sender.in_slow_start


def test_single_reduction_per_loss_episode(sender):
    for i in range(10):
        sender.on_packet_sent(packet(i), i * MSS, 0.0)
    sender.on_packets_lost([packet(5)], 9 * MSS, 0.1)
    cwnd_after = sender.congestion_window
    # A second loss from the same flight must not reduce again.
    sender.on_packets_lost([packet(6)], 8 * MSS, 0.11)
    assert sender.congestion_window == cwnd_after


def test_acks_during_recovery_do_not_grow_window(sender):
    for i in range(10):
        sender.on_packet_sent(packet(i), i * MSS, 0.0)
    sender.on_packets_lost([packet(5)], 9 * MSS, 0.1)
    cwnd_after = sender.congestion_window
    sender.on_packets_acked([packet(7)], 8 * MSS, 0.12)
    assert sender.congestion_window == cwnd_after


def test_wira_initial_window_override(sender):
    sender.set_initial_window(66_000)
    assert sender.congestion_window == 66_000


def test_wira_initial_pacing_until_first_rtt_sample(sender):
    sender.set_initial_pacing_rate(8e6)
    assert sender.pacing_rate_bps == 8e6
    sender.rtt.update(0.05, now=0.0)
    # After a real sample the controller paces off cwnd/RTT again.
    assert sender.pacing_rate_bps != 8e6


def test_cubic_grows_after_recovery():
    cubic = CubicSender(rtt=RttEstimator(initial_rtt=0.05), mss=MSS)
    cubic.rtt.update(0.05, now=0.0)
    for i in range(10):
        cubic.on_packet_sent(packet(i), i * MSS, 0.0)
    cubic.on_packets_lost([packet(5)], 9 * MSS, 0.1)
    cwnd_after_loss = cubic.congestion_window
    # Feed acks of packets sent after recovery over several seconds.
    pn, now = 100, 0.2
    for _ in range(200):
        p = packet(pn, now)
        cubic.on_packet_sent(p, 0, now)
        cubic.on_packets_acked([p], 0, now + 0.05)
        pn += 1
        now += 0.05
    assert cubic.congestion_window > cwnd_after_loss


def test_reno_linear_growth_in_avoidance():
    reno = RenoSender(rtt=RttEstimator(initial_rtt=0.05), mss=MSS)
    for i in range(10):
        reno.on_packet_sent(packet(i), i * MSS, 0.0)
    reno.on_packets_lost([packet(5)], 9 * MSS, 0.1)
    cwnd = reno.congestion_window
    # One cwnd worth of acks grows the window by about one MSS.
    pn, now = 100, 0.2
    acked_bytes = 0
    while acked_bytes < cwnd:
        p = packet(pn, now)
        reno.on_packet_sent(p, 0, now)
        reno.on_packets_acked([p], 0, now + 0.05)
        acked_bytes += MSS
        pn += 1
    assert cwnd < reno.congestion_window <= cwnd + 2 * MSS


def test_pacing_rate_positive_always(sender):
    assert sender.pacing_rate_bps > 0
    sender.on_packets_lost([packet(0)], 0, 0.1)
    assert sender.pacing_rate_bps > 0

"""Tests for receiver-side ACK generation."""

import pytest

from repro.quic.ack_manager import AckManager


def test_no_ack_before_packets():
    mgr = AckManager()
    assert mgr.build_ack(0.0) is None
    assert mgr.ack_deadline(0.0) is None


def test_every_second_eliciting_packet_acks_immediately():
    mgr = AckManager(ack_every=2)
    mgr.on_packet_received(0, ack_eliciting=True, now=0.0)
    assert not mgr.should_ack_now(0.0)
    mgr.on_packet_received(1, ack_eliciting=True, now=0.001)
    assert mgr.should_ack_now(0.001)


def test_single_packet_acks_after_max_ack_delay():
    mgr = AckManager(max_ack_delay=0.025)
    mgr.on_packet_received(0, ack_eliciting=True, now=1.0)
    assert mgr.ack_deadline(1.0) == pytest.approx(1.025)
    assert not mgr.should_ack_now(1.01)
    assert mgr.should_ack_now(1.025)


def test_non_eliciting_packets_do_not_demand_acks():
    mgr = AckManager()
    mgr.on_packet_received(0, ack_eliciting=False, now=0.0)
    assert mgr.ack_deadline(0.0) is None


def test_build_ack_covers_contiguous_range():
    mgr = AckManager()
    for pn in range(5):
        mgr.on_packet_received(pn, ack_eliciting=True, now=0.0)
    ack = mgr.build_ack(0.0)
    assert ack.largest_acked == 4
    assert ack.ranges == ((0, 4),)


def test_build_ack_with_gaps():
    mgr = AckManager()
    for pn in [0, 1, 4, 5, 9]:
        mgr.on_packet_received(pn, ack_eliciting=True, now=0.0)
    ack = mgr.build_ack(0.0)
    assert ack.ranges == ((9, 9), (4, 5), (0, 1))


def test_reordered_arrival_triggers_immediate_ack():
    mgr = AckManager(ack_every=10)
    mgr.on_packet_received(5, ack_eliciting=True, now=0.0)
    mgr.build_ack(0.0)
    mgr.on_packet_received(2, ack_eliciting=True, now=0.1)  # out of order
    assert mgr.should_ack_now(0.1)


def test_duplicate_detection():
    mgr = AckManager()
    assert not mgr.on_packet_received(3, ack_eliciting=True, now=0.0)
    assert mgr.on_packet_received(3, ack_eliciting=True, now=0.1)


def test_ack_delay_reflects_holding_time():
    mgr = AckManager()
    mgr.on_packet_received(0, ack_eliciting=True, now=1.0)
    ack = mgr.build_ack(1.020)
    assert ack.ack_delay_us == pytest.approx(20_000, abs=1)


def test_build_ack_resets_pending_state():
    mgr = AckManager(ack_every=2)
    mgr.on_packet_received(0, ack_eliciting=True, now=0.0)
    mgr.on_packet_received(1, ack_eliciting=True, now=0.0)
    mgr.build_ack(0.0)
    assert mgr.ack_deadline(0.0) is None


def test_largest_received_tracked():
    mgr = AckManager()
    mgr.on_packet_received(7, ack_eliciting=False, now=0.0)
    mgr.on_packet_received(3, ack_eliciting=False, now=0.0)
    assert mgr.largest_received == 7


def test_invalid_ack_every():
    with pytest.raises(ValueError):
        AckManager(ack_every=0)

"""Tests for RFC 9000 varint encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.varint import (
    MAX_VARINT,
    VarintError,
    decode_varint,
    encode_varint,
    varint_size,
)


# RFC 9000 Appendix A.1 worked examples.
RFC_VECTORS = [
    (37, b"\x25"),
    (15293, b"\x7b\xbd"),
    (494878333, b"\x9d\x7f\x3e\x7d"),
    (151288809941952652, b"\xc2\x19\x7c\x5e\xff\x14\xe8\x8c"),
]


@pytest.mark.parametrize("value,encoded", RFC_VECTORS)
def test_rfc9000_vectors_encode(value, encoded):
    assert encode_varint(value) == encoded


@pytest.mark.parametrize("value,encoded", RFC_VECTORS)
def test_rfc9000_vectors_decode(value, encoded):
    assert decode_varint(encoded) == (value, len(encoded))


@pytest.mark.parametrize(
    "value,size",
    [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4), ((1 << 30) - 1, 4), (1 << 30, 8)],
)
def test_size_boundaries(value, size):
    assert varint_size(value) == size
    assert len(encode_varint(value)) == size


def test_negative_rejected():
    with pytest.raises(VarintError):
        encode_varint(-1)


def test_too_large_rejected():
    with pytest.raises(VarintError):
        encode_varint(MAX_VARINT + 1)


def test_max_value_round_trips():
    assert decode_varint(encode_varint(MAX_VARINT))[0] == MAX_VARINT


def test_decode_with_offset():
    data = b"\xff\xff" + encode_varint(300)
    value, next_offset = decode_varint(data, 2)
    assert value == 300
    assert next_offset == len(data)


def test_decode_empty_buffer():
    with pytest.raises(VarintError):
        decode_varint(b"")


def test_decode_truncated_varint():
    with pytest.raises(VarintError):
        decode_varint(b"\x7b")  # 2-byte prefix but only 1 byte present


@given(st.integers(min_value=0, max_value=MAX_VARINT))
def test_round_trip_property(value):
    encoded = encode_varint(value)
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == len(encoded)


@given(st.lists(st.integers(min_value=0, max_value=MAX_VARINT), min_size=1, max_size=20))
def test_concatenated_varints_parse_in_sequence(values):
    blob = b"".join(encode_varint(v) for v in values)
    offset = 0
    decoded = []
    while offset < len(blob):
        value, offset = decode_varint(blob, offset)
        decoded.append(value)
    assert decoded == values


# ----------------------------------------------------------------------
# Non-canonical (non-shortest) encodings.  RFC 9000 §16 permits encoders
# to use any length the value fits in; decoders must accept all of them.
# The serve-mode wire path round-trips values through encode(decode(b)),
# so re-encoding must be canonical (shortest) without changing the value.

_PREFIX_FOR_LENGTH = {1: 0x00, 2: 0x40, 4: 0x80, 8: 0xC0}


def _encode_with_length(value: int, length: int) -> bytes:
    assert value < 1 << (6 + 8 * (length - 1))
    raw = value.to_bytes(length, "big")
    return bytes([raw[0] | _PREFIX_FOR_LENGTH[length]]) + raw[1:]


@pytest.mark.parametrize("length", [2, 4, 8])
def test_decode_accepts_non_shortest_encoding(length):
    encoded = _encode_with_length(37, length)
    assert len(encoded) == length
    assert decode_varint(encoded) == (37, length)


@given(
    st.integers(min_value=0, max_value=MAX_VARINT),
    st.sampled_from([1, 2, 4, 8]),
)
def test_decode_accepts_any_admissible_length(value, length):
    if value >= 1 << (6 + 8 * (length - 1)):
        return  # value does not fit this length; nothing to assert
    encoded = _encode_with_length(value, length)
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == length


@given(
    st.integers(min_value=0, max_value=MAX_VARINT),
    st.sampled_from([1, 2, 4, 8]),
)
def test_reencode_canonicalizes(value, length):
    """encode(decode(b)) is the canonical form: same value, minimal size."""
    if value >= 1 << (6 + 8 * (length - 1)):
        return
    non_canonical = _encode_with_length(value, length)
    reencoded = encode_varint(decode_varint(non_canonical)[0])
    assert decode_varint(reencoded)[0] == value
    assert len(reencoded) == varint_size(value)
    assert len(reencoded) <= len(non_canonical)

"""Tests for packet headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.frames import AckFrame, PaddingFrame, PingFrame, StreamFrame
from repro.quic.packet import CONNECTION_ID_BYTES, Packet, PacketParseError, PacketType

CID = b"\x01\x02\x03\x04\x05\x06\x07\x08"


def test_round_trip_one_rtt():
    packet = Packet(PacketType.ONE_RTT, CID, 42, (StreamFrame(0, 0, b"data"),))
    assert Packet.decode(packet.encode()) == packet


@pytest.mark.parametrize(
    "packet_type", [PacketType.INITIAL, PacketType.ZERO_RTT, PacketType.HANDSHAKE]
)
def test_round_trip_long_header_types(packet_type):
    packet = Packet(packet_type, CID, 7, (PingFrame(),))
    decoded = Packet.decode(packet.encode())
    assert decoded.packet_type == packet_type
    assert decoded.is_long_header


def test_short_header_is_one_rtt():
    packet = Packet(PacketType.ONE_RTT, CID, 7, (PingFrame(),))
    assert not packet.is_long_header
    assert not packet.encode()[0] & 0x80


def test_connection_id_validated():
    with pytest.raises(ValueError):
        Packet(PacketType.ONE_RTT, b"\x01", 0, ())


def test_negative_packet_number_rejected():
    with pytest.raises(ValueError):
        Packet(PacketType.ONE_RTT, CID, -1, ())


def test_large_packet_number_round_trips():
    packet = Packet(PacketType.ONE_RTT, CID, 2**40, (PingFrame(),))
    assert Packet.decode(packet.encode()).packet_number == 2**40


def test_too_short_datagram_rejected():
    with pytest.raises(PacketParseError):
        Packet.decode(b"\x40\x01")


def test_missing_fixed_bit_rejected():
    packet = bytearray(Packet(PacketType.ONE_RTT, CID, 0, (PingFrame(),)).encode())
    packet[0] &= ~0x40
    with pytest.raises(PacketParseError):
        Packet.decode(bytes(packet))


def test_ack_eliciting_classification():
    ack_only = Packet(PacketType.ONE_RTT, CID, 0, (AckFrame(1, 0, ((0, 1),)),))
    padded_ack = Packet(
        PacketType.ONE_RTT, CID, 0, (AckFrame(1, 0, ((0, 1),)), PaddingFrame(3))
    )
    with_data = Packet(PacketType.ONE_RTT, CID, 0, (StreamFrame(0, 0, b"x"),))
    assert not ack_only.ack_eliciting()
    assert not padded_ack.ack_eliciting()
    assert with_data.ack_eliciting()


@given(
    packet_number=st.integers(min_value=0, max_value=2**50),
    cid=st.binary(min_size=CONNECTION_ID_BYTES, max_size=CONNECTION_ID_BYTES),
    data=st.binary(max_size=1200),
)
def test_packet_round_trip_property(packet_number, cid, data):
    packet = Packet(PacketType.ONE_RTT, cid, packet_number, (StreamFrame(4, 9, data),))
    assert Packet.decode(packet.encode()) == packet

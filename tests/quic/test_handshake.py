"""Tests for the tag-encoded handshake messages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.handshake import (
    HandshakeMessage,
    HandshakeMessageType,
    HandshakeParseError,
    TAG_FULL,
    TAG_HQST,
    chlo,
    rej,
    shlo,
)


def test_chlo_round_trip_with_tags():
    message = chlo(full=True, extra_tags={TAG_HQST: b"\x01cookie"})
    decoded = HandshakeMessage.decode(message.encode())
    assert decoded.message_type == HandshakeMessageType.CHLO
    assert decoded.tags[TAG_HQST] == b"\x01cookie"
    assert decoded.is_full_hello


def test_inchoate_chlo_not_full():
    message = chlo(full=False, extra_tags={})
    decoded = HandshakeMessage.decode(message.encode())
    assert not decoded.is_full_hello


def test_rej_and_shlo_round_trip():
    assert HandshakeMessage.decode(rej().encode()).message_type == HandshakeMessageType.REJ
    assert HandshakeMessage.decode(shlo().encode()).message_type == HandshakeMessageType.SHLO


def test_tag_names_must_be_four_bytes():
    message = HandshakeMessage(HandshakeMessageType.CHLO, {b"AB": b"x"})
    with pytest.raises(ValueError):
        message.encode()


def test_empty_message_rejected():
    with pytest.raises(HandshakeParseError):
        HandshakeMessage.decode(b"")


def test_unknown_type_rejected():
    with pytest.raises(HandshakeParseError):
        HandshakeMessage.decode(b"\x7f\x00")


def test_truncated_tag_rejected():
    blob = chlo(full=True, extra_tags={TAG_HQST: b"longvalue"}).encode()
    with pytest.raises(HandshakeParseError):
        HandshakeMessage.decode(blob[:-4])


def test_full_flag_encoded_in_tag():
    message = chlo(full=True, extra_tags={})
    assert message.tags[TAG_FULL] == b"\x01"


@given(
    st.dictionaries(
        st.binary(min_size=4, max_size=4),
        st.binary(max_size=128),
        max_size=8,
    )
)
def test_tag_round_trip_property(tags):
    message = HandshakeMessage(HandshakeMessageType.CHLO, tags)
    assert HandshakeMessage.decode(message.encode()).tags == tags

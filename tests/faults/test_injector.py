"""Tests for the seeded transport fault injector.

Unit-level checks of each mutation hook, plus live faulted sessions for
every fault kind: each must complete, count its actions, and replay
byte-identically from the session seed.
"""

import random

import pytest

from repro import obs
from repro.cdn.origin import Origin
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.cookie_crypto import CookieError, CookieSealer
from repro.core.initializer import Scheme
from repro.core.transport_cookie import (
    ClientCookieStore,
    HxQos,
    ServerCookieManager,
    decode_hqst,
    encode_hqst,
)
from repro.faults import (
    HUGE_FF_SIZE,
    FaultInjector,
    FaultKind,
    FaultPlan,
    single_fault_plans,
)
from repro.media.source import StreamProfile
from repro.quic.connection import HandshakeMode
from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram
from repro.simnet.path import NetworkConditions

KEY = b"server-secret-key-0123456789abcd"

CONDITIONS = NetworkConditions(
    bandwidth_bps=8_000_000.0, rtt=0.050, loss_rate=0.0, buffer_bytes=25_000
)


def make_injector(kind, seed=7, **plan_kwargs):
    loop = EventLoop()
    plan = FaultPlan(kind, **plan_kwargs)
    return FaultInjector(plan, loop, random.Random(seed)), loop


def sample_hqst():
    qos = HxQos(min_rtt=0.05, max_bw_bps=8e6, timestamp=100.0)
    sealed = CookieSealer(KEY).seal(qos.encode(), nonce_seed=1)
    return encode_hqst(True, received_at_ms=123, sealed_frame=sealed)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(FaultKind.DATAGRAM_BITFLIP, bitflip_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(FaultKind.HANDSHAKE_DROP, handshake_drops=-1)
        with pytest.raises(ValueError):
            FaultPlan(FaultKind.HANDSHAKE_DELAY, handshake_delay=-0.1)

    def test_ff_size_override_values(self):
        assert FaultPlan(FaultKind.FF_SIZE_ZERO).ff_size_override == 0
        assert FaultPlan(FaultKind.FF_SIZE_TINY).ff_size_override == 1
        assert FaultPlan(FaultKind.FF_SIZE_HUGE).ff_size_override == HUGE_FF_SIZE
        assert FaultPlan(FaultKind.COOKIE_CORRUPT).ff_size_override is None

    def test_single_fault_plans_covers_every_kind(self):
        plans = single_fault_plans()
        assert set(plans) == {kind.value for kind in FaultKind}
        for name, plan in plans.items():
            assert plan.kind.value == name

    def test_plans_are_picklable(self):
        import pickle

        for plan in single_fault_plans().values():
            assert pickle.loads(pickle.dumps(plan)) == plan


class TestMutateHqst:
    def test_cookie_corrupt_breaks_mac(self):
        injector, _ = make_injector(FaultKind.COOKIE_CORRUPT)
        mutated = injector.mutate_hqst(sample_hqst())
        assert mutated != sample_hqst()
        assert injector.counters == {"hqst_corrupted": 1}
        # The mutated tag either fails to decode, or decodes to a sealed
        # blob that the server's MAC check must reject.
        manager = ServerCookieManager(KEY)
        try:
            _supported, _ts, sealed = decode_hqst(mutated)
        except CookieError:
            return
        assert sealed is not None
        assert manager.open_echoed(mutated, now=100.0) is None

    def test_cookie_truncate_rejected_by_codec(self):
        injector, _ = make_injector(FaultKind.COOKIE_TRUNCATE)
        mutated = injector.mutate_hqst(sample_hqst())
        assert len(mutated) < len(sample_hqst())
        assert injector.counters == {"hqst_truncated": 1}
        with pytest.raises(CookieError):
            decode_hqst(mutated)

    def test_hqst_garbage_is_invalid_bool(self):
        injector, _ = make_injector(FaultKind.HQST_GARBAGE)
        mutated = injector.mutate_hqst(sample_hqst())
        assert mutated[0] == 0x7F
        with pytest.raises(CookieError):
            decode_hqst(mutated)

    def test_cookie_faults_leave_bare_tag_alone(self):
        # A cookieless CHLO (lone Bool) has nothing to corrupt/truncate.
        for kind in (FaultKind.COOKIE_CORRUPT, FaultKind.COOKIE_TRUNCATE):
            injector, _ = make_injector(kind)
            assert injector.mutate_hqst(b"\x01") == b"\x01"
            assert injector.counters == {}

    def test_non_cookie_fault_passes_through(self):
        injector, _ = make_injector(FaultKind.DATAGRAM_BITFLIP)
        tag = sample_hqst()
        assert injector.mutate_hqst(tag) == tag


class TestWrapSend:
    def test_bitflip_marks_datagram_corrupted(self):
        injector, _ = make_injector(FaultKind.DATAGRAM_BITFLIP, bitflip_rate=1.0)
        sent = []
        sender = injector.wrap_send(lambda d: sent.append(d) or True, "to_client")
        assert sender(Datagram(b"payload" * 10, size=100))
        assert len(sent) == 1
        assert sent[0].corrupted
        assert sent[0].size == 100
        assert injector.counters["datagram_bitflipped"] == 1

    def test_bitflip_rate_zero_passes_through(self):
        injector, _ = make_injector(FaultKind.DATAGRAM_BITFLIP, bitflip_rate=0.0)
        sent = []
        sender = injector.wrap_send(lambda d: sent.append(d) or True, "to_server")
        original = Datagram(b"x" * 50)
        sender(original)
        assert sent == [original]
        assert injector.counters == {}

    def test_handshake_drop_eats_leading_client_datagrams_only(self):
        injector, _ = make_injector(FaultKind.HANDSHAKE_DROP, handshake_drops=2)
        sent = []
        sender = injector.wrap_send(lambda d: sent.append(d) or True, "to_server")
        outcomes = [sender(Datagram(bytes([i]))) for i in range(4)]
        assert outcomes == [False, False, True, True]
        assert [d.payload[0] for d in sent] == [2, 3]
        assert injector.counters["handshake_dropped"] == 2

    def test_handshake_faults_do_not_touch_server_to_client(self):
        for kind in (FaultKind.HANDSHAKE_DROP, FaultKind.HANDSHAKE_DELAY):
            injector, _ = make_injector(kind)
            send = lambda d: True
            assert injector.wrap_send(send, "to_client") is send

    def test_handshake_delay_defers_via_loop(self):
        injector, loop = make_injector(
            FaultKind.HANDSHAKE_DELAY, handshake_delay_count=1, handshake_delay=0.25
        )
        sent_at = []
        sender = injector.wrap_send(lambda d: sent_at.append(loop.now) or True, "to_server")
        assert sender(Datagram(b"late"))
        assert sender(Datagram(b"ontime"))
        assert sent_at == [0.0]  # only the second went straight through
        loop.run()
        assert sent_at == [0.0, pytest.approx(0.25)]
        assert injector.counters["handshake_delayed"] == 1


class TestTraceBusEvents:
    def test_mutations_emit_fault_injected_events(self):
        with obs.tracing() as bus:
            injector, _ = make_injector(FaultKind.COOKIE_TRUNCATE)
            injector.mutate_hqst(sample_hqst())
        assert bus.counts.get("fault:injected") == 1
        event = bus.ring[-1]
        assert event[1] == "fault:injected"
        assert event[3]["kind"] == "cookie_truncate"
        assert event[3]["action"] == "hqst_truncated"

    def test_silent_without_bus(self, monkeypatch):
        monkeypatch.setattr(obs, "ACTIVE", None)  # even under WIRA_TRACE=1
        injector, _ = make_injector(FaultKind.HQST_GARBAGE)
        injector.mutate_hqst(sample_hqst())
        assert injector.counters == {"hqst_garbage": 1}


# ---------------------------------------------------------------------------
# Live faulted sessions: every kind completes and replays deterministically.


def make_origin(seed=1):
    origin = Origin()
    origin.add_stream(
        "demo",
        StreamProfile(first_frame_target_bytes=66_000, seed=seed,
                      complexity_sigma=0.02, size_jitter=0.02),
    )
    return origin


def run_faulted(plan, seed=3, scheme=Scheme.WIRA):
    store = ClientCookieStore()
    manager = ServerCookieManager(KEY)
    origin = make_origin()
    prime_spec = SessionSpec(
        conditions=CONDITIONS,
        scheme=scheme,
        handshake_mode=HandshakeMode.ZERO_RTT,
        seed=seed,
    )
    prime = StreamingSession.from_spec(
        prime_spec, origin, "demo", cookie_store=store, cookie_manager=manager
    ).run()
    assert prime.completed
    result = StreamingSession.from_spec(
        prime_spec.with_(seed=seed + 1, epoch=5.0, fault_plan=plan),
        origin,
        "demo",
        cookie_store=store,
        cookie_manager=manager,
    ).run()
    return result


@pytest.mark.parametrize("name,plan", sorted(single_fault_plans().items()))
def test_every_fault_kind_completes_under_load(name, plan):
    result = run_faulted(plan)
    assert result.completed, f"fault {name} broke the session"
    assert result.ffct is not None
    assert result.fault_summary is not None
    if name.startswith("ff_size"):
        assert result.fault_summary.get("ff_size_overridden") == 1
    elif name.startswith("handshake"):
        assert sum(result.fault_summary.values()) >= 1
    elif name == "datagram_bitflip":
        # 2% of datagrams; a short session may legitimately flip none,
        # but the summary dict must still be attached.
        assert all(v >= 0 for v in result.fault_summary.values())
    else:
        assert sum(result.fault_summary.values()) == 1


@pytest.mark.parametrize("name", ["cookie_corrupt", "cookie_truncate", "hqst_garbage"])
def test_cookie_faults_deny_the_cookie_fast_path(name):
    plan = single_fault_plans()[name]
    result = run_faulted(plan)
    assert result.completed
    assert not result.used_cookie


def test_fault_plan_replays_byte_identically():
    """The session seed fully determines the fault realisation."""
    plan = FaultPlan(FaultKind.DATAGRAM_BITFLIP, bitflip_rate=0.1)
    a = run_faulted(plan, seed=11)
    b = run_faulted(plan, seed=11)
    assert a.ffct == b.ffct
    assert a.fault_summary == b.fault_summary
    assert a.final_server_stats == b.final_server_stats
    c = run_faulted(plan, seed=12)
    assert (a.ffct, a.fault_summary) != (c.ffct, c.fault_summary)

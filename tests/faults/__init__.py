"""Tests for the seeded transport fault injector."""

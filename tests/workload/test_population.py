"""Tests for deployment session-chain generation."""

import pytest

from repro.quic.connection import HandshakeMode
from repro.workload.population import Deployment, DeploymentConfig


def make_deployment(**kwargs):
    defaults = dict(n_od_pairs=100, seed=3)
    defaults.update(kwargs)
    return Deployment(DeploymentConfig(**defaults))


def test_config_validation():
    with pytest.raises(ValueError):
        DeploymentConfig(n_od_pairs=0)
    with pytest.raises(ValueError):
        DeploymentConfig(p_zero_rtt=1.5)


def test_one_chain_per_od_pair():
    chains = make_deployment().generate()
    assert len(chains) == 100
    assert all(chain for chain in chains)


def test_chain_epochs_monotone():
    for chain in make_deployment().generate():
        epochs = [spec.epoch for spec in chain]
        assert epochs == sorted(epochs)


def test_first_session_flagged():
    for chain in make_deployment().generate():
        assert chain[0].is_first_session
        assert all(not spec.is_first_session for spec in chain[1:])


def test_zero_rtt_fraction_near_ninety_percent():
    specs = make_deployment(n_od_pairs=400).sessions()
    frac = sum(1 for s in specs if s.handshake_mode == HandshakeMode.ZERO_RTT) / len(specs)
    assert 0.85 < frac < 0.95


def test_chain_lengths_bounded_and_varied():
    chains = make_deployment(n_od_pairs=300).generate()
    lengths = [len(c) for c in chains]
    assert max(lengths) <= DeploymentConfig().max_sessions_per_od
    assert min(lengths) >= 1
    assert len(set(lengths)) > 1


def test_gaps_include_stale_tail():
    """Some revisit gaps must exceed Δ=60min to exercise corner case 2."""
    specs = make_deployment(n_od_pairs=400).sessions()
    revisits = [s for s in specs if not s.is_first_session]
    stale = sum(1 for s in revisits if s.gap_minutes > 60.0)
    assert stale > 0
    assert stale / len(revisits) < 0.3


def test_chain_shares_od_and_stream():
    for chain in make_deployment().generate():
        assert len({spec.od.od_id for spec in chain}) == 1
        assert len({spec.stream_profile.seed for spec in chain}) == 1


def test_deterministic_generation():
    a = make_deployment(seed=9).sessions()
    b = make_deployment(seed=9).sessions()
    assert [(s.seed, s.epoch) for s in a] == [(s.seed, s.epoch) for s in b]


def test_seeds_unique_across_sessions():
    specs = make_deployment(n_od_pairs=200).sessions()
    seeds = [s.seed for s in specs]
    assert len(set(seeds)) == len(seeds)


# ---------------------------------------------------------------------------
# PR 5: streaming iteration and the index-addressable fleet population.


def test_iter_chains_matches_generate():
    """Streaming and materialized iteration are the same deployment."""
    dep = make_deployment(n_od_pairs=60, seed=11)
    assert list(dep.iter_chains()) == dep.generate()


def test_iter_chains_restarts_cleanly():
    """Each pass over the generator restarts the OD stream from scratch."""
    dep = make_deployment(n_od_pairs=40, seed=5)
    assert list(dep.iter_chains()) == list(dep.iter_chains())


def test_session_spec_alias_is_planned_session():
    from repro.workload.population import PlannedSession, SessionSpec  # wira-lint: disable=WL016 - alias identity test

    assert SessionSpec is PlannedSession


class TestFleetPopulation:
    def make_fleet(self, **kwargs):
        from repro.workload.population import FleetPopulation

        defaults = dict(n_od_pairs=50, seed=7)
        defaults.update(kwargs)
        return FleetPopulation(DeploymentConfig(**defaults))

    def test_random_access_matches_iteration(self):
        fleet = self.make_fleet()
        iterated = list(fleet.iter_chains())
        assert [fleet.chain(i) for i in range(50)] == iterated

    def test_chain_independent_of_access_order(self):
        """chain(i) is a pure function of (seed, i): reading other chains
        first must not perturb it — the property sharding relies on."""
        fleet = self.make_fleet()
        direct = fleet.chain(17)
        fleet.chain(3)
        fleet.chain(42)
        assert fleet.chain(17) == direct
        assert self.make_fleet().chain(17) == direct

    def test_partial_range_iteration(self):
        fleet = self.make_fleet()
        whole = list(fleet.iter_chains())
        assert list(fleet.iter_chains(10, 20)) == whole[10:20]

    def test_od_ids_are_indices(self):
        fleet = self.make_fleet()
        for i in (0, 13, 49):
            chain = fleet.chain(i)
            assert all(planned.od.od_id == i for planned in chain)

    def test_out_of_range_raises(self):
        fleet = self.make_fleet()
        with pytest.raises(IndexError):
            fleet.chain(50)
        with pytest.raises(IndexError):
            fleet.chain(-1)

    def test_iter_sessions_flattens_in_order(self):
        fleet = self.make_fleet(n_od_pairs=12)
        flat = list(fleet.iter_sessions())
        assert flat == [p for chain in fleet.iter_chains() for p in chain]

    def test_seeds_unique_across_fleet(self):
        fleet = self.make_fleet(n_od_pairs=200)
        seeds = [p.seed for p in fleet.iter_sessions()]
        assert len(set(seeds)) == len(seeds)

    def test_distribution_matches_deployment_statistics(self):
        """Same chain model, different seeding: summary statistics of the
        fleet flavour must stay in the deployment's calibrated bands."""
        fleet = self.make_fleet(n_od_pairs=400)
        sessions = list(fleet.iter_sessions())
        frac_0rtt = sum(
            1 for s in sessions if s.handshake_mode == HandshakeMode.ZERO_RTT
        ) / len(sessions)
        assert 0.85 < frac_0rtt < 0.95
        lengths = [len(c) for c in fleet.iter_chains()]
        assert max(lengths) <= DeploymentConfig().max_sessions_per_od
        assert min(lengths) >= 1

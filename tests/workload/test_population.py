"""Tests for deployment session-chain generation."""

import pytest

from repro.quic.connection import HandshakeMode
from repro.workload.population import Deployment, DeploymentConfig


def make_deployment(**kwargs):
    defaults = dict(n_od_pairs=100, seed=3)
    defaults.update(kwargs)
    return Deployment(DeploymentConfig(**defaults))


def test_config_validation():
    with pytest.raises(ValueError):
        DeploymentConfig(n_od_pairs=0)
    with pytest.raises(ValueError):
        DeploymentConfig(p_zero_rtt=1.5)


def test_one_chain_per_od_pair():
    chains = make_deployment().generate()
    assert len(chains) == 100
    assert all(chain for chain in chains)


def test_chain_epochs_monotone():
    for chain in make_deployment().generate():
        epochs = [spec.epoch for spec in chain]
        assert epochs == sorted(epochs)


def test_first_session_flagged():
    for chain in make_deployment().generate():
        assert chain[0].is_first_session
        assert all(not spec.is_first_session for spec in chain[1:])


def test_zero_rtt_fraction_near_ninety_percent():
    specs = make_deployment(n_od_pairs=400).sessions()
    frac = sum(1 for s in specs if s.handshake_mode == HandshakeMode.ZERO_RTT) / len(specs)
    assert 0.85 < frac < 0.95


def test_chain_lengths_bounded_and_varied():
    chains = make_deployment(n_od_pairs=300).generate()
    lengths = [len(c) for c in chains]
    assert max(lengths) <= DeploymentConfig().max_sessions_per_od
    assert min(lengths) >= 1
    assert len(set(lengths)) > 1


def test_gaps_include_stale_tail():
    """Some revisit gaps must exceed Δ=60min to exercise corner case 2."""
    specs = make_deployment(n_od_pairs=400).sessions()
    revisits = [s for s in specs if not s.is_first_session]
    stale = sum(1 for s in revisits if s.gap_minutes > 60.0)
    assert stale > 0
    assert stale / len(revisits) < 0.3


def test_chain_shares_od_and_stream():
    for chain in make_deployment().generate():
        assert len({spec.od.od_id for spec in chain}) == 1
        assert len({spec.stream_profile.seed for spec in chain}) == 1


def test_deterministic_generation():
    a = make_deployment(seed=9).sessions()
    b = make_deployment(seed=9).sessions()
    assert [(s.seed, s.epoch) for s in a] == [(s.seed, s.epoch) for s in b]


def test_seeds_unique_across_sessions():
    specs = make_deployment(n_od_pairs=200).sessions()
    seeds = [s.seed for s in specs]
    assert len(set(seeds)) == len(seeds)

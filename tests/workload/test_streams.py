"""Tests for Fig 1(a)-calibrated stream sampling."""

import random

from repro.metrics.stats import mean
from repro.workload.streams import (
    MAX_FF_BYTES,
    MIN_FF_BYTES,
    sample_ff_size,
    sample_stream_profile,
)


def sample_many(n=20_000, seed=1):
    rng = random.Random(seed)
    return [sample_ff_size(rng) for _ in range(n)]


def test_ff_mean_matches_paper():
    """Fig 1(a): average first-frame size 43.1 KB (±10 %)."""
    sizes = sample_many()
    assert 39_000 < mean(sizes) < 48_000


def test_ff_p30_below_30kb():
    """Fig 1(a): ~30 % of streams are under 30 KB."""
    sizes = sample_many()
    frac = sum(1 for s in sizes if s < 30_000) / len(sizes)
    assert 0.25 < frac < 0.35


def test_ff_p80_above_60kb():
    """Fig 1(a): ~20 % of streams exceed 60 KB."""
    sizes = sample_many()
    frac = sum(1 for s in sizes if s > 60_000) / len(sizes)
    assert 0.15 < frac < 0.25


def test_ff_range_clamped_to_measured_extremes():
    """§I: observed first frames span 6 KB to 250 KB."""
    sizes = sample_many()
    assert min(sizes) >= MIN_FF_BYTES
    assert max(sizes) <= MAX_FF_BYTES


def test_profile_pins_ff_target():
    rng = random.Random(3)
    profile = sample_stream_profile(rng, stream_seed=9)
    assert profile.first_frame_target_bytes is not None
    assert MIN_FF_BYTES <= profile.first_frame_target_bytes <= MAX_FF_BYTES


def test_profile_bitrate_scales_with_ff():
    rng = random.Random(4)
    profiles = [sample_stream_profile(rng, stream_seed=i) for i in range(50)]
    pairs = sorted(
        (p.first_frame_target_bytes, p.video_bitrate_bps) for p in profiles
    )
    # Bitrate must be monotone in first-frame size by construction.
    bitrates = [b for _, b in pairs]
    assert bitrates == sorted(bitrates)


def test_viewer_bandwidth_caps_rendition():
    """ABR correlation: slow viewers get lower-bitrate streams."""
    rng = random.Random(5)
    slow = [
        sample_stream_profile(random.Random(i), i, viewer_bandwidth_bps=2e6)
        for i in range(50)
    ]
    assert all(p.video_bitrate_bps <= 0.7 * 2e6 * 1.01 for p in slow)


def test_sampling_deterministic_per_rng_state():
    assert sample_many(100, seed=7) == sample_many(100, seed=7)
    assert sample_many(100, seed=7) != sample_many(100, seed=8)

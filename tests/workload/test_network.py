"""Tests for the UG/OD QoS processes (Fig 3 / Fig 4 calibration)."""

import random

import pytest

from repro.metrics.stats import coefficient_of_variation, mean
from repro.workload.network import (
    NetworkModel,
    od_bw_sigma,
    od_rtt_sigma,
)


def test_ug_dispersion_matches_fig3():
    """Within-UG CVs: MinRTT ≈ 36.4 %, MaxBW ≈ 51.6 %."""
    model = NetworkModel(random.Random(1))
    rtt_cvs, bw_cvs = [], []
    for _ in range(120):
        ug = model.sample_user_group()
        ods = [model.sample_od_pair(ug) for _ in range(30)]
        rtt_cvs.append(coefficient_of_variation([od.base_rtt for od in ods]))
        bw_cvs.append(coefficient_of_variation([od.base_bandwidth_bps for od in ods]))
    assert 0.28 < mean(rtt_cvs) < 0.45
    assert 0.40 < mean(bw_cvs) < 0.62


def test_od_drift_matches_fig4_minrtt():
    """Within-OD MinRTT CV ≈ 9.9 % at 5-minute intervals."""
    model = NetworkModel(random.Random(2))
    cvs = []
    for i in range(150):
        od = model.sample_od_pair()
        rng = random.Random(1000 + i)
        rtts = [od.conditions_at(rng, interval_minutes=5.0).rtt for _ in range(20)]
        cvs.append(coefficient_of_variation(rtts))
    assert 0.07 < mean(cvs) < 0.13


def test_od_drift_matches_fig4_maxbw():
    """Within-OD MaxBW CV ≈ 27 % at 5-minute intervals."""
    model = NetworkModel(random.Random(3))
    cvs = []
    for i in range(150):
        od = model.sample_od_pair()
        rng = random.Random(2000 + i)
        bws = [od.conditions_at(rng, interval_minutes=5.0).bandwidth_bps for _ in range(20)]
        cvs.append(coefficient_of_variation(bws))
    assert 0.21 < mean(cvs) < 0.33


def test_od_more_stable_than_ug():
    """Fig 4 obs (iv): OD-pair QoS is far more stable than UG-level."""
    # Paper ratios: MinRTT 9.9% vs 36.4% (~0.27), MaxBW 27% vs 51.6% (~0.52).
    assert od_rtt_sigma(5.0) < 0.355 * 0.35
    assert od_bw_sigma(5.0) < 0.49 * 0.60


def test_drift_sigma_grows_with_interval():
    """Fig 4 obs (i): dispersion grows slowly with the interval."""
    assert od_rtt_sigma(5.0) < od_rtt_sigma(10.0) < od_rtt_sigma(60.0)
    assert od_bw_sigma(5.0) < od_bw_sigma(60.0)
    # "Slightly differentiated": 60-minute sigma is < 25% above 5-minute.
    assert od_rtt_sigma(60.0) < od_rtt_sigma(5.0) * 1.25


def test_conditions_within_sane_bounds():
    model = NetworkModel(random.Random(4))
    rng = random.Random(5)
    for _ in range(200):
        od = model.sample_od_pair()
        cond = od.conditions_at(rng)
        assert 300_000 <= cond.bandwidth_bps
        assert 0.008 <= cond.rtt <= 0.8
        assert 0.0 <= cond.loss_rate < 0.2
        assert cond.buffer_bytes >= 16_000


def test_loss_mix_produces_lossless_share_and_lossy_tail():
    """The mix is loss-heavy (paper FFLR avg 8.8%) but a solid share of
    paths is clean, and the tail reaches the Fig 13(d) retransmission
    buckets."""
    model = NetworkModel(random.Random(6))
    losses = [model.sample_od_pair().loss_rate for _ in range(500)]
    lossless = sum(1 for l in losses if l == 0.0)
    assert 0.25 * len(losses) < lossless < 0.5 * len(losses)
    assert any(l > 0.10 for l in losses)


def test_od_ids_unique():
    model = NetworkModel(random.Random(7))
    ids = {model.sample_od_pair().od_id for _ in range(50)}
    assert len(ids) == 50

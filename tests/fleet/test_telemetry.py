"""Telemetry snapshot algebra: merge invariance and live==final identity.

The tap's whole value rests on one property: merging the per-chunk
snapshots — in ANY order, at ANY moment — yields canonical JSON
byte-identical to the final report's aggregates.  These tests pin that
property on serial, sharded, and kill→resume campaigns, plus the schema
versioning and defensive-read behavior the live dashboard depends on.
"""

import itertools
import json

import pytest

from repro.fleet import (
    CheckpointState,
    FleetConfig,
    TELEMETRY_SCHEMA_VERSION,
    TelemetrySchemaError,
    TelemetrySnapshot,
    canonical_json,
    default_telemetry_dir,
    live_status,
    load_snapshot,
    merge_snapshots,
    run_campaign,
    run_chunk,
    save_checkpoint,
    scan_snapshots,
)
from repro.fleet.telemetry import derive_counters, snapshot_path, write_snapshot
from repro.workload import DeploymentConfig

SCHEMES = ("baseline", "wira")


def small_config(**kwargs):
    defaults = dict(
        population=DeploymentConfig(n_od_pairs=6, seed=3),
        schemes=SCHEMES,
        chunk_chains=2,
        checkpoint_every=1,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def run_with_telemetry(tmp_path, config, jobs=1, name="cp.json"):
    checkpoint = tmp_path / name
    telemetry = default_telemetry_dir(checkpoint)
    aggregate = run_campaign(
        config, checkpoint_path=checkpoint, jobs=jobs, telemetry_dir=telemetry
    )
    return aggregate, checkpoint, telemetry


class TestSnapshotAlgebra:
    def test_every_chunk_writes_one_snapshot(self, tmp_path):
        config = small_config()
        _, _, telemetry = run_with_telemetry(tmp_path, config)
        snapshots = scan_snapshots(telemetry)
        assert sorted(snapshots) == list(range(config.n_chunks))
        for index, snapshot in snapshots.items():
            assert snapshot.campaign_key == config.key()
            assert snapshot.n_chunks == config.n_chunks
            assert snapshot.chunk_index == index

    def test_merge_is_order_invariant_bytewise(self, tmp_path):
        config = small_config()
        _, _, telemetry = run_with_telemetry(tmp_path, config)
        snapshots = scan_snapshots(telemetry)
        orderings = list(itertools.permutations(snapshots.values()))
        encodings = {
            canonical_json(merge_snapshots(ordering).to_json())
            for ordering in orderings
        }
        assert len(encodings) == 1

    def test_merge_is_associative(self, tmp_path):
        config = small_config()
        _, _, telemetry = run_with_telemetry(tmp_path, config)
        s = [scan_snapshots(telemetry)[i] for i in range(3)]
        left = merge_snapshots([s[0], s[1]])
        left.merge(merge_snapshots([s[2]]))
        right = merge_snapshots([s[0]])
        right.merge(merge_snapshots([s[1], s[2]]))
        assert canonical_json(left.to_json()) == canonical_json(right.to_json())

    def test_live_merge_equals_final_serial(self, tmp_path):
        config = small_config()
        aggregate, _, telemetry = run_with_telemetry(tmp_path, config)
        merged = merge_snapshots(scan_snapshots(telemetry).values())
        assert canonical_json(merged.to_json()) == canonical_json(aggregate.to_json())

    def test_live_merge_equals_final_sharded(self, tmp_path):
        config = small_config()
        aggregate, _, telemetry = run_with_telemetry(tmp_path, config, jobs=2)
        merged = merge_snapshots(scan_snapshots(telemetry).values())
        assert canonical_json(merged.to_json()) == canonical_json(aggregate.to_json())

    def test_live_merge_equals_final_after_kill_and_resume(self, tmp_path):
        """Crash after chunk 0, resume with telemetry: the snapshot set
        covers adopted AND fresh chunks, and still merges byte-identical
        to the uninterrupted campaign."""
        config = small_config()
        uninterrupted = run_campaign(config, jobs=1)
        checkpoint = tmp_path / "cp.json"
        partial = CheckpointState(
            key=config.key(),
            config=config.to_json(),
            n_chunks=config.n_chunks,
            chunks={0: run_chunk(config, 0)},
        )
        save_checkpoint(checkpoint, partial)
        telemetry = default_telemetry_dir(checkpoint)
        resumed = run_campaign(
            config,
            checkpoint_path=checkpoint,
            jobs=1,
            resume=True,
            telemetry_dir=telemetry,
        )
        snapshots = scan_snapshots(telemetry)
        assert sorted(snapshots) == list(range(config.n_chunks))
        # The adopted chunk's wall-clock cost is unknown; fresh chunks
        # carry real elapsed timings.
        assert snapshots[0].timing["elapsed_s"] is None
        merged = merge_snapshots(snapshots.values())
        assert canonical_json(merged.to_json()) == canonical_json(resumed.to_json())
        assert canonical_json(merged.to_json()) == canonical_json(
            uninterrupted.to_json()
        )

    def test_stale_foreign_snapshots_are_cleared_on_run(self, tmp_path):
        config = small_config()
        checkpoint = tmp_path / "cp.json"
        telemetry = default_telemetry_dir(checkpoint)
        telemetry.mkdir(parents=True)
        stale = snapshot_path(telemetry, 7)
        stale.write_text(json.dumps({"schema_version": TELEMETRY_SCHEMA_VERSION}))
        aggregate = run_campaign(
            config, checkpoint_path=checkpoint, jobs=1, telemetry_dir=telemetry
        )
        assert not stale.exists()
        merged = merge_snapshots(scan_snapshots(telemetry).values())
        assert canonical_json(merged.to_json()) == canonical_json(aggregate.to_json())

    def test_merge_rejects_cross_campaign_and_duplicates(self, tmp_path):
        config = small_config()
        _, _, telemetry = run_with_telemetry(tmp_path, config)
        snapshots = scan_snapshots(telemetry)
        foreign = TelemetrySnapshot.for_chunk(
            "f" * 40, snapshots[0].n_chunks, 1, snapshots[0].aggregate
        )
        with pytest.raises(ValueError, match="belongs to campaign"):
            merge_snapshots([snapshots[0], foreign])
        with pytest.raises(ValueError, match="duplicate"):
            merge_snapshots([snapshots[0], snapshots[0]])
        with pytest.raises(ValueError, match="empty"):
            merge_snapshots([])


class TestSchemaAndDefensiveReads:
    def test_schema_version_skew_is_rejected_not_guessed(self, tmp_path):
        config = small_config()
        _, _, telemetry = run_with_telemetry(tmp_path, config)
        path = snapshot_path(telemetry, 0)
        payload = json.loads(path.read_text())
        payload["schema_version"] = TELEMETRY_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(TelemetrySchemaError):
            load_snapshot(path)
        with pytest.raises(TelemetrySchemaError):
            scan_snapshots(telemetry)

    def test_corrupt_snapshot_reads_as_none_after_retries(self, tmp_path):
        path = tmp_path / "chunk-000000.json"
        path.write_text('{"schema_version": 1, "campaign')  # torn write
        assert load_snapshot(path, retries=2, delay_s=0) is None

    def test_scan_skips_unreadable_files(self, tmp_path):
        config = small_config()
        _, _, telemetry = run_with_telemetry(tmp_path, config)
        snapshot_path(telemetry, 1).write_text("not json at all")
        snapshots = scan_snapshots(telemetry, retries=1)
        assert sorted(snapshots) == [0, 2]

    def test_missing_directory_scans_empty(self, tmp_path):
        assert scan_snapshots(tmp_path / "nope") == {}

    def test_round_trip_preserves_payload(self, tmp_path):
        config = small_config()
        payload = run_chunk(config, 0)
        snapshot = TelemetrySnapshot.for_chunk(
            config.key(), config.n_chunks, 0, payload, elapsed_s=1.25
        )
        path = write_snapshot(tmp_path, snapshot)
        revived = load_snapshot(path)
        assert revived is not None
        assert canonical_json(revived.to_json()) == canonical_json(snapshot.to_json())

    def test_default_dir_derives_from_checkpoint(self, tmp_path):
        assert default_telemetry_dir(tmp_path / "c.json") == tmp_path / "c.json.telemetry"


class TestCountersAndLiveView:
    def test_counters_derived_from_aggregate(self):
        config = small_config()
        payload = run_chunk(config, 0)
        counters = derive_counters(payload)
        for scheme in SCHEMES:
            entry = counters["schemes"][scheme]
            assert entry["faults"] == entry["sessions"] - entry["completed"]
        assert counters["total"]["sessions"] == sum(
            counters["schemes"][s]["sessions"] for s in SCHEMES
        )

    def test_live_status_tracks_progress_and_quantiles(self, tmp_path):
        config = small_config()
        aggregate, _, telemetry = run_with_telemetry(tmp_path, config)
        snapshots = scan_snapshots(telemetry)
        partial = {i: snapshots[i] for i in (0, 1)}
        status = live_status(partial)
        assert status.chunks_done == 2
        assert status.n_chunks == config.n_chunks
        assert not status.complete
        assert 0 < status.completion_fraction < 1
        assert status.eta_seconds is not None and status.eta_seconds >= 0
        assert status.sessions_per_second is not None
        full = live_status(snapshots)
        assert full.complete
        assert full.sessions == aggregate.total_sessions
        quantiles = full.quantiles_seconds()
        for scheme in SCHEMES:
            p50, p90, p99 = quantiles[scheme]
            assert 0 < p50 <= p90 <= p99

    def test_live_status_requires_snapshots(self):
        with pytest.raises(ValueError):
            live_status({})

    def test_resume_rate_excludes_adopted_sessions(self):
        """Chunks adopted from a checkpoint (elapsed_s=None) were paid
        for by a previous run: they must not inflate sessions/sec, and
        the ETA must scale the current run's per-chunk cost."""
        config = small_config()
        key = config.key()
        payload0 = run_chunk(config, 0)
        payload1 = run_chunk(config, 1)
        adopted = TelemetrySnapshot.for_chunk(
            key, config.n_chunks, 0, payload0, elapsed_s=None
        )
        fresh = TelemetrySnapshot.for_chunk(
            key, config.n_chunks, 1, payload1, elapsed_s=2.0
        )
        status = live_status({0: adopted, 1: fresh})
        fresh_sessions = derive_counters(payload1)["total"]["sessions"]
        # Totals still cover the whole campaign so far ...
        assert status.sessions > fresh_sessions
        # ... but throughput reflects only what this run produced.
        assert status.sessions_per_second == pytest.approx(fresh_sessions / 2.0)
        assert status.eta_seconds == pytest.approx(2.0 * (config.n_chunks - 2))
        # All-adopted view: no current-run work yet, so no rate or ETA.
        only_adopted = live_status({0: adopted})
        assert only_adopted.sessions_per_second is None
        assert only_adopted.eta_seconds is None

"""Campaign engine: determinism, checkpointing, resume, and safety.

Campaigns here are deliberately tiny (a handful of chains, two
schemes) — the properties under test are structural, not statistical,
and every test replays real sessions end to end.
"""

import json

import pytest

from repro.fleet import (
    CampaignMismatchError,
    CheckpointState,
    FleetCampaign,
    FleetConfig,
    build_report,
    canonical_json,
    load_checkpoint,
    report_hash,
    run_campaign,
    run_chunk,
    save_checkpoint,
)
from repro.workload import DeploymentConfig

SCHEMES = ("baseline", "wira")


def small_config(**kwargs):
    defaults = dict(
        population=DeploymentConfig(n_od_pairs=6, seed=3),
        schemes=SCHEMES,
        chunk_chains=2,
        checkpoint_every=1,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


class TestFleetConfig:
    def test_chunk_plan_covers_population_once(self):
        config = small_config()
        assert config.n_chunks == 3
        covered = []
        for index in range(config.n_chunks):
            start, stop = config.chunk_bounds(index)
            covered.extend(range(start, stop))
        assert covered == list(range(6))

    def test_ragged_final_chunk(self):
        config = small_config(population=DeploymentConfig(n_od_pairs=5, seed=3))
        assert config.n_chunks == 3
        assert config.chunk_bounds(2) == (4, 5)

    def test_json_round_trip_preserves_key(self):
        config = small_config()
        revived = FleetConfig.from_json(json.loads(json.dumps(config.to_json())))
        assert revived == config
        assert revived.key() == config.key()

    def test_key_sensitive_to_config(self):
        config = small_config()
        assert config.key() != config.with_(sketch_alpha=0.05).key()
        other_pop = config.with_(population=DeploymentConfig(n_od_pairs=6, seed=4))
        assert config.key() != other_pop.key()

    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(chunk_chains=0)
        with pytest.raises(ValueError):
            small_config(schemes=())
        with pytest.raises(ValueError):
            small_config(schemes=("not-a-scheme",))


class TestDeterminism:
    def test_serial_and_sharded_byte_identical(self):
        """The headline acceptance criterion: jobs=1 == jobs=2, down to
        the canonical JSON bytes of aggregate and report."""
        config = small_config()
        serial = run_campaign(config, jobs=1)
        sharded = run_campaign(config, jobs=2)
        assert canonical_json(serial.to_json()) == canonical_json(sharded.to_json())
        key = config.key()
        assert report_hash(build_report(serial, key)) == report_hash(
            build_report(sharded, key)
        )

    def test_chunks_pure_functions_of_index(self):
        config = small_config()
        first = run_chunk(config, 1)
        run_chunk(config, 0)  # other work must not perturb chunk 1
        assert canonical_json(run_chunk(config, 1)) == canonical_json(first)

    def test_batched_chunk_matches_serial_reference(self, monkeypatch):
        """WIRA_BATCH on/off must yield byte-identical chunk aggregates."""
        config = small_config(chunk_chains=3)
        monkeypatch.setenv("WIRA_BATCH", "0")
        reference = [run_chunk(config, i) for i in range(config.n_chunks)]
        monkeypatch.setenv("WIRA_BATCH", "1")
        batched = [run_chunk(config, i) for i in range(config.n_chunks)]
        assert [canonical_json(p) for p in reference] == [
            canonical_json(p) for p in batched
        ]

    def test_report_reflects_real_sessions(self):
        config = small_config()
        total = run_campaign(config, jobs=1)
        report = build_report(total, config.key())
        assert report["total_sessions"] > 0
        for value in SCHEMES:
            scheme = report["schemes"][value]
            assert scheme["sessions"] > 0
            assert scheme["ffct"]["count"] > 0
            assert 0 < scheme["ffct"]["p50"] <= scheme["ffct"]["p99"]
        gain = report["ffct_improvement_over_baseline"]["wira"]
        assert gain is not None and "p50" in gain


class TestCheckpointResume:
    def test_checkpoint_written_and_complete(self, tmp_path):
        config = small_config()
        path = tmp_path / "campaign.json"
        run_campaign(config, checkpoint_path=path, jobs=1)
        state = load_checkpoint(path)
        assert state is not None
        assert state.key == config.key()
        assert state.complete
        assert sorted(state.chunks) == [0, 1, 2]

    def test_interrupted_campaign_resumes_byte_identical(self, tmp_path):
        """Run chunk 0 only, 'crash', resume: the final aggregate must be
        byte-identical to an uninterrupted campaign."""
        config = small_config()
        path = tmp_path / "campaign.json"
        uninterrupted = run_campaign(config, jobs=1)

        # Simulate the crash: a checkpoint holding only chunk 0.
        partial = CheckpointState(
            key=config.key(),
            config=config.to_json(),
            n_chunks=config.n_chunks,
            chunks={0: run_chunk(config, 0)},
        )
        save_checkpoint(path, partial)

        seen = []
        resumed = run_campaign(
            config,
            checkpoint_path=path,
            jobs=1,
            resume=True,
            progress=lambda done, total, sessions: seen.append((done, total)),
        )
        assert canonical_json(resumed.to_json()) == canonical_json(
            uninterrupted.to_json()
        )
        assert seen[0] == (1, 3)  # resumed from the checkpointed chunk

    def test_resume_requires_checkpoint(self, tmp_path):
        config = small_config()
        with pytest.raises(FileNotFoundError):
            run_campaign(
                config,
                checkpoint_path=tmp_path / "missing.json",
                jobs=1,
                resume=True,
            )

    def test_resume_rejects_foreign_campaign(self, tmp_path):
        """A checkpoint from a different config must never resume."""
        config = small_config()
        path = tmp_path / "campaign.json"
        foreign = CheckpointState(
            key="0" * 40,
            config=config.to_json(),
            n_chunks=config.n_chunks,
            chunks={},
        )
        save_checkpoint(path, foreign)
        with pytest.raises(CampaignMismatchError):
            run_campaign(config, checkpoint_path=path, jobs=1, resume=True)

    def test_corrupt_checkpoint_treated_as_absent(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text("{ not json", encoding="utf-8")
        assert load_checkpoint(path) is None
        # A fresh (non-resume) run just overwrites it.
        config = small_config(population=DeploymentConfig(n_od_pairs=2, seed=3))
        campaign = FleetCampaign(config, checkpoint_path=path)
        campaign.run(jobs=1)
        state = load_checkpoint(path)
        assert state is not None and state.complete

    def test_previous_format_checkpoint_treated_as_absent(self, tmp_path):
        """A checkpoint from before chunk payloads gained "phases"
        (format_version 1) is refused by the version guard — the clean
        "no usable checkpoint" path, never a KeyError while merging."""
        config = small_config()
        path = tmp_path / "campaign.json"
        chunk = run_chunk(config, 0)
        for scheme_payload in chunk["schemes"].values():
            del scheme_payload["phases"]
        payload = CheckpointState(
            key=config.key(),
            config=config.to_json(),
            n_chunks=config.n_chunks,
            chunks={0: chunk},
        ).to_json()
        payload["format_version"] = 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert load_checkpoint(path) is None

    def test_truncated_checkpoint_treated_as_absent(self, tmp_path):
        config = small_config(population=DeploymentConfig(n_od_pairs=2, seed=3))
        path = tmp_path / "campaign.json"
        run_campaign(config, checkpoint_path=path, jobs=1)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert load_checkpoint(path) is None

    def test_progress_reported_monotonically(self, tmp_path):
        config = small_config(population=DeploymentConfig(n_od_pairs=4, seed=3))
        seen = []
        run_campaign(
            config,
            jobs=1,
            progress=lambda done, total, sessions: seen.append((done, sessions)),
        )
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)
        assert dones[-1] == config.n_chunks
        sessions = [s for _, s in seen]
        assert sessions == sorted(sessions)

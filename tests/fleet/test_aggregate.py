"""Aggregate algebra: fold/merge exactness the fleet engine relies on."""

import json
import random
from types import SimpleNamespace

import pytest

from repro.fleet.aggregate import CampaignAggregate, SchemeAggregate, merge_chunks
from repro.quic.connection import HandshakeMode


def canon(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fake_outcome(rng):
    """A (planned, result) stand-in exposing exactly what fold() reads."""
    planned = SimpleNamespace(
        is_first_session=rng.random() < 0.3,
        handshake_mode=(
            HandshakeMode.ZERO_RTT if rng.random() < 0.9 else HandshakeMode.ONE_RTT
        ),
    )
    completed = rng.random() < 0.95
    result = SimpleNamespace(
        completed=completed,
        cookie_delivered=rng.random() < 0.8,
        used_cookie=rng.random() < 0.5,
        ffct=rng.lognormvariate(-2.0, 0.6) if completed else None,
        fflr=rng.random() * 0.1 if completed else None,
        phase_breakdown=None,  # populated only under WIRA_TRACE=1
    )
    return planned, result


def folded(outcomes, alpha=0.01):
    agg = SchemeAggregate(alpha=alpha)
    for planned, result in outcomes:
        agg.fold(planned, result)
    return agg


class TestSchemeAggregate:
    def test_counters_and_stats(self):
        rng = random.Random(1)
        outcomes = [fake_outcome(rng) for _ in range(200)]
        agg = folded(outcomes)
        assert agg.sessions == 200
        assert agg.completed == sum(1 for _, r in outcomes if r.completed)
        assert agg.zero_rtt == sum(
            1 for p, _ in outcomes if p.handshake_mode == HandshakeMode.ZERO_RTT
        )
        ffcts = [r.ffct for _, r in outcomes if r.ffct is not None]
        assert agg.ffct_stats.count == len(ffcts)
        assert agg.ffct_stats.mean == pytest.approx(sum(ffcts) / len(ffcts))
        assert agg.ffct_stats.min == min(ffcts)
        assert agg.ffct_stats.max == max(ffcts)

    def test_incomplete_sessions_counted_but_not_sampled(self):
        planned = SimpleNamespace(
            is_first_session=True, handshake_mode=HandshakeMode.ONE_RTT
        )
        result = SimpleNamespace(
            completed=False, cookie_delivered=False, used_cookie=False,
            ffct=None, fflr=None, phase_breakdown=None,
        )
        agg = SchemeAggregate()
        agg.fold(planned, result)
        assert agg.sessions == 1
        assert agg.ffct_stats.count == 0
        assert agg.ffct_sketch.count == 0

    def test_merge_equals_single_fold_bitwise(self):
        """Folding a stream in parts then merging == folding it whole."""
        rng = random.Random(7)
        outcomes = [fake_outcome(rng) for _ in range(300)]
        whole = folded(outcomes)
        for split in (1, 50, 150, 299):
            left = folded(outcomes[:split])
            left.merge(folded(outcomes[split:]))
            assert canon(left.to_json()) == canon(whole.to_json())

    def test_v1_payload_without_phases_raises_value_error(self):
        """A v1-era chunk payload (no "phases" section) is refused with
        the ValueError every caller handles — never a raw KeyError.  The
        checkpoint format-version bump keeps such payloads out upstream;
        this is the defense in depth behind it."""
        rng = random.Random(2)
        payload = folded([fake_outcome(rng) for _ in range(10)]).to_json()
        del payload["phases"]
        with pytest.raises(ValueError, match="phases"):
            SchemeAggregate.from_json(payload)

    def test_json_round_trip_then_merge_bitwise(self):
        rng = random.Random(3)
        outcomes = [fake_outcome(rng) for _ in range(100)]
        whole = folded(outcomes)
        revived = SchemeAggregate.from_json(
            json.loads(json.dumps(folded(outcomes[:40]).to_json()))
        )
        revived.merge(folded(outcomes[40:]))
        assert canon(revived.to_json()) == canon(whole.to_json())


class TestCampaignAggregate:
    def make(self, seed, n=120, schemes=("baseline", "wira")):
        rng = random.Random(seed)
        agg = CampaignAggregate(schemes)
        for _ in range(n):
            scheme = schemes[rng.randrange(len(schemes))]
            planned, result = fake_outcome(rng)
            agg.fold(scheme, planned, result)
        return agg

    def test_merge_chunks_shard_order_invariant_bitwise(self):
        """Chunk merge is commutative down to the byte: even merging in
        a pool's arbitrary completion order would agree with the
        engine's fixed chunk-index order."""
        chunks = [self.make(seed).to_json() for seed in range(6)]
        reference = merge_chunks(("baseline", "wira"), 0.01, chunks)
        order_rng = random.Random(99)
        for _ in range(5):
            shuffled = chunks[:]
            order_rng.shuffle(shuffled)
            again = merge_chunks(("baseline", "wira"), 0.01, shuffled)
            assert canon(again.to_json()) == canon(reference.to_json())

    def test_merge_rejects_different_scheme_sets(self):
        a = CampaignAggregate(("baseline",))
        b = CampaignAggregate(("baseline", "wira"))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_total_sessions(self):
        agg = self.make(5, n=77)
        assert agg.total_sessions == 77

    def test_json_round_trip(self):
        agg = self.make(11)
        revived = CampaignAggregate.from_json(json.loads(json.dumps(agg.to_json())))
        assert canon(revived.to_json()) == canon(agg.to_json())
        assert revived.alpha == agg.alpha

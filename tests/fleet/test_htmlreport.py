"""HTML campaign report: self-contained, deterministic, complete."""

import re

from repro.fleet import FleetConfig, build_report, render_html_report, run_campaign
from repro.workload import DeploymentConfig

SCHEMES = ("baseline", "wira")


def small_config(**kwargs):
    defaults = dict(
        population=DeploymentConfig(n_od_pairs=4, seed=3),
        schemes=SCHEMES,
        chunk_chains=2,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def rendered(config=None, **kwargs):
    config = config or small_config()
    aggregate = run_campaign(config, jobs=1)
    report = build_report(aggregate, config.key())
    return (
        render_html_report(report, aggregate, config=config.to_json(), **kwargs),
        report,
        aggregate,
    )


class TestSelfContainment:
    def test_no_external_references(self):
        document, _, _ = rendered()
        assert "http://" not in document
        assert "https://" not in document
        assert '<link' not in document
        assert 'src=' not in document  # no external scripts/images

    def test_inline_style_and_script_present(self):
        document, _, _ = rendered()
        assert "<style>" in document
        assert "<script>" in document
        assert document.startswith("<!DOCTYPE html>")
        assert document.rstrip().endswith("</html>")

    def test_light_and_dark_palettes_inlined(self):
        document, _, _ = rendered()
        # Light and dark series-1 slots, swapped by media query + toggle.
        assert "#2a78d6" in document
        assert "#3987e5" in document
        assert "prefers-color-scheme: dark" in document


class TestContent:
    def test_header_carries_key_and_config(self):
        document, report, _ = rendered()
        assert str(report["campaign_key"]) in document
        assert "population.n_od_pairs" in document
        assert "chunk_chains" in document

    def test_cdf_polyline_per_scheme_with_labels(self):
        document, _, _ = rendered()
        polylines = re.findall(r'<polyline class="line (s\d)"', document)
        assert polylines == ["s1", "s2"]  # sorted scheme order, fixed slots
        for scheme in SCHEMES:
            assert f">{scheme}</text>" in document

    def test_summary_table_has_quantiles(self):
        document, report, _ = rendered()
        assert "<th>p50</th>" in document
        assert "<th>p99</th>" in document
        p50 = report["schemes"]["baseline"]["ffct"]["p50"]
        assert f"{p50 * 1000:.1f}ms" in document

    def test_phase_placeholder_without_trace(self, monkeypatch):
        # Campaigns not run under WIRA_TRACE=1 carry no phase data; the
        # report says so instead of rendering an empty table.  Pin the
        # bus off so the test holds even when the suite runs traced.
        from repro import obs

        monkeypatch.setattr(obs, "ACTIVE", None)
        document, _, _ = rendered()
        assert "WIRA_TRACE=1" in document

    def test_telemetry_section_optional(self):
        document, _, _ = rendered()
        assert "Live telemetry" not in document
        with_telemetry, _, _ = rendered(
            telemetry={
                "chunks_done": 2,
                "sessions": 36,
                "elapsed_seconds": 1.5,
                "sessions_per_second": 24.0,
            }
        )
        assert "Live telemetry" in with_telemetry
        assert "sessions / second" in with_telemetry

    def test_hover_data_embedded_as_json(self):
        document, _, _ = rendered()
        assert 'id="cdf-data"' in document
        assert '"xmaxMs"' in document


class TestDeterminism:
    def test_same_inputs_same_bytes(self):
        config = small_config()
        first, _, _ = rendered(config)
        second, _, _ = rendered(config)
        assert first == second

    def test_user_strings_are_escaped(self):
        config = small_config()
        aggregate = run_campaign(config, jobs=1)
        report = build_report(aggregate, config.key())
        document = render_html_report(
            report, aggregate, title='<script>alert("x")</script>'
        )
        assert '<script>alert' not in document
        assert "&lt;script&gt;" in document

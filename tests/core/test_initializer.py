"""Tests for Table I initialisation and its corner cases."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import WiraConfig
from repro.core.initializer import (
    InitialParams,
    Scheme,
    compute_initial_params,
    payload_to_wire_bytes,
)
from repro.core.schemes import InitContext, make_policy
from repro.core.transport_cookie import HxQos


CONFIG = WiraConfig(init_cwnd_exp=44_000, init_rtt_exp=0.080)
HX = HxQos(min_rtt=0.050, max_bw_bps=8_000_000.0, timestamp=0.0)  # BDP = 50 kB
FF = 66_000  # Fig 2(a)'s example first frame


def params(scheme, ff_size=FF, hx=HX, rtt=None):
    return make_policy(scheme).initial_params(
        InitContext(config=CONFIG, ff_size=ff_size, hx_qos=hx, measured_rtt=rtt)
    )


EXP_WIRE = payload_to_wire_bytes(44_000)
FF_WIRE = payload_to_wire_bytes(FF)


class TestTableOne:
    def test_baseline(self):
        p = params(Scheme.BASELINE)
        assert p.cwnd_bytes == EXP_WIRE
        assert p.pacing_bps == pytest.approx(EXP_WIRE * 8 / 0.080)
        assert not p.used_ff_size and not p.used_hx_qos

    def test_static_10(self):
        p = params(Scheme.STATIC_10)
        assert p.cwnd_bytes == 10 * 1280

    def test_wire_conversion_admits_payload(self):
        # The window for FF bytes of payload covers the packetised frame.
        assert FF_WIRE > FF
        assert FF_WIRE % 1280 == 0

    def test_wira_ff(self):
        p = params(Scheme.WIRA_FF)
        assert p.cwnd_bytes == FF_WIRE
        assert p.pacing_bps == pytest.approx(FF_WIRE * 8 / 0.080)
        assert p.used_ff_size and not p.used_hx_qos

    def test_wira_hx(self):
        p = params(Scheme.WIRA_HX)
        assert p.cwnd_bytes == HX.bdp_bytes
        assert p.pacing_bps == 8e6  # Eq. 2: init_pacing = MaxBW
        assert p.used_hx_qos and not p.used_ff_size

    def test_wira_takes_min_of_ff_and_bdp(self):
        p = params(Scheme.WIRA)
        assert p.cwnd_bytes == min(FF_WIRE, HX.bdp_bytes)  # Eq. 3
        assert p.pacing_bps == 8e6
        assert p.used_ff_size and p.used_hx_qos

    def test_wira_small_ff_bounds_window(self):
        p = params(Scheme.WIRA, ff_size=20_000)
        assert p.cwnd_bytes == payload_to_wire_bytes(20_000)  # FF wins the min


class TestMeasuredRttOneRtt:
    def test_baseline_pacing_uses_measured_rtt(self):
        p = params(Scheme.BASELINE, rtt=0.040)
        assert p.pacing_bps == pytest.approx(EXP_WIRE * 8 / 0.040)

    def test_wira_bdp_uses_measured_rtt(self):
        # §VI: 1-RTT servers use the measured RTT for the BDP.
        p = params(Scheme.WIRA, rtt=0.025)
        expected_bdp = int(8e6 * 0.025 / 8)
        assert p.cwnd_bytes == min(FF_WIRE, expected_bdp)

    def test_wira_hx_pacing_still_maxbw(self):
        p = params(Scheme.WIRA_HX, rtt=0.025)
        assert p.pacing_bps == 8e6


class TestCornerCase1:
    """FF_Size not parsed yet: substitute init_cwnd_exp, recompute later."""

    def test_wira_ff_provisional(self):
        p = params(Scheme.WIRA_FF, ff_size=None)
        assert p.cwnd_bytes == EXP_WIRE
        assert p.provisional

    def test_wira_provisional_still_respects_bdp(self):
        p = params(Scheme.WIRA, ff_size=None)
        assert p.cwnd_bytes == min(EXP_WIRE, HX.bdp_bytes)
        assert p.provisional
        assert p.pacing_bps == 8e6

    def test_update_after_parse_completion(self):
        provisional = params(Scheme.WIRA, ff_size=None)
        final = params(Scheme.WIRA, ff_size=30_000)
        assert final.cwnd_bytes == payload_to_wire_bytes(30_000)
        assert not final.provisional
        assert provisional.cwnd_bytes != final.cwnd_bytes

    def test_baseline_never_provisional(self):
        assert not params(Scheme.BASELINE, ff_size=None).provisional


class TestCornerCase2:
    """Stale/absent cookie: FF_Size-based fallback (§IV-C)."""

    def test_wira_falls_back_to_ff(self):
        p = params(Scheme.WIRA, hx=None)
        assert p.cwnd_bytes == FF_WIRE
        assert p.pacing_bps == pytest.approx(FF_WIRE * 8 / CONFIG.init_rtt_exp)
        assert p.used_ff_size and not p.used_hx_qos

    def test_wira_hx_falls_back_to_baseline(self):
        p = params(Scheme.WIRA_HX, hx=None)
        assert p.cwnd_bytes == EXP_WIRE
        assert not p.used_hx_qos

    def test_both_signals_missing(self):
        p = params(Scheme.WIRA, ff_size=None, hx=None)
        assert p.cwnd_bytes == EXP_WIRE
        assert p.provisional


class TestSafetyBounds:
    def test_cwnd_floor_min_packets(self):
        # RFC 6928 floor: a tiny (or adversarial) FF_Size never
        # initializes the window below the standard 10-packet default.
        p = params(Scheme.WIRA_FF, ff_size=100)
        assert p.cwnd_bytes == CONFIG.min_initial_cwnd_packets * 1280

    def test_cwnd_floor_zero_ff_size(self):
        p = params(Scheme.WIRA_FF, ff_size=0)
        assert p.cwnd_bytes == CONFIG.min_initial_cwnd_packets * 1280

    def test_cwnd_ceiling(self):
        huge = HxQos(min_rtt=2.0, max_bw_bps=1e10, timestamp=0.0)
        p = params(Scheme.WIRA_HX, hx=huge)
        assert p.cwnd_bytes == CONFIG.max_initial_cwnd_bytes

    def test_pacing_floor(self):
        slow = HxQos(min_rtt=0.05, max_bw_bps=1.0, timestamp=0.0)
        # max_bw below the floor gets clamped up.
        p = params(Scheme.WIRA_HX, hx=slow)
        assert p.pacing_bps == CONFIG.min_initial_pacing_bps

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            InitialParams(0, 1.0, False, False, False)
        with pytest.raises(ValueError):
            InitialParams(1, 0.0, False, False, False)


class TestConfigValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            WiraConfig(video_frame_threshold=0)

    def test_bad_sync_period(self):
        with pytest.raises(ValueError):
            WiraConfig(sync_period=0)

    def test_bad_exp_values(self):
        with pytest.raises(ValueError):
            WiraConfig(init_cwnd_exp=0)


@given(
    ff=st.integers(min_value=2_000, max_value=300_000),
    bw=st.floats(min_value=2e5, max_value=1e8),
    rtt=st.floats(min_value=0.005, max_value=0.5),
)
def test_wira_never_exceeds_either_signal_property(ff, bw, rtt):
    """Property: Wira's window is bounded by both FF_Size and the BDP."""
    hx = HxQos(min_rtt=rtt, max_bw_bps=bw, timestamp=0.0)
    p = params(Scheme.WIRA, ff_size=ff, hx=hx)
    floor = CONFIG.min_initial_cwnd_packets * 1280
    assert p.cwnd_bytes <= max(floor, payload_to_wire_bytes(ff))
    assert p.cwnd_bytes <= max(floor, hx.bdp_bytes)
    assert p.pacing_bps >= CONFIG.min_initial_pacing_bps


class TestDeprecatedShim:
    """``compute_initial_params`` survives as a warning alias only."""

    def test_warns_and_matches_policy(self):
        with pytest.warns(DeprecationWarning):
            legacy = compute_initial_params(  # wira-lint: disable=WL016
                Scheme.WIRA, CONFIG, ff_size=FF, hx_qos=HX
            )
        assert legacy == params(Scheme.WIRA)

    def test_accepts_string_schemes(self):
        with pytest.warns(DeprecationWarning):
            legacy = compute_initial_params(  # wira-lint: disable=WL016
                "wira_hx", CONFIG, ff_size=FF, hx_qos=HX
            )
        assert legacy == params(Scheme.WIRA_HX)

"""The online adaptive initializer: purity, learning, and determinism.

The fleet-scale half of the determinism story — serial == sharded ==
kill→resume byte-identical with ``adaptive`` in the scheme mix — runs
the real campaign engine; the unit half asserts the policy itself never
draws randomness: its state is a pure function of ``(seed, observed
outcomes)``.
"""

from types import SimpleNamespace

import pytest

from repro.core.config import WiraConfig
from repro.core.initializer import Scheme, payload_to_wire_bytes, table1_params
from repro.core.schemes import InitContext, SchemeSpec, as_spec, make_policy
from repro.core.transport_cookie import HxQos
from repro.fleet import canonical_json, run_campaign, run_chunk
from repro.fleet.engine import FleetConfig
from repro.workload.population import DeploymentConfig

CONFIG = WiraConfig()
HX = HxQos(min_rtt=0.050, max_bw_bps=8e6, timestamp=0.0)


def outcome(bw, rtt=0.05):
    return SimpleNamespace(server_max_bw=bw, server_min_rtt=rtt)


def fed_policy(observations, seed=0, spec="adaptive"):
    policy = make_policy(spec, seed=seed)
    for obs in observations:
        policy.observe(obs)
    return policy


class TestStatePurity:
    def test_state_is_pure_function_of_seed_and_outcomes(self):
        obs = [outcome(bw) for bw in (4e6, 6e6, 2e6)]
        a = fed_policy(obs, seed=123)
        b = fed_policy(obs, seed=123)
        assert a.state_digest() == b.state_digest()
        ctx = InitContext(config=CONFIG, ff_size=66_000, hx_qos=HX)
        assert a.initial_params(ctx) == b.initial_params(ctx)

    def test_digest_sensitive_to_outcomes_and_seed(self):
        obs = [outcome(4e6), outcome(6e6)]
        base = fed_policy(obs, seed=1).state_digest()
        assert fed_policy(obs[:1], seed=1).state_digest() != base
        assert fed_policy(obs, seed=2).state_digest() != base

    def test_initial_params_is_a_pure_read(self):
        """Repeated queries must not mutate the estimator (the batched
        replay relies on this: params may be computed more than once
        between observes)."""
        policy = fed_policy([outcome(4e6), outcome(6e6)])
        ctx = InitContext(config=CONFIG, ff_size=66_000, hx_qos=HX)
        before = policy.state_digest()
        first = policy.initial_params(ctx)
        assert policy.initial_params(ctx) == first
        assert policy.state_digest() == before


class TestLearning:
    def test_cold_start_matches_wira(self):
        policy = make_policy("adaptive")
        for ff, hx in ((66_000, None), (None, None)):
            got = policy.initial_params(InitContext(config=CONFIG, ff_size=ff, hx_qos=hx))
            assert got == table1_params("wira", CONFIG, ff_size=ff, hx_qos=hx)

    def test_learned_rate_caps_stale_cookie(self):
        """A cookie minted before the path drifted no longer dictates
        the pacing rate: the learned lower quantile wins the min."""
        drifted = fed_policy([outcome(2e6), outcome(2.5e6), outcome(2e6)])
        params = drifted.initial_params(
            InitContext(config=CONFIG, ff_size=66_000, hx_qos=HX)
        )
        assert params.pacing_bps < HX.max_bw_bps
        wira_params = table1_params("wira", CONFIG, ff_size=66_000, hx_qos=HX)
        assert params.pacing_bps < wira_params.pacing_bps

    def test_history_window_trims(self):
        policy = fed_policy([outcome(1e6)] * 40)
        assert len(policy._bw_bps) == 12  # DEFAULT_HISTORY

    def test_spec_params_tune_the_estimator(self):
        spec = SchemeSpec("adaptive", params=(("q", 1.0), ("min_obs", 1), ("history", 2)))
        policy = fed_policy([outcome(2e6), outcome(6e6)], spec=spec)
        params = policy.initial_params(InitContext(config=CONFIG, ff_size=66_000))
        assert params.pacing_bps == 6e6  # q=1.0: the max of the window

    def test_invalid_spec_params_rejected(self):
        with pytest.raises(ValueError):
            make_policy(SchemeSpec("adaptive", params=(("q", 0.0),)))
        with pytest.raises(ValueError):
            make_policy(SchemeSpec("adaptive", params=(("history", 0),)))

    def test_window_still_bounded_by_ff_and_bdp(self):
        policy = fed_policy([outcome(8e6), outcome(8e6)])
        params = policy.initial_params(
            InitContext(config=CONFIG, ff_size=20_000, hx_qos=HX)
        )
        assert params.cwnd_bytes == payload_to_wire_bytes(20_000)


ADAPTIVE_FLEET = FleetConfig(
    population=DeploymentConfig(n_od_pairs=6, seed=3, drift=0.5),
    schemes=("wira_hx", "adaptive"),
    chunk_chains=2,
    checkpoint_every=1,
)


class TestFleetScaleDeterminism:
    """Serial == sharded == kill→resume, with online state in play.

    These are the gates that make stateful policies safe to ship: the
    per-chain policy seeding and the chain-order observe discipline must
    hold under every execution mode the fleet engine has.
    """

    def test_serial_equals_sharded(self):
        serial = run_campaign(ADAPTIVE_FLEET, jobs=1)
        sharded = run_campaign(ADAPTIVE_FLEET, jobs=2)
        assert canonical_json(serial.to_json()) == canonical_json(sharded.to_json())

    def test_batched_equals_solo(self, monkeypatch):
        monkeypatch.setenv("WIRA_BATCH", "0")
        solo = [run_chunk(ADAPTIVE_FLEET, i) for i in range(ADAPTIVE_FLEET.n_chunks)]
        monkeypatch.setenv("WIRA_BATCH", "1")
        batched = [run_chunk(ADAPTIVE_FLEET, i) for i in range(ADAPTIVE_FLEET.n_chunks)]
        assert [canonical_json(p) for p in solo] == [canonical_json(p) for p in batched]

    def test_kill_resume_byte_identical(self, tmp_path):
        from repro.fleet import CheckpointState, save_checkpoint

        uninterrupted = run_campaign(ADAPTIVE_FLEET, jobs=1)
        partial = CheckpointState(
            key=ADAPTIVE_FLEET.key(),
            config=ADAPTIVE_FLEET.to_json(),
            n_chunks=ADAPTIVE_FLEET.n_chunks,
            chunks={0: run_chunk(ADAPTIVE_FLEET, 0)},
        )
        path = tmp_path / "campaign.json"
        save_checkpoint(path, partial)
        resumed = run_campaign(
            ADAPTIVE_FLEET, checkpoint_path=path, jobs=1, resume=True
        )
        assert canonical_json(resumed.to_json()) == canonical_json(
            uninterrupted.to_json()
        )

    def test_figure_engine_agrees_with_itself_on_schemes(self):
        """Same chains through the figure replay twice — online state
        resets per run, so repeated runs are identical."""
        from repro.experiments.runner import run_deployment

        config = DeploymentConfig(n_od_pairs=4, seed=9, drift=0.5)
        first = run_deployment(config, [as_spec("adaptive")], use_cache=False)
        second = run_deployment(config, [as_spec("adaptive")], use_cache=False)
        rows_first = [o.result for o in first[as_spec("adaptive")]]
        rows_second = [o.result for o in second[as_spec("adaptive")]]
        assert rows_first == rows_second
        assert all(r.completed for r in rows_first)

    def test_records_addressable_by_string_and_enum(self):
        from repro.experiments.runner import run_deployment

        config = DeploymentConfig(n_od_pairs=2, seed=5)
        records = run_deployment(config, [Scheme.WIRA], use_cache=False)
        assert records[Scheme.WIRA] is records[as_spec("wira")]

"""Failure injection: the parser and cookie path under hostile input.

§VII argues Wira degrades gracefully: bad cookies are rejected (falling
back to corner case 2), and the parser never mis-accounts FF_Size on
malformed or truncated streams.
"""

import pytest

from repro.cdn.origin import Origin
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.cookie_crypto import CookieError, CookieSealer
from repro.core.frame_perception import FrameParser
from repro.core.parser_backends import UnknownProtocolError
from repro.core.initializer import Scheme
from repro.core.transport_cookie import (
    ClientCookieStore,
    HxQos,
    ServerCookieManager,
    decode_hqst,
    encode_hqst,
)
from repro.media import flv
from repro.media.frames import MediaFrame, MediaFrameType
from repro.media.source import StreamProfile
from repro.simnet.path import NetworkConditions

KEY = b"failure-injection-key-32-bytes!!"
TESTBED = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, loss_rate=0.0, buffer_bytes=50_000)


def ff_bundle():
    return [
        MediaFrame.synthetic(MediaFrameType.SCRIPT, 0, 400),
        MediaFrame.synthetic(MediaFrameType.AUDIO, 0, 372),
        MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 30_000),
    ]


class TestParserHostileInput:
    def test_truncated_stream_never_reports_ff(self):
        blob = flv.mux(ff_bundle())
        parser = FrameParser()
        # Everything except the last byte of the I-frame tag.
        assert parser.feed(blob[:-5]) is None
        assert not parser.ff_complete
        # The missing bytes arrive; the total is still exact.
        assert parser.feed(blob[-5:]) == len(blob)

    def test_flv_with_corrupted_tag_type_raises(self):
        blob = bytearray(flv.mux(ff_bundle()))
        blob[13] = 99  # first tag's type byte
        parser = FrameParser()
        with pytest.raises(Exception):
            parser.feed(bytes(blob))

    def test_flv_with_corrupted_previous_tag_size_raises(self):
        frames = ff_bundle()
        blob = bytearray(flv.mux(frames))
        # Flip a byte inside the first PreviousTagSize trailer.
        first_tag_len = 11 + len(frames[0].payload) + 4
        blob[13 + first_tag_len - 2] ^= 0xFF
        parser = FrameParser()
        with pytest.raises(Exception):
            parser.feed(bytes(blob))

    def test_unknown_protocol_rejected_per_algorithm_1(self):
        parser = FrameParser()
        with pytest.raises(UnknownProtocolError):
            parser.feed(b"\x00\x00\x00\x18ftypmp42")  # an MP4, not live

    def test_garbage_after_completion_is_ignored(self):
        blob = flv.mux(ff_bundle())
        parser = FrameParser()
        ff = parser.feed(blob)
        assert parser.feed(b"\xde\xad\xbe\xef" * 100) == ff


class TestCookieHostileInput:
    def test_bit_flips_every_position_rejected(self):
        sealer = CookieSealer(KEY)
        blob = sealer.seal(b"qos-payload", nonce_seed=5)
        for i in range(0, len(blob), 3):
            corrupted = bytearray(blob)
            corrupted[i] ^= 0x01
            with pytest.raises(CookieError):
                sealer.open(bytes(corrupted))

    def test_replayed_cookie_is_accepted_but_staleness_bounds_damage(self):
        """Replay is allowed by design (it is the client's own history);
        the Δ window bounds how stale a replay can be."""
        manager = ServerCookieManager(KEY, staleness_delta=3600.0)
        frame = manager.build_frame(HxQos(0.05, 8e6, timestamp=100.0))
        sealed = frame.decoded_metrics()["sealed"]
        assert manager.open_echoed(sealed, now=200.0) is not None
        assert manager.open_echoed(sealed, now=200.0) is not None  # replay
        assert manager.open_echoed(sealed, now=100.0 + 3601.0) is None

    def test_hqst_with_garbage_length_field(self):
        bad = bytes([0x01, 0xC0])  # Bool=1, truncated 8-byte varint
        with pytest.raises(CookieError):
            decode_hqst(bad)

    def test_session_with_fabricated_cookie_falls_back(self):
        """A client echoing a forged cookie gets corner-case treatment,
        not preferential bandwidth."""
        origin = Origin()
        origin.add_stream("s", StreamProfile(first_frame_target_bytes=40_000, seed=1))
        store = ClientCookieStore()
        # Adversarial client plants a fabricated "1 Gbps" cookie.
        fake = HxQos(min_rtt=0.001, max_bw_bps=1e9, timestamp=1e12).encode()
        store.update("origin", b"\x00" * 12 + fake + b"\x00" * 16, received_at=0.0)
        session = StreamingSession.from_spec(
            SessionSpec(TESTBED, Scheme.WIRA, seed=3), origin, "s", cookie_store=store
        )
        result = session.run()
        assert result.completed
        assert not result.used_cookie  # rejected by the MAC
        assert result.initial_params.used_ff_size  # corner case 2
        assert result.initial_params.pacing_bps < 5e7


class TestSessionRobustness:
    def test_session_times_out_gracefully_on_dead_path(self):
        """A path that loses (almost) everything must not hang the run."""
        dead = NetworkConditions(
            bandwidth_bps=1e6, rtt=0.05, loss_rate=0.95, buffer_bytes=20_000,
            reverse_loss_rate=0.95,
        )
        origin = Origin()
        origin.add_stream("s", StreamProfile(first_frame_target_bytes=20_000, seed=2))
        session = StreamingSession.from_spec(
            SessionSpec(dead, Scheme.BASELINE, seed=4, timeout=3.0), origin, "s"
        )
        result = session.run()
        assert not result.completed
        assert result.ffct is None

    def test_unsupported_client_session_still_works(self):
        origin = Origin()
        origin.add_stream("s", StreamProfile(first_frame_target_bytes=30_000, seed=3))
        session = StreamingSession.from_spec(
            SessionSpec(TESTBED, Scheme.WIRA, client_supports_cookies=False, seed=5),
            origin,
            "s",
        )
        result = session.run()
        assert result.completed
        assert not result.cookie_delivered

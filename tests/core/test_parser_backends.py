"""Tests for the per-protocol parser backends."""

import pytest

from repro.core.parser_backends import (
    FlvBackend,
    HlsBackend,
    PtlType,
    RtmpBackend,
    UnknownProtocolError,
    detect_protocol,
    make_backend,
)
from repro.media import flv, hls, rtmp
from repro.media.frames import MediaFrame, MediaFrameType


def frames():
    return [
        MediaFrame.synthetic(MediaFrameType.SCRIPT, 0, 300),
        MediaFrame.synthetic(MediaFrameType.AUDIO, 0, 372),
        MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 20_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_P, 40, 4_000),
    ]


class TestDetection:
    def test_flv_detected(self):
        assert detect_protocol(b"FLV\x01") == PtlType.FLV

    def test_rtmp_detected(self):
        assert detect_protocol(b"\x03...") == PtlType.RTMP

    def test_hls_detected(self):
        assert detect_protocol(b"\x47" + bytes(187)) == PtlType.HLS

    def test_empty_prefix_needs_more(self):
        assert detect_protocol(b"") is None

    def test_partial_flv_signature_needs_more(self):
        assert detect_protocol(b"F") is None
        assert detect_protocol(b"FL") is None

    def test_unknown_rejected(self):
        with pytest.raises(UnknownProtocolError):
            detect_protocol(b"\x89PNG")

    def test_flv_lookalike_rejected(self):
        with pytest.raises(UnknownProtocolError):
            detect_protocol(b"FLAC")


class TestBackendFactory:
    @pytest.mark.parametrize(
        "protocol,backend_cls",
        [(PtlType.FLV, FlvBackend), (PtlType.RTMP, RtmpBackend), (PtlType.HLS, HlsBackend)],
    )
    def test_make_backend(self, protocol, backend_cls):
        assert isinstance(make_backend(protocol), backend_cls)


class TestWireAccounting:
    def test_flv_units_sum_to_stream_length(self):
        blob = flv.mux(frames())
        backend = FlvBackend()
        units = backend.feed(blob)
        assert sum(u.wire_bytes for u in units) == len(blob)
        kinds = [(u.kind, u.media_type) for u in units]
        assert kinds[0] == ("header", None)
        assert kinds[1] == ("frame", MediaFrameType.SCRIPT)

    def test_rtmp_units_sum_to_stream_length(self):
        blob = rtmp.mux(frames())
        backend = RtmpBackend()
        units = backend.feed(blob)
        assert sum(u.wire_bytes for u in units) == len(blob)

    def test_hls_units_are_packet_multiples(self):
        blob = hls.mux(frames())
        backend = HlsBackend()
        units = backend.feed(blob)
        assert units, "at least the leading frames complete"
        for unit in units:
            assert unit.wire_bytes % hls.TS_PACKET_SIZE == 0

    def test_video_units_flagged(self):
        backend = FlvBackend()
        units = backend.feed(flv.mux(frames()))
        video = [u for u in units if u.is_video]
        assert len(video) == 2
        assert video[0].media_type == MediaFrameType.VIDEO_I

    def test_incremental_flv_accounting_matches_one_shot(self):
        blob = flv.mux(frames())
        one_shot = FlvBackend().feed(blob)
        backend = FlvBackend()
        chunked = []
        for i in range(0, len(blob), 913):
            chunked.extend(backend.feed(blob[i : i + 913]))
        assert chunked == one_shot

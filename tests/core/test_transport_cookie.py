"""Tests for the transport cookie and its sealing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cookie_crypto import CookieError, CookieSealer
from repro.core.transport_cookie import (
    ClientCookieStore,
    HxQos,
    ServerCookieManager,
    decode_hqst,
    encode_hqst,
)

KEY = b"server-secret-key-0123456789abcd"


class TestCookieSealer:
    def test_seal_open_round_trip(self):
        sealer = CookieSealer(KEY)
        blob = sealer.seal(b"min_rtt=50ms;max_bw=8mbps", nonce_seed=1)
        assert sealer.open(blob) == b"min_rtt=50ms;max_bw=8mbps"

    def test_ciphertext_hides_plaintext(self):
        sealer = CookieSealer(KEY)
        blob = sealer.seal(b"secret-qos-values", nonce_seed=1)
        assert b"secret-qos-values" not in blob

    def test_distinct_nonces_give_distinct_blobs(self):
        sealer = CookieSealer(KEY)
        a = sealer.seal(b"same", nonce_seed=1)
        b = sealer.seal(b"same", nonce_seed=2)
        assert a != b

    def test_tampering_detected(self):
        sealer = CookieSealer(KEY)
        blob = bytearray(sealer.seal(b"payload", nonce_seed=1))
        blob[14] ^= 0x01
        with pytest.raises(CookieError):
            sealer.open(bytes(blob))

    def test_forgery_with_wrong_key_detected(self):
        blob = CookieSealer(KEY).seal(b"payload", nonce_seed=1)
        other = CookieSealer(b"different-key-0123456789abcdef00")
        with pytest.raises(CookieError):
            other.open(blob)

    def test_truncated_blob_rejected(self):
        sealer = CookieSealer(KEY)
        with pytest.raises(CookieError):
            sealer.open(b"short")

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            CookieSealer(b"tiny")

    @given(st.binary(max_size=256), st.integers(min_value=0, max_value=2**60))
    def test_round_trip_property(self, plaintext, seed):
        sealer = CookieSealer(KEY)
        assert sealer.open(sealer.seal(plaintext, seed)) == plaintext


class TestHxQos:
    def test_encode_decode(self):
        qos = HxQos(min_rtt=0.050, max_bw_bps=8_000_000.0, timestamp=123.456)
        decoded = HxQos.decode(qos.encode())
        assert decoded.min_rtt == pytest.approx(0.050)
        assert decoded.max_bw_bps == 8_000_000.0
        assert decoded.timestamp == pytest.approx(123.456)

    def test_bdp(self):
        qos = HxQos(min_rtt=0.050, max_bw_bps=8_000_000.0, timestamp=0.0)
        assert qos.bdp_bytes == 50_000

    def test_validation(self):
        with pytest.raises(ValueError):
            HxQos(min_rtt=0.0, max_bw_bps=1e6, timestamp=0.0)
        with pytest.raises(ValueError):
            HxQos(min_rtt=0.05, max_bw_bps=0.0, timestamp=0.0)

    def test_malformed_payload_rejected(self):
        with pytest.raises(CookieError):
            HxQos.decode(b"\xff")


class TestHqstTag:
    def test_unsupported_client(self):
        assert decode_hqst(encode_hqst(False)) == (False, None, None)

    def test_supported_without_cookie(self):
        assert decode_hqst(encode_hqst(True)) == (True, None, None)

    def test_supported_with_cookie(self):
        supported, ts, sealed = decode_hqst(
            encode_hqst(True, received_at_ms=5_000, sealed_frame=b"blob")
        )
        assert supported and ts == 5_000 and sealed == b"blob"

    def test_empty_value(self):
        assert decode_hqst(b"") == (False, None, None)

    def test_truncated_sealed_frame_rejected(self):
        value = encode_hqst(True, 0, b"blob-blob-blob")
        with pytest.raises(CookieError):
            decode_hqst(value[:-5])

    @given(st.binary(min_size=1, max_size=200), st.integers(min_value=0, max_value=2**40))
    def test_round_trip_property(self, sealed, ts):
        assert decode_hqst(encode_hqst(True, ts, sealed)) == (True, ts, sealed)


class TestClientCookieStore:
    def test_stores_latest_per_origin(self):
        store = ClientCookieStore()
        store.update("cdn-1", b"old", 1.0)
        store.update("cdn-1", b"new", 2.0)
        assert store.get("cdn-1") == (b"new", 2.0)

    def test_origins_independent(self):
        store = ClientCookieStore()
        store.update("cdn-1", b"a", 1.0)
        store.update("cdn-2", b"b", 2.0)
        assert store.get("cdn-1") == (b"a", 1.0)
        assert len(store) == 2

    def test_missing_origin(self):
        assert ClientCookieStore().get("nowhere") is None

    def test_forget(self):
        store = ClientCookieStore()
        store.update("cdn-1", b"a", 1.0)
        store.forget("cdn-1")
        assert store.get("cdn-1") is None

    def test_ingest_from_hx_qos_frame(self):
        manager = ServerCookieManager(KEY)
        frame = manager.build_frame(HxQos(0.05, 8e6, 10.0))
        store = ClientCookieStore()
        assert store.on_hx_qos_frame("cdn-1", frame, now=11.0)
        sealed, received_at = store.get("cdn-1")
        assert received_at == 11.0


class TestServerCookieManager:
    def test_full_cycle_server_client_server(self):
        """The §IV-B loop: measure → seal → push → echo → validate."""
        manager = ServerCookieManager(KEY)
        qos = HxQos(min_rtt=0.050, max_bw_bps=8e6, timestamp=100.0)
        frame = manager.build_frame(qos)
        sealed = frame.decoded_metrics()["sealed"]
        # Client echoes `sealed` in its next CHLO; the (stateless) server
        # recovers the authentic metrics.
        recovered = manager.open_echoed(sealed, now=200.0)
        assert recovered.min_rtt == pytest.approx(0.050)
        assert recovered.max_bw_bps == 8e6

    def test_stale_cookie_rejected(self):
        """Corner case 2: T > Δ invalidates the synchronised Hx_QoS."""
        manager = ServerCookieManager(KEY, staleness_delta=3600.0)
        frame = manager.build_frame(HxQos(0.05, 8e6, timestamp=100.0))
        sealed = frame.decoded_metrics()["sealed"]
        assert manager.open_echoed(sealed, now=100.0 + 3601.0) is None
        assert manager.stale_cookies == 1

    def test_fresh_cookie_at_delta_boundary_accepted(self):
        manager = ServerCookieManager(KEY, staleness_delta=3600.0)
        frame = manager.build_frame(HxQos(0.05, 8e6, timestamp=100.0))
        sealed = frame.decoded_metrics()["sealed"]
        assert manager.open_echoed(sealed, now=100.0 + 3599.0) is not None

    def test_fabricated_cookie_rejected(self):
        """§VII: clients cannot fabricate favourable Hx_QoS values."""
        manager = ServerCookieManager(KEY)
        fake = HxQos(min_rtt=0.001, max_bw_bps=1e9, timestamp=100.0).encode()
        assert manager.open_echoed(b"\x00" * 12 + fake + b"\x00" * 16, now=100.0) is None
        assert manager.rejected_cookies == 1

    def test_cookie_from_another_server_key_rejected(self):
        frame = ServerCookieManager(KEY).build_frame(HxQos(0.05, 8e6, 100.0))
        sealed = frame.decoded_metrics()["sealed"]
        other = ServerCookieManager(b"other-key-0123456789abcdef000000")
        assert other.open_echoed(sealed, now=100.0) is None

    def test_manager_is_stateless_across_cookies(self):
        """Opening needs nothing but the key — the storage-offload point."""
        build_manager = ServerCookieManager(KEY)
        frames = [build_manager.build_frame(HxQos(0.01 * i, 1e6 * i, 50.0)) for i in range(1, 6)]
        fresh_manager = ServerCookieManager(KEY)  # no shared state
        for i, frame in enumerate(frames, start=1):
            qos = fresh_manager.open_echoed(frame.decoded_metrics()["sealed"], now=60.0)
            assert qos.max_bw_bps == pytest.approx(1e6 * i)

    def test_future_dated_cookie_rejected(self):
        """Regression: a timestamp ahead of the server clock must not pass
        the freshness check — ``now - timestamp > delta`` is false forever
        for a future-dated blob, so it needs its own upper bound."""
        manager = ServerCookieManager(KEY, staleness_delta=3600.0, max_clock_skew=5.0)
        frame = manager.build_frame(HxQos(0.05, 8e6, timestamp=1000.0))
        sealed = frame.decoded_metrics()["sealed"]
        assert manager.open_echoed(sealed, now=100.0) is None
        assert manager.stale_cookies == 1
        assert manager.rejected_cookies == 0

    def test_small_clock_skew_tolerated(self):
        manager = ServerCookieManager(KEY, max_clock_skew=5.0)
        frame = manager.build_frame(HxQos(0.05, 8e6, timestamp=104.0))
        sealed = frame.decoded_metrics()["sealed"]
        # 4 seconds ahead of the server clock: within the allowance.
        assert manager.open_echoed(sealed, now=100.0) is not None

    def test_skew_boundary(self):
        manager = ServerCookieManager(KEY, max_clock_skew=5.0)
        frame = manager.build_frame(HxQos(0.05, 8e6, timestamp=110.0))
        sealed = frame.decoded_metrics()["sealed"]
        assert manager.open_echoed(sealed, now=104.0) is None  # 6s ahead
        assert manager.open_echoed(sealed, now=105.0) is not None  # exactly 5s

    def test_trailing_garbage_in_sealed_payload_rejected(self):
        """Strict HxQos parse: the sealed plaintext is exactly 3 varints."""
        sealer = CookieSealer(KEY)
        padded = HxQos(0.05, 8e6, 100.0).encode() + b"\x00\x01"
        blob = sealer.seal(padded, nonce_seed=9)
        manager = ServerCookieManager(KEY)
        assert manager.open_echoed(blob, now=100.0) is None
        assert manager.rejected_cookies == 1


class TestNonceSalting:
    """Regression: N managers sharing one key must not share nonces."""

    def test_unsalted_managers_collide_on_nonce(self):
        """The two-time-pad hazard the instance salt exists to prevent:
        without salts, two managers' first blobs carry the same nonce."""
        a = ServerCookieManager(KEY).build_frame(HxQos(0.05, 8e6, 1.0))
        b = ServerCookieManager(KEY).build_frame(HxQos(0.09, 2e6, 2.0))
        nonce_a = a.decoded_metrics()["sealed"][:12]
        nonce_b = b.decoded_metrics()["sealed"][:12]
        assert nonce_a == nonce_b

    def test_salted_managers_never_collide(self):
        """Same key, same counter values, different salts → disjoint
        nonce sequences across every pair of shard managers."""
        managers = [
            ServerCookieManager(KEY, instance_salt=b"shard:%d" % i) for i in range(4)
        ]
        nonces = set()
        for manager in managers:
            for step in range(8):
                frame = manager.build_frame(HxQos(0.05, 8e6, float(step)))
                nonce = frame.decoded_metrics()["sealed"][:12]
                assert nonce not in nonces
                nonces.add(nonce)
        assert len(nonces) == 4 * 8

    def test_cross_shard_open(self):
        """Salting namespaces only nonce derivation: a cookie sealed by
        one salted shard opens on any other shard holding the key."""
        sealer_shard = ServerCookieManager(KEY, instance_salt=b"shard:0")
        opener_shard = ServerCookieManager(KEY, instance_salt=b"shard:1")
        frame = sealer_shard.build_frame(HxQos(0.05, 8e6, timestamp=100.0))
        sealed = frame.decoded_metrics()["sealed"]
        recovered = opener_shard.open_echoed(sealed, now=150.0)
        assert recovered is not None
        assert recovered.min_rtt == pytest.approx(0.05)

    def test_default_salt_preserves_legacy_bytes(self):
        """The default empty salt must reproduce the pre-salt blobs, so
        existing sealed cookies and recorded traces stay valid."""
        legacy = CookieSealer(KEY).seal(b"payload", nonce_seed=7)
        salted_default = CookieSealer(KEY).seal(b"payload", nonce_seed=7, salt=b"")
        assert legacy == salted_default


class TestBoundedClientStore:
    """Regression: the client store must hold bounded state."""

    def test_capacity_eviction_is_insertion_ordered(self):
        evicted = []
        store = ClientCookieStore(max_entries=3, on_evict=lambda o, r: evicted.append((o, r)))
        for i in range(5):
            store.update(f"origin-{i}", b"blob", float(i))
        assert store.origins() == ("origin-2", "origin-3", "origin-4")
        assert evicted == [("origin-0", "capacity"), ("origin-1", "capacity")]
        assert store.evicted_capacity == 2
        assert store.evictions == 2

    def test_refresh_moves_origin_to_back(self):
        store = ClientCookieStore(max_entries=3)
        for i in range(3):
            store.update(f"origin-{i}", b"blob", float(i))
        store.update("origin-0", b"fresh", 3.0)  # refresh: now most recent
        store.update("origin-3", b"blob", 4.0)  # evicts origin-1, not origin-0
        assert store.origins() == ("origin-2", "origin-0", "origin-3")
        assert store.get("origin-0") == (b"fresh", 3.0)
        assert store.get("origin-1") is None

    def test_ttl_eviction_on_update(self):
        evicted = []
        store = ClientCookieStore(ttl=10.0, on_evict=lambda o, r: evicted.append((o, r)))
        store.update("old", b"blob", 0.0)
        store.update("young", b"blob", 95.0)
        store.update("new", b"blob", 100.0)  # expires "old" (age 100 > 10)
        assert store.get("old") is None
        assert store.get("young") is not None
        assert evicted == [("old", "ttl")]
        assert store.evicted_ttl == 1

    def test_get_with_now_applies_ttl(self):
        store = ClientCookieStore(ttl=10.0)
        store.update("cdn", b"blob", 0.0)
        assert store.get("cdn", now=10.0) is not None  # exactly at ttl: kept
        assert store.get("cdn", now=10.5) is None
        assert store.evicted_ttl == 1

    def test_get_without_now_skips_ttl(self):
        store = ClientCookieStore(ttl=10.0)
        store.update("cdn", b"blob", 0.0)
        assert store.get("cdn") is not None

    def test_on_hx_qos_frame_refreshes_recency(self):
        manager = ServerCookieManager(KEY)
        store = ClientCookieStore(max_entries=2)
        store.update("a", b"blob", 0.0)
        store.update("b", b"blob", 1.0)
        frame = manager.build_frame(HxQos(0.05, 8e6, 2.0))
        assert store.on_hx_qos_frame("a", frame, now=2.0)  # refresh "a"
        store.update("c", b"blob", 3.0)  # capacity evicts "b", not "a"
        assert store.origins() == ("a", "c")

    def test_eviction_sequence_is_deterministic(self):
        def run():
            order = []
            store = ClientCookieStore(
                max_entries=4, ttl=50.0, on_evict=lambda o, r: order.append((o, r))
            )
            for i in range(12):
                store.update(f"o-{i % 6}", b"blob", float(i * 10))
            return order

        assert run() == run()

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            ClientCookieStore(max_entries=0)
        with pytest.raises(ValueError):
            ClientCookieStore(ttl=0.0)


class TestEncodeHqstValidation:
    """Regression: a receipt time without a frame must be an error, not
    silently dropped from the wire."""

    def test_neither(self):
        assert decode_hqst(encode_hqst(True)) == (True, None, None)

    def test_both(self):
        assert decode_hqst(encode_hqst(True, 7_000, b"blob")) == (True, 7_000, b"blob")

    def test_frame_without_timestamp(self):
        supported, ts, sealed = decode_hqst(encode_hqst(True, None, b"blob"))
        assert (supported, ts, sealed) == (True, 0, b"blob")

    def test_timestamp_without_frame_raises(self):
        with pytest.raises(ValueError, match="received_at_ms"):
            encode_hqst(True, 7_000, None)

    def test_timestamp_without_frame_raises_even_unsupported(self):
        with pytest.raises(ValueError, match="received_at_ms"):
            encode_hqst(False, 7_000, None)

"""Adversarial-input tests for the cookie/HQST codecs.

The fault injector feeds live sessions truncated and bit-flipped cookie
material; these tests sweep the same corruptions exhaustively at the
codec layer: every truncation offset, every single-bit flip position,
and hypothesis-driven round trips.  The invariant throughout: a codec
either returns a valid value or raises ``CookieError`` — never a crash,
never a silent misparse of corrupted input as a benign shape.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cookie_crypto import CookieError, CookieSealer
from repro.core.transport_cookie import HxQos, decode_hqst, encode_hqst

KEY = b"server-secret-key-0123456789abcd"

QOS = HxQos(min_rtt=0.05, max_bw_bps=8_000_000.0, timestamp=1234.5)


def full_hqst() -> bytes:
    sealed = CookieSealer(KEY).seal(QOS.encode(), nonce_seed=1)
    return encode_hqst(True, received_at_ms=777, sealed_frame=sealed)


class TestHxQosAdversarial:
    def test_truncation_at_every_offset(self):
        encoded = QOS.encode()
        for cut in range(len(encoded)):
            with pytest.raises(CookieError):
                HxQos.decode(encoded[:cut])

    def test_trailing_garbage_rejected(self):
        encoded = QOS.encode()
        for extra in (b"\x00", b"\x01", b"garbage"):
            with pytest.raises(CookieError):
                HxQos.decode(encoded + extra)

    def test_bitflip_never_crashes(self):
        """Any single-bit flip either still parses or raises CookieError."""
        encoded = QOS.encode()
        for index in range(len(encoded)):
            for bit in range(8):
                mutated = bytearray(encoded)
                mutated[index] ^= 1 << bit
                try:
                    HxQos.decode(bytes(mutated))
                except (CookieError, ValueError):
                    # ValueError only from HxQos validation (non-positive
                    # metrics after the flip), which the cookie manager
                    # treats the same as a malformed payload.
                    pass

    def test_round_trip(self):
        decoded = HxQos.decode(QOS.encode())
        assert decoded.min_rtt == pytest.approx(QOS.min_rtt)
        assert decoded.max_bw_bps == pytest.approx(QOS.max_bw_bps)
        assert decoded.timestamp == pytest.approx(QOS.timestamp)

    @given(
        st.floats(min_value=1e-6, max_value=10.0),
        st.floats(min_value=1.0, max_value=1e12),
        st.floats(min_value=0.0, max_value=1e9),
    )
    def test_round_trip_property(self, min_rtt, max_bw, timestamp):
        qos = HxQos(min_rtt=min_rtt, max_bw_bps=max_bw, timestamp=timestamp)
        decoded = HxQos.decode(qos.encode())
        # Encoding quantises to us / ms; the round trip must stay within
        # that quantisation, not be exact.
        assert decoded.min_rtt == pytest.approx(max(min_rtt, 1e-6), abs=1e-6)
        assert decoded.max_bw_bps == pytest.approx(max(max_bw, 1.0), abs=1.0)
        assert decoded.timestamp == pytest.approx(timestamp, abs=1e-3)


class TestHqstAdversarial:
    def test_truncation_at_every_offset(self):
        """Every proper prefix decodes benignly or raises — never crashes."""
        value = full_hqst()
        rejected = 0
        for cut in range(len(value)):
            prefix = value[:cut]
            try:
                supported, _ts, sealed = decode_hqst(prefix)
            except CookieError:
                rejected += 1
                continue
            # The only benign prefixes: empty (no tag) and the lone Bool.
            assert len(prefix) <= 1
            assert sealed is None
        assert rejected >= len(value) - 2

    def test_bitflip_never_crashes(self):
        value = full_hqst()
        for index in range(len(value)):
            for bit in range(8):
                mutated = bytearray(value)
                mutated[index] ^= 1 << bit
                try:
                    decode_hqst(bytes(mutated))
                except CookieError:
                    pass

    def test_invalid_bool_rejected_not_misread(self):
        """Bytes other than 0x00/0x01 are corruption, not 'unsupported'."""
        value = full_hqst()
        for bad in (0x02, 0x7F, 0x80, 0xFF):
            with pytest.raises(CookieError):
                decode_hqst(bytes([bad]) + value[1:])

    def test_trailing_garbage_after_sealed_frame_rejected(self):
        with pytest.raises(CookieError):
            decode_hqst(full_hqst() + b"\x00")

    def test_trailing_garbage_after_unsupported_bool_rejected(self):
        with pytest.raises(CookieError):
            decode_hqst(b"\x00\x00")

    def test_round_trip(self):
        sealed = CookieSealer(KEY).seal(QOS.encode(), nonce_seed=2)
        supported, ts, decoded = decode_hqst(
            encode_hqst(True, received_at_ms=123, sealed_frame=sealed)
        )
        assert supported and ts == 123 and decoded == sealed

    @given(st.binary(min_size=1, max_size=128), st.integers(0, 2**40))
    def test_round_trip_property(self, sealed, ts):
        supported, decoded_ts, decoded = decode_hqst(
            encode_hqst(True, received_at_ms=ts, sealed_frame=sealed)
        )
        assert supported and decoded_ts == ts and decoded == sealed

    @given(st.binary(max_size=256))
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            decode_hqst(blob)
        except CookieError:
            pass


class TestSealedBlobAdversarial:
    def test_sealed_truncation_at_every_offset(self):
        sealer = CookieSealer(KEY)
        blob = sealer.seal(QOS.encode(), nonce_seed=3)
        for cut in range(len(blob)):
            with pytest.raises(CookieError):
                sealer.open(blob[:cut])

    def test_sealed_bitflip_always_rejected(self):
        """The MAC must catch every single-bit corruption."""
        sealer = CookieSealer(KEY)
        blob = sealer.seal(QOS.encode(), nonce_seed=4)
        for index in range(len(blob)):
            for bit in range(8):
                mutated = bytearray(blob)
                mutated[index] ^= 1 << bit
                with pytest.raises(CookieError):
                    sealer.open(bytes(mutated))

"""The scheme-plugin registry: specs, policies, and legacy interop."""

import pickle

import pytest

from repro.core.config import WiraConfig
from repro.core.initializer import InitialParams, Scheme, table1_params
from repro.core.schemes import (
    InitContext,
    InitPolicy,
    SchemeDef,
    SchemeSpec,
    as_spec,
    display_name,
    eval_schemes,
    get_def,
    make_policy,
    register,
    scheme_names,
    transport_quic_config,
)
from repro.core.transport_cookie import HxQos

CONFIG = WiraConfig()
HX = HxQos(min_rtt=0.050, max_bw_bps=8e6, timestamp=0.0)


class TestSchemeSpec:
    def test_bare_value_round_trip(self):
        spec = SchemeSpec("wira")
        assert spec.value == "wira"
        assert SchemeSpec.parse("wira") == spec

    def test_parameterized_value_is_canonical_json(self):
        a = SchemeSpec("adaptive", params=(("q", 0.5), ("history", 8)))
        b = SchemeSpec("adaptive", params=(("history", 8), ("q", 0.5)))
        assert a.value == b.value  # params sort canonically
        assert SchemeSpec.parse(a.value) == a
        assert a.param("q") == 0.5
        assert a.param("missing", 7) == 7

    def test_json_round_trip(self):
        spec = SchemeSpec("adaptive", params=(("q", 0.25),))
        assert SchemeSpec.from_json(spec.to_json()) == spec

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            SchemeSpec("")
        with pytest.raises(ValueError):
            SchemeSpec("bad name")

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SchemeSpec("wira", params=(("k", object()),))
        with pytest.raises(ValueError):
            SchemeSpec("wira", params=(("k", 1), ("k", 2)))

    def test_pickle_round_trip(self):
        spec = SchemeSpec("adaptive", params=(("q", 0.5),))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestValueEquality:
    """Enum members, specs and value strings interoperate everywhere."""

    def test_spec_equals_enum_and_string(self):
        assert as_spec("wira") == Scheme.WIRA
        assert Scheme.WIRA == as_spec("wira")
        assert as_spec("wira") == "wira"
        assert as_spec("wira") != Scheme.BASELINE

    def test_dict_interop_both_directions(self):
        by_enum = {Scheme.WIRA: 1}
        assert by_enum[as_spec("wira")] == 1
        by_spec = {as_spec("wira"): 2}
        assert by_spec[Scheme.WIRA] == 2

    def test_set_equality(self):
        assert {as_spec("wira"), as_spec("baseline")} == {
            Scheme.WIRA,
            Scheme.BASELINE,
        }

    def test_parameterized_spec_not_equal_to_bare(self):
        assert SchemeSpec("adaptive", params=(("q", 0.5),)) != as_spec("adaptive")


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = scheme_names()
        assert names[:5] == ("baseline", "wira_ff", "wira_hx", "wira", "static_10")
        assert {"adaptive", "wira_bbr2", "wira_ar"} <= set(names)

    def test_eval_schemes_are_the_headline_four(self):
        assert [s.value for s in eval_schemes()] == [
            "baseline",
            "wira_ff",
            "wira_hx",
            "wira",
        ]

    def test_as_spec_rejects_unknown(self):
        with pytest.raises(ValueError):
            as_spec("not_a_scheme")

    def test_display_names_come_from_registry(self):
        assert display_name("wira_ff") == "Wira(FF)"
        assert display_name(Scheme.WIRA_HX) == "Wira(Hx)"
        assert as_spec("wira").display_name == Scheme.WIRA.display_name

    def test_enum_properties_delegate_to_registry(self):
        assert Scheme.WIRA.uses_frame_perception == get_def("wira").uses_frame_perception
        assert Scheme.BASELINE.uses_transport_cookie is False

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(get_def("wira"))


class TestPolicies:
    def test_legacy_policies_match_table1(self):
        ctx = InitContext(config=CONFIG, ff_size=66_000, hx_qos=HX)
        for name in ("baseline", "wira_ff", "wira_hx", "wira", "static_10"):
            assert make_policy(name).initial_params(ctx) == table1_params(
                name, CONFIG, ff_size=66_000, hx_qos=HX
            )

    def test_legacy_policies_carry_no_transport_config(self):
        for name in ("baseline", "wira_ff", "wira_hx", "wira", "static_10"):
            assert make_policy(name).quic_config() is None

    def test_wira_bbr2_selects_bbrv2(self):
        qc = make_policy("wira_bbr2").quic_config()
        assert qc is not None and qc.congestion_controller == "bbrv2"

    def test_wira_ar_tightens_recovery(self):
        qc = make_policy("wira_ar").quic_config()
        assert qc is not None
        assert qc.loss_packet_threshold == 2
        assert qc.pto_probe_count == 4
        assert qc.pto_backoff == 1.5

    def test_spec_params_override_transport_defaults(self):
        spec = SchemeSpec("wira_ar", params=(("pto_probe_count", 6),))
        qc = make_policy(spec).quic_config()
        assert qc is not None and qc.pto_probe_count == 6

    def test_transport_quic_config_none_without_transport_keys(self):
        assert transport_quic_config({}) is None
        assert transport_quic_config({"q": 0.5}) is None

    def test_transport_quic_config_cc_params_prefix(self):
        qc = transport_quic_config({"cc": "bbrv2", "cc.beta": 0.8})
        assert qc is not None
        assert qc.congestion_controller == "bbrv2"
        assert qc.cc_params == (("beta", 0.8),)


class _FixedPolicy(InitPolicy):
    """Minimal third-party plugin: a constant window and rate."""

    __slots__ = ()

    def initial_params(self, ctx):
        return InitialParams(
            cwnd_bytes=32 * 1280,
            pacing_bps=4e6,
            used_ff_size=False,
            used_hx_qos=False,
            provisional=False,
        )


class TestOpenRegistration:
    def test_plugin_scheme_runs_a_real_session(self):
        """A scheme registered from outside flows through the session
        engine with zero engine edits — the point of the open API."""
        name = "fixed_test_plugin"
        if name not in scheme_names():
            register(
                SchemeDef(
                    name=name,
                    display_name="Fixed(Test)",
                    factory=lambda spec, seed: _FixedPolicy(spec, seed),
                )
            )
        from repro.cdn.origin import Origin
        from repro.cdn.session import SessionSpec, StreamingSession
        from repro.media.source import StreamProfile
        from repro.quic.connection import HandshakeMode
        from repro.simnet.path import NetworkConditions

        origin = Origin()
        origin.add_stream("s", StreamProfile(seed=5))
        result = StreamingSession.from_spec(
            SessionSpec(
                conditions=NetworkConditions(
                    bandwidth_bps=8e6, rtt=0.05, loss_rate=0.0, buffer_bytes=25_000
                ),
                scheme=as_spec(name),
                handshake_mode=HandshakeMode.ONE_RTT,
                seed=1,
                target_video_frames=4,
            ),
            origin,
            "s",
        ).run()
        assert result.completed
        assert result.scheme == name
        assert result.initial_params is not None
        assert result.initial_params.cwnd_bytes == 32 * 1280

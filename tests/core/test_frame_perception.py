"""Tests for Frame Perception (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frame_perception import FrameParser, ParseStatus
from repro.core.parser_backends import PtlType, UnknownProtocolError
from repro.media import flv, rtmp, hls
from repro.media.frames import MediaFrame, MediaFrameType
from repro.media.source import LiveSource, StreamProfile


def first_frame_bundle(sizes=(400, 372, 40_000)):
    """script + audio + I, the paper's §IV-A running example prefix."""
    script, audio, i_frame = sizes
    return [
        MediaFrame.synthetic(MediaFrameType.SCRIPT, 0, script),
        MediaFrame.synthetic(MediaFrameType.AUDIO, 0, audio),
        MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, i_frame),
    ]


def full_bundle():
    """script, audio, I, P, B, B, B — the §IV-A example sequence."""
    return first_frame_bundle() + [
        MediaFrame.synthetic(MediaFrameType.VIDEO_P, 40, 6_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 80, 2_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 120, 2_100),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 160, 2_200),
    ]


class TestFlvParsing:
    def test_detects_flv(self):
        parser = FrameParser()
        parser.feed(flv.mux(full_bundle()))
        assert parser.protocol == PtlType.FLV

    def test_ff_size_exact_byte_count_theta_1(self):
        """FF_Size must equal the wire bytes through the first video tag."""
        frames = full_bundle()
        blob = flv.mux(frames)
        parser = FrameParser(video_frame_threshold=1)
        ff = parser.feed(blob)
        expected = len(flv.mux(frames[:3]))  # header + script + audio + I
        assert ff == expected

    def test_theta_3_includes_p_and_first_b(self):
        """§IV-A: with Θ_VF=3, FF adds S_P and S_B1."""
        frames = full_bundle()
        parser = FrameParser(video_frame_threshold=3)
        ff = parser.feed(flv.mux(frames))
        expected = len(flv.mux(frames[:5]))  # through P and first B
        assert ff == expected

    def test_script_and_audio_counted_into_ff(self):
        small = FrameParser().feed(flv.mux(first_frame_bundle((100, 100, 40_000))))
        large = FrameParser().feed(flv.mux(first_frame_bundle((2_000, 372, 40_000))))
        assert large - small == 2_000 - 100 + 372 - 100

    def test_incremental_feeding_matches_one_shot(self):
        blob = flv.mux(full_bundle())
        one_shot = FrameParser().feed(blob)
        parser = FrameParser()
        result = None
        for i in range(0, len(blob), 997):
            out = parser.feed(blob[i : i + 997])
            if out is not None and result is None:
                result = out
        assert result == one_shot

    def test_completion_is_sticky(self):
        blob = flv.mux(full_bundle())
        parser = FrameParser()
        ff = parser.feed(blob)
        assert parser.ff_complete
        assert parser.feed(b"more bytes later") == ff

    def test_no_result_before_first_video_frame(self):
        blob = flv.mux(first_frame_bundle()[:2])  # script + audio only
        parser = FrameParser()
        assert parser.feed(blob) is None
        assert parser.status == ParseStatus.PARSING
        assert not parser.ff_complete

    def test_breakdown_accounts_all_bytes(self):
        frames = first_frame_bundle()
        blob = flv.mux(frames)
        parser = FrameParser()
        ff = parser.feed(blob)
        breakdown = parser.breakdown()
        assert sum(breakdown.values()) == ff
        assert breakdown["header"] == flv.FLV_HEADER_LEN + flv.PREVIOUS_TAG_SIZE_LEN
        assert set(breakdown) == {"header", "script", "audio", "I"}


class TestProtocolDispatch:
    def test_rtmp_detected_and_parsed(self):
        blob = rtmp.mux(full_bundle())
        parser = FrameParser()
        ff = parser.feed(blob)
        assert parser.protocol == PtlType.RTMP
        assert ff == len(rtmp.mux(full_bundle()[:3]))

    def test_hls_detected_and_parsed(self):
        blob = hls.mux(full_bundle())
        parser = FrameParser()
        ff = parser.feed(blob)
        assert parser.protocol == PtlType.HLS
        assert ff is not None
        # TS overhead means FF covers at least the elementary sizes.
        assert ff >= 400 + 372 + 40_000

    def test_unknown_protocol_rejected(self):
        parser = FrameParser()
        with pytest.raises(UnknownProtocolError):
            parser.feed(b"\x89PNG....")

    def test_flv_like_but_wrong_signature_rejected(self):
        parser = FrameParser()
        with pytest.raises(UnknownProtocolError):
            parser.feed(b"FLX\x01")

    def test_detection_waits_for_enough_bytes(self):
        parser = FrameParser()
        assert parser.feed(b"F") is None
        assert parser.status == ParseStatus.DETECTING
        blob = flv.mux(full_bundle())
        parser.feed(blob[1:])
        assert parser.protocol == PtlType.FLV
        assert parser.ff_complete


class TestAgainstLiveSource:
    def test_parsed_ff_tracks_source_ground_truth(self):
        source = LiveSource(StreamProfile(seed=21))
        gop = source.gop_at(10.0)
        parser = FrameParser()
        ff = parser.feed(flv.mux(gop.frames))
        media_ff = gop.first_frame_bytes(1)
        # Container overhead: header + ~15B per preceding tag + control bytes.
        assert media_ff < ff < media_ff + 3_000

    def test_parser_threshold_matches_playback_condition(self):
        source = LiveSource(StreamProfile(seed=22))
        gop = source.gop_at(0.0)
        blob = flv.mux(gop.frames)
        ff1 = FrameParser(1).feed(blob)
        ff3 = FrameParser(3).feed(blob)
        assert ff3 > ff1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            FrameParser(video_frame_threshold=0)


@settings(deadline=None)
@given(
    sizes=st.tuples(
        st.integers(min_value=50, max_value=2_000),
        st.integers(min_value=50, max_value=1_000),
        st.integers(min_value=1_000, max_value=40_000),
    ),
    chunk=st.integers(min_value=1, max_value=4_096),
)
def test_byte_at_a_time_equals_one_shot_property(sizes, chunk):
    """Property: chunk size never changes the parsed FF_Size."""
    blob = flv.mux(first_frame_bundle(sizes))
    expected = FrameParser().feed(blob)
    parser = FrameParser()
    got = None
    for i in range(0, len(blob), chunk):
        out = parser.feed(blob[i : i + chunk])
        if out is not None and got is None:
            got = out
    assert got == expected == len(blob)

"""Tests for the experiment runners at miniature scale.

The benchmarks exercise the paper-scale configurations; these tests
check the runners' mechanics (bucketing, pairing, caching, summaries)
quickly.
"""

import pytest

from repro.core.initializer import Scheme
from repro.experiments import (
    baseline_ab,
    common,
    fig1,
    fig2,
    fig3,
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
)
from repro.quic.connection import HandshakeMode
from repro.workload.population import DeploymentConfig

TINY = DeploymentConfig(n_od_pairs=6, seed=99, video_frames_per_session=8)


@pytest.fixture(scope="module")
def tiny_records():
    return common.run_deployment(TINY, common.EVAL_SCHEMES)


class TestCommon:
    def test_records_paired_across_schemes(self, tiny_records):
        lengths = {scheme: len(outcomes) for scheme, outcomes in tiny_records.items()}
        assert len(set(lengths.values())) == 1
        base = tiny_records[Scheme.BASELINE]
        wira = tiny_records[Scheme.WIRA]
        for b, w in zip(base, wira):
            assert b.spec.seed == w.spec.seed
            assert b.spec.conditions == w.spec.conditions

    def test_all_sessions_complete(self, tiny_records):
        for outcomes in tiny_records.values():
            assert all(o.result.completed for o in outcomes)

    def test_cache_returns_same_object(self, tiny_records):
        again = common.run_deployment(TINY, common.EVAL_SCHEMES)
        assert again is tiny_records

    def test_testbed_session_runs(self):
        result = common.run_testbed_session(common.manual_params(57_600, 8e6), seed=1)
        assert result.completed
        assert result.initial_params.cwnd_bytes == 57_600


class TestMotivationRunners:
    def test_fig1_small(self):
        result = fig1.run(n_streams=100, intra_samples=10, seed=2)
        assert len(result.inter_stream_sizes) == 100
        assert result.mean_kb > 10

    def test_fig2_single_repeat(self):
        result = fig2.run(repeats=2, seed=5)
        assert len(result.cwnd_sweep) == 5
        assert len(result.pacing_sweep) == 5
        assert all(p.ffct > 0 for p in result.cwnd_sweep)

    def test_fig3_small(self):
        result = fig3.run(n_groups=20, connections_per_group=10, seed=3)
        assert len(result.rtt_cvs) == 20
        assert 0 < result.avg_rtt_cv < 1

    def test_fig4_small(self):
        result = fig4.run(n_od_pairs=20, sessions_per_od=6, seed=4)
        assert set(result.by_interval) == {5.0, 10.0, 30.0, 60.0}
        assert result.by_interval[5.0].avg_rtt_cv < result.by_interval[60.0].avg_rtt_cv * 2

    def test_table1_rows_verify(self):
        rows = table1.run()
        table1.verify(rows)
        assert {r.scheme for r in rows} == {
            Scheme.BASELINE, Scheme.WIRA_FF, Scheme.WIRA_HX, Scheme.WIRA,
        }


class TestEvaluationSummaries:
    def test_fig11_summary(self, tiny_records):
        result = fig11.summarize(tiny_records)
        assert set(result.by_scheme) == set(common.EVAL_SCHEMES)
        assert result.improvement(Scheme.BASELINE) == 0.0

    def test_fig12_summary(self, tiny_records):
        result = fig12.summarize(tiny_records)
        total = sum(
            len(result.get(mode, Scheme.WIRA).samples) for mode in HandshakeMode
        )
        assert total == len(tiny_records[Scheme.WIRA])

    def test_fig13_bucketing_covers_sessions(self, tiny_records):
        result = fig13.summarize(tiny_records)
        bucketed = sum(
            len(samples)
            for per_scheme in result.by_rtt.table.values()
            for scheme, samples in per_scheme.items()
            if scheme == Scheme.BASELINE
        )
        assert bucketed == len(tiny_records[Scheme.BASELINE])

    def test_fig13_same_bucket_across_schemes(self, tiny_records):
        result = fig13.summarize(tiny_records)
        for bucket, per_scheme in result.by_ff.table.items():
            sizes = {len(v) for v in per_scheme.values()}
            assert len(sizes) == 1  # paired bucketing

    def test_fig14_summary(self, tiny_records):
        result = fig14.summarize(tiny_records)
        assert result.improvement(Scheme.BASELINE) == 0.0
        for scheme in common.EVAL_SCHEMES:
            assert 0.0 <= result.overall[scheme].avg < 0.5

    def test_fig15_summary(self, tiny_records):
        result = fig15.summarize(tiny_records)
        for k in (1, 2, 3, 4):
            t = result.mean_completion(Scheme.WIRA, k)
            assert t is not None and t > 0
        t1 = result.mean_completion(Scheme.WIRA, 1)
        t4 = result.mean_completion(Scheme.WIRA, 4)
        assert t4 > t1

    def test_baseline_ab_small(self):
        result = baseline_ab.run(TINY)
        assert result.avg(Scheme.STATIC_10) > 0
        assert result.avg(Scheme.BASELINE) > 0

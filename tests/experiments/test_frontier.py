"""The scheme-frontier drift campaign and its online-beats-offline gate."""

from repro.experiments.frontier import (
    FRONTIER_DRIFT,
    FRONTIER_SCHEMES,
    evaluate_gate,
    frontier_config,
    run_frontier,
)
from repro.fleet.engine import run_campaign


class TestFrontierConfig:
    def test_pinned_campaign(self):
        config = frontier_config()
        assert config.population.drift == FRONTIER_DRIFT
        assert config.population.n_od_pairs == 96
        assert config.population.seed == 11
        assert config.schemes == FRONTIER_SCHEMES
        assert "adaptive" in config.schemes and "wira_hx" in config.schemes

    def test_quick_shares_the_pinned_drift_regime(self):
        quick = frontier_config(quick=True)
        assert quick.population.drift == FRONTIER_DRIFT
        assert quick.population.seed == frontier_config().population.seed
        assert quick.schemes == FRONTIER_SCHEMES


class TestFrontierGate:
    def test_quick_campaign_passes_and_reports(self, tmp_path):
        html_path = tmp_path / "frontier.html"
        report = run_frontier(quick=True, jobs=2, html_path=str(html_path))
        gate = report["gate"]
        assert gate["passed"], gate["failures"]
        assert gate["ratio"] < 1.0  # adaptive strictly beats wira_hx p90
        assert report["drift"] == FRONTIER_DRIFT
        for value in FRONTIER_SCHEMES:
            assert report["schemes"][value]["sessions"] > 0
        html = html_path.read_text(encoding="utf-8")
        assert "Scheme frontier" in html
        assert "adaptive" in html

    def test_gate_detects_regression(self):
        """An impossible bound must fail — the gate is not vacuous."""
        from repro.fleet.engine import FleetConfig
        from repro.workload.population import DeploymentConfig

        aggregate = run_campaign(
            FleetConfig(
                population=DeploymentConfig(n_od_pairs=4, seed=11, drift=FRONTIER_DRIFT),
                schemes=("wira_hx", "adaptive"),
                chunk_chains=2,
            ),
            jobs=1,
        )
        verdict = evaluate_gate(aggregate, bound=0.01)
        assert not verdict["passed"]
        assert any("FFCT p90" in f for f in verdict["failures"])

"""Golden parity: legacy schemes are byte-identical through the registry.

The scheme registry replaced the closed ``Scheme``-enum dispatch; these
digests were captured on the pre-redesign tree and pin the complete
observable output of all five legacy schemes across the three engines
(figure replay, fleet chunk, robustness matrix).  If any of them moves,
the registry changed *behaviour*, not just API — that is a regression,
not a re-pin, unless the change is an intentional semantic one.

Serialization notes: floats go through ``repr`` (exact round-trip), the
payload through canonical JSON (sorted keys, no whitespace).
"""

import hashlib
import json

import pytest

from repro.core.initializer import Scheme
from repro.workload.population import DeploymentConfig


@pytest.fixture(autouse=True)
def _untraced(monkeypatch):
    """The goldens pin the *untraced* replay: with the trace bus on,
    the fleet chunk's phase-timing accumulators populate and its
    payload legitimately differs."""
    from repro import obs

    monkeypatch.delenv("WIRA_TRACE", raising=False)
    monkeypatch.setattr(obs, "ACTIVE", None)

LEGACY_SCHEMES = (
    Scheme.BASELINE,
    Scheme.WIRA_FF,
    Scheme.WIRA_HX,
    Scheme.WIRA,
    Scheme.STATIC_10,
)

FIGURE_DIGEST = "0d1486921abb7378846d25b7c06c66a12e2e83d1721a89da3a79416b7c0ee91c"
FLEET_DIGEST = "f9c435800cb89dab5d1ec0cb31d3d96a80bc7cd4c8429d431c4c02270e3d99c5"
ROBUST_DIGEST = "43ec7f583a297b50b4f1d55cb3758ca67961b2d5c644ececb6a792d8fb6fa5af"


def _scheme_value(scheme):
    return getattr(scheme, "value", str(scheme))


def _stats_row(stats):
    if stats is None:
        return None
    return [
        stats.packets_sent,
        stats.packets_received,
        stats.packets_lost,
        stats.data_packets_sent,
        stats.data_packets_lost,
        stats.bytes_sent,
        stats.bytes_retransmitted,
        stats.duplicate_packets,
        stats.corrupt_packets,
        stats.undecodable_packets,
        stats.pto_count,
        repr(stats.handshake_completed_at),
        repr(stats.handshake_rtt_sample),
    ]


def _result_row(result):
    params = result.initial_params
    return [
        _scheme_value(result.scheme),
        result.handshake_mode.value,
        result.completed,
        repr(result.ffct),
        repr(result.fflr),
        result.ff_size_parsed,
        None
        if params is None
        else [
            params.cwnd_bytes,
            repr(params.pacing_bps),
            params.used_ff_size,
            params.used_hx_qos,
            params.provisional,
        ],
        result.cookie_delivered,
        result.used_cookie,
        repr(result.server_min_rtt),
        repr(result.server_max_bw),
        _stats_row(result.final_server_stats),
        _stats_row(result.ff_server_stats),
        [repr(result.frame_time(k)) for k in (1, 2, 3, 4)],
    ]


def _canonical_digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _records_digest(schemes, records):
    payload = []
    for scheme in schemes:
        rows = [_result_row(o.result) for o in records[scheme]]
        payload.append([_scheme_value(scheme), rows])
    return _canonical_digest(payload)


class TestGoldenParity:
    def test_figure_replay_digest(self):
        from repro.experiments.runner import run_deployment

        records = run_deployment(
            DeploymentConfig(n_od_pairs=12, seed=42), LEGACY_SCHEMES, use_cache=False
        )
        assert _records_digest(LEGACY_SCHEMES, records) == FIGURE_DIGEST

    def test_fleet_chunk_digest(self):
        from repro.fleet.engine import FleetConfig, run_chunk

        config = FleetConfig(
            population=DeploymentConfig(n_od_pairs=8, seed=7),
            schemes=tuple(s.value for s in LEGACY_SCHEMES),
            chunk_chains=8,
        )
        assert _canonical_digest(run_chunk(config, 0)) == FLEET_DIGEST

    def test_robustness_matrix_digest(self):
        from repro.experiments.robustness import RobustnessConfig, run_robustness

        config = RobustnessConfig(
            seeds=(7,),
            schemes=LEGACY_SCHEMES,
            schedule_names=("steady", "bw_collapse"),
            fault_names=("none", "cookie_corrupt", "ff_size_tiny"),
        )
        assert _canonical_digest(run_robustness(config, jobs=1)) == ROBUST_DIGEST

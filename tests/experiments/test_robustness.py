"""Tests for the robustness gate matrix (scheme × fault × schedule)."""

import json

import pytest

from repro.core.initializer import Scheme
from repro.experiments.robustness import (
    CellResult,
    RobustnessConfig,
    build_schedules,
    enumerate_cells,
    evaluate_gates,
    fault_plan_matrix,
    main,
    run_matrix,
)
from repro.faults import FaultKind


SMALL = RobustnessConfig(
    seeds=(7,),
    schemes=(Scheme.BASELINE, Scheme.WIRA),
    schedule_names=("steady", "flap"),
    fault_names=("none", "cookie_corrupt"),
)


def cell(scheme=Scheme.WIRA, fault="none", schedule="steady", seed=7,
         ffct=0.1, completed=True, primed=True):
    return CellResult(
        scheme=scheme,
        fault=fault,
        schedule=schedule,
        seed=seed,
        primed_completed=primed,
        completed=completed,
        ffct=ffct,
        used_cookie=True,
        fault_summary=None,
    )


class TestMatrixDefinition:
    def test_schedule_set(self):
        schedules = build_schedules(SMALL.conditions)
        assert schedules["steady"] is None
        assert set(schedules) == {
            "steady", "bw_collapse", "bw_surge", "bursty_ge",
            "reorder_dup", "flap", "surge_flap",
        }
        for name, sched in schedules.items():
            if name != "steady":
                assert not sched.is_inert

    def test_fault_axis_is_every_kind_plus_control(self):
        faults = fault_plan_matrix()
        assert faults["none"] is None
        assert set(faults) == {"none"} | {k.value for k in FaultKind}

    def test_enumerate_cells_order_and_size(self):
        cells = enumerate_cells(SMALL)
        assert len(cells) == 2 * 2 * 2 * 1  # schemes × faults × schedules × seeds
        assert cells[0] == (Scheme.BASELINE, "none", "steady", 7)
        assert cells == enumerate_cells(SMALL)  # stable

    def test_enumerate_cells_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="schedule"):
            enumerate_cells(RobustnessConfig(schedule_names=("nope",)))
        with pytest.raises(ValueError, match="fault"):
            enumerate_cells(RobustnessConfig(fault_names=("nope",)))

    def test_quick_config_is_reduced(self):
        quick = RobustnessConfig.quick()
        assert len(enumerate_cells(quick)) < len(enumerate_cells(RobustnessConfig()))


class TestEvaluateGates:
    def test_all_clean_passes(self):
        results = [cell(Scheme.BASELINE, ffct=0.1), cell(Scheme.WIRA, ffct=0.08)]
        report = evaluate_gates(results, SMALL)
        assert report["passed"]
        assert report["failures"] == []
        (gate,) = report["ratio_gates"]
        assert gate["ratio"] == pytest.approx(0.8)

    def test_incomplete_session_fails_completion_gate(self):
        report = evaluate_gates([cell(completed=False, ffct=None)], SMALL)
        assert not report["passed"]
        assert "incomplete session" in report["failures"][0]

    def test_unprimed_chain_fails_completion_gate(self):
        report = evaluate_gates([cell(primed=False)], SMALL)
        assert not report["passed"]

    def test_ratio_above_bound_fails(self):
        results = [cell(Scheme.BASELINE, ffct=0.1), cell(Scheme.WIRA, ffct=0.2)]
        report = evaluate_gates(results, SMALL)
        assert not report["passed"]
        assert "FFCT degradation" in report["failures"][0]

    def test_schedule_override_lifts_bound(self):
        # 2.0x would fail the global 1.5 bound; flap's override allows it.
        results = [
            cell(Scheme.BASELINE, schedule="flap", ffct=0.1),
            cell(Scheme.WIRA, schedule="flap", ffct=0.2),
        ]
        report = evaluate_gates(results, SMALL)
        assert report["passed"]
        (gate,) = report["ratio_gates"]
        assert gate["bound"] == pytest.approx(8.0)

    def test_fault_override_lifts_bound(self):
        results = [
            cell(Scheme.BASELINE, fault="ff_size_zero", ffct=0.1),
            cell(Scheme.WIRA, fault="ff_size_zero", ffct=0.3),
        ]
        report = evaluate_gates(results, SMALL)
        assert report["passed"]
        assert report["ratio_gates"][0]["bound"] == pytest.approx(4.0)

    def test_mean_over_seeds(self):
        results = [
            cell(Scheme.BASELINE, seed=7, ffct=0.1),
            cell(Scheme.BASELINE, seed=19, ffct=0.3),
            cell(Scheme.WIRA, seed=7, ffct=0.2),
            cell(Scheme.WIRA, seed=19, ffct=0.2),
        ]
        report = evaluate_gates(results, SMALL)
        (gate,) = report["ratio_gates"]
        assert gate["baseline_mean_ffct"] == pytest.approx(0.2)
        assert gate["ratio"] == pytest.approx(1.0)

    def test_report_is_json_serialisable(self):
        report = evaluate_gates([cell(Scheme.BASELINE), cell(Scheme.WIRA)], SMALL)
        parsed = json.loads(json.dumps(report))
        assert parsed["config"]["schemes"] == ["baseline", "wira"]
        assert len(parsed["cells"]) == 2


class TestMatrixExecution:
    def test_serial_and_parallel_runs_are_identical(self):
        """Pool sharding must not change a single cell (ISSUE gate)."""
        serial = run_matrix(SMALL, jobs=1)
        parallel = run_matrix(SMALL, jobs=2)
        assert serial == parallel
        assert len(serial) == len(enumerate_cells(SMALL))

    def test_small_matrix_passes_gates(self):
        results = run_matrix(SMALL, jobs=1)
        report = evaluate_gates(results, SMALL)
        assert report["passed"], report["failures"]
        for result in results:
            assert result.completed

    def test_cookie_fault_cells_lose_the_cookie(self):
        results = run_matrix(SMALL, jobs=1)
        for result in results:
            if result.fault == "cookie_corrupt":
                assert not result.used_cookie
                assert result.fault_summary == {"hqst_corrupted": 1}
            elif result.fault == "none":
                assert result.used_cookie
                assert result.fault_summary is None


class TestCli:
    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["--quick", "--jobs", "1", "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["passed"]
        assert report["config"]["cells"] == len(
            enumerate_cells(RobustnessConfig.quick())
        )
        assert "PASSED" in capsys.readouterr().out

    def test_cli_bound_override_can_fail_gates(self, tmp_path):
        # An absurdly tight bound makes at least one ratio gate fail.
        code = main(["--quick", "--jobs", "1", "--bound", "0.0001"])
        assert code == 1

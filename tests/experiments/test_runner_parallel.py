"""Tests for the parallel replay engine and its persistent cache.

The parallel path must be *bit-identical* to the serial reference: each
(scheme, chain) unit owns its cookie store, origin and seeds, so sharding
them across processes may not change a single field of any result.
"""

import hashlib
import os
import pickle

import pytest

from repro import obs
from repro.core.config import WiraConfig
from repro.core.initializer import Scheme
from repro.experiments import common, runner
from repro.workload.population import DeploymentConfig

SCHEMES = (Scheme.BASELINE, Scheme.WIRA)


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Point the disk cache at a fresh tmp dir and drop the memo."""
    monkeypatch.setenv("WIRA_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("WIRA_JOBS", raising=False)
    monkeypatch.delenv("WIRA_DISK_CACHE", raising=False)
    runner.clear_caches()
    yield
    runner.clear_caches()


@pytest.fixture
def no_ambient_tracing():
    """Start from tracing-off regardless of WIRA_TRACE; restore after."""
    previous = obs.ACTIVE
    obs.disable()
    yield
    obs.ACTIVE = previous


def tiny_config(seed):
    return DeploymentConfig(n_od_pairs=3, seed=seed, video_frames_per_session=6)


def assert_records_identical(a, b):
    assert set(a) == set(b)
    for scheme in a:
        assert len(a[scheme]) == len(b[scheme])
        for left, right in zip(a[scheme], b[scheme]):
            assert left.spec == right.spec
            assert left.result == right.result


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("seed", [3, 21])
    def test_parallel_matches_serial_records(self, seed):
        """Property: every SessionResult sequence is identical per scheme."""
        config = tiny_config(seed)
        serial = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        parallel = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=2)
        assert_records_identical(serial, parallel)

    def test_parallel_matches_serial_traces_bytewise(self, tmp_path):
        """The trace sets of a serial and a parallel replay are
        byte-identical: same file names, same SHA-256 per file."""
        config = tiny_config(3)
        ambient_bus = obs.ACTIVE  # e.g. installed by WIRA_TRACE=1
        digests = {}
        for jobs in (1, 2):
            trace_dir = tmp_path / f"jobs{jobs}"
            with obs.tracing(trace_dir=trace_dir):
                runner.run_deployment(config, SCHEMES, jobs=jobs)
            assert not (trace_dir / obs.SHARDS_SUBDIR).exists()  # merged away
            digests[jobs] = {
                p.name: hashlib.sha256(p.read_bytes()).hexdigest()
                for p in trace_dir.glob("*.jsonl")
            }
        assert obs.ACTIVE is ambient_bus  # scope restored
        assert digests[1] and digests[1] == digests[2]

    def test_traced_run_bypasses_caches(self, tmp_path, no_ambient_tracing):
        """Tracing to disk must not serve (or populate) cached records —
        a cache hit would skip the replay and write no trace files."""
        config = tiny_config(7)
        runner.run_deployment(config, SCHEMES)  # populate memo + disk
        trace_dir = tmp_path / "traces"
        with obs.tracing(trace_dir=trace_dir):
            records = runner.run_deployment(config, SCHEMES)
        assert any(trace_dir.glob("*.jsonl"))
        assert all(
            o.result.phase_breakdown is not None
            for outcomes in records.values()
            for o in outcomes
            if o.result.completed
        )
        # The cache stays breakdown-free for non-tracing callers.
        cached = runner.run_deployment(config, SCHEMES)
        assert all(
            o.result.phase_breakdown is None
            for outcomes in cached.values()
            for o in outcomes
        )

    def test_memory_only_tracing_keeps_cache_path(self, no_ambient_tracing):
        """Without a trace_dir there is nothing to flush, so the cache
        fast path stays active."""
        config = tiny_config(11)
        first = runner.run_deployment(config, SCHEMES)
        with obs.tracing():  # no trace_dir
            assert runner.run_deployment(config, SCHEMES) is first

    def test_parallel_pool_failure_falls_back_to_serial(self, monkeypatch):
        config = tiny_config(5)

        def broken(*args, **kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(runner, "_replay_parallel", broken)
        records = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=4)
        reference = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        assert_records_identical(records, reference)


class TestChunkSharding:
    def test_chunk_bounds_cover_range_exactly(self):
        for n in (1, 2, 3, 7, 30, 31, 120, 150):
            for jobs in (1, 2, 4, 8):
                bounds = runner._chunk_bounds(n, jobs)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n
                for (lo, hi), (nlo, _nhi) in zip(bounds, bounds[1:]):
                    assert hi == nlo
                assert all(lo < hi for lo, hi in bounds)

    def test_chunk_bounds_respect_ceiling(self):
        assert all(
            hi - lo <= runner.MAX_CHUNK_CHAINS
            for lo, hi in runner._chunk_bounds(600, 2)
        )

    def test_worker_chains_match_full_generation(self):
        from repro.workload.population import Deployment

        config = tiny_config(23)
        full = Deployment(config).generate()
        regenerated = []
        for lo, hi in runner._chunk_bounds(config.n_od_pairs, 2):
            regenerated.extend(runner._worker_chains(config, lo, hi))
        assert regenerated == full

    def test_worker_chain_cache_reused_across_schemes(self):
        config = tiny_config(27)
        first = runner._worker_chains(config, 0, 2)
        assert runner._worker_chains(config, 0, 2) is first

    def test_worker_chain_cache_evicted_on_config_change(self):
        runner._worker_chains(tiny_config(29), 0, 2)
        runner._worker_chains(tiny_config(31), 0, 2)
        assert all(
            "seed=29" not in key[0] for key in runner._WORKER_CHAIN_CACHE
        )


class TestPersistentPool:
    def test_pool_object_reused_across_replays(self, no_ambient_tracing):
        pool = runner._get_pool(2)
        runner.run_deployment(tiny_config(3), SCHEMES, use_cache=False, jobs=2)
        assert runner._POOL is pool
        runner.run_deployment(tiny_config(21), SCHEMES, use_cache=False, jobs=2)
        assert runner._POOL is pool

    def test_pool_recycled_when_jobs_change(self):
        pool = runner._get_pool(2)
        assert runner._get_pool(2) is pool
        other = runner._get_pool(3)
        assert other is not pool
        assert runner._POOL_JOBS == 3

    def test_shutdown_pool_clears_state(self):
        runner._get_pool(2)
        runner.shutdown_pool()
        assert runner._POOL is None
        assert runner._POOL_JOBS == 0


class TestBatchKnob:
    def test_serial_batched_matches_reference(self, no_ambient_tracing, monkeypatch):
        config = tiny_config(3)
        monkeypatch.setenv("WIRA_BATCH", "0")
        reference = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        monkeypatch.setenv("WIRA_BATCH", "1")
        batched = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        assert_records_identical(reference, batched)

    def test_fast_link_matches_reference(self, no_ambient_tracing, monkeypatch):
        config = tiny_config(3)
        monkeypatch.setenv("WIRA_FAST_LINK", "0")
        monkeypatch.setenv("WIRA_BATCH", "0")
        reference = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        monkeypatch.setenv("WIRA_FAST_LINK", "1")
        fast = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        assert_records_identical(reference, fast)

    def test_all_knobs_on_match_all_knobs_off(self, no_ambient_tracing, monkeypatch):
        config = tiny_config(4)
        monkeypatch.setenv("WIRA_FAST_LINK", "0")
        monkeypatch.setenv("WIRA_BATCH", "0")
        reference = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        monkeypatch.setenv("WIRA_FAST_LINK", "1")
        monkeypatch.setenv("WIRA_BATCH", "1")
        combined = runner.run_deployment(config, SCHEMES, use_cache=False, jobs=1)
        assert_records_identical(reference, combined)


class TestJobsResolution:
    def test_explicit_argument_wins(self):
        assert runner.resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("WIRA_JOBS", "6")
        assert runner.resolve_jobs() == 6

    def test_default_is_serial(self):
        assert runner.resolve_jobs() == 1

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("WIRA_JOBS", "many")
        assert runner.resolve_jobs() == 1

    def test_floor_of_one(self):
        assert runner.resolve_jobs(0) == 1
        assert runner.resolve_jobs(-2) == 1

    def test_disk_cache_env_switch(self, monkeypatch):
        assert runner.disk_cache_enabled() is True
        monkeypatch.setenv("WIRA_DISK_CACHE", "0")
        assert runner.disk_cache_enabled() is False
        assert runner.disk_cache_enabled(True) is True


class TestPersistentCache:
    def test_round_trip_across_memory_cache_clears(self):
        """A second 'session' (cleared memo) reloads the disk copy."""
        config = tiny_config(9)
        first = runner.run_deployment(config, SCHEMES)
        key = runner.cache_key(config, WiraConfig(), SCHEMES)
        assert runner._cache_path(key).exists()

        runner.clear_caches()  # simulate a fresh pytest invocation
        again = runner.run_deployment(config, SCHEMES)
        assert again is not first
        assert_records_identical(first, again)

    def test_memory_cache_still_returns_same_object(self):
        config = tiny_config(9)
        first = runner.run_deployment(config, SCHEMES)
        assert runner.run_deployment(config, SCHEMES) is first

    def test_corrupted_cache_file_recovers(self):
        config = tiny_config(13)
        first = runner.run_deployment(config, SCHEMES)
        key = runner.cache_key(config, WiraConfig(), SCHEMES)
        path = runner._cache_path(key)
        path.write_bytes(b"\x00not a pickle at all")

        runner.clear_caches()
        again = runner.run_deployment(config, SCHEMES)
        assert_records_identical(first, again)
        # The bad file was replaced by a healthy one.
        with path.open("rb") as fh:
            assert runner._looks_like_records(pickle.load(fh))

    def test_wrong_shaped_pickle_recovers(self):
        config = tiny_config(13)
        first = runner.run_deployment(config, SCHEMES)
        key = runner.cache_key(config, WiraConfig(), SCHEMES)
        path = runner._cache_path(key)
        path.write_bytes(pickle.dumps({"not": "records"}))

        runner.clear_caches()
        again = runner.run_deployment(config, SCHEMES)
        assert_records_identical(first, again)

    def test_key_depends_on_inputs(self):
        wira = WiraConfig()
        base = runner.cache_key(tiny_config(1), wira, SCHEMES)
        assert runner.cache_key(tiny_config(2), wira, SCHEMES) != base
        assert runner.cache_key(tiny_config(1), wira, (Scheme.BASELINE,)) != base
        assert (
            runner.cache_key(
                tiny_config(1), WiraConfig(video_frame_threshold=3), SCHEMES
            )
            != base
        )

    def test_use_cache_false_bypasses_disk(self):
        config = tiny_config(17)
        runner.run_deployment(config, SCHEMES, use_cache=False)
        key = runner.cache_key(config, WiraConfig(), SCHEMES)
        assert not runner._cache_path(key).exists()

    def test_unwritable_cache_dir_is_not_fatal(self, monkeypatch, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("occupies the path")
        monkeypatch.setenv("WIRA_CACHE_DIR", str(blocked / "sub"))
        config = tiny_config(19)
        records = runner.run_deployment(config, SCHEMES)
        assert sum(len(v) for v in records.values()) > 0

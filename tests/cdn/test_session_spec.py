"""SessionSpec construction API: legacy-ctor equivalence and semantics.

PR 5 makes :class:`SessionSpec` + :meth:`StreamingSession.from_spec` the
only supported construction path for new code; the keyword constructor
survives as a deprecated shim.  These tests pin the contract:

* the shim and ``from_spec`` produce *identical* results (the shim is a
  pure repackaging, not a parallel code path),
* the shim warns ``DeprecationWarning`` exactly once per construction,
* the spec is frozen and copied-with-changes via :meth:`SessionSpec.with_`.
"""

import dataclasses
import warnings

import pytest

from repro.cdn.origin import Origin
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.initializer import Scheme
from repro.core.transport_cookie import ClientCookieStore
from repro.media.source import StreamProfile
from repro.quic.connection import HandshakeMode
from repro.simnet.path import NetworkConditions

TESTBED = NetworkConditions(
    bandwidth_bps=8_000_000.0, rtt=0.050, loss_rate=0.03, buffer_bytes=25_000
)


def make_origin():
    origin = Origin()
    origin.add_stream(
        "demo",
        StreamProfile(first_frame_target_bytes=66_000, seed=1,
                      complexity_sigma=0.02, size_jitter=0.02),
    )
    return origin


class TestLegacyShimEquivalence:
    @pytest.mark.parametrize("scheme", [Scheme.BASELINE, Scheme.WIRA])
    @pytest.mark.parametrize("mode", [HandshakeMode.ZERO_RTT, HandshakeMode.ONE_RTT])
    def test_legacy_ctor_and_from_spec_identical_results(self, scheme, mode):
        """The deprecated kwarg constructor must replay byte-for-byte like
        the spec path — same FFCT, same loss, same initial parameters."""
        spec = SessionSpec(
            conditions=TESTBED,
            scheme=scheme,
            handshake_mode=mode,
            seed=11,
            target_video_frames=4,
        )
        via_spec = StreamingSession.from_spec(spec, make_origin(), "demo").run()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = StreamingSession(  # wira-lint: disable=WL016 - shim equivalence test
                conditions=TESTBED,
                scheme=scheme,
                origin=make_origin(),
                stream_name="demo",
                handshake_mode=mode,
                seed=11,
                target_video_frames=4,
            ).run()
        assert via_spec == via_legacy

    def test_legacy_ctor_equivalent_with_cookie_chain(self):
        """Two-session chains (warm cookie store) agree across both paths."""

        def run_chain(use_legacy):
            origin = make_origin()
            store = ClientCookieStore()
            first = SessionSpec(conditions=TESTBED, scheme=Scheme.WIRA, seed=5)
            second = first.with_(seed=6, epoch=120.0)
            results = []
            for spec in (first, second):
                if use_legacy:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", DeprecationWarning)
                        session = StreamingSession(  # wira-lint: disable=WL016 - shim equivalence test
                            conditions=spec.conditions,
                            scheme=spec.scheme,
                            origin=origin,
                            stream_name="demo",
                            cookie_store=store,
                            epoch=spec.epoch,
                            seed=spec.seed,
                        )
                else:
                    session = StreamingSession.from_spec(
                        spec, origin, "demo", cookie_store=store
                    )
                results.append(session.run())
            return results

        legacy = run_chain(use_legacy=True)
        spec_path = run_chain(use_legacy=False)
        assert legacy == spec_path
        assert spec_path[1].used_cookie  # the chain actually exercised cookies

    def test_legacy_ctor_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="SessionSpec"):
            StreamingSession(  # wira-lint: disable=WL016 - deprecation warning test
                conditions=TESTBED,
                scheme=Scheme.BASELINE,
                origin=make_origin(),
                stream_name="demo",
                seed=1,
            )

    def test_from_spec_does_not_warn(self):
        spec = SessionSpec(conditions=TESTBED, scheme=Scheme.BASELINE, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            StreamingSession.from_spec(spec, make_origin(), "demo")


class TestSpecSemantics:
    def test_spec_is_frozen(self):
        spec = SessionSpec(conditions=TESTBED, scheme=Scheme.WIRA)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 99  # type: ignore[misc]

    def test_with_returns_modified_copy(self):
        spec = SessionSpec(conditions=TESTBED, scheme=Scheme.WIRA, seed=1)
        other = spec.with_(seed=2, epoch=60.0)
        assert (spec.seed, spec.epoch) == (1, 0.0)
        assert (other.seed, other.epoch) == (2, 60.0)
        assert other.conditions is spec.conditions

    def test_session_exposes_its_spec(self):
        spec = SessionSpec(conditions=TESTBED, scheme=Scheme.WIRA, seed=4)
        session = StreamingSession.from_spec(spec, make_origin(), "demo")
        assert session.spec is spec

    def test_reuse_spec_is_deterministic(self):
        spec = SessionSpec(conditions=TESTBED, scheme=Scheme.WIRA, seed=9)
        a = StreamingSession.from_spec(spec, make_origin(), "demo").run()
        b = StreamingSession.from_spec(spec, make_origin(), "demo").run()
        assert a == b

"""Sessions over time-varying paths (ConditionTrace integration).

The cookie's premise is that the path seen *now* resembles the path seen
last session (§II-D); these tests exercise the opposite case — the path
changing mid-session — and check the transport and Wira degrade
gracefully rather than relying on initial conditions staying true.
"""

import random

import pytest

from repro.quic import Connection, HandshakeMode, QuicConfig, Role
from repro.simnet.engine import EventLoop
from repro.simnet.path import NetworkConditions, Path
from repro.simnet.trace import ConditionTrace, TracePoint

FAST = NetworkConditions(bandwidth_bps=16e6, rtt=0.04, buffer_bytes=200_000)
SLOW = NetworkConditions(bandwidth_bps=2e6, rtt=0.04, buffer_bytes=200_000)


def run_transfer_over_trace(trace, size=600_000, seed=0):
    loop = EventLoop()
    path = Path(loop, trace.initial_conditions, rng=random.Random(seed))
    trace.install(loop, path)
    config = QuicConfig(initial_rtt=0.04)
    server = Connection(loop, Role.SERVER, path.send_to_client, config,
                        rng=random.Random(seed + 1))
    client = Connection(loop, Role.CLIENT, path.send_to_server, config,
                        rng=random.Random(seed + 2))
    path.deliver_to_server = server.datagram_received
    path.deliver_to_client = client.datagram_received
    done = []
    received = bytearray()

    def on_data(sid, data, fin):
        received.extend(data)
        if fin and not done:
            done.append(loop.now)

    client.on_stream_data = on_data
    server.on_stream_data = (
        lambda sid, d, fin: server.send_stream_data(sid, bytes(size), fin=True) if fin else None
    )
    client.start()
    client.send_stream_data(0, b"GET", fin=True)
    while not done and loop.pending_events and loop.now < 30.0:
        loop.run_until(loop.now + 0.5, max_events=200_000)
    return loop, server, received, done


def test_transfer_survives_bandwidth_collapse():
    """16 Mbps collapses to 2 Mbps mid-transfer; BBR must adapt."""
    trace = ConditionTrace([TracePoint(0.0, FAST), TracePoint(0.15, SLOW)])
    loop, server, received, done = run_transfer_over_trace(trace)
    assert done, "transfer must complete despite the collapse"
    assert len(received) == 600_000
    # After the collapse the model must be well on its way down from
    # 16 Mbps (the 10-round max filter still holds decaying samples at
    # the moment the transfer completes, so full convergence to 2 Mbps
    # is not required — only clear adaptation).
    assert server.cc.bandwidth_estimate() < 10e6
    # And the completion time must reflect the slow regime: 600 kB at a
    # pure 16 Mbps would take ~0.3 s; the collapse forces well beyond.
    assert done[0] > 1.0


def test_transfer_exploits_bandwidth_increase():
    """2 Mbps jumps to 16 Mbps; completion must beat the all-slow path."""
    step_up = ConditionTrace([TracePoint(0.0, SLOW), TracePoint(0.4, FAST)])
    always_slow = ConditionTrace.constant(SLOW)
    _, _, _, done_up = run_transfer_over_trace(step_up)
    _, _, _, done_slow = run_transfer_over_trace(always_slow)
    assert done_up and done_slow
    assert done_up[0] < done_slow[0] * 0.75


def test_rtt_inflation_mid_transfer():
    """Propagation delay triples mid-transfer; recovery must not
    misfire into a retransmission storm."""
    inflated = NetworkConditions(bandwidth_bps=8e6, rtt=0.15, buffer_bytes=200_000)
    base = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, buffer_bytes=200_000)
    trace = ConditionTrace([TracePoint(0.0, base), TracePoint(0.2, inflated)])
    loop, server, received, done = run_transfer_over_trace(trace, size=400_000)
    assert done
    assert len(received) == 400_000
    # Spurious-retransmission volume stays small relative to the payload.
    assert server.stats.bytes_retransmitted < 0.10 * 400_000


def test_loss_burst_window():
    """A transient 30%-loss episode must be recovered from cleanly."""
    clean = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, buffer_bytes=200_000)
    bursty = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, loss_rate=0.3, buffer_bytes=200_000)
    trace = ConditionTrace(
        [TracePoint(0.0, clean), TracePoint(0.1, bursty), TracePoint(0.4, clean)]
    )
    loop, server, received, done = run_transfer_over_trace(trace, size=400_000, seed=7)
    assert done
    assert len(received) == 400_000
    assert server.stats.packets_lost > 0

"""Byte-identity: batched session execution vs the solo reference.

``run_sessions`` must produce *exactly* the results of running each
session on its own EventLoop — every metric, every counter, every
timestamp — across handshake modes, schemes, loss, timeouts, and the
cookie round-trip.  These tests are the gate on the batched kernel.
"""

import random

import pytest

from repro import obs
from repro.cdn.batchrun import run_sessions
from repro.cdn.origin import Origin
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.initializer import Scheme
from repro.core.transport_cookie import ClientCookieStore, ServerCookieManager
from repro.experiments import common
from repro.media.source import StreamProfile
from repro.quic.connection import HandshakeMode
from repro.simnet.path import NetworkConditions
from repro.workload.population import Deployment, DeploymentConfig

COOKIE_KEY = b"wira-batchrun-cookie-key-32bytes"


def _profile(seed):
    return StreamProfile(
        first_frame_target_bytes=40_000,
        complexity_sigma=0.05,
        size_jitter=0.05,
        seed=seed,
    )


def _build(spec, tag, store=None, manager=None):
    origin = Origin()
    origin.add_stream(f"stream-{tag}", _profile(100 + tag))
    return StreamingSession.from_spec(
        spec,
        origin,
        f"stream-{tag}",
        cookie_store=store,
        cookie_manager=manager,
    )


def _varied_specs():
    """A spread of sessions exercising different paths and phases."""
    rnd = random.Random(20240808)
    specs = []
    schemes = [Scheme.BASELINE, Scheme.WIRA, Scheme.WIRA_FF, Scheme.WIRA_HX]
    modes = [HandshakeMode.ZERO_RTT, HandshakeMode.ONE_RTT]
    for i in range(10):
        conditions = NetworkConditions(
            bandwidth_bps=rnd.choice([2e6, 8e6, 20e6]),
            rtt=rnd.choice([0.02, 0.05, 0.2]),
            loss_rate=rnd.choice([0.0, 0.01, 0.03]),
            buffer_bytes=rnd.choice([25_000, 256 * 1024]),
        )
        specs.append(
            SessionSpec(
                conditions=conditions,
                scheme=schemes[i % len(schemes)],
                handshake_mode=modes[i % len(modes)],
                seed=1000 + i,
                epoch=float(i) * 7.0,
                client_supports_cookies=(i % 3 != 2),
            )
        )
    # A session that cannot complete: starved bandwidth + tiny timeout.
    specs.append(
        SessionSpec(
            conditions=NetworkConditions(bandwidth_bps=40_000.0, rtt=0.4, loss_rate=0.05),
            scheme=Scheme.BASELINE,
            seed=77,
            timeout=1.5,
        )
    )
    return specs


class TestBatchedEqualsSolo:
    def test_varied_sessions_identical(self):
        specs = _varied_specs()
        solo = [_build(spec, tag=i).run() for i, spec in enumerate(specs)]
        batched = run_sessions([_build(spec, tag=i) for i, spec in enumerate(specs)])
        assert len(batched) == len(solo)
        for got, expected in zip(batched, solo):
            assert got == expected

    def test_result_order_matches_input_order(self):
        specs = _varied_specs()[:4]
        sessions = [_build(spec, tag=i) for i, spec in enumerate(specs)]
        results = run_sessions(sessions)
        for spec, result in zip(specs, results):
            # Sessions canonicalize the scheme to its registry SchemeSpec;
            # value-equality keeps it addressable by the enum member.
            assert result.scheme == spec.scheme
            assert result.handshake_mode is spec.handshake_mode

    def test_cookie_chain_across_waves(self):
        """Chained sessions (store carried forward) run wave by wave.

        Wave k batches the k-th session of several chains; within a
        chain, cookies must flow session→session exactly as solo.
        """
        config = DeploymentConfig(n_od_pairs=4, seed=5, video_frames_per_session=6)
        chains = Deployment(config).generate()
        wira = common.WiraConfig()

        solo = [
            common._run_chain(Scheme.WIRA, chain, idx, config, wira)
            for idx, chain in enumerate(chains)
        ]

        # Batched: per-chain environments persist across waves.
        stores = [ClientCookieStore() for _ in chains]
        managers = [
            ServerCookieManager(common.COOKIE_KEY, staleness_delta=wira.staleness_delta)
            for _ in chains
        ]
        origins = []
        for idx, chain in enumerate(chains):
            origin = Origin()
            origin.add_stream(f"stream-{idx}", chain[0].stream_profile)
            origins.append(origin)

        results = [[] for _ in chains]
        wave = 0
        while True:
            todo = [idx for idx, chain in enumerate(chains) if len(chain) > wave]
            if not todo:
                break
            sessions = [
                StreamingSession.from_spec(
                    common.session_spec_for(
                        chains[idx][wave], Scheme.WIRA, idx, config, wira
                    ),
                    origins[idx],
                    f"stream-{idx}",
                    cookie_store=stores[idx],
                    cookie_manager=managers[idx],
                )
                for idx in todo
            ]
            for idx, result in zip(todo, run_sessions(sessions)):
                results[idx].append(result)
            wave += 1

        for idx, chain_outcomes in enumerate(solo):
            assert len(results[idx]) == len(chain_outcomes)
            for got, outcome in zip(results[idx], chain_outcomes):
                assert got == outcome.result

    def test_batched_cookie_delivery_happens(self):
        """The flush phase actually delivers cookies in batched mode."""
        spec = SessionSpec(
            conditions=NetworkConditions(bandwidth_bps=8e6, rtt=0.05),
            scheme=Scheme.WIRA,
            seed=3,
        )
        store_a, store_b = ClientCookieStore(), ClientCookieStore()
        manager = ServerCookieManager(COOKIE_KEY)
        results = run_sessions(
            [
                _build(spec, tag=0, store=store_a, manager=manager),
                _build(spec.with_(seed=4), tag=1, store=store_b, manager=manager),
            ]
        )
        assert all(r.completed for r in results)
        assert all(r.cookie_delivered for r in results)

    def test_single_session_takes_solo_path(self):
        spec = _varied_specs()[0]
        solo = _build(spec, tag=0).run()
        assert run_sessions([_build(spec, tag=0)]) == [solo]

    def test_empty_batch(self):
        assert run_sessions([]) == []

    def test_tracing_falls_back_to_solo(self):
        """With a trace bus active the batch runner must not interleave."""
        specs = _varied_specs()[:3]
        with obs.tracing():
            results = run_sessions([_build(spec, tag=i) for i, spec in enumerate(specs)])
        assert len(results) == 3
        # Solo fallback still annotates phase breakdowns via the bus.
        assert all(r.phase_breakdown is not None for r in results if r.completed)

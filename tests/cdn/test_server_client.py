"""Unit-level tests for the proxy server and player client."""

import random

import pytest

from repro.cdn.client import ClientMetrics, WiraClient
from repro.cdn.origin import Origin
from repro.cdn.playback import PlaybackPolicy
from repro.cdn.server import WiraServer
from repro.core.config import WiraConfig
from repro.core.initializer import Scheme
from repro.core.transport_cookie import (
    ClientCookieStore,
    HxQos,
    ServerCookieManager,
)
from repro.media.source import StreamProfile
from repro.quic.config import QuicConfig
from repro.quic.connection import Connection, Role
from repro.quic.handshake import TAG_HQST
from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram
from repro.simnet.path import NetworkConditions, Path

KEY = b"unit-test-cookie-key-32-bytes!!!"


def make_stack(scheme=Scheme.WIRA, wira_config=None, origin=None, tags=None):
    loop = EventLoop()
    cond = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, buffer_bytes=100_000)
    path = Path(loop, cond, rng=random.Random(1))
    server_conn = Connection(loop, Role.SERVER, path.send_to_client, QuicConfig(),
                             rng=random.Random(2))
    client_conn = Connection(loop, Role.CLIENT, path.send_to_server, QuicConfig(),
                             handshake_tags=tags, rng=random.Random(3))
    path.deliver_to_server = server_conn.datagram_received
    path.deliver_to_client = client_conn.datagram_received
    if origin is None:
        origin = Origin()
        origin.add_stream("demo", StreamProfile(first_frame_target_bytes=40_000, seed=4))
    server = WiraServer(
        loop, server_conn, origin, scheme,
        wira_config=wira_config,
        cookie_manager=ServerCookieManager(KEY),
    )
    return loop, path, server, server_conn, client_conn


class TestRequestParsing:
    @pytest.mark.parametrize(
        "request_line,expected",
        [
            ("GET /live/abc.flv", "abc"),
            ("GET /live/abc", "abc"),
            ("GET /live/with-dash.flv HTTP/1.1", "with-dash"),
        ],
    )
    def test_valid_requests(self, request_line, expected):
        assert WiraServer._parse_request(request_line) == expected

    @pytest.mark.parametrize(
        "request_line",
        ["POST /live/abc", "GET /static/abc", "GET", "", "GET /live/"],
    )
    def test_invalid_requests(self, request_line):
        assert WiraServer._parse_request(request_line) is None


class TestServerInit:
    def test_server_applies_initial_params_before_data(self):
        loop, path, server, server_conn, client_conn = make_stack(Scheme.WIRA_FF)
        received = []
        client_conn.on_stream_data = lambda sid, d, fin: received.append(len(d))
        client_conn.start()
        client_conn.send_stream_data(0, b"GET /live/demo.flv\r\n", fin=True)
        loop.run(max_events=50_000)
        assert server.state.initial_params is not None
        assert server.state.initial_params.used_ff_size
        assert sum(received) > 40_000

    def test_unknown_hqst_tag_tolerated(self):
        loop, path, server, server_conn, client_conn = make_stack(
            Scheme.WIRA, tags={TAG_HQST: b"\xff\xff\xff"}
        )
        client_conn.start()
        client_conn.send_stream_data(0, b"GET /live/demo.flv\r\n", fin=True)
        loop.run(max_events=50_000)
        # Garbage tag falls back to no-cookie initialisation.
        assert server.state.hx_qos is None
        assert server.state.initial_params is not None

    def test_sync_timer_pushes_cookies_periodically(self):
        config = WiraConfig(sync_period=0.2)
        loop, path, server, server_conn, client_conn = make_stack(
            Scheme.WIRA, wira_config=config
        )
        cookies = []
        client_conn.on_hx_qos = cookies.append
        client_conn.start()
        client_conn.send_stream_data(0, b"GET /live/demo.flv\r\n", fin=True)
        loop.run_until(1.5, max_events=100_000)
        assert len(cookies) >= 3  # several sync periods elapsed

    def test_close_stops_sync_timer(self):
        loop, path, server, server_conn, client_conn = make_stack()
        client_conn.start()
        loop.run(max_events=1_000)
        server.close()
        pending_before = loop.pending_events
        loop.run_until(loop.now + 30.0)
        assert loop.processed_events >= 0  # drained without new syncs

    def test_flush_cookie_requires_measurements(self):
        loop, path, server, server_conn, client_conn = make_stack()
        assert not server.flush_cookie()  # nothing measured yet


class TestClientMetrics:
    def test_ffct_none_until_first_frame(self):
        metrics = ClientMetrics(request_sent_at=1.0)
        assert metrics.ffct is None
        metrics.first_frame_at = 1.2
        assert metrics.ffct == pytest.approx(0.2)

    def test_frame_completion_times(self):
        metrics = ClientMetrics(request_sent_at=1.0, video_frame_times=[1.1, 1.3])
        assert metrics.frame_completion_time(1) == pytest.approx(0.1)
        assert metrics.frame_completion_time(2) == pytest.approx(0.3)
        assert metrics.frame_completion_time(3) is None
        assert metrics.frame_completion_time(0) is None

    def test_hqst_tag_without_store(self):
        tag = WiraClient.build_hqst_tag(None, "origin")
        assert tag == b"\x01"

    def test_hqst_tag_unsupported(self):
        tag = WiraClient.build_hqst_tag(ClientCookieStore(), "origin", supported=False)
        assert tag == b"\x00"

    def test_hqst_tag_echoes_stored_cookie(self):
        store = ClientCookieStore()
        store.update("origin", b"sealed-blob", received_at=12.0)
        tag = WiraClient.build_hqst_tag(store, "origin")
        assert b"sealed-blob" in tag

    def test_target_frames_raised_to_playback_threshold(self):
        loop = EventLoop()
        conn = Connection(loop, Role.CLIENT, lambda d: True)
        client = WiraClient(
            loop, conn, "demo",
            playback=PlaybackPolicy(video_frames_required=5),
            target_video_frames=2,
        )
        assert client.target_video_frames == 5

    def test_invalid_target_rejected(self):
        loop = EventLoop()
        conn = Connection(loop, Role.CLIENT, lambda d: True)
        with pytest.raises(ValueError):
            WiraClient(loop, conn, "demo", target_video_frames=0)

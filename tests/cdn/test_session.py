"""End-to-end streaming session tests — the heart of the reproduction."""

import pytest

from repro.cdn.origin import Origin
from repro.cdn.playback import PlaybackPolicy
from repro.cdn.session import SessionSpec, StreamingSession
from repro.core.config import WiraConfig
from repro.core.initializer import Scheme, payload_to_wire_bytes
from repro.core.transport_cookie import ClientCookieStore
from repro.media.source import StreamProfile
from repro.quic.connection import HandshakeMode
from repro.simnet.path import NetworkConditions


TESTBED = NetworkConditions(  # §II footnote 2
    bandwidth_bps=8_000_000.0, rtt=0.050, loss_rate=0.0, buffer_bytes=25_000
)


def make_origin(ff_target=66_000, seed=1, **origin_kwargs):
    origin = Origin(**origin_kwargs)
    origin.add_stream(
        "demo",
        StreamProfile(first_frame_target_bytes=ff_target, seed=seed,
                      complexity_sigma=0.02, size_jitter=0.02),
    )
    return origin


def run_session(scheme=Scheme.WIRA, conditions=TESTBED, store=None, mode=HandshakeMode.ZERO_RTT,
                seed=3, origin=None, **kwargs):
    spec = SessionSpec(
        conditions=conditions,
        scheme=scheme,
        handshake_mode=mode,
        seed=seed,
        **kwargs,
    )
    session = StreamingSession.from_spec(
        spec, origin or make_origin(), "demo", cookie_store=store
    )
    return session.run()


def warmed_store(conditions=TESTBED, seed=3, origin=None):
    """Run one session to charge the client's cookie store."""
    store = ClientCookieStore()
    result = run_session(Scheme.BASELINE, conditions, store, seed=seed, origin=origin)
    assert result.cookie_delivered
    return store


class TestBasicSession:
    def test_session_completes_with_ffct(self):
        result = run_session()
        assert result.completed
        assert result.ffct is not None
        assert 0.05 < result.ffct < 2.0

    def test_ff_size_parsed_close_to_target(self):
        result = run_session()
        assert result.ff_size_parsed == pytest.approx(66_000, rel=0.15)

    def test_four_frame_times_recorded(self):
        result = run_session(target_video_frames=4)
        times = [result.frame_time(k) for k in range(1, 5)]
        assert all(t is not None for t in times)
        assert times == sorted(times)

    def test_deterministic(self):
        a = run_session(seed=9)
        b = run_session(seed=9)
        assert a.ffct == b.ffct
        assert a.final_server_stats.packets_sent == b.final_server_stats.packets_sent

    def test_different_seeds_on_lossy_paths_differ(self):
        lossy = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, loss_rate=0.05, buffer_bytes=25_000)
        results = {run_session(conditions=lossy, seed=s).ffct for s in range(6)}
        assert len(results) > 1


class TestCookieLifecycle:
    def test_first_session_has_no_cookie(self):
        store = ClientCookieStore()
        result = run_session(Scheme.WIRA, store=store)
        assert not result.used_cookie

    def test_cookie_delivered_at_session_end(self):
        store = ClientCookieStore()
        result = run_session(Scheme.WIRA, store=store)
        assert result.cookie_delivered
        assert store.get("origin") is not None

    def test_second_session_uses_cookie(self):
        store = warmed_store()
        result = run_session(Scheme.WIRA, store=store)
        assert result.used_cookie
        assert result.initial_params.used_hx_qos

    def test_cookie_reflects_measured_path(self):
        store = warmed_store()
        result = run_session(Scheme.WIRA, store=store)
        # BDP at 8Mbps/50ms is 50kB; FF is 66kB; Wira picks min = BDP-ish.
        assert result.initial_params.cwnd_bytes < 66_000
        assert result.initial_params.pacing_bps == pytest.approx(8e6, rel=0.5)

    def test_stale_cookie_triggers_corner_case_2(self):
        store = warmed_store()
        result = run_session(
            Scheme.WIRA,
            store=store,
            epoch=7200.0,  # two hours later: cookie exceeds Δ=60min
        )
        assert not result.used_cookie
        assert result.initial_params.used_ff_size
        assert not result.initial_params.used_hx_qos

    def test_client_without_cookie_support(self):
        result = run_session(Scheme.WIRA, client_supports_cookies=False)
        assert not result.used_cookie
        assert not result.cookie_delivered


class TestSchemes:
    def test_baseline_uses_experiential_values(self):
        config = WiraConfig(init_cwnd_exp=44_000, init_rtt_exp=0.08)
        result = run_session(Scheme.BASELINE, wira_config=config)
        assert result.initial_params.cwnd_bytes == payload_to_wire_bytes(44_000)

    def test_wira_ff_uses_parsed_size(self):
        result = run_session(Scheme.WIRA_FF)
        assert result.initial_params.cwnd_bytes == payload_to_wire_bytes(
            result.ff_size_parsed
        )

    def test_all_schemes_complete(self):
        for scheme in Scheme:
            result = run_session(scheme)
            assert result.completed, scheme

    def test_wira_min_rule_with_cookie(self):
        store = warmed_store()
        result = run_session(Scheme.WIRA, store=store)
        ff = result.ff_size_parsed
        assert result.initial_params.cwnd_bytes <= ff


class TestHandshakeModes:
    def test_one_rtt_slower_first_frame(self):
        ffct_0 = run_session(mode=HandshakeMode.ZERO_RTT).ffct
        ffct_1 = run_session(mode=HandshakeMode.ONE_RTT).ffct
        assert ffct_1 > ffct_0 + 0.03

    def test_one_rtt_measures_rtt_for_init(self):
        store = warmed_store()
        result = run_session(Scheme.WIRA, store=store, mode=HandshakeMode.ONE_RTT)
        # The window is the BDP from the cookie MaxBW and the *measured*
        # ~50ms handshake RTT.  The warm-up MaxBW estimate is somewhat
        # conservative under the testbed's tight 25kB buffer, so accept
        # a band below the true 50kB BDP — but well under the 66kB FF.
        assert result.initial_params.used_hx_qos
        assert 25_000 < result.initial_params.cwnd_bytes < 56_000


class TestCornerCase1:
    def test_delayed_i_frame_yields_provisional_then_final_init(self):
        origin = make_origin(i_frame_pull_delay=0.03)
        result = run_session(Scheme.WIRA_FF, origin=origin)
        assert result.completed
        # The server re-initialised once the parser completed.
        assert result.initial_params is not None
        assert not result.initial_params.provisional
        assert result.initial_params.cwnd_bytes == payload_to_wire_bytes(
            result.ff_size_parsed
        )


class TestLossAccounting:
    def test_fflr_zero_on_clean_deep_buffered_path(self):
        deep = NetworkConditions(
            bandwidth_bps=8e6, rtt=0.05, loss_rate=0.0, buffer_bytes=150_000
        )
        result = run_session(conditions=deep)
        assert result.fflr == 0.0

    def test_fflr_positive_on_lossy_path(self):
        lossy = NetworkConditions(bandwidth_bps=8e6, rtt=0.05, loss_rate=0.08, buffer_bytes=25_000)
        results = [run_session(conditions=lossy, seed=s) for s in range(5)]
        assert any(r.fflr and r.fflr > 0 for r in results)

    def test_frame_loss_rates_available(self):
        result = run_session(target_video_frames=4)
        rates = [result.frame_loss_rate(k) for k in range(1, 5)]
        assert all(r is not None for r in rates)


class TestPlaybackPolicies:
    def test_theta_three_increases_ffct(self):
        base = run_session()
        theta3 = run_session(playback=PlaybackPolicy(video_frames_required=3))
        assert theta3.ffct > base.ffct

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PlaybackPolicy(video_frames_required=0)

"""Tests for the live CDN origin."""

import pytest

from repro.cdn.origin import Origin, UnknownStreamError
from repro.media.frames import MediaFrameType
from repro.media.source import StreamProfile


def make_origin(**kwargs):
    origin = Origin(**kwargs)
    origin.add_stream("demo", StreamProfile(seed=1))
    return origin


def test_unknown_stream_rejected():
    with pytest.raises(UnknownStreamError):
        make_origin().fetch("nope", 0.0)


def test_fetch_starts_with_script_audio_i():
    fetch = make_origin().fetch("demo", 0.0)
    types = [f.frame_type for f in fetch.media_frames[:3]]
    assert types == [MediaFrameType.SCRIPT, MediaFrameType.AUDIO, MediaFrameType.VIDEO_I]


def test_fetch_truncates_at_video_frame_limit():
    fetch = make_origin().fetch("demo", 0.0, max_video_frames=4)
    video = [f for f in fetch.media_frames if f.is_video]
    assert len(video) == 4


def test_fetch_immediate_availability_by_default():
    fetch = make_origin().fetch("demo", 0.0, max_video_frames=3)
    assert all(delay == 0.0 for _, delay in fetch.frames)


def test_i_frame_pull_delay_staggers_video():
    origin = make_origin(i_frame_pull_delay=0.02)
    fetch = origin.fetch("demo", 0.0, max_video_frames=2)
    delays = {f.frame_type: d for f, d in fetch.frames}
    assert delays[MediaFrameType.SCRIPT] == 0.0
    assert delays[MediaFrameType.VIDEO_I] == 0.02


def test_fetch_respects_join_time_gop():
    origin = make_origin()
    early = origin.fetch("demo", 0.0, max_video_frames=1)
    late = origin.fetch("demo", 100.0, max_video_frames=1)
    sizes_early = [f.size for f in early.media_frames]
    sizes_late = [f.size for f in late.media_frames]
    assert sizes_early != sizes_late  # different GOP, different complexity


def test_stream_names_listed():
    origin = make_origin()
    origin.add_stream("other", StreamProfile(seed=2))
    assert origin.stream_names() == ["demo", "other"]


def test_negative_pull_delay_rejected():
    with pytest.raises(ValueError):
        Origin(i_frame_pull_delay=-1.0)

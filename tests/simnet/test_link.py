"""Tests for the rate/delay/buffer/loss link model."""

import random

import pytest

from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram, Link


def make_link(loop, **kwargs):
    delivered = []
    defaults = dict(
        bandwidth_bps=8_000_000.0,
        propagation_delay=0.025,
        buffer_bytes=25_000,
        loss_rate=0.0,
        rng=random.Random(1),
    )
    defaults.update(kwargs)
    link = Link(loop, on_deliver=delivered.append, **defaults)
    return link, delivered


def test_datagram_size_defaults_to_payload_length():
    d = Datagram(b"hello")
    assert d.size == 5


def test_datagram_size_can_include_framing_overhead():
    d = Datagram(b"hello", size=33)
    assert d.size == 33


def test_datagram_size_cannot_undercount():
    with pytest.raises(ValueError):
        Datagram(b"hello", size=2)


def test_single_packet_latency_is_serialization_plus_propagation():
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=8_000.0, propagation_delay=0.1)
    link.send(Datagram(b"x" * 100))  # 100B at 8kbps -> 0.1s serialisation
    loop.run()
    assert delivered and loop.now == pytest.approx(0.2)


def test_fifo_delivery_order():
    loop = EventLoop()
    link, delivered = make_link(loop)
    for i in range(5):
        link.send(Datagram(bytes([i]) * 100))
    loop.run()
    assert [d.payload[0] for d in delivered] == [0, 1, 2, 3, 4]


def test_back_to_back_packets_serialize_sequentially():
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=8_000.0, propagation_delay=0.0)
    link.send(Datagram(b"a" * 100))
    link.send(Datagram(b"b" * 100))
    times = []
    link.on_deliver = lambda d: times.append(loop.now)
    loop.run()
    assert times == [pytest.approx(0.1), pytest.approx(0.2)]


def test_buffer_overflow_drops_tail():
    loop = EventLoop()
    link, delivered = make_link(loop, buffer_bytes=1_000)
    # First packet starts serialising immediately (not buffered); next
    # 1000B fit in the buffer exactly; anything further is dropped.
    assert link.send(Datagram(b"x" * 500))
    assert link.send(Datagram(b"y" * 1_000))
    assert not link.send(Datagram(b"z" * 10))
    assert link.stats.buffer_losses == 1
    loop.run()
    assert len(delivered) == 2


def test_random_loss_statistics():
    loop = EventLoop()
    link, delivered = make_link(loop, loss_rate=0.3, rng=random.Random(42), buffer_bytes=10**9)
    n = 5_000
    for _ in range(n):
        link.send(Datagram(b"p" * 100))
    loop.run()
    observed = link.stats.random_losses / n
    assert 0.27 < observed < 0.33
    assert len(delivered) == n - link.stats.random_losses


def test_loss_is_deterministic_given_seed():
    def run(seed):
        loop = EventLoop()
        link, delivered = make_link(loop, loss_rate=0.5, rng=random.Random(seed), buffer_bytes=10**9)
        outcomes = [link.send(Datagram(b"p" * 100)) for _ in range(100)]
        loop.run()
        return outcomes

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_queue_drains_after_busy_period():
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=80_000.0, propagation_delay=0.0)
    for _ in range(10):
        link.send(Datagram(b"x" * 1_000))  # each takes 0.1s
    loop.run()
    assert len(delivered) == 10
    assert loop.now == pytest.approx(1.0)
    assert link.queue_bytes == 0


def test_stats_track_bytes_and_max_queue():
    loop = EventLoop()
    link, _ = make_link(loop, buffer_bytes=10_000)
    for _ in range(5):
        link.send(Datagram(b"x" * 1_000))
    assert link.stats.max_queue_bytes == 4_000  # first packet went straight to the wire
    loop.run()
    assert link.stats.bytes_delivered == 5_000
    assert link.stats.loss_rate == 0.0


def test_invalid_parameters_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        Link(loop, bandwidth_bps=0, propagation_delay=0.0)
    with pytest.raises(ValueError):
        Link(loop, bandwidth_bps=1.0, propagation_delay=-1.0)
    with pytest.raises(ValueError):
        Link(loop, bandwidth_bps=1.0, propagation_delay=0.0, loss_rate=1.5)


# ---------------------------------------------------------------------------
# Admission-time rate snapshot (docstring contract: condition changes apply
# to packets admitted after the change).


def test_queued_packets_keep_admission_time_rate():
    """A bandwidth drop must not slow packets already in the buffer."""
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=80_000.0, propagation_delay=0.0)
    for _ in range(5):
        link.send(Datagram(b"x" * 1_000))  # 0.1s each at the admission rate
    link.bandwidth_bps = 8_000.0  # 10x slower — applies to future admissions
    loop.run()
    assert len(delivered) == 5
    assert loop.now == pytest.approx(0.5)  # not 0.1 + 4*1.0


def test_rate_change_applies_to_later_admissions():
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=80_000.0, propagation_delay=0.0)
    link.send(Datagram(b"x" * 1_000))  # 0.1s
    link.bandwidth_bps = 8_000.0
    link.send(Datagram(b"y" * 1_000))  # queued at the new 1.0s rate
    loop.run()
    assert loop.now == pytest.approx(1.1)


# ---------------------------------------------------------------------------
# Impairments (loss model, reordering, duplication, outage).


class FixedDrops:
    """Scripted LossModel: drops packets at the given indices."""

    def __init__(self, drop_indices):
        self.drop_indices = set(drop_indices)
        self.seen = 0

    def should_drop(self):
        drop = self.seen in self.drop_indices
        self.seen += 1
        return drop


def test_loss_model_replaces_bernoulli_loss():
    loop = EventLoop()
    # loss_rate would drop ~everything; the model must take precedence.
    link, delivered = make_link(loop, loss_rate=0.99, rng=random.Random(1))
    link.loss_model = FixedDrops({1})
    outcomes = [link.send(Datagram(bytes([i]) * 100)) for i in range(3)]
    loop.run()
    assert outcomes == [True, False, True]
    assert link.stats.random_losses == 1
    assert link.stats.burst_losses == 1
    assert [d.payload[0] for d in delivered] == [0, 2]


def test_down_link_drops_on_admission():
    loop = EventLoop()
    link, delivered = make_link(loop)
    link.down = True
    assert link.send(Datagram(b"x" * 100)) is False
    link.down = False
    assert link.send(Datagram(b"y" * 100)) is True
    loop.run()
    assert link.stats.outage_losses == 1
    assert link.stats.dropped == 1
    assert len(delivered) == 1


def test_duplicate_rate_delivers_twice():
    loop = EventLoop()
    link, delivered = make_link(loop, rng=random.Random(2))
    link.duplicate_rate = 1.0
    link.send(Datagram(b"d" * 100))
    loop.run()
    assert len(delivered) == 2
    assert link.stats.duplicated == 1
    assert link.stats.delivered == 2


class MaxDelayRng:
    """Stub rng: every impairment check fires, every delay is its bound."""

    @staticmethod
    def random():
        return 0.0

    @staticmethod
    def uniform(low, high):
        return high


def test_reordering_lets_later_packet_overtake():
    loop = EventLoop()
    link, delivered = make_link(
        loop, bandwidth_bps=8_000_000.0, propagation_delay=0.001, rng=MaxDelayRng()
    )
    link.reorder_rate = 1.0
    link.reorder_delay = 0.5
    link.send(Datagram(b"\x00" * 100))
    # Impairments are sampled when serialisation finishes; disable after
    # the first packet's finish so only it receives the extra delay.
    loop.post_at(0.0001, setattr, link, "reorder_rate", 0.0)
    loop.post_at(0.0002, link.send, Datagram(b"\x01" * 100))
    loop.run()
    assert link.stats.reordered == 1
    assert [d.payload[0] for d in delivered] == [1, 0]


def test_inert_impairments_preserve_rng_stream():
    """Default-impairment links must replay byte-identically to the seed."""

    def run():
        loop = EventLoop()
        link, delivered = make_link(loop, loss_rate=0.3, rng=random.Random(9))
        outcomes = [link.send(Datagram(b"p" * 100)) for _ in range(200)]
        loop.run()
        return outcomes, len(delivered)

    assert run() == run()

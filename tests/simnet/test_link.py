"""Tests for the rate/delay/buffer/loss link model."""

import random

import pytest

from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram, Link


def make_link(loop, **kwargs):
    delivered = []
    defaults = dict(
        bandwidth_bps=8_000_000.0,
        propagation_delay=0.025,
        buffer_bytes=25_000,
        loss_rate=0.0,
        rng=random.Random(1),
    )
    defaults.update(kwargs)
    link = Link(loop, on_deliver=delivered.append, **defaults)
    return link, delivered


def test_datagram_size_defaults_to_payload_length():
    d = Datagram(b"hello")
    assert d.size == 5


def test_datagram_size_can_include_framing_overhead():
    d = Datagram(b"hello", size=33)
    assert d.size == 33


def test_datagram_size_cannot_undercount():
    with pytest.raises(ValueError):
        Datagram(b"hello", size=2)


def test_single_packet_latency_is_serialization_plus_propagation():
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=8_000.0, propagation_delay=0.1)
    link.send(Datagram(b"x" * 100))  # 100B at 8kbps -> 0.1s serialisation
    loop.run()
    assert delivered and loop.now == pytest.approx(0.2)


def test_fifo_delivery_order():
    loop = EventLoop()
    link, delivered = make_link(loop)
    for i in range(5):
        link.send(Datagram(bytes([i]) * 100))
    loop.run()
    assert [d.payload[0] for d in delivered] == [0, 1, 2, 3, 4]


def test_back_to_back_packets_serialize_sequentially():
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=8_000.0, propagation_delay=0.0)
    link.send(Datagram(b"a" * 100))
    link.send(Datagram(b"b" * 100))
    times = []
    link.on_deliver = lambda d: times.append(loop.now)
    loop.run()
    assert times == [pytest.approx(0.1), pytest.approx(0.2)]


def test_buffer_overflow_drops_tail():
    loop = EventLoop()
    link, delivered = make_link(loop, buffer_bytes=1_000)
    # First packet starts serialising immediately (not buffered); next
    # 1000B fit in the buffer exactly; anything further is dropped.
    assert link.send(Datagram(b"x" * 500))
    assert link.send(Datagram(b"y" * 1_000))
    assert not link.send(Datagram(b"z" * 10))
    assert link.stats.buffer_losses == 1
    loop.run()
    assert len(delivered) == 2


def test_random_loss_statistics():
    loop = EventLoop()
    link, delivered = make_link(loop, loss_rate=0.3, rng=random.Random(42), buffer_bytes=10**9)
    n = 5_000
    for _ in range(n):
        link.send(Datagram(b"p" * 100))
    loop.run()
    observed = link.stats.random_losses / n
    assert 0.27 < observed < 0.33
    assert len(delivered) == n - link.stats.random_losses


def test_loss_is_deterministic_given_seed():
    def run(seed):
        loop = EventLoop()
        link, delivered = make_link(loop, loss_rate=0.5, rng=random.Random(seed), buffer_bytes=10**9)
        outcomes = [link.send(Datagram(b"p" * 100)) for _ in range(100)]
        loop.run()
        return outcomes

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_queue_drains_after_busy_period():
    loop = EventLoop()
    link, delivered = make_link(loop, bandwidth_bps=80_000.0, propagation_delay=0.0)
    for _ in range(10):
        link.send(Datagram(b"x" * 1_000))  # each takes 0.1s
    loop.run()
    assert len(delivered) == 10
    assert loop.now == pytest.approx(1.0)
    assert link.queue_bytes == 0


def test_stats_track_bytes_and_max_queue():
    loop = EventLoop()
    link, _ = make_link(loop, buffer_bytes=10_000)
    for _ in range(5):
        link.send(Datagram(b"x" * 1_000))
    assert link.stats.max_queue_bytes == 4_000  # first packet went straight to the wire
    loop.run()
    assert link.stats.bytes_delivered == 5_000
    assert link.stats.loss_rate == 0.0


def test_invalid_parameters_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        Link(loop, bandwidth_bps=0, propagation_delay=0.0)
    with pytest.raises(ValueError):
        Link(loop, bandwidth_bps=1.0, propagation_delay=-1.0)
    with pytest.raises(ValueError):
        Link(loop, bandwidth_bps=1.0, propagation_delay=0.0, loss_rate=1.5)

"""Tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import EventLoop, SimulationError


def test_clock_starts_at_zero():
    loop = EventLoop()
    assert loop.now == 0.0


def test_clock_custom_start():
    loop = EventLoop(start_time=10.0)
    assert loop.now == 10.0


def test_call_later_advances_clock():
    loop = EventLoop()
    fired = []
    loop.call_later(1.5, fired.append, "a")
    loop.run()
    assert fired == ["a"]
    assert loop.now == 1.5


def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.call_later(2.0, order.append, "late")
    loop.call_later(1.0, order.append, "early")
    loop.call_later(3.0, order.append, "latest")
    loop.run()
    assert order == ["early", "late", "latest"]


def test_simultaneous_events_run_in_schedule_order():
    loop = EventLoop()
    order = []
    for name in "abcde":
        loop.call_later(1.0, order.append, name)
    loop.run()
    assert order == list("abcde")


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.call_later(1.0, fired.append, "x")
    event.cancel()
    loop.run()
    assert fired == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.call_later(1.0, lambda: None)
    event.cancel()
    event.cancel()
    loop.run()


def test_cannot_schedule_in_the_past():
    loop = EventLoop(start_time=5.0)
    with pytest.raises(SimulationError):
        loop.call_at(4.0, lambda: None)


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.call_later(-0.1, lambda: None)


def test_run_until_stops_at_deadline():
    loop = EventLoop()
    fired = []
    loop.call_later(1.0, fired.append, "a")
    loop.call_later(5.0, fired.append, "b")
    loop.run_until(2.0)
    assert fired == ["a"]
    assert loop.now == 2.0
    loop.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    loop = EventLoop()
    loop.run_until(7.0)
    assert loop.now == 7.0


def test_events_can_schedule_events():
    loop = EventLoop()
    times = []

    def chain(n):
        times.append(loop.now)
        if n > 0:
            loop.call_later(1.0, chain, n - 1)

    loop.call_later(0.0, chain, 3)
    loop.run()
    assert times == [0.0, 1.0, 2.0, 3.0]


def test_max_events_limit():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.call_later(float(i), fired.append, i)
    executed = loop.run(max_events=4)
    assert executed == 4
    assert fired == [0, 1, 2, 3]


def test_pending_and_processed_counters():
    loop = EventLoop()
    keep = loop.call_later(1.0, lambda: None)
    drop = loop.call_later(2.0, lambda: None)
    drop.cancel()
    assert loop.pending_events == 1
    loop.run()
    assert loop.processed_events == 1
    assert keep.cancelled is False


def test_pending_counter_is_live():
    loop = EventLoop()
    events = [loop.call_later(float(i + 1), lambda: None) for i in range(5)]
    loop.post_later(6.0, lambda: None)
    assert loop.pending_events == 6
    events[0].cancel()
    events[0].cancel()  # idempotent: no double decrement
    assert loop.pending_events == 5
    loop.run(max_events=2)
    assert loop.pending_events == 3
    loop.run()
    assert loop.pending_events == 0


def test_cancel_after_execution_does_not_corrupt_counter():
    loop = EventLoop()
    event = loop.call_later(1.0, lambda: None)
    loop.call_later(2.0, lambda: None)
    loop.run(max_events=1)
    event.cancel()  # already ran; must not decrement the live counter
    assert loop.pending_events == 1
    loop.run()
    assert loop.pending_events == 0


def test_post_later_fires_in_order_with_call_later():
    loop = EventLoop()
    order = []
    loop.call_later(1.0, order.append, "a")
    loop.post_later(1.0, order.append, "b")
    loop.call_later(1.0, order.append, "c")
    loop.run()
    assert order == ["a", "b", "c"]


def test_post_at_rejects_past_and_negative():
    loop = EventLoop(start_time=5.0)
    with pytest.raises(SimulationError):
        loop.post_at(4.0, lambda: None)
    with pytest.raises(SimulationError):
        loop.post_later(-0.1, lambda: None)


def test_loop_not_reentrant():
    loop = EventLoop()

    def reenter():
        with pytest.raises(SimulationError):
            loop.run()

    loop.call_later(0.0, reenter)
    loop.run()

"""Tests for adverse-network schedules (time-varying/bursty/flapping paths)."""

import random

import pytest

from repro.simnet.engine import EventLoop
from repro.simnet.path import NetworkConditions, Path
from repro.simnet.schedule import (
    GilbertElliott,
    GilbertElliottLoss,
    OutageWindow,
    PathSchedule,
)
from repro.simnet.trace import ConditionTrace, TracePoint

BASE = NetworkConditions(bandwidth_bps=8_000_000.0, rtt=0.05, buffer_bytes=25_000)


def make_path(loop, conditions=BASE, seed=3):
    return Path(loop, conditions, rng=random.Random(seed))


class TestGilbertElliott:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=1.5, p_bad_to_good=0.5)
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.1, p_bad_to_good=0.5, loss_bad=-0.1)

    def test_bad_state_must_be_escapable(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.1, p_bad_to_good=0.0)

    def test_stationary_loss_rate(self):
        spec = GilbertElliott(
            p_good_to_bad=0.1, p_bad_to_good=0.3, loss_good=0.0, loss_bad=0.5
        )
        # (r·k + p·h) / (p + r) = (0.3·0 + 0.1·0.5) / 0.4
        assert spec.stationary_loss_rate == pytest.approx(0.125)

    def test_empirical_loss_matches_stationary_rate(self):
        spec = GilbertElliott(p_good_to_bad=0.05, p_bad_to_good=0.25, loss_bad=0.6)
        model = spec.bind(random.Random(7))
        n = 200_000
        drops = sum(model.should_drop() for _ in range(n))
        assert drops / n == pytest.approx(spec.stationary_loss_rate, rel=0.05)
        assert model.transitions > 0

    def test_losses_are_bursty(self):
        """Drops cluster: consecutive-drop probability beats the marginal."""
        spec = GilbertElliott(p_good_to_bad=0.02, p_bad_to_good=0.2, loss_bad=0.8)
        model = spec.bind(random.Random(11))
        outcomes = [model.should_drop() for _ in range(100_000)]
        marginal = sum(outcomes) / len(outcomes)
        after_drop = [b for a, b in zip(outcomes, outcomes[1:]) if a]
        conditional = sum(after_drop) / len(after_drop)
        assert conditional > 2 * marginal

    def test_seeded_replay_is_identical(self):
        spec = GilbertElliott(p_good_to_bad=0.1, p_bad_to_good=0.3, loss_bad=0.5)
        runs = []
        for _ in range(2):
            model = spec.bind(random.Random(5))
            runs.append([model.should_drop() for _ in range(5_000)])
        assert runs[0] == runs[1]
        assert isinstance(spec.bind(random.Random(0)), GilbertElliottLoss)


class TestOutageWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            OutageWindow(start=0.0, duration=0.0)

    def test_end(self):
        assert OutageWindow(start=1.0, duration=0.5).end == pytest.approx(1.5)


class TestPathSchedule:
    def test_empty_schedule_is_inert(self):
        assert PathSchedule().is_inert
        assert not PathSchedule(reorder_rate=0.1, reorder_delay=0.01).is_inert
        assert not PathSchedule(outages=(OutageWindow(0.0, 1.0),)).is_inert

    def test_validation(self):
        with pytest.raises(ValueError):
            PathSchedule(reorder_rate=0.1)  # needs a delay bound
        with pytest.raises(ValueError):
            PathSchedule(duplicate_rate=-0.1)

    def test_initial_conditions_from_trace(self):
        slow = BASE.scaled(bandwidth_factor=0.5)
        sched = PathSchedule(trace=ConditionTrace([TracePoint(0.0, slow)]))
        assert sched.initial_conditions(BASE) is slow
        assert PathSchedule().initial_conditions(BASE) is BASE

    def test_install_applies_trace_points(self):
        loop = EventLoop()
        path = make_path(loop)
        slow = BASE.scaled(bandwidth_factor=0.25)
        sched = PathSchedule(
            trace=ConditionTrace([TracePoint(0.0, BASE), TracePoint(0.5, slow)])
        )
        sched.install(loop, path, random.Random(1))
        assert path.forward.bandwidth_bps == BASE.bandwidth_bps
        loop.run()
        assert loop.now == pytest.approx(0.5)
        assert path.forward.bandwidth_bps == slow.bandwidth_bps

    def test_install_binds_loss_models_both_directions(self):
        loop = EventLoop()
        path = make_path(loop)
        sched = PathSchedule(
            gilbert_elliott=GilbertElliott(0.1, 0.3),
            reverse_gilbert_elliott=GilbertElliott(0.2, 0.4),
        )
        sched.install(loop, path, random.Random(1))
        assert isinstance(path.forward.loss_model, GilbertElliottLoss)
        assert isinstance(path.reverse.loss_model, GilbertElliottLoss)
        assert path.forward.loss_model is not path.reverse.loss_model

    def test_outage_drops_everything_then_recovers(self):
        loop = EventLoop()
        path = make_path(loop)
        delivered = []
        path.deliver_to_client = delivered.append
        sched = PathSchedule(outages=(OutageWindow(start=0.1, duration=0.2),))
        sched.install(loop, path, random.Random(1))

        from repro.simnet.link import Datagram

        sent_during_outage = []
        loop.post_at(0.2, lambda: sent_during_outage.append(
            path.send_to_client(Datagram(b"x" * 100))
        ))
        sent_after = []
        loop.post_at(0.4, lambda: sent_after.append(
            path.send_to_client(Datagram(b"y" * 100))
        ))
        loop.run()
        assert sent_during_outage == [False]
        assert sent_after == [True]
        assert path.forward.stats.outage_losses == 1
        assert [d.payload[:1] for d in delivered] == [b"y"]

    def test_schedule_is_deterministic_per_seed(self):
        """Two installs with equal seeds produce identical drop decisions."""
        from repro.simnet.link import Datagram

        def run(seed):
            loop = EventLoop()
            path = make_path(loop, seed=99)
            sched = PathSchedule(
                gilbert_elliott=GilbertElliott(0.1, 0.3, loss_bad=0.7)
            )
            sched.install(loop, path, random.Random(seed))
            return [path.send_to_client(Datagram(b"z" * 50)) for _ in range(500)]

        assert run(5) == run(5)
        assert run(5) != run(6)

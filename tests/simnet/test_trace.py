"""Tests for time-varying condition traces."""

import random

import pytest

from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram
from repro.simnet.path import NetworkConditions, Path
from repro.simnet.trace import ConditionTrace, TracePoint


COND_A = NetworkConditions(bandwidth_bps=1e6, rtt=0.05)
COND_B = NetworkConditions(bandwidth_bps=2e6, rtt=0.10)


def test_trace_requires_points():
    with pytest.raises(ValueError):
        ConditionTrace([])


def test_trace_must_start_at_zero():
    with pytest.raises(ValueError):
        ConditionTrace([TracePoint(1.0, COND_A)])


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        TracePoint(-1.0, COND_A)


def test_constant_trace():
    trace = ConditionTrace.constant(COND_A)
    assert trace.initial_conditions == COND_A
    assert trace.conditions_at(100.0) == COND_A


def test_conditions_at_piecewise_lookup():
    trace = ConditionTrace([TracePoint(0.0, COND_A), TracePoint(10.0, COND_B)])
    assert trace.conditions_at(0.0) == COND_A
    assert trace.conditions_at(9.999) == COND_A
    assert trace.conditions_at(10.0) == COND_B
    assert trace.conditions_at(50.0) == COND_B


def test_points_sorted_on_construction():
    trace = ConditionTrace([TracePoint(10.0, COND_B), TracePoint(0.0, COND_A)])
    assert trace.points[0].time == 0.0


def test_install_schedules_changes():
    loop = EventLoop()
    path = Path(loop, COND_A, rng=random.Random(0))
    trace = ConditionTrace([TracePoint(0.0, COND_A), TracePoint(5.0, COND_B)])
    trace.install(loop, path)
    assert path.conditions == COND_A
    loop.run_until(4.0)
    assert path.conditions == COND_A
    loop.run_until(6.0)
    assert path.conditions == COND_B


def test_install_is_relative_to_now():
    loop = EventLoop()
    path = Path(loop, COND_A, rng=random.Random(0))
    loop.run_until(100.0)
    trace = ConditionTrace([TracePoint(0.0, COND_A), TracePoint(5.0, COND_B)])
    trace.install(loop, path)
    loop.run_until(104.0)
    assert path.conditions == COND_A
    loop.run_until(106.0)
    assert path.conditions == COND_B


def test_trace_drives_delivery_rate():
    loop = EventLoop()
    slow = NetworkConditions(bandwidth_bps=8_000.0, rtt=0.0)
    fast = NetworkConditions(bandwidth_bps=800_000.0, rtt=0.0)
    path = Path(loop, slow, rng=random.Random(0))
    trace = ConditionTrace([TracePoint(0.0, slow), TracePoint(1.0, fast)])
    trace.install(loop, path)
    times = []
    path.deliver_to_client = lambda d: times.append(loop.now)
    path.send_to_client(Datagram(b"x" * 100))  # 0.1s at slow rate
    loop.run_until(2.0)
    path.send_to_client(Datagram(b"x" * 100))  # 0.001s at fast rate
    loop.run()
    assert times[0] == pytest.approx(0.1)
    assert times[1] - 2.0 == pytest.approx(0.001)

"""Tests for the duplex path abstraction."""

import random

import pytest

from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram
from repro.simnet.path import NetworkConditions, Path


def make_path(loop, **kwargs):
    defaults = dict(bandwidth_bps=8_000_000.0, rtt=0.05, loss_rate=0.0, buffer_bytes=25_000)
    defaults.update(kwargs)
    return Path(loop, NetworkConditions(**defaults), rng=random.Random(3))


def test_conditions_validate():
    with pytest.raises(ValueError):
        NetworkConditions(bandwidth_bps=0, rtt=0.05)
    with pytest.raises(ValueError):
        NetworkConditions(bandwidth_bps=1e6, rtt=-1)


def test_bdp_computation():
    cond = NetworkConditions(bandwidth_bps=8_000_000.0, rtt=0.05)
    assert cond.bdp_bytes == 50_000


def test_one_way_delay_is_half_rtt():
    cond = NetworkConditions(bandwidth_bps=1e6, rtt=0.1)
    assert cond.one_way_delay == pytest.approx(0.05)


def test_scaled_returns_modified_copy():
    cond = NetworkConditions(bandwidth_bps=1e6, rtt=0.1)
    drifted = cond.scaled(bandwidth_factor=2.0, rtt_factor=0.5)
    assert drifted.bandwidth_bps == 2e6
    assert drifted.rtt == pytest.approx(0.05)
    assert cond.bandwidth_bps == 1e6  # original untouched


def test_round_trip_takes_one_rtt():
    loop = EventLoop()
    path = make_path(loop, rtt=0.1, bandwidth_bps=1e9)
    arrived = []
    path.deliver_to_client = lambda d: path.send_to_server(Datagram(b"ack"))
    path.deliver_to_server = lambda d: arrived.append(loop.now)
    path.send_to_client(Datagram(b"data"))
    loop.run()
    assert arrived and arrived[0] == pytest.approx(0.1, rel=0.01)


def test_directions_are_independent():
    loop = EventLoop()
    path = make_path(loop)
    to_client, to_server = [], []
    path.deliver_to_client = to_client.append
    path.deliver_to_server = to_server.append
    path.send_to_client(Datagram(b"down"))
    path.send_to_server(Datagram(b"up"))
    loop.run()
    assert [d.payload for d in to_client] == [b"down"]
    assert [d.payload for d in to_server] == [b"up"]


def test_asymmetric_reverse_bandwidth():
    loop = EventLoop()
    path = make_path(loop, reverse_bandwidth_bps=8_000.0, rtt=0.0)
    times = []
    path.deliver_to_server = lambda d: times.append(loop.now)
    path.send_to_server(Datagram(b"x" * 100))  # 100B at 8kbps = 0.1s
    loop.run()
    assert times[0] == pytest.approx(0.1)


def test_update_conditions_applies_to_new_packets():
    loop = EventLoop()
    path = make_path(loop, bandwidth_bps=8_000.0, rtt=0.0)
    times = []
    path.deliver_to_client = lambda d: times.append(loop.now)
    path.send_to_client(Datagram(b"x" * 100))  # 0.1s at 8kbps
    loop.run()
    path.update_conditions(NetworkConditions(bandwidth_bps=80_000.0, rtt=0.0))
    path.send_to_client(Datagram(b"x" * 100))  # 0.01s at 80kbps
    loop.run()
    assert times[1] - times[0] == pytest.approx(0.01)

"""Byte-identity tests for the batched-admission ("fast") link path.

The fast path must be observationally indistinguishable from per-packet
``send()`` calls: identical admission results, identical delivery
timestamps, identical rng consumption, identical stats — and identical
event *posting instants*, because the ``(when, seq)`` tiebreak of events
that collide on the same float timestamp is part of the simulator's
determinism contract.  These tests drive both implementations through
randomized workloads and diff every observable, plus one constructed
exact-collision scenario that any up-front delivery scheduling gets
wrong.
"""

import random

import pytest

from repro.simnet.batch import BatchEventLoop
from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram, Link


def _random_trains(rng, n_trains=60):
    trains = []
    t = 0.0
    for _ in range(n_trains):
        t += rng.choice([0.0, 0.0001, 0.002, 0.05])
        trains.append((t, [rng.randint(40, 1500) for _ in range(rng.randint(1, 24))]))
    return trains


def _stats_tuple(link):
    s = link.stats
    return (
        s.admitted,
        s.dropped,
        s.delivered,
        s.bytes_delivered,
        s.random_losses,
        s.buffer_losses,
        s.outage_losses,
        s.max_queue_bytes,
    )


def _run_trains(link, loop, trains, burst):
    """Replay ``trains`` = [(at, [sizes])]; return every observable."""
    delivered = []
    link.on_deliver = lambda d: delivered.append((loop.now, d.payload))
    results = []
    for at, sizes in trains:
        datagrams = [Datagram(b"x" * s) for s in sizes]
        if burst:
            loop.post_at(at, lambda ds=datagrams: results.extend(link.send_burst(ds)))
        else:
            loop.post_at(
                at, lambda ds=datagrams: results.extend(link.send(d) for d in ds)
            )
    loop.run()
    return results, delivered, _stats_tuple(link)


@pytest.mark.parametrize("seed", [1, 7, 23, 91])
@pytest.mark.parametrize("loss_rate", [0.0, 0.15])
def test_fast_burst_matches_per_packet_sends_exactly(seed, loss_rate):
    workload = _random_trains(random.Random(seed))
    observed = {}
    for fast in (False, True):
        loop = EventLoop()
        link = Link(
            loop,
            bandwidth_bps=6_000_000.0,
            propagation_delay=0.02,
            buffer_bytes=20_000,
            loss_rate=loss_rate,
            rng=random.Random(seed),
            fast=fast,
        )
        observed[fast] = _run_trains(link, loop, workload, burst=fast)
    assert observed[False] == observed[True]


def test_fast_burst_matches_under_heavy_buffer_pressure():
    workload = [(0.0, [1200] * 64)]  # one giant train at t=0, tiny buffer
    observed = {}
    for fast in (False, True):
        loop = EventLoop()
        link = Link(
            loop,
            bandwidth_bps=1_000_000.0,
            propagation_delay=0.005,
            buffer_bytes=6_000,
            rng=random.Random(3),
            fast=fast,
        )
        observed[fast] = _run_trains(link, loop, workload, burst=fast)
    assert observed[False] == observed[True]
    assert observed[True][2][5] > 0  # buffer losses actually exercised


def test_send_burst_matches_sequential_sends():
    rng = random.Random(11)
    trains = []
    t = 0.0
    for _ in range(30):
        trains.append((t, [rng.randint(40, 1500) for _ in range(rng.randint(1, 40))]))
        t += 0.004
    observed = {}
    for burst in (False, True):
        loop = EventLoop()
        link = Link(
            loop,
            bandwidth_bps=4_000_000.0,
            propagation_delay=0.01,
            buffer_bytes=30_000,
            loss_rate=0.1,
            rng=random.Random(5),
            fast=True,
        )
        observed[burst] = _run_trains(link, loop, trains, burst=burst)
    assert observed[False] == observed[True]


def test_admission_collides_with_serialisation_finish():
    """A send at *exactly* a serialisation-finish instant, from an event
    with a smaller ``seq``, must see the buffer still occupied.

    This is the scenario that rules out scheduling deliveries up front:
    the finish event's queue pop happens at ``(T, seq_finish)``, and a
    competing admission at ``(T, seq_smaller)`` runs before it.  Lazy
    accounting keyed on the timestamp alone frees the buffer too early
    and flips the drop-tail decision.
    """
    observed = {}
    for fast in (False, True):
        loop = EventLoop()
        link = Link(
            loop,
            bandwidth_bps=80_000.0,  # 1000 B -> exactly 0.1 s on the wire
            propagation_delay=0.005,
            buffer_bytes=2_000,
            rng=random.Random(9),
            fast=fast,
        )
        delivered = []
        link.on_deliver = lambda d: delivered.append(loop.now)
        late_result = []

        def setup():
            # Posted *before* the head packet's finish event, so at
            # t=0.1 this runs first (smaller seq).  The buffer still
            # holds both queued packets at that point: reject.
            loop.post_at(0.1, lambda: late_result.append(link.send(Datagram(b"d" * 1000))))
            assert link.send_burst([Datagram(b"a" * 1000)] * 3) == [True, True, True]

        loop.post_at(0.0, setup)
        loop.run()
        observed[fast] = (late_result, delivered, _stats_tuple(link))
    assert observed[False] == observed[True]
    assert observed[True][0] == [False]  # the colliding send was dropped
    assert observed[True][2][5] == 1  # ...as a buffer loss


def test_burst_on_member_loop_matches_solo_loop():
    """A send_burst driven on a MemberLoop must equal solo-loop runs."""
    sizes = [rng_size for rng_size in (300, 900, 1500, 40, 700) * 6]
    observed = {}
    for mode in ("solo", "batch"):
        if mode == "solo":
            loop = EventLoop()
            target = loop
        else:
            kernel = BatchEventLoop()
            target = kernel.member()
        link = Link(
            target,
            bandwidth_bps=2_500_000.0,
            propagation_delay=0.008,
            buffer_bytes=10**6,
            rng=random.Random(4),
            fast=True,
        )
        delivered = []
        link.on_deliver = lambda d: delivered.append((target.now, d.size))
        link.send_burst([Datagram(b"w" * s) for s in sizes])
        if mode == "solo":
            loop.run()
        else:
            kernel.run()
        observed[mode] = delivered
    assert observed["solo"] == observed["batch"]


def test_impaired_fast_link_degrades_to_legacy():
    """Reorder/duplicate force the per-packet path even when fast=True."""
    observed = {}
    for fast in (False, True):
        loop = EventLoop()
        link = Link(
            loop,
            bandwidth_bps=8_000_000.0,
            propagation_delay=0.001,
            rng=random.Random(6),
            fast=fast,
        )
        link.duplicate_rate = 1.0
        delivered = []
        link.on_deliver = lambda d: delivered.append(loop.now)
        assert link.send_burst([Datagram(b"q" * 100)]) == [True]
        loop.run()
        observed[fast] = (delivered, link.stats.duplicated)
    assert observed[False] == observed[True]
    assert observed[True][1] == 1  # the duplicate actually happened


def test_fast_queue_bytes_tracks_legacy():
    loop = EventLoop()
    link = Link(
        loop,
        bandwidth_bps=80_000.0,
        propagation_delay=0.0,
        buffer_bytes=10_000,
        rng=random.Random(8),
        fast=True,
    )
    link.send_burst([Datagram(b"x" * 1_000)] * 5)  # 0.1s serialisation each
    # First packet is on the wire, four are buffered — same as legacy.
    assert link.queue_bytes == 4_000
    assert link.stats.max_queue_bytes == 4_000
    loop.run_until(0.35)
    # Three serialisation finishes have passed, the fourth is on the wire.
    assert link.queue_bytes == 1_000
    loop.run()
    assert link.queue_bytes == 0

"""Property tests: CalendarQueue pops in exact heapq ``(when, seq)`` order.

The batched kernel's byte-identity argument rests entirely on the
calendar queue being order-equivalent to the flat heap the solo engine
uses.  These tests drive randomized workloads — including exact time
ties, lazy cancellations, and callbacks that re-post into the bucket
currently being served — and assert the pop sequence matches a heapq
reference element for element.
"""

import heapq
import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.batch import BatchEventLoop
from repro.simnet.calqueue import CalendarQueue
from repro.simnet.engine import EventLoop

# Times deliberately mix sub-bucket clusters, wide spreads, and exact
# repeats (ties) around the default 1 ms bucket edges.
time_strategy = st.one_of(
    st.floats(min_value=0.0, max_value=0.01, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, 0.001, 0.002, 0.0005, 0.25, 1.0, 2.9999999, 3.0]),
)


class TestPopOrderMatchesHeapq:
    @given(st.lists(time_strategy, min_size=0, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_bulk_push_then_drain(self, times):
        queue = CalendarQueue()
        heap = []
        for seq, when in enumerate(times):
            queue.push((when, seq))
            heapq.heappush(heap, (when, seq))
        assert len(queue) == len(heap)
        popped = []
        while True:
            entry = queue.pop()
            if entry is None:
                break
            popped.append(entry)
        reference = [heapq.heappop(heap) for _ in range(len(heap))]
        assert popped == reference
        assert len(queue) == 0
        assert not queue

    @given(
        st.lists(
            st.tuples(st.sampled_from(["push", "pop", "peek"]), time_strategy),
            min_size=0,
            max_size=400,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_interleaved_push_pop_peek(self, ops):
        """Pops interleaved with pushes — the re-entrant insert path.

        Pushes racing the active bucket may only schedule at/after the
        last popped time (the engine's no-past-scheduling contract), so
        the pushed time is clamped to the reference queue's frontier.
        """
        queue = CalendarQueue()
        heap = []
        seq = itertools.count()
        frontier = 0.0
        for op, when in ops:
            if op == "push":
                when = max(when, frontier)
                s = next(seq)
                queue.push((when, s))
                heapq.heappush(heap, (when, s))
            elif op == "pop":
                expected = heapq.heappop(heap) if heap else None
                got = queue.pop()
                assert got == expected
                if got is not None:
                    frontier = got[0]
            else:
                expected = heap[0] if heap else None
                assert queue.peek() == expected
            assert len(queue) == len(heap)
        drained = []
        while queue:
            drained.append(queue.pop())
        assert drained == [heapq.heappop(heap) for _ in range(len(heap))]

    @given(st.lists(st.tuples(time_strategy, time_strategy), min_size=1, max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_reposts_from_consumer(self, pairs):
        """Each popped entry re-posts a follow-up relative to its time.

        This exercises the ``_incoming`` side list: follow-ups landing in
        the bucket currently being drained must interleave exactly as the
        heapq reference interleaves them.
        """
        queue = CalendarQueue()
        heap = []
        seq = itertools.count()
        followup = {}
        for when, delta in pairs:
            s = next(seq)
            queue.push((when, s))
            heapq.heappush(heap, (when, s))
            followup[s] = delta
        while True:
            got = queue.pop()
            expected = heapq.heappop(heap) if heap else None
            assert got == expected
            if got is None:
                break
            delta = followup.pop(got[1], None)
            if delta is not None:
                # One generation of re-posts, scheduled at or after "now".
                when = got[0] + delta
                s = next(seq)
                queue.push((when, s))
                heapq.heappush(heap, (when, s))

    @given(st.integers(min_value=1, max_value=50), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_far_future_sparse_timers(self, count, rnd):
        """Far timers (seconds out, sparse buckets) keep exact order."""
        queue = CalendarQueue(bucket_width=0.001)
        heap = []
        for seq in range(count):
            when = rnd.uniform(0.0, 3600.0)
            queue.push((when, seq))
            heapq.heappush(heap, (when, seq))
        out = []
        while queue:
            out.append(queue.pop())
        assert out == [heapq.heappop(heap) for _ in range(len(heap))]


class TestQueueBasics:
    def test_empty_pop_and_peek(self):
        queue = CalendarQueue()
        assert queue.pop() is None
        assert queue.peek() is None
        assert len(queue) == 0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarQueue(bucket_width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(bucket_width=-1.0)

    def test_peek_does_not_consume(self):
        queue = CalendarQueue()
        queue.push((1.0, 0))
        queue.push((0.5, 1))
        assert queue.peek() == (0.5, 1)
        assert queue.peek() == (0.5, 1)
        assert len(queue) == 2
        assert queue.pop() == (0.5, 1)
        assert queue.pop() == (1.0, 0)

    def test_bucket_width_property(self):
        assert CalendarQueue(bucket_width=0.25).bucket_width == 0.25


# ---------------------------------------------------------------------------
# Kernel-level equivalence: BatchEventLoop members vs a solo EventLoop on the
# same randomized program of posts, cancellations, and re-posts from inside
# callbacks.
# ---------------------------------------------------------------------------

program_strategy = st.lists(
    st.tuples(
        st.sampled_from(["post", "call", "cancel", "chain"]),
        st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


def _install_program(loop, program):
    """Schedule a deterministic program on an EventLoop-compatible loop.

    Returns the log list that callbacks append ``(tag, now)`` pairs to.
    """
    log = []
    handles = []

    def fire(tag):
        log.append((tag, loop.now))

    def chain(tag, delay):
        log.append((tag, loop.now))
        loop.post_later(delay, fire, tag + "'")
        # Cancel the oldest still-pending handle, from inside a callback.
        for h in handles:
            if not h.cancelled:
                h.cancel()
                break

    for i, (kind, when, delay) in enumerate(program):
        tag = f"{kind}{i}"
        if kind == "post":
            loop.post_at(when, fire, tag)
        elif kind == "call":
            handles.append(loop.call_at(when, fire, tag))
        elif kind == "cancel":
            h = loop.call_at(when, fire, tag)
            if i % 2:
                h.cancel()
            handles.append(h)
        else:
            loop.post_at(when, chain, tag, delay)
    return log


def _solo_run(program):
    loop = EventLoop()
    log = _install_program(loop, program)
    loop.run()
    return log, loop


@given(program_strategy)
@settings(max_examples=150, deadline=None)
def test_batch_member_matches_solo_eventloop(program):
    expected, solo = _solo_run(program)

    kernel = BatchEventLoop()
    member = kernel.member()
    log = _install_program(member, program)
    kernel.run()

    assert log == expected
    assert member.processed_events == solo.processed_events
    assert member.pending_events == solo.pending_events == 0


@given(program_strategy, program_strategy, st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_two_members_do_not_interfere(program_a, program_b, seed):
    """Two members batched together each match their solo execution."""
    expected_a, _ = _solo_run(program_a)
    expected_b, _ = _solo_run(program_b)

    kernel = BatchEventLoop()
    member_a = kernel.member()
    member_b = kernel.member()
    # Registration order must not matter: install in random order.
    if random.Random(seed).random() < 0.5:
        log_b = _install_program(member_b, program_b)
        log_a = _install_program(member_a, program_a)
    else:
        log_a = _install_program(member_a, program_a)
        log_b = _install_program(member_b, program_b)
    kernel.run()
    assert log_a == expected_a
    assert log_b == expected_b

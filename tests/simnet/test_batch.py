"""BatchEventLoop member semantics and the array-backed burst lane."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.batch import BatchEventLoop
from repro.simnet.engine import SimulationError


class TestMemberLoopApi:
    def test_member_clock_starts_at_zero(self):
        kernel = BatchEventLoop()
        member = kernel.member()
        assert member.now == 0.0
        assert member.pending_events == 0

    def test_member_custom_start_time(self):
        kernel = BatchEventLoop()
        member = kernel.member(start_time=7.5)
        assert member.now == 7.5

    def test_past_scheduling_rejected(self):
        kernel = BatchEventLoop()
        member = kernel.member(start_time=2.0)
        with pytest.raises(SimulationError):
            member.call_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            member.post_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            member.call_later(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            member.post_later(-0.1, lambda: None)

    def test_members_cannot_self_run(self):
        kernel = BatchEventLoop()
        member = kernel.member()
        with pytest.raises(SimulationError):
            member.run()
        with pytest.raises(SimulationError):
            member.run_until(1.0)

    def test_cancel_updates_pending(self):
        kernel = BatchEventLoop()
        member = kernel.member()
        handle = member.call_later(1.0, lambda: None)
        assert member.pending_events == 1
        handle.cancel()
        assert member.pending_events == 0
        kernel.run()
        assert member.processed_events == 0

    def test_kernel_not_reentrant(self):
        kernel = BatchEventLoop()
        member = kernel.member()
        seen = []

        def reenter():
            with pytest.raises(SimulationError):
                kernel.run()
            seen.append(True)

        member.post_later(0.1, reenter)
        kernel.run()
        assert seen == [True]

    def test_max_events_cap(self):
        kernel = BatchEventLoop()
        member = kernel.member()
        for i in range(10):
            member.post_at(0.01 * i, lambda: None)
        assert kernel.run(max_events=4) == 4
        assert member.processed_events == 4
        assert kernel.run() == 6

    def test_kernel_aggregates(self):
        kernel = BatchEventLoop()
        a = kernel.member()
        b = kernel.member()
        a.post_later(0.1, lambda: None)
        b.post_later(0.2, lambda: None)
        b.post_later(0.3, lambda: None)
        assert kernel.pending_events == 3
        assert len(kernel.members) == 2
        kernel.run()
        assert kernel.processed_events == 3
        assert kernel.pending_events == 0


class TestBurstLane:
    def _scalar_reference(self, times, tags, other_events):
        """Per-event posts on a fresh kernel — the semantic reference."""
        kernel = BatchEventLoop()
        member = kernel.member()
        log = []
        for t, tag in other_events:
            member.post_at(t, lambda tag=tag: log.append((tag, member.now)))
        for t, tag in zip(times, tags):
            member.post_at(t, lambda tag=tag: log.append((tag, member.now)))
        kernel.run()
        return log

    def test_burst_matches_individual_posts(self):
        times = [0.001 * i for i in range(50)]
        tags = [f"b{i}" for i in range(50)]
        other = [(0.0125, "x"), (0.0305, "y"), (1.0, "z")]
        expected = self._scalar_reference(times, tags, other)

        kernel = BatchEventLoop()
        member = kernel.member()
        log = []
        for t, tag in other:
            member.post_at(t, lambda tag=tag: log.append((tag, member.now)))
        member.post_burst(times, lambda tag: log.append((tag, member.now)), tags)
        assert member.pending_events == 53
        kernel.run()
        assert log == expected
        assert member.processed_events == 53
        assert member.pending_events == 0

    def test_burst_interleaves_with_reposts(self):
        """A callback re-posting mid-train forces burst re-insertion."""
        times = [0.002 * i for i in range(20)]
        tags = list(range(20))

        def build(run_burst):
            kernel = BatchEventLoop()
            member = kernel.member()
            log = []

            def tick(tag):
                log.append((tag, member.now))
                if tag == "t0":
                    member.post_later(0.0031, tick, "t1")

            member.post_at(0.0005, tick, "t0")
            if run_burst:
                member.post_burst(
                    times, lambda tag: log.append((tag, member.now)), tags
                )
            else:
                for t, tag in zip(times, tags):
                    member.post_at(t, lambda tag=tag: log.append((tag, member.now)))
            kernel.run()
            return log

        assert build(True) == build(False)

    def test_burst_validation(self):
        kernel = BatchEventLoop()
        member = kernel.member(start_time=1.0)
        with pytest.raises(SimulationError):
            member.post_burst([0.5], lambda p: None, ["a"])
        with pytest.raises(SimulationError):
            member.post_burst([1.5, 2.0], lambda p: None, ["a"])
        member.post_burst([], lambda p: None, [])
        assert member.pending_events == 0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.05, allow_nan=False), min_size=1, max_size=60),
        st.lists(st.floats(min_value=0.0, max_value=0.05, allow_nan=False), max_size=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_burst_equivalence_randomized(self, burst_times, single_times):
        burst_times = sorted(burst_times)
        tags = [f"b{i}" for i in range(len(burst_times))]
        other = [(t, f"s{i}") for i, t in enumerate(single_times)]

        expected = self._scalar_reference(burst_times, tags, other)

        kernel = BatchEventLoop()
        member = kernel.member()
        log = []
        for t, tag in other:
            member.post_at(t, lambda tag=tag: log.append((tag, member.now)))
        member.post_burst(burst_times, lambda tag: log.append((tag, member.now)), tags)
        kernel.run()
        assert log == expected

    def test_two_member_bursts_interleave(self):
        kernel = BatchEventLoop()
        a = kernel.member()
        b = kernel.member()
        log = []
        a.post_burst([0.001, 0.003, 0.005], lambda p: log.append(("a", p, a.now)), [0, 1, 2])
        b.post_burst([0.002, 0.004, 0.006], lambda p: log.append(("b", p, b.now)), [0, 1, 2])
        kernel.run()
        assert log == [
            ("a", 0, 0.001),
            ("b", 0, 0.002),
            ("a", 1, 0.003),
            ("b", 1, 0.004),
            ("a", 2, 0.005),
            ("b", 2, 0.006),
        ]
        # Each member observed only its own clock.
        assert a.now == 0.005
        assert b.now == 0.006

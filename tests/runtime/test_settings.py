"""The consolidated ``WIRA_*`` knob parser and its delegating consumers."""

from pathlib import Path

import pytest

from repro import obs, sanitize
from repro.experiments import runner
from repro.runtime import settings
from repro.runtime.settings import Settings


class TestFromEnv:
    def test_defaults_with_empty_environment(self):
        parsed = Settings.from_env({})
        assert parsed.jobs == 1
        assert parsed.disk_cache is True
        assert parsed.sanitize is False
        assert parsed.trace is False
        assert parsed.trace_dir is None
        assert parsed.cache_dir == settings.default_cache_dir()

    def test_jobs_parse(self):
        assert Settings.from_env({"WIRA_JOBS": "4"}).jobs == 4
        assert Settings.from_env({"WIRA_JOBS": " 2 "}).jobs == 2
        # Historic semantics: invalid and non-positive fall back to 1.
        assert Settings.from_env({"WIRA_JOBS": "banana"}).jobs == 1
        assert Settings.from_env({"WIRA_JOBS": "0"}).jobs == 1
        assert Settings.from_env({"WIRA_JOBS": "-3"}).jobs == 1

    @pytest.mark.parametrize("raw", ["1", "true", "YES", " on "])
    def test_opt_in_truthy(self, raw):
        parsed = Settings.from_env({"WIRA_SANITIZE": raw, "WIRA_TRACE": raw})
        assert parsed.sanitize is True
        assert parsed.trace is True

    @pytest.mark.parametrize("raw", ["", "0", "off", "2", "enabled"])
    def test_opt_in_anything_else_is_off(self, raw):
        parsed = Settings.from_env({"WIRA_SANITIZE": raw, "WIRA_TRACE": raw})
        assert parsed.sanitize is False
        assert parsed.trace is False

    @pytest.mark.parametrize("raw", ["0", "false", "NO", " off "])
    def test_disk_cache_falsy_disables(self, raw):
        assert Settings.from_env({"WIRA_DISK_CACHE": raw}).disk_cache is False

    @pytest.mark.parametrize("raw", ["", "1", "yes", "anything"])
    def test_disk_cache_default_on(self, raw):
        env = {"WIRA_DISK_CACHE": raw} if raw else {}
        assert Settings.from_env(env).disk_cache is True

    def test_paths(self):
        parsed = Settings.from_env(
            {"WIRA_CACHE_DIR": "/tmp/wira-c", "WIRA_TRACE_DIR": "traces"}
        )
        assert parsed.cache_dir == Path("/tmp/wira-c")
        assert parsed.trace_dir == Path("traces")
        assert Settings.from_env({"WIRA_TRACE_DIR": "  "}).trace_dir is None


class TestCurrentAndOverrides:
    def test_current_tracks_live_environment(self, monkeypatch):
        monkeypatch.delenv("WIRA_JOBS", raising=False)
        assert settings.current().jobs == 1
        monkeypatch.setenv("WIRA_JOBS", "3")
        assert settings.current().jobs == 3

    def test_configure_pins(self, monkeypatch):
        monkeypatch.setenv("WIRA_JOBS", "7")
        pinned = Settings(jobs=2)
        previous = settings.configure(pinned)
        try:
            assert settings.configured()
            assert settings.current().jobs == 2  # env no longer consulted
        finally:
            settings.configure(previous)
        assert settings.current().jobs == 7

    def test_overridden_scope_restores(self):
        with settings.overridden(jobs=5, disk_cache=False) as s:
            assert s.jobs == 5
            assert settings.current().disk_cache is False
        assert settings.current().disk_cache is True
        assert not settings.configured()

    def test_overridden_rejects_unknown_field(self):
        with pytest.raises(TypeError, match="unknown Settings field"):
            with settings.overridden(frobnicate=True):
                pass  # pragma: no cover


class TestDelegatingConsumers:
    """The legacy accessors must keep their exact historic behaviour."""

    def test_runner_resolve_jobs(self, monkeypatch):
        monkeypatch.setenv("WIRA_JOBS", "6")
        assert runner.resolve_jobs() == 6
        assert runner.resolve_jobs(2) == 2  # explicit argument wins
        assert runner.resolve_jobs(0) == 1
        monkeypatch.setenv("WIRA_JOBS", "not-a-number")
        assert runner.resolve_jobs() == 1

    def test_runner_disk_cache_enabled(self, monkeypatch):
        monkeypatch.setenv("WIRA_DISK_CACHE", "0")
        assert runner.disk_cache_enabled() is False
        assert runner.disk_cache_enabled(True) is True
        monkeypatch.delenv("WIRA_DISK_CACHE", raising=False)
        assert runner.disk_cache_enabled() is True

    def test_runner_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("WIRA_CACHE_DIR", str(tmp_path))
        assert runner.cache_dir() == tmp_path
        monkeypatch.delenv("WIRA_CACHE_DIR", raising=False)
        assert runner.cache_dir() == settings.default_cache_dir()

    def test_sanitize_env_requested(self, monkeypatch):
        monkeypatch.setenv("WIRA_SANITIZE", "1")
        assert sanitize.env_requested() is True
        monkeypatch.setenv("WIRA_SANITIZE", "0")
        assert sanitize.env_requested() is False

    def test_obs_env_requested_and_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("WIRA_TRACE", "yes")
        monkeypatch.setenv("WIRA_TRACE_DIR", str(tmp_path))
        assert obs.env_requested() is True
        assert obs.env_trace_dir() == tmp_path
        monkeypatch.delenv("WIRA_TRACE", raising=False)
        monkeypatch.delenv("WIRA_TRACE_DIR", raising=False)
        assert obs.env_requested() is False
        assert obs.env_trace_dir() is None

    def test_pinned_settings_reach_consumers(self):
        with settings.overridden(jobs=9, sanitize=True, trace=True):
            assert runner.resolve_jobs() == 9
            assert sanitize.env_requested() is True
            assert obs.env_requested() is True

"""Shared fixtures for the trace-bus tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def restore_bus():
    """Never leak an installed bus (or a removed one) across tests."""
    previous = obs.ACTIVE
    yield
    obs.ACTIVE = previous

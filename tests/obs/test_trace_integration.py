"""End-to-end tracing: a real testbed session under an active bus.

These tests exercise every hook family at once (transport, recovery,
pacer, wira, session) and pin the profiler's defining identity — the
phase breakdown sums back to the session's measured FFCT exactly.
"""

import pytest

from repro import obs, sanitize
from repro.experiments import common
from repro.obs.timeline import (
    deployment_phase_table,
    mean_breakdown,
    phase_table,
    render_timeline,
)
from repro.sanitize.errors import SanitizerError


def traced_session(tmp_path=None):
    with obs.tracing(trace_dir=tmp_path) as bus:
        result = common.run_testbed_session(common.manual_params(66_000, 8_000_000.0))
    return result, bus


class TestTracedSession:
    def test_session_completes_with_all_hook_families(self):
        result, bus = traced_session()
        assert result.completed
        for name in (
            "transport:packet_sent",
            "transport:packet_received",
            "transport:packet_acked",
            "transport:handshake_complete",
            "recovery:metrics_updated",
            "wira:request_received",
            "wira:parse_begin",
            "wira:parse_complete",
            "wira:init_cwnd",
            "wira:init_pacing",
            "session:request_sent",
            "session:first_frame",
            "session:done",
        ):
            assert bus.counts.get(name, 0) >= 1, f"no {name} events"

    def test_breakdown_sums_exactly_to_ffct(self):
        result, _bus = traced_session()
        breakdown = result.phase_breakdown
        assert breakdown is not None
        assert breakdown.total == pytest.approx(result.ffct, abs=1e-12)

    def test_untraced_session_has_no_breakdown(self):
        obs.disable()
        result = common.run_testbed_session(common.manual_params(66_000, 8_000_000.0))
        assert result.completed and result.phase_breakdown is None

    def test_jsonl_files_written_and_valid(self, tmp_path):
        _result, _bus = traced_session(tmp_path)
        files = sorted(tmp_path.glob("*.jsonl"))
        assert len(files) == 2  # client and server connections
        for path in files:
            assert path.name.startswith("baseline-seed0--")
            assert obs.validate_trace_lines(path.read_text().splitlines()) == []

    def test_tracing_does_not_change_results(self):
        obs.disable()
        plain = common.run_testbed_session(common.manual_params(66_000, 8_000_000.0))
        traced, _bus = traced_session()
        assert traced.ffct == plain.ffct
        for k in (1, 2, 3, 4):
            assert traced.frame_time(k) == plain.frame_time(k)


class TestSanitizerTail:
    def test_error_captures_ring_tail_when_tracing(self):
        with obs.tracing() as bus:
            bus.emit(0.5, "transport:packet_sent", "ab", {"pn": 1})
            error = SanitizerError("pacer_tokens", "tokens went negative")
        assert error.trace_tail == [(0.5, "transport:packet_sent", "ab", {"pn": 1})]

    def test_error_without_tracing_has_empty_tail(self):
        obs.disable()
        error = SanitizerError("pacer_tokens", "tokens went negative")
        assert error.trace_tail == []

    def test_sanitized_and_traced_session_coexist(self):
        with sanitize.sanitized(), obs.tracing() as bus:
            result = common.run_testbed_session(
                common.manual_params(66_000, 8_000_000.0)
            )
        assert result.completed
        assert bus.counts.get("session:first_frame") == 1


class TestTimelineRendering:
    def breakdowns(self):
        result, _bus = traced_session()
        return {"Baseline": result.phase_breakdown, "Missing": None}

    def test_mean_breakdown(self):
        result, _bus = traced_session()
        b = result.phase_breakdown
        averaged = mean_breakdown([b, None, b])
        assert averaged == b
        assert mean_breakdown([None, None]) is None

    def test_phase_table_renders_deltas_and_dashes(self):
        by_scheme = self.breakdowns()
        by_scheme["Wira"] = by_scheme["Baseline"]
        rendered = phase_table(by_scheme, baseline="Baseline").render()
        assert "vs Baseline" in rendered
        assert "+0.0ms" in rendered  # identical breakdown: zero delta
        assert "-" in rendered  # the breakdown-less scheme row

    def test_render_timeline_scales_and_labels(self):
        rendered = render_timeline(self.breakdowns())
        assert "t=transmit" in rendered  # legend
        assert "(no breakdown)" in rendered  # None row
        assert "|" in rendered

    def test_render_timeline_without_breakdowns(self):
        assert "WIRA_TRACE=1" in render_timeline({"Baseline": None})

    def test_deployment_phase_table_none_when_untraced(self):
        obs.disable()
        from repro.experiments import runner
        from repro.workload.population import DeploymentConfig

        records = runner.run_deployment(
            DeploymentConfig(n_od_pairs=2, seed=3, video_frames_per_session=4),
            (common.Scheme.BASELINE,),
            use_cache=False,
        )
        assert deployment_phase_table(records) is None

"""TraceBus behaviour: ring, counts, session flushes, shard merging,
and the global enable/disable surface in :mod:`repro.obs`."""

import pytest

from repro import obs
from repro.obs import SHARDS_SUBDIR, TraceBus, merge_shard_traces, validate_trace_lines


def emit_session(bus, label, t0=0.0):
    """One tiny two-connection session, offset by ``t0``."""
    with bus.session(label):
        bus.emit(t0 + 0.00, "session:request_sent", "cli", {})
        bus.emit(t0 + 0.01, "wira:request_received", "srv", {"stream": "s"})
        bus.emit(t0 + 0.05, "session:first_frame", "cli", {"ffct": 0.05})


class TestRingAndCounts:
    def test_emit_reaches_ring_and_counts(self):
        bus = TraceBus()
        bus.emit(0.1, "session:first_byte", "ab", {})
        bus.emit(0.2, "session:first_byte", "ab", {})
        assert bus.counts == {"session:first_byte": 2}
        assert bus.ring_events() == [
            (0.1, "session:first_byte", "ab", {}),
            (0.2, "session:first_byte", "ab", {}),
        ]

    def test_ring_is_bounded(self):
        bus = TraceBus(ring_size=3)
        for i in range(10):
            bus.emit(float(i), "session:video_frame", "ab", {"k": i})
        events = bus.ring_events()
        assert len(events) == 3
        assert [e[0] for e in events] == [7.0, 8.0, 9.0]  # oldest first

    def test_counts_survive_ring_eviction(self):
        bus = TraceBus(ring_size=2)
        for i in range(5):
            bus.emit(float(i), "session:video_frame", "ab", {})
        assert bus.counts["session:video_frame"] == 5


class TestSessionScope:
    def test_session_collects_only_scoped_events(self):
        bus = TraceBus()
        bus.emit(0.0, "session:request_sent", "ab", {})  # outside: ring only
        with bus.session("s1") as events:
            bus.emit(0.1, "session:first_byte", "ab", {})
        assert [e[1] for e in events] == ["session:first_byte"]
        assert len(bus.ring_events()) == 2

    def test_memory_only_bus_writes_nothing(self, tmp_path):
        bus = TraceBus()  # no trace_dir
        emit_session(bus, "s1")
        assert list(tmp_path.iterdir()) == []

    def test_flush_writes_one_valid_file_per_connection(self, tmp_path):
        bus = TraceBus(trace_dir=tmp_path)
        emit_session(bus, "s1")
        names = sorted(p.name for p in tmp_path.glob("*.jsonl"))
        assert names == ["s1--cli.jsonl", "s1--srv.jsonl"]
        for path in tmp_path.glob("*.jsonl"):
            assert validate_trace_lines(path.read_text().splitlines()) == []

    def test_empty_session_writes_no_file(self, tmp_path):
        bus = TraceBus(trace_dir=tmp_path)
        with bus.session("empty"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_nested_sessions_restore_outer_buffer(self, tmp_path):
        bus = TraceBus(trace_dir=tmp_path)
        with bus.session("outer") as outer:
            bus.emit(0.0, "session:request_sent", "cli", {})
            with bus.session("inner"):
                bus.emit(0.1, "session:first_byte", "cli", {})
            bus.emit(0.2, "session:first_frame", "cli", {"ffct": 0.2})
        assert [e[1] for e in outer] == ["session:request_sent", "session:first_frame"]
        assert sorted(p.name for p in tmp_path.glob("*.jsonl")) == [
            "inner--cli.jsonl",
            "outer--cli.jsonl",
        ]


class TestShardMerge:
    def test_merged_shards_byte_identical_to_direct_flush(self, tmp_path):
        direct_dir = tmp_path / "direct"
        sharded_dir = tmp_path / "sharded"

        direct = TraceBus(trace_dir=direct_dir)
        emit_session(direct, "s1", t0=0.0)
        emit_session(direct, "s2", t0=1.0)

        sharded = TraceBus(trace_dir=sharded_dir)
        with sharded.shard("u2"):  # shard completion order must not matter
            emit_session(sharded, "s2", t0=1.0)
        with sharded.shard("u1"):
            emit_session(sharded, "s1", t0=0.0)
        merged = merge_shard_traces(sharded_dir)

        assert merged == 4  # two sessions x two connections
        direct_files = sorted(p.name for p in direct_dir.glob("*.jsonl"))
        assert sorted(p.name for p in sharded_dir.glob("*.jsonl")) == direct_files
        for name in direct_files:
            assert (sharded_dir / name).read_bytes() == (direct_dir / name).read_bytes()

    def test_shard_scope_restores_previous_routing(self, tmp_path):
        bus = TraceBus(trace_dir=tmp_path)
        with bus.shard("u1"):
            emit_session(bus, "in-shard")
        emit_session(bus, "at-root")
        assert (tmp_path / SHARDS_SUBDIR / "u1" / "in-shard--cli.jsonl").exists()
        assert (tmp_path / "at-root--cli.jsonl").exists()

    def test_merge_removes_shards_dir(self, tmp_path):
        bus = TraceBus(trace_dir=tmp_path)
        with bus.shard("u1"):
            emit_session(bus, "s1")
        merge_shard_traces(tmp_path)
        assert not (tmp_path / SHARDS_SUBDIR).exists()

    def test_merge_without_shards_is_noop(self, tmp_path):
        assert merge_shard_traces(tmp_path) == 0

    def test_merged_files_validate(self, tmp_path):
        bus = TraceBus(trace_dir=tmp_path)
        with bus.shard("u1"):
            emit_session(bus, "s1")
        merge_shard_traces(tmp_path)
        for path in tmp_path.glob("*.jsonl"):
            assert validate_trace_lines(path.read_text().splitlines()) == []


class TestGlobalSurface:
    def test_enable_disable(self):
        bus = obs.enable()
        assert obs.ACTIVE is bus and obs.enabled()
        obs.disable()
        assert obs.ACTIVE is None and not obs.enabled()

    def test_tracing_scope_restores_previous(self):
        obs.disable()
        with obs.tracing() as bus:
            assert obs.ACTIVE is bus
        assert obs.ACTIVE is None

    def test_tracing_accepts_trace_dir(self, tmp_path):
        with obs.tracing(trace_dir=tmp_path) as bus:
            assert bus.trace_dir == tmp_path

    def test_env_requested(self, monkeypatch):
        monkeypatch.delenv("WIRA_TRACE", raising=False)
        assert not obs.env_requested()
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("WIRA_TRACE", value)
            assert obs.env_requested()
        monkeypatch.setenv("WIRA_TRACE", "0")
        assert not obs.env_requested()

    def test_env_trace_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("WIRA_TRACE_DIR", raising=False)
        assert obs.env_trace_dir() is None
        monkeypatch.setenv("WIRA_TRACE_DIR", str(tmp_path))
        assert obs.env_trace_dir() == tmp_path

    def test_enable_picks_up_env_trace_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("WIRA_TRACE_DIR", str(tmp_path))
        with obs.tracing() as bus:
            assert bus.trace_dir == tmp_path

"""Schema tests: record encoding, decoding and trace-file validation."""

import json

import pytest

from repro.obs.events import (
    EVENT_NAMES,
    SCHEMA_VERSION,
    decode_record,
    encode_record,
    meta_record,
    validate_record,
    validate_trace_lines,
)


class TestEncoding:
    def test_canonical_encoding(self):
        line = encode_record(1.5, "session:done", "ab12", {"frames": 6})
        # sort_keys + tight separators: byte-stable across processes.
        assert line == '{"data":{"conn":"ab12","frames":6},"name":"session:done","time":1.5}'

    def test_conn_folded_into_data(self):
        record = decode_record(encode_record(0.0, "session:first_byte", "cd", {}))
        assert record["data"] == {"conn": "cd"}

    def test_input_data_not_mutated(self):
        data = {"k": 1}
        encode_record(0.0, "session:video_frame", "ab", data)
        assert data == {"k": 1}

    def test_roundtrip(self):
        line = encode_record(2.25, "transport:packet_sent", "ef", {"pn": 3, "size": 1200})
        record = decode_record(line)
        assert record["time"] == 2.25
        assert record["name"] == "transport:packet_sent"
        assert record["data"]["pn"] == 3

    def test_meta_record_carries_schema_version(self):
        record = decode_record(meta_record(0.0, "ab", "wira-c0-s0"))
        assert record["name"] == "trace:meta"
        assert record["data"]["schema_version"] == SCHEMA_VERSION
        assert record["data"]["label"] == "wira-c0-s0"

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_record("not json at all")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError):
            decode_record("[1, 2, 3]")


class TestEventNames:
    def test_all_names_are_categorised(self):
        assert all(":" in name for name in EVENT_NAMES)

    def test_wira_mechanisms_are_covered(self):
        # The paper's three mechanisms must each be observable.
        assert {"wira:parse_begin", "wira:parse_complete"} <= EVENT_NAMES  # Frame Perception
        assert {"wira:cookie_hit", "wira:cookie_miss"} <= EVENT_NAMES  # Transport Cookie
        assert {"wira:init_cwnd", "wira:init_pacing"} <= EVENT_NAMES  # the two overrides

    def test_fleet_lifecycle_is_covered(self):
        # Campaign-level telemetry events emitted by the fleet engine.
        assert {
            "fleet:chunk_begin",
            "fleet:chunk_complete",
            "fleet:snapshot_written",
            "fleet:resume_adopted",
        } <= EVENT_NAMES


class TestValidateRecord:
    def good(self):
        return {"time": 0.5, "name": "session:done", "data": {"conn": "ab"}}

    def test_valid_record_has_no_defects(self):
        assert validate_record(self.good()) == []

    def test_non_object_rejected(self):
        assert validate_record([1, 2]) == ["record is not a JSON object"]

    @pytest.mark.parametrize("missing", ["time", "name", "data"])
    def test_missing_key_reported(self, missing):
        record = self.good()
        del record[missing]
        assert any(missing in e for e in validate_record(record))

    def test_extra_top_level_key_reported(self):
        record = self.good()
        record["extra"] = 1
        assert any("unexpected top-level" in e for e in validate_record(record))

    def test_negative_time_reported(self):
        record = self.good()
        record["time"] = -0.1
        assert any("non-negative" in e for e in validate_record(record))

    def test_non_numeric_time_reported(self):
        record = self.good()
        record["time"] = "早"
        assert any("must be a number" in e for e in validate_record(record))

    def test_uncategorised_name_reported(self):
        record = self.good()
        record["name"] = "nocategory"
        assert any("category:event" in e for e in validate_record(record))

    def test_unknown_name_reported(self):
        record = self.good()
        record["name"] = "transport:made_up"
        assert any("unknown event name" in e for e in validate_record(record))

    def test_unknown_name_allowed_when_opted_out(self):
        record = self.good()
        record["name"] = "transport:made_up"
        assert validate_record(record, known_names=False) == []

    def test_non_object_data_reported(self):
        record = self.good()
        record["data"] = 7
        assert any("data must be an object" in e for e in validate_record(record))


class TestValidateTraceLines:
    def lines(self):
        return [
            meta_record(0.0, "ab", "s"),
            encode_record(0.0, "session:request_sent", "ab", {}),
            encode_record(0.1, "session:first_frame", "ab", {"ffct": 0.1}),
        ]

    def test_valid_file(self):
        assert validate_trace_lines(self.lines()) == []

    def test_empty_file(self):
        assert validate_trace_lines([]) == ["empty trace file"]

    def test_blank_line_reported(self):
        lines = self.lines()
        lines.insert(1, "   ")
        assert any("blank line" in e for e in validate_trace_lines(lines))

    def test_missing_meta_reported(self):
        assert any(
            "must be trace:meta" in e for e in validate_trace_lines(self.lines()[1:])
        )

    def test_meta_not_first_reported(self):
        lines = self.lines()
        lines.append(meta_record(0.2, "ab", "s"))
        assert any(
            "only allowed as the first record" in e for e in validate_trace_lines(lines)
        )

    def test_unsupported_schema_version_reported(self):
        bad_meta = json.dumps(
            {"time": 0.0, "name": "trace:meta", "data": {"conn": "ab", "schema_version": 99}}
        )
        errors = validate_trace_lines([bad_meta] + self.lines()[1:])
        assert any("schema_version" in e for e in errors)

    def test_decreasing_timestamp_reported(self):
        lines = self.lines()
        lines.append(encode_record(0.05, "session:done", "ab", {}))
        assert any("decreases" in e for e in validate_trace_lines(lines))

    def test_invalid_json_line_reported(self):
        lines = self.lines()
        lines.insert(1, "{broken")
        assert any("not valid JSON" in e for e in validate_trace_lines(lines))

    def test_defects_carry_line_numbers(self):
        lines = self.lines()
        lines.append("{broken")
        (error,) = validate_trace_lines(lines)
        assert error.startswith(f"line {len(lines)}:")

"""FFCT phase profiler on synthetic event streams."""

import json

import pytest

from repro.obs.events import encode_record, meta_record
from repro.obs.profiler import PHASES, PhaseBreakdown, profile_events, profile_records


def session_events(with_loss=True):
    """A hand-built two-connection session with known phase durations.

    handshake 10ms, request 2ms, origin 8ms, one 10ms retransmit stall,
    transmit 70ms — total FFCT 100ms.
    """
    events = [
        (0.000, "session:request_sent", "cli", {}),
        (0.010, "transport:handshake_complete", "srv", {"role": "server"}),
        (0.012, "wira:request_received", "srv", {"stream": "s"}),
        (0.015, "transport:packet_sent", "srv", {"pn": 0, "stream_data": False}),
        (0.020, "transport:packet_sent", "srv", {"pn": 1, "stream_data": True}),
    ]
    if with_loss:
        events += [
            (0.050, "transport:packet_lost", "srv", {"pns": [1]}),
            (0.060, "transport:packet_sent", "srv", {"pn": 2, "stream_data": True}),
        ]
    events.append((0.100, "session:first_frame", "cli", {"ffct": 0.100}))
    return events


class TestProfileEvents:
    def test_phases_match_hand_computed_values(self):
        b = profile_events(session_events())
        assert b is not None
        assert b.handshake == pytest.approx(0.010)
        assert b.request == pytest.approx(0.002)
        assert b.origin == pytest.approx(0.008)
        assert b.stalls == pytest.approx(0.010)
        assert b.transmit == pytest.approx(0.070)

    def test_phases_sum_to_ffct(self):
        b = profile_events(session_events())
        assert b.total == pytest.approx(0.100)

    def test_no_loss_means_no_stalls(self):
        b = profile_events(session_events(with_loss=False))
        assert b.stalls == 0.0
        assert b.total == pytest.approx(0.100)

    def test_first_data_send_anchors_origin_not_handshake_packet(self):
        # The pn=0 packet at 15ms carries no stream data; origin must
        # extend to the pn=1 data packet at 20ms.
        b = profile_events(session_events())
        assert b.origin == pytest.approx(0.008)

    @pytest.mark.parametrize(
        "dropped",
        ["session:request_sent", "session:first_frame", "wira:request_received",
         "transport:handshake_complete"],
    )
    def test_missing_milestone_returns_none(self, dropped):
        events = [e for e in session_events() if e[1] != dropped]
        assert profile_events(events) is None

    def test_no_data_packet_returns_none(self):
        events = [
            e for e in session_events(with_loss=False)
            if not (e[1] == "transport:packet_sent" and e[3].get("stream_data"))
        ]
        assert profile_events(events) is None

    def test_two_separate_stalls_sum(self):
        events = session_events() + [
            (0.070, "recovery:pto_fired", "srv", {"pto_count": 1}),
            (0.075, "transport:packet_sent", "srv", {"pn": 3, "stream_data": True}),
        ]
        events.sort(key=lambda e: e[0])
        b = profile_events(events)
        assert b.stalls == pytest.approx(0.015)
        assert b.total == pytest.approx(0.100)

    def test_double_declared_loss_counted_once(self):
        events = session_events() + [
            (0.052, "transport:packet_lost", "srv", {"pns": [1]}),
        ]
        events.sort(key=lambda e: e[0])
        assert profile_events(events).stalls == pytest.approx(0.010)

    def test_stall_open_at_first_frame_clips_to_window(self):
        events = session_events(with_loss=False) + [
            (0.095, "transport:packet_lost", "srv", {"pns": [4]}),
        ]
        events.sort(key=lambda e: e[0])
        b = profile_events(events)
        assert b.stalls == pytest.approx(0.005)
        assert b.total == pytest.approx(0.100)

    def test_events_after_first_frame_do_not_shift_phases(self):
        events = session_events() + [
            (0.150, "transport:packet_lost", "srv", {"pns": [9]}),
            (0.200, "session:done", "cli", {"frames": 4}),
        ]
        assert profile_events(events) == profile_events(session_events())


class TestPhaseBreakdown:
    def test_as_dict_covers_all_phases(self):
        b = PhaseBreakdown(0.01, 0.002, 0.008, 0.07, 0.01)
        assert tuple(b.as_dict()) == PHASES

    def test_phase_accessor(self):
        b = PhaseBreakdown(0.01, 0.002, 0.008, 0.07, 0.01)
        assert b.phase("transmit") == 0.07
        with pytest.raises(KeyError):
            b.phase("teleport")


class TestProfileRecords:
    def to_records(self, events):
        lines = [meta_record(0.0, "cli", "s")]
        lines += [encode_record(t, n, c, d) for t, n, c, d in events]
        return [json.loads(line) for line in lines]

    def test_matches_profile_events(self):
        events = session_events()
        assert profile_records(self.to_records(events)) == profile_events(events)

    def test_order_insensitive(self):
        records = self.to_records(session_events())
        assert profile_records(list(reversed(records))) == profile_records(records)

    def test_meta_and_malformed_records_skipped(self):
        records = self.to_records(session_events())
        records.append({"name": "session:done"})  # no time/data: ignored
        assert profile_records(records) == profile_events(session_events())

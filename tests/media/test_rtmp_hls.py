"""Tests for the RTMP chunk-stream and MPEG-TS muxers."""

import pytest

from repro.media.frames import MediaFrame, MediaFrameType
from repro.media.hls import TS_PACKET_SIZE, TS_SYNC_BYTE, TsDemuxer, mux as ts_mux
from repro.media.rtmp import (
    RTMP_VERSION_BYTE,
    RtmpDemuxer,
    RtmpError,
    mux as rtmp_mux,
)


def sample_frames():
    return [
        MediaFrame.synthetic(MediaFrameType.SCRIPT, 0, 400),
        MediaFrame.synthetic(MediaFrameType.AUDIO, 0, 372),
        MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 42_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_P, 40, 6_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 80, 2_500),
    ]


class TestRtmp:
    def test_round_trip_types_and_sizes(self):
        blob = rtmp_mux(sample_frames())
        messages = RtmpDemuxer().feed(blob)
        assert [m.media_frame_type for m in messages] == [f.frame_type for f in sample_frames()]

    def test_version_byte_leads_stream(self):
        blob = rtmp_mux(sample_frames())
        assert blob[0] == RTMP_VERSION_BYTE

    def test_large_message_chunked_with_continuations(self):
        frame = MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 20_000)
        blob = rtmp_mux([frame], chunk_size=4096)
        messages = RtmpDemuxer(chunk_size=4096).feed(blob)
        assert len(messages) == 1
        assert len(messages[0].payload) == 20_001  # control byte + payload

    def test_incremental_feeding(self):
        blob = rtmp_mux(sample_frames())
        demuxer = RtmpDemuxer()
        messages = []
        for i in range(0, len(blob), 777):
            messages.extend(demuxer.feed(blob[i : i + 777]))
        assert len(messages) == len(sample_frames())

    def test_bad_version_byte_rejected(self):
        with pytest.raises(RtmpError):
            RtmpDemuxer().feed(b"\x09")

    def test_timestamps_survive(self):
        blob = rtmp_mux(sample_frames())
        messages = RtmpDemuxer().feed(blob)
        assert messages[3].timestamp_ms == 40


class TestTs:
    def test_packets_are_188_bytes_with_sync(self):
        blob = ts_mux(sample_frames())
        assert len(blob) % TS_PACKET_SIZE == 0
        for i in range(0, len(blob), TS_PACKET_SIZE):
            assert blob[i] == TS_SYNC_BYTE

    def test_round_trip_types(self):
        demuxer = TsDemuxer()
        frames = demuxer.feed(ts_mux(sample_frames()))
        frames.extend(demuxer.flush())
        got = [f.media_frame_type for f in frames]
        assert got == [f.frame_type for f in sample_frames()]

    def test_payload_sizes_survive(self):
        demuxer = TsDemuxer()
        frames = demuxer.feed(ts_mux(sample_frames()))
        frames.extend(demuxer.flush())
        # Video/audio payloads carry a 1-byte control prefix.
        assert len(frames[2].payload) == 42_001

    def test_random_access_marks_keyframes(self):
        demuxer = TsDemuxer()
        frames = demuxer.feed(ts_mux(sample_frames()))
        frames.extend(demuxer.flush())
        by_type = {f.media_frame_type: f for f in frames}
        assert by_type[MediaFrameType.VIDEO_I].random_access
        assert not by_type[MediaFrameType.VIDEO_P].random_access

    def test_pts_survives_90khz_conversion(self):
        demuxer = TsDemuxer()
        frames = demuxer.feed(ts_mux(sample_frames()))
        frames.extend(demuxer.flush())
        assert frames[3].pts_ms == 40

    def test_incremental_feeding(self):
        blob = ts_mux(sample_frames())
        demuxer = TsDemuxer()
        frames = []
        for i in range(0, len(blob), 500):
            frames.extend(demuxer.feed(blob[i : i + 500]))
        frames.extend(demuxer.flush())
        assert len(frames) == len(sample_frames())

"""Tests for the live encoder model."""

import pytest

from repro.media.frames import MediaFrameType
from repro.media.source import LiveSource, StreamProfile


def test_profile_validation():
    with pytest.raises(ValueError):
        StreamProfile(fps=0)
    with pytest.raises(ValueError):
        StreamProfile(video_bitrate_bps=0)


def test_gop_structure_starts_with_script_audio_i():
    source = LiveSource(StreamProfile(seed=1))
    gop = source.gop(0)
    types = [f.frame_type for f in gop.frames[:3]]
    assert types == [MediaFrameType.SCRIPT, MediaFrameType.AUDIO, MediaFrameType.VIDEO_I]


def test_gop_video_frame_count_matches_profile():
    profile = StreamProfile(fps=25, gop_seconds=2.0, seed=1)
    gop = LiveSource(profile).gop(0)
    assert len(gop.video_frames) == 50


def test_video_pattern_interleaves_p_and_b():
    profile = StreamProfile(b_frames_per_p=2, seed=1)
    gop = LiveSource(profile).gop(0)
    video = [f.frame_type for f in gop.video_frames[:7]]
    assert video == [
        MediaFrameType.VIDEO_I,
        MediaFrameType.VIDEO_P,
        MediaFrameType.VIDEO_B,
        MediaFrameType.VIDEO_B,
        MediaFrameType.VIDEO_P,
        MediaFrameType.VIDEO_B,
        MediaFrameType.VIDEO_B,
    ]


def test_i_frame_larger_than_p_larger_than_b():
    source = LiveSource(StreamProfile(seed=2))
    gop = source.gop(0)
    sizes = {}
    for frame in gop.video_frames:
        sizes.setdefault(frame.frame_type, frame.size)
    assert sizes[MediaFrameType.VIDEO_I] > sizes[MediaFrameType.VIDEO_P]
    assert sizes[MediaFrameType.VIDEO_P] > sizes[MediaFrameType.VIDEO_B]


def test_gop_bytes_track_bitrate():
    profile = StreamProfile(video_bitrate_bps=2e6, gop_seconds=2.0, seed=3,
                            complexity_sigma=0.01, size_jitter=0.01)
    gop = LiveSource(profile).gop(0)
    video_bytes = sum(f.size for f in gop.video_frames)
    assert video_bytes == pytest.approx(2e6 / 8 * 2.0, rel=0.25)


def test_deterministic_across_instances():
    a = LiveSource(StreamProfile(seed=7)).gop(3)
    b = LiveSource(StreamProfile(seed=7)).gop(3)
    assert [f.size for f in a.frames] == [f.size for f in b.frames]


def test_different_seeds_differ():
    a = LiveSource(StreamProfile(seed=7)).gop(0)
    b = LiveSource(StreamProfile(seed=8)).gop(0)
    assert [f.size for f in a.frames] != [f.size for f in b.frames]


def test_intra_stream_first_frame_varies_over_time():
    """Fig 1(b): FF_Size of the same stream changes across GOPs."""
    source = LiveSource(StreamProfile(seed=9))
    sizes = [source.first_frame_size_at(t) for t in range(0, 200, 5)]
    assert max(sizes) / min(sizes) > 1.3
    assert len(set(sizes)) > 10


def test_first_frame_target_honoured():
    profile = StreamProfile(
        first_frame_target_bytes=66_000, complexity_sigma=0.01, size_jitter=0.01, seed=4
    )
    ff = LiveSource(profile).first_frame_size_at(0.0)
    assert ff == pytest.approx(66_000, rel=0.1)


def test_gop_index_mapping():
    source = LiveSource(StreamProfile(gop_seconds=2.0, seed=1))
    assert source.gop_index_at(0.0) == 0
    assert source.gop_index_at(1.99) == 0
    assert source.gop_index_at(2.0) == 1
    with pytest.raises(ValueError):
        source.gop_index_at(-1.0)


def test_pts_monotone_within_gop():
    gop = LiveSource(StreamProfile(seed=5)).gop(2)
    pts = [f.pts_ms for f in gop.frames]
    assert pts == sorted(pts)


def test_audio_interleaved_through_gop():
    gop = LiveSource(StreamProfile(seed=5)).gop(0)
    audio_count = sum(1 for f in gop.frames if f.frame_type == MediaFrameType.AUDIO)
    # ~43 audio frames/s over a 2s GOP, give or take interleave edges.
    assert 60 <= audio_count <= 90


def test_first_frame_bytes_with_theta_three():
    """§IV-A example: Θ_VF=3 adds the P and first B frame."""
    source = LiveSource(StreamProfile(seed=6))
    gop = source.gop(0)
    ff1 = gop.first_frame_bytes(1)
    ff3 = gop.first_frame_bytes(3)
    assert ff3 > ff1

"""Tests for FLV muxing/demuxing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.media.flv import (
    FLV_HEADER_LEN,
    FlvDemuxer,
    FlvError,
    TAG_HEADER_LEN,
    TAG_SCRIPT,
    TAG_VIDEO,
    demux,
    encode_frame,
    encode_tag,
    file_header,
    mux,
    script_frame,
)
from repro.media.frames import MediaFrame, MediaFrameType


def sample_frames():
    return [
        script_frame({"width": 1280.0, "framerate": 25.0}),
        MediaFrame.synthetic(MediaFrameType.AUDIO, 0, 372),
        MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 40_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_P, 40, 5_000),
        MediaFrame.synthetic(MediaFrameType.VIDEO_B, 80, 2_000),
    ]


def test_header_layout():
    header = file_header()
    assert header[:3] == b"FLV"
    assert header[3] == 1  # version
    assert header[4] == 0x05  # audio + video flags
    assert int.from_bytes(header[5:9], "big") == FLV_HEADER_LEN
    assert header[9:13] == b"\x00\x00\x00\x00"  # PreviousTagSize0


def test_mux_demux_round_trip():
    frames = sample_frames()
    tags = demux(mux(frames))
    assert len(tags) == len(frames)
    for frame, tag in zip(frames, tags):
        recovered = tag.to_media_frame()
        assert recovered.frame_type == frame.frame_type
        assert recovered.payload == frame.payload
        assert recovered.pts_ms == frame.pts_ms


def test_video_control_byte_encodes_frame_type():
    i_tag = demux(mux([MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 10)]))[0]
    b_tag = demux(mux([MediaFrame.synthetic(MediaFrameType.VIDEO_B, 0, 10)]))[0]
    assert i_tag.data[0] == 0x17  # keyframe, AVC
    assert b_tag.data[0] == 0x37  # disposable inter, AVC
    assert i_tag.media_frame_type == MediaFrameType.VIDEO_I
    assert b_tag.media_frame_type == MediaFrameType.VIDEO_B


def test_on_wire_size_accounting():
    frame = MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0, 1000)
    tag = demux(mux([frame]))[0]
    # video body = control byte + payload
    assert tag.on_wire_size == TAG_HEADER_LEN + 1001 + 4
    assert len(mux([frame])) == len(file_header()) + tag.on_wire_size


def test_extended_timestamp():
    frame = MediaFrame.synthetic(MediaFrameType.VIDEO_I, 0x1234567, 10)
    tag = demux(mux([frame]))[0]
    assert tag.timestamp_ms == 0x1234567


def test_metadata_surfaces_on_demuxer():
    demuxer = FlvDemuxer()
    demuxer.feed(mux(sample_frames()))
    assert demuxer.metadata == {"width": 1280.0, "framerate": 25.0}


def test_incremental_byte_at_a_time():
    blob = mux(sample_frames())
    demuxer = FlvDemuxer()
    tags = []
    for i in range(len(blob)):
        tags.extend(demuxer.feed(blob[i : i + 1]))
    assert len(tags) == len(sample_frames())


def test_demux_without_header():
    frames = sample_frames()
    blob = mux(frames, include_header=False)
    tags = demux(blob, expect_header=False)
    assert len(tags) == len(frames)


def test_bad_signature_rejected():
    with pytest.raises(FlvError):
        demux(b"MP4\x01\x05\x00\x00\x00\x09\x00\x00\x00\x00")


def test_bad_tag_type_rejected():
    blob = file_header() + bytes([99]) + bytes(14)
    with pytest.raises(FlvError):
        demux(blob)


def test_previous_tag_size_mismatch_rejected():
    tag = bytearray(encode_tag(TAG_VIDEO, 0, b"\x17abc"))
    tag[-1] ^= 0xFF
    with pytest.raises(FlvError):
        demux(file_header() + bytes(tag))


def test_oversized_tag_rejected():
    with pytest.raises(FlvError):
        encode_tag(TAG_SCRIPT, 0, bytes(1 << 24))


def test_negative_timestamp_rejected():
    with pytest.raises(FlvError):
        encode_tag(TAG_VIDEO, -1, b"\x17")


@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(MediaFrameType)),
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=5_000),
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=1, max_value=997),
)
def test_incremental_equals_one_shot_property(specs, chunk):
    """Property: chunked feeding yields exactly the one-shot parse."""
    frames = [
        MediaFrame.synthetic(ft, pts, size)
        for ft, pts, size in specs
        if ft != MediaFrameType.SCRIPT
    ]
    if not frames:
        return
    blob = mux(frames)
    one_shot = demux(blob)
    demuxer = FlvDemuxer()
    chunked = []
    for i in range(0, len(blob), chunk):
        chunked.extend(demuxer.feed(blob[i : i + chunk]))
    assert chunked == one_shot

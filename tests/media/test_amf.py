"""Tests for the AMF0 codec."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.media.amf import (
    AmfError,
    decode_on_metadata,
    decode_value,
    encode_on_metadata,
    encode_value,
)


@pytest.mark.parametrize(
    "value",
    [0.0, 1.0, -3.5, 1e9, True, False, "hello", "", None, [1.0, "two", None]],
)
def test_scalar_round_trips(value):
    decoded, offset = decode_value(encode_value(value))
    assert decoded == value


def test_int_decodes_as_float():
    decoded, _ = decode_value(encode_value(42))
    assert decoded == 42.0
    assert isinstance(decoded, float)


def test_dict_round_trips_as_ecma_array():
    data = {"width": 1280.0, "stereo": True, "encoder": "x264"}
    decoded, _ = decode_value(encode_value(data))
    assert decoded == data


def test_nested_structures():
    data = {"list": [1.0, 2.0], "inner": {"a": "b"}}
    decoded, _ = decode_value(encode_value(data))
    assert decoded == data


def test_number_marker_is_ieee_double():
    encoded = encode_value(1.5)
    assert encoded[0] == 0x00
    assert len(encoded) == 9


def test_string_length_prefix():
    encoded = encode_value("abc")
    assert encoded[:3] == b"\x02\x00\x03"


def test_on_metadata_round_trip():
    metadata = {"duration": 0.0, "width": 1920.0, "framerate": 30.0}
    blob = encode_on_metadata(metadata)
    assert decode_on_metadata(blob) == metadata


def test_on_metadata_name_enforced():
    blob = encode_value("notMetaData") + encode_value({})
    with pytest.raises(AmfError):
        decode_on_metadata(blob)


def test_truncated_data_rejected():
    blob = encode_value("hello")
    with pytest.raises(AmfError):
        decode_value(blob[:-2])


def test_unsupported_python_type_rejected():
    with pytest.raises(AmfError):
        encode_value(object())


def test_unsupported_marker_rejected():
    with pytest.raises(AmfError):
        decode_value(b"\x0b")


def test_oversized_string_rejected():
    with pytest.raises(AmfError):
        encode_value("x" * 70_000)


amf_values = st.recursive(
    st.one_of(
        st.floats(allow_nan=False, allow_infinity=False, width=32).map(float),
        st.booleans(),
        st.text(max_size=50),
        st.none(),
    ),
    lambda children: st.dictionaries(st.text(max_size=20), children, max_size=5),
    max_leaves=20,
)


@given(amf_values)
def test_round_trip_property(value):
    decoded, offset = decode_value(encode_value(value))
    assert decoded == value

"""Tests for the serve datagram envelope codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.wire import (
    MAGIC,
    Envelope,
    EnvelopeError,
    EnvelopeKind,
    decode_envelope,
    encode_envelope,
    peek_connection_id,
)


class TestRoundTrip:
    def test_data_envelope(self):
        blob = encode_envelope(EnvelopeKind.DATA, b"od-1", b"payload")
        envelope = decode_envelope(blob)
        assert envelope == Envelope(EnvelopeKind.DATA, b"od-1", b"payload")

    def test_control_envelope(self):
        blob = encode_envelope(EnvelopeKind.CONTROL, b"", b'{"op":"ping"}')
        envelope = decode_envelope(blob)
        assert envelope.kind == EnvelopeKind.CONTROL
        assert envelope.payload == b'{"op":"ping"}'

    @given(
        st.sampled_from([EnvelopeKind.DATA, EnvelopeKind.CONTROL]),
        st.binary(max_size=64),
        st.binary(max_size=2048),
    )
    def test_round_trip_property(self, kind, od_key, payload):
        envelope = decode_envelope(encode_envelope(kind, od_key, payload))
        assert envelope == Envelope(kind, od_key, payload)


class TestStrictDecode:
    def test_empty(self):
        with pytest.raises(EnvelopeError):
            decode_envelope(b"")

    def test_bad_magic(self):
        blob = bytearray(encode_envelope(EnvelopeKind.DATA, b"k", b"p"))
        blob[0] = MAGIC ^ 0xFF
        with pytest.raises(EnvelopeError):
            decode_envelope(bytes(blob))

    def test_bad_kind(self):
        blob = bytearray(encode_envelope(EnvelopeKind.DATA, b"k", b"p"))
        blob[1] = 99
        with pytest.raises(EnvelopeError):
            decode_envelope(bytes(blob))

    def test_truncation_at_every_prefix(self):
        """Header/key truncation must raise; payload truncation decodes
        (the envelope cannot see into the payload — the packet codec
        rejects it, which tests/serve/test_truncation.py pins) but never
        reproduces the original envelope."""
        od_key = b"od-key"
        payload = b"x" * 40
        blob = encode_envelope(EnvelopeKind.DATA, od_key, payload)
        header_len = len(blob) - len(payload)
        original = Envelope(EnvelopeKind.DATA, od_key, payload)
        for cut in range(len(blob)):
            prefix = blob[:cut]
            try:
                envelope = decode_envelope(prefix)
            except EnvelopeError:
                assert cut < header_len, f"full header rejected at cut {cut}"
                continue
            assert cut >= header_len, f"truncated header decoded at cut {cut}"
            assert envelope != original
            assert envelope.payload == payload[: cut - header_len]


class TestPeekConnectionId:
    def test_matches_packet_layout(self):
        from repro.quic.frames import StreamFrame
        from repro.quic.packet import Packet, PacketType

        cid = bytes(range(8))
        packet = Packet(
            PacketType.ONE_RTT, cid, 1, (StreamFrame(0, 0, b"data", False),)
        )
        assert peek_connection_id(packet.encode()) == cid

    def test_short_payload_raises(self):
        with pytest.raises(EnvelopeError):
            peek_connection_id(b"\x00\x01\x02")

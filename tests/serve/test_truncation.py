"""Truncated-datagram handling: serve parity with the sim discipline.

The serve stack promises the same graceful degradation the simulator
models in :meth:`repro.quic.connection.Connection.datagram_received`:
malformed wire bytes are dropped and counted, never crash the endpoint,
and never partially apply.  These tests pin that parity at two layers:

* codec layer — for every truncation prefix of a corpus of valid
  packets, :func:`repro.serve.protocol.parse_data_payload` accepts or
  raises exactly when the simulator's ``Packet.decode`` does;
* socket layer — a live :class:`~repro.serve.shard.ShardServer` fed
  truncated datagrams over a real UDP socket counts each drop and keeps
  answering control pings.
"""

import asyncio
import hashlib
import random

from repro.quic import Connection, QuicConfig, Role
from repro.quic.frames import HxQosFrame
from repro.quic.packet import Packet
from repro.serve import protocol
from repro.serve.protocol import ServeSpec, ShloSummary
from repro.serve.wire import EnvelopeKind, encode_envelope
from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram

CID = bytes(range(8))


def _spec() -> ServeSpec:
    from repro.core.initializer import Scheme
    from repro.media.source import StreamProfile
    from repro.quic.connection import HandshakeMode
    from repro.simnet.path import NetworkConditions

    return ServeSpec(
        od_key="od-0",
        stream_name="stream-0",
        scheme=Scheme("wira"),
        handshake_mode=HandshakeMode.ZERO_RTT,
        epoch=1_000.0,
        seed=7,
        session_index=0,
        target_video_frames=4,
        conditions=NetworkConditions(bandwidth_bps=8_000_000.0, rtt=0.05),
        profile=StreamProfile(),
    )


def _corpus():
    """Valid wire payloads covering every serve packet shape."""
    summary = ShloSummary(
        completed=True,
        used_cookie=True,
        cookie_pushed=True,
        sim_ffct=0.412,
        stream_length=197_032,
        sim_duration=2.5,
        ff_data_packets_sent=31,
        ff_data_packets_lost=2,
        frames_delivered=6,
        shard_id=1,
    )
    return [
        protocol.build_chlo_packet(CID, b"\x01" * 40, _spec()).encode(),
        protocol.build_shlo_packet(CID, 1, summary).encode(),
        protocol.build_stream_packet(CID, 2, 0, 0, bytes(range(256)) * 3).encode(),
        protocol.build_stream_packet(
            CID, 3, protocol.CONTROL_STREAM, 512, protocol.build_resend_request(512), fin=True
        ).encode(),
        protocol.build_hx_qos_packet(
            CID, 4, HxQosFrame.from_metrics(0.05, 8e6, 1_000.0, sealed=b"\x02" * 60)
        ).encode(),
    ]


def _sim_rejects(blob: bytes) -> bool:
    try:
        Packet.decode(blob)
    except ValueError:
        return True
    return False


def _serve_rejects(blob: bytes) -> bool:
    try:
        protocol.parse_data_payload(blob)
    except ValueError:
        return True
    return False


class TestCodecParity:
    def test_full_datagrams_accepted_by_both(self):
        for blob in _corpus():
            assert not _sim_rejects(blob)
            assert not _serve_rejects(blob)

    def test_every_truncation_classified_like_the_sim(self):
        """serve accept/reject == sim accept/reject at every cut point."""
        for blob in _corpus():
            for cut in range(len(blob)):
                prefix = blob[:cut]
                assert _serve_rejects(prefix) == _sim_rejects(prefix), (
                    f"classification diverged at cut {cut}/{len(blob)}"
                )

    def test_truncation_is_actually_exercised(self):
        """Each corpus entry must have rejecting cuts — otherwise the
        parity loop above proves nothing."""
        for blob in _corpus():
            rejecting = sum(1 for cut in range(len(blob)) if _sim_rejects(blob[:cut]))
            assert rejecting > len(blob) // 4


class TestSimConnectionDiscipline:
    def test_undecodable_counted_and_endpoint_survives(self):
        """The sim endpoint drops exactly the codec-rejected prefixes."""
        loop = EventLoop()
        sent = []
        server = Connection(
            loop,
            Role.SERVER,
            sent.append,
            QuicConfig(initial_rtt=0.05),
            rng=random.Random(0),
        )
        # Frame-bearing 1-RTT packets only: their sole undecodable path
        # is Packet.decode, the predictor used below (handshake packets
        # add a second drop path inside the crypto parser).
        corpus = [
            blob
            for blob in _corpus()
            if Packet.decode(blob).packet_type.name == "ONE_RTT"
        ]
        expected = 0
        for blob in corpus:
            for cut in range(len(blob) + 1):
                prefix = blob[:cut]
                if _sim_rejects(prefix):
                    expected += 1
                server.datagram_received(Datagram(payload=prefix))
        assert expected > 0
        assert server.stats.undecodable_packets == expected
        # Still alive: a pristine packet is received, not dropped.
        before = server.stats.packets_received
        server.datagram_received(Datagram(payload=corpus[0]))
        assert server.stats.packets_received == before + 1


class TestLiveShardSurvivesGarbage:
    def test_shard_counts_drops_and_keeps_answering(self):
        asyncio.run(self._run())

    async def _run(self):
        from repro.serve.loadtest import ControlClient
        from repro.serve.shard import ShardServer

        shard = ShardServer(
            shard_id=0,
            cookie_key=hashlib.sha256(b"truncation-test-key").digest(),
            instance_salt=b"\x00" * 16,
        )
        addr = await shard.start()
        control = ControlClient()
        await control.start()
        try:
            assert (await control.request(addr, "ping"))["op"] == "pong"
            before = await self._undecodable(control, addr)

            blob = protocol.build_stream_packet(
                CID, 1, 0, 0, bytes(range(200))
            ).encode()
            cuts = [c for c in range(len(blob)) if _sim_rejects(blob[:c])]
            assert control.endpoint is not None
            for cut in cuts:
                control.endpoint.sendto(
                    encode_envelope(EnvelopeKind.DATA, b"od-0", blob[:cut]), addr
                )
            # Raw garbage that is not even an envelope.
            control.endpoint.sendto(b"\x00\x01\x02", addr)
            expected = before + len(cuts) + 1

            deadline = asyncio.get_running_loop().time() + 5.0
            count = before
            while count < expected:
                assert asyncio.get_running_loop().time() < deadline, (
                    f"undecodable stuck at {count}, want {expected}"
                )
                await asyncio.sleep(0.05)
                count = await self._undecodable(control, addr)
            assert count == expected
            # The endpoint is unharmed: control plane still answers.
            assert (await control.request(addr, "ping"))["op"] == "pong"
        finally:
            control.close()
            await shard.close()

    @staticmethod
    async def _undecodable(control, addr) -> int:
        reply = await control.request(addr, "stats")
        stats = reply["stats"]
        assert isinstance(stats, dict)
        return int(stats["undecodable"])

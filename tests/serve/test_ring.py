"""Tests for the consistent-hash ring."""

import pytest

from repro.serve.ring import HashRing, moved_fraction

KEYS = [f"od-{i}" for i in range(2000)]


class TestBasics:
    def test_empty_ring_has_no_owner(self):
        with pytest.raises(ValueError):
            HashRing().node_for("od-1")

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in KEYS[:50])

    def test_deterministic_assignment(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # construction order irrelevant
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_duplicate_node_rejected(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add_node("s0")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["s0"]).remove_node("s1")

    def test_all_nodes_get_keys(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        owners = {ring.node_for(k) for k in KEYS}
        assert owners == {f"s{i}" for i in range(4)}


class TestBoundedMovement:
    def test_add_moves_bounded_fraction(self):
        """Adding a node to an n-node ring moves ~1/(n+1) of the keys —
        the consistent-hashing contract a mod-N router would break
        (mod-N moves ~n/(n+1))."""
        before = HashRing([f"s{i}" for i in range(4)])
        after = before.with_node("s4")
        moved = moved_fraction(before, after, KEYS)
        assert moved <= 2.0 / 5.0  # ring bound with headroom, far below mod-N's 0.8
        assert moved > 0.0

    def test_remove_moves_only_departed_nodes_keys(self):
        before = HashRing([f"s{i}" for i in range(5)])
        after = before.without_node("s4")
        for key in KEYS:
            if before.node_for(key) != "s4":
                assert after.node_for(key) == before.node_for(key)

    def test_add_never_moves_between_surviving_nodes(self):
        """Keys only move TO the new node, never between old nodes."""
        before = HashRing([f"s{i}" for i in range(4)])
        after = before.with_node("s4")
        for key in KEYS:
            if after.node_for(key) != "s4":
                assert after.node_for(key) == before.node_for(key)

    def test_spread_is_roughly_even(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        counts = {}
        for key in KEYS:
            owner = ring.node_for(key)
            counts[owner] = counts.get(owner, 0) + 1
        for owner, count in counts.items():
            # 64 virtual nodes per shard keeps imbalance modest.
            assert count > len(KEYS) / 4 * 0.5, (owner, counts)
            assert count < len(KEYS) / 4 * 1.8, (owner, counts)

    def test_with_without_are_non_destructive(self):
        ring = HashRing(["s0", "s1"])
        ring.with_node("s2")
        ring.without_node("s1")
        assert ring.nodes == ("s0", "s1")

"""Tests for the bounded keyed store and the sharded cookie store."""

import pytest

from repro.serve.ring import HashRing, moved_fraction
from repro.serve.store import BoundedKeyedStore, ShardedCookieStore


class TestBoundedKeyedStore:
    def test_capacity_evicts_front_in_insertion_order(self):
        evicted = []
        store = BoundedKeyedStore(
            max_entries=2, on_evict=lambda k, r: evicted.append((k, r))
        )
        store.put("a", 1, 0.0)
        store.put("b", 2, 1.0)
        store.put("c", 3, 2.0)
        assert store.keys() == ("b", "c")
        assert evicted == [("a", "capacity")]
        assert store.evicted_capacity == 1

    def test_put_refreshes_recency(self):
        store = BoundedKeyedStore(max_entries=2)
        store.put("a", 1, 0.0)
        store.put("b", 2, 1.0)
        store.put("a", 10, 2.0)  # refresh: "a" moves to the back
        store.put("c", 3, 3.0)  # evicts "b"
        assert store.keys() == ("a", "c")
        assert store.get("a") == 10

    def test_ttl_expiry(self):
        store = BoundedKeyedStore(ttl=5.0)
        store.put("a", 1, 0.0)
        store.put("b", 2, 4.0)
        assert store.get("a", now=5.0) == 1  # exactly at ttl: kept
        assert store.get("a", now=5.5) is None
        assert store.get("b", now=5.5) == 2
        assert store.evicted_ttl == 1

    def test_touch_refreshes_stamp_without_value_change(self):
        store = BoundedKeyedStore(ttl=5.0)
        store.put("a", 1, 0.0)
        assert store.touch("a", 4.0)
        assert store.get("a", now=8.0) == 1  # age measured from the touch
        assert not store.touch("missing", 0.0)

    def test_eviction_sequence_deterministic(self):
        def run():
            order = []
            store = BoundedKeyedStore(
                max_entries=3, ttl=25.0, on_evict=lambda k, r: order.append((k, r))
            )
            for i in range(20):
                store.put(f"k-{i % 7}", i, float(i * 3))
            return order

        assert run() == run()

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoundedKeyedStore(max_entries=0)
        with pytest.raises(ValueError):
            BoundedKeyedStore(ttl=-1.0)


class TestShardedCookieStore:
    KEYS = [f"od-{i}" for i in range(600)]

    def _loaded_store(self, nodes):
        ring = HashRing(nodes)
        store = ShardedCookieStore(ring)
        for i, key in enumerate(self.KEYS):
            store.put(key, f"cookie-{i}", float(i))
        return ring, store

    def test_routes_by_ring(self):
        ring, store = self._loaded_store(["s0", "s1", "s2"])
        for key in self.KEYS:
            assert store.get(key) is not None
            assert key in store.shards[ring.node_for(key)]

    def test_reshard_add_moves_ring_bounded_fraction(self):
        """Adding a shard moves only the consistent-hash fraction of
        entries — every entry survives, none duplicated."""
        ring, store = self._loaded_store(["s0", "s1", "s2"])
        new_ring = ring.with_node("s3")
        moved = store.reshard(new_ring)
        assert moved == sum(
            1 for k in self.KEYS if ring.node_for(k) != new_ring.node_for(k)
        )
        assert moved / len(self.KEYS) <= 2.0 / 4.0  # bound with headroom
        assert moved / len(self.KEYS) == pytest.approx(
            moved_fraction(ring, new_ring, self.KEYS)
        )
        assert len(store) == len(self.KEYS)
        for key in self.KEYS:
            assert store.get(key) is not None
            assert key in store.shards[new_ring.node_for(key)]

    def test_reshard_remove_relocates_departed_shards_entries(self):
        ring, store = self._loaded_store(["s0", "s1", "s2"])
        departed = [k for k in self.KEYS if ring.node_for(k) == "s2"]
        new_ring = ring.without_node("s2")
        moved = store.reshard(new_ring)
        assert moved == len(departed)
        assert "s2" not in store.shards
        assert len(store) == len(self.KEYS)
        for key in self.KEYS:
            assert store.get(key) is not None

    def test_reshard_preserves_stamps(self):
        ring, store = self._loaded_store(["s0", "s1"])
        new_ring = ring.with_node("s2")
        store.reshard(new_ring)
        stamps = {
            key: stamp
            for shard in store.shards.values()
            for key, _, stamp in shard.items()
        }
        for i, key in enumerate(self.KEYS):
            assert stamps[key] == float(i)

    def test_reshard_is_deterministic(self):
        def run():
            ring, store = self._loaded_store(["s0", "s1", "s2"])
            store.reshard(ring.with_node("s3"))
            return {
                node: store.shards[node].keys() for node in sorted(store.shards)
            }

        assert run() == run()

    def test_double_reshard_returns_home(self):
        """add then remove the same shard: every entry is back where it
        started, and the per-direction movement matched the ring."""
        ring, store = self._loaded_store(["s0", "s1", "s2"])
        out = store.reshard(ring.with_node("s3"))
        back = store.reshard(ring)
        assert out == back
        assert store.moved_on_reshard == out + back
        for key in self.KEYS:
            assert key in store.shards[ring.node_for(key)]

"""End-to-end serve tests: real UDP sockets, sim as the timing oracle.

Kept deliberately small (few OD pairs, few frames) so the whole module
stays well under a minute; the CI ``serve-smoke`` job runs the larger
campaign through ``tools/wira_serve``.
"""

import asyncio

import pytest

from repro.serve.driver import ServeDriver
from repro.serve.loadtest import ServeLoadtestConfig, run_loadtest
from repro.serve.shard import ShardServer
from repro.workload.population import DeploymentConfig, FleetPopulation

#: In-process replay error is ~1ms; give loaded CI two orders of slack.
SINGLE_SESSION_FFCT_SLACK = 0.10  # seconds


def _population(n_od_pairs: int, seed: int = 0) -> DeploymentConfig:
    return DeploymentConfig(
        n_od_pairs=n_od_pairs,
        mean_extra_sessions=1.0,
        max_sessions_per_od=3,
        video_frames_per_session=4,
        seed=seed,
    )


class TestSingleSession:
    def test_wall_ffct_tracks_sim_ffct(self):
        asyncio.run(self._run())

    async def _run(self):
        config = ServeLoadtestConfig(population=_population(1))
        shard = ShardServer(
            shard_id=0,
            cookie_key=config.cookie_key(),
            instance_salt=config.shard_salt(0),
            wira_config=config.wira,
        )
        addr = await shard.start()
        driver = ServeDriver(addr, campaign_seed=0)
        await driver.start()
        try:
            planned = FleetPopulation(config.population).chain(0)[0]
            outcome = await driver.run_session(
                planned, "wira", "od-0", "stream-0", 4
            )
            assert outcome.summary.sim_ffct is not None
            assert outcome.result.ffct is not None
            assert outcome.wall_ffct == pytest.approx(
                outcome.summary.sim_ffct, abs=SINGLE_SESSION_FFCT_SLACK
            )
            # The SessionResult carries the socket measurement — the
            # campaign FFCT gate compares these against the sim within
            # the documented tolerance, so they must be the wall value.
            assert outcome.result.ffct == pytest.approx(outcome.wall_ffct)
            assert driver.stats["wire_failures"] == 0
        finally:
            driver.close()
            await shard.close()


class TestInProcessCampaign:
    def test_gates_pass_with_exact_discrete_parity(self):
        config = ServeLoadtestConfig(
            population=_population(4, seed=1),
            shards=2,
            subprocess_shards=False,
        )
        results = run_loadtest(config)
        gates = results["gates"]
        assert gates["wire_failures"] == 0
        assert gates["rejected_cookies"] == 0
        assert gates["comparison_ok"], results["comparison"]
        assert gates["ok"]
        comparison = results["comparison"]
        for value in config.schemes:
            entry = comparison["schemes"][value]
            assert entry["serve"]["sessions"] == entry["sim"]["sessions"]
            assert entry["serve"]["completed"] == entry["sim"]["completed"]
            assert (
                entry["serve"]["cookie_delivered"]
                == entry["sim"]["cookie_delivered"]
            )
            assert entry["serve"]["used_cookie"] == entry["sim"]["used_cookie"]

    def test_reshard_keeps_sessions_sticky(self):
        """Adding a shard mid-campaign must not disturb in-flight or
        subsequent sessions: affinity pins each OD chain, so the gates
        (including exact cookie-chain parity) still pass."""
        config = ServeLoadtestConfig(
            population=_population(5, seed=2),
            shards=2,
            subprocess_shards=False,
            reshard_after_chains=1,
            concurrency=2,
        )
        results = run_loadtest(config)
        telemetry = results["telemetry"]
        assert telemetry["resharded"]
        assert telemetry["shard_count_final"] == 3
        assert telemetry["router"]["reshards"] == 1
        assert results["gates"]["ok"], results["comparison"]


class TestSubprocessShards:
    def test_worker_process_smoke(self):
        """Two real ``python -m repro.serve.shard`` worker processes."""
        config = ServeLoadtestConfig(
            population=_population(2, seed=3),
            shards=2,
            subprocess_shards=True,
        )
        results = run_loadtest(config)
        assert results["gates"]["ok"], results["comparison"]
        telemetry = results["telemetry"]
        assert telemetry["sessions_measured"] > 0
        # Both workers were real processes reachable over the wire.
        assert len(telemetry["shards"]) == 2
        for stats in telemetry["shards"]:
            assert stats["op"] == "stats"

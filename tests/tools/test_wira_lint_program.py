"""Whole-program rule tests: multi-file fixtures through ``lint_sources``.

Each rule family gets deliberately-broken fixtures (the acceptance bar
for the registry cross-checks) plus clean variants, all under virtual
paths mirroring the repo layout so zone scoping applies exactly as in
CI.
"""

import textwrap

from tools.wira_lint import lint_source, lint_sources

SIM = "src/repro/simnet/fixture.py"
MEDIA = "src/repro/media/fixture.py"
METRICS = "src/repro/metrics/helper.py"


def run(sources, select=None):
    return lint_sources(
        {path: textwrap.dedent(text) for path, text in sources.items()}, select
    )


def codes(violations):
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# WL010: interprocedural wall-clock taint.


class TestWL010WallClockTaint:
    def test_laundered_read_flagged_with_witness(self):
        violations = run(
            {
                METRICS: """
                    import time

                    def stamp():
                        return time.time()
                """,
                SIM: """
                    from repro.metrics.helper import stamp

                    def schedule():
                        return stamp()
                """,
            },
            select={"WL010"},
        )
        assert codes(violations) == ["WL010"]
        finding = violations[0]
        assert finding.path == SIM
        assert "transitively reads the wall clock" in finding.message
        # The witness names the full call chain down to the read site.
        assert "schedule -> repro.metrics.helper.stamp" in finding.message
        assert f"time.time() [{METRICS}:" in finding.message

    def test_direct_read_outside_sim_zone_flagged(self):
        # media is in the replay zone but not the WL001 sim zone: the
        # taint rule carries the direct finding there.
        violations = run(
            {
                MEDIA: """
                    import time

                    def frame_stamp():
                        return time.time()
                """
            },
            select={"WL010"},
        )
        assert codes(violations) == ["WL010"]
        assert "reads the wall clock: time.time()" in violations[0].message

    def test_direct_sim_read_is_wl001_not_wl010(self):
        violations = run(
            {
                SIM: """
                    import time

                    def stamp():
                        return time.time()
                """
            }
        )
        assert "WL001" in codes(violations)
        assert "WL010" not in codes(violations)

    def test_no_cascade_past_replay_zone_carrier(self):
        # Only the replay-zone function nearest the source reports; its
        # callers inside the zone stay quiet.
        violations = run(
            {
                METRICS: """
                    import time

                    def stamp():
                        return time.time()
                """,
                SIM: """
                    from repro.metrics.helper import stamp

                    def inner():
                        return stamp()

                    def outer():
                        return inner()
                """,
            },
            select={"WL010"},
        )
        assert len(violations) == 1
        assert "inner" in violations[0].message

    def test_pragma_vetted_read_does_not_taint(self):
        violations = run(
            {
                METRICS: """
                    import time

                    def stamp():
                        return time.time()  # wira-lint: disable=WL010
                """,
                SIM: """
                    from repro.metrics.helper import stamp

                    def schedule():
                        return stamp()
                """,
            },
            select={"WL010"},
        )
        assert violations == []

    def test_clean_chain(self):
        violations = run(
            {
                METRICS: """
                    def stamp(loop):
                        return loop.now
                """,
                SIM: """
                    from repro.metrics.helper import stamp

                    def schedule(loop):
                        return stamp(loop)
                """,
            },
            select={"WL010"},
        )
        assert violations == []


# ---------------------------------------------------------------------------
# WL011: interprocedural global-RNG taint.


class TestWL011GlobalRngTaint:
    def test_laundered_global_rng_flagged(self):
        violations = run(
            {
                METRICS: """
                    import random

                    def jitter():
                        return random.random()
                """,
                SIM: """
                    from repro.metrics.helper import jitter

                    def arrivals():
                        return jitter()
                """,
            },
            select={"WL011"},
        )
        assert codes(violations) == ["WL011"]
        assert "transitively reads the process-global RNG" in violations[0].message
        assert "random.random()" in violations[0].message

    def test_hard_seeded_instance_does_not_taint(self):
        # random.Random(0) is deterministic (WL002 style debt, not a
        # taint source); callers must not be poisoned by it.
        violations = run(
            {
                METRICS: """
                    import random

                    def rng():
                        return random.Random(7)
                """,
                SIM: """
                    from repro.metrics.helper import rng

                    def arrivals():
                        return rng()
                """,
            },
            select={"WL011"},
        )
        assert violations == []

    def test_unseeded_instance_taints(self):
        violations = run(
            {
                METRICS: """
                    import random

                    def rng():
                        return random.Random()
                """,
                SIM: """
                    from repro.metrics.helper import rng

                    def arrivals():
                        return rng()
                """,
            },
            select={"WL011"},
        )
        assert codes(violations) == ["WL011"]


# ---------------------------------------------------------------------------
# WL005: dict iteration feeding merge paths, one call level deep.


class TestWL005OneCallLevel:
    def test_helper_called_from_merge_flagged(self):
        violations = run(
            {
                METRICS: """
                    def dump(d):
                        return [v for v in d.values()]
                """,
                "src/repro/metrics/agg.py": """
                    from repro.metrics.helper import dump

                    def merge_shards(shards):
                        return [dump(s) for s in shards]
                """,
            },
            select={"WL005"},
        )
        assert codes(violations) == ["WL005"]
        assert violations[0].path == METRICS
        assert "feeds merge path repro.metrics.agg.merge_shards" in violations[0].message

    def test_helper_not_reached_from_merge_clean(self):
        violations = run(
            {
                METRICS: """
                    def dump(d):
                        return [v for v in d.values()]
                """,
                "src/repro/metrics/agg.py": """
                    from repro.metrics.helper import dump

                    def render(shards):
                        return [dump(s) for s in shards]
                """,
            },
            select={"WL005"},
        )
        assert violations == []

    def test_direct_merge_function_still_flagged(self):
        violations = run(
            {
                METRICS: """
                    def merge(d):
                        return [v for v in d.values()]
                """
            },
            select={"WL005"},
        )
        assert codes(violations) == ["WL005"]

    def test_sorted_iteration_clean_even_in_merge(self):
        violations = run(
            {
                METRICS: """
                    def merge(d):
                        return [d[k] for k in sorted(d.keys())]
                """
            },
            select={"WL005"},
        )
        assert violations == []


# ---------------------------------------------------------------------------
# WL012: WIRA_* knobs must flow through runtime.Settings.


class TestWL012SettingsKnobs:
    def test_subscript_read_flagged(self):
        src = """
            import os

            def seed():
                return os.environ["WIRA_SEED"]
        """
        assert "WL012" in [v.code for v in lint_source(textwrap.dedent(src), METRICS)]

    def test_getenv_and_environ_get_flagged(self):
        src = """
            import os

            def knobs():
                return os.getenv("WIRA_TRACE"), os.environ.get("WIRA_SANITIZE")
        """
        found = [v.code for v in lint_source(textwrap.dedent(src), METRICS)]
        assert found.count("WL012") == 2

    def test_non_wira_key_clean(self):
        src = """
            import os

            def home():
                return os.environ["HOME"]
        """
        assert "WL012" not in [v.code for v in lint_source(textwrap.dedent(src), METRICS)]

    def test_settings_module_exempt(self):
        src = """
            import os

            def load():
                return os.environ.get("WIRA_SEED")
        """
        path = "src/repro/runtime/settings.py"
        assert "WL012" not in [v.code for v in lint_source(textwrap.dedent(src), path)]


# ---------------------------------------------------------------------------
# WL013: obs event names <-> EVENT_NAMES, both directions.


EVENTS_FIXTURE = "src/repro/obs/events_fixture.py"
BUS_FIXTURE = "src/repro/obs/bus_fixture.py"


class TestWL013EventRegistry:
    def test_unregistered_emit_and_unreferenced_registration(self):
        violations = run(
            {
                EVENTS_FIXTURE: """
                    EVENT_NAMES = frozenset({"conn:open", "conn:close"})
                """,
                BUS_FIXTURE: """
                    def drive(bus):
                        bus.emit(0.0, "conn:open", "c", {})
                        bus.emit(0.0, "conn:missing", "c", {})
                """,
            },
            select={"WL013"},
        )
        assert codes(violations) == ["WL013", "WL013"]
        by_path = {v.path: v for v in violations}
        assert "'conn:missing' is not registered" in by_path[BUS_FIXTURE].message
        assert "'conn:close'" in by_path[EVENTS_FIXTURE].message

    def test_literal_evidence_covers_dynamic_emit(self):
        # fault:link_up / fault:link_down pattern: the name is selected
        # into a variable before the emit call.
        violations = run(
            {
                EVENTS_FIXTURE: """
                    EVENT_NAMES = frozenset({"conn:open", "conn:close"})
                """,
                BUS_FIXTURE: """
                    def drive(bus, closing):
                        name = "conn:close" if closing else "conn:open"
                        bus.emit(0.0, name, "c", {})
                        bus.emit(0.0, "conn:open", "c", {})
                """,
            },
            select={"WL013"},
        )
        assert violations == []

    def test_registry_alone_raises_nothing(self):
        # Without any emit site in scope the reverse check stays quiet
        # (single-file runs on the registry module must not spray).
        violations = run(
            {
                EVENTS_FIXTURE: """
                    EVENT_NAMES = frozenset({"conn:open"})
                """
            },
            select={"WL013"},
        )
        assert violations == []


# ---------------------------------------------------------------------------
# WL014: sanitizer invariants <-> INVARIANTS, both directions.


ERRORS_FIXTURE = "src/repro/sanitize/errors_fixture.py"
CHECKS_FIXTURE = "src/repro/sanitize/checks_fixture.py"


class TestWL014InvariantRegistry:
    def test_unregistered_raise_and_unraised_registration(self):
        violations = run(
            {
                ERRORS_FIXTURE: """
                    INVARIANTS = ("clock_ok", "cwnd_ok")

                    class SanitizerError(AssertionError):
                        pass
                """,
                CHECKS_FIXTURE: """
                    from repro.sanitize.errors_fixture import SanitizerError

                    def check(v):
                        if v:
                            raise SanitizerError("clock_ok", "detail")
                        raise SanitizerError("bogus_name", "detail")
                """,
            },
            select={"WL014"},
        )
        assert codes(violations) == ["WL014", "WL014"]
        by_path = {v.path: v for v in violations}
        assert "'bogus_name'" in by_path[CHECKS_FIXTURE].message
        assert "'cwnd_ok'" in by_path[ERRORS_FIXTURE].message

    def test_consistent_fixture_clean(self):
        violations = run(
            {
                ERRORS_FIXTURE: """
                    INVARIANTS = ("clock_ok",)

                    class SanitizerError(AssertionError):
                        pass
                """,
                CHECKS_FIXTURE: """
                    from repro.sanitize.errors_fixture import SanitizerError

                    def check(v):
                        if v:
                            raise SanitizerError("clock_ok", "detail")
                """,
            },
            select={"WL014"},
        )
        assert violations == []


# ---------------------------------------------------------------------------
# WL015: EventLoop duck-type conformance.


LOOP_FIXTURE = "src/repro/simnet/loop_fixture.py"
SESS_FIXTURE = "src/repro/cdn/sess_fixture.py"
DRIVE_FIXTURE = "src/repro/cdn/drive_fixture.py"

LOOP_SRC = """
    class EventLoop:
        __slots__ = ("_now",)

        def now(self):
            return self._now

        def post_at(self, when, fn):
            pass

        def post_later(self, delay, fn):
            pass

        def pending_events(self):
            return 0
"""

SESS_SRC = """
    from repro.simnet.loop_fixture import EventLoop

    class Sess:
        def run(self, loop: EventLoop) -> None:
            pass
"""


class TestWL015DuckType:
    def test_incomplete_class_into_annotated_param(self):
        violations = run(
            {
                LOOP_FIXTURE: LOOP_SRC,
                SESS_FIXTURE: SESS_SRC,
                DRIVE_FIXTURE: """
                    from repro.cdn.sess_fixture import Sess

                    class FakeLoop:
                        def now(self):
                            return 0.0

                    def drive():
                        fake = FakeLoop()
                        Sess().run(fake)
                """,
            },
            select={"WL015"},
        )
        assert codes(violations) == ["WL015"]
        message = violations[0].message
        assert "FakeLoop" in message
        assert "post_at" in message and "pending_events" in message
        # The provided member must not be listed as missing.
        missing = message.split("lacks: ")[1].split(";")[0]
        assert "now" not in missing.split(", ")

    def test_cast_site_checked(self):
        violations = run(
            {
                LOOP_FIXTURE: LOOP_SRC,
                DRIVE_FIXTURE: """
                    from typing import cast

                    from repro.simnet.loop_fixture import EventLoop

                    class Member:
                        def now(self):
                            return 0.0

                        def post_at(self, when, fn):
                            pass

                    def adopt():
                        m = Member()
                        return cast(EventLoop, m)
                """,
            },
            select={"WL015"},
        )
        assert codes(violations) == ["WL015"]
        assert "post_later" in violations[0].message
        assert "pending_events" in violations[0].message

    def test_subclass_inherits_surface(self):
        violations = run(
            {
                LOOP_FIXTURE: LOOP_SRC,
                SESS_FIXTURE: SESS_SRC,
                DRIVE_FIXTURE: """
                    from repro.cdn.sess_fixture import Sess
                    from repro.simnet.loop_fixture import EventLoop

                    class SubLoop(EventLoop):
                        pass

                    def drive():
                        Sess().run(SubLoop())
                """,
            },
            select={"WL015"},
        )
        assert violations == []

    def test_conforming_duck_type_clean(self):
        violations = run(
            {
                LOOP_FIXTURE: LOOP_SRC,
                SESS_FIXTURE: SESS_SRC,
                DRIVE_FIXTURE: """
                    from repro.cdn.sess_fixture import Sess

                    class MemberLoop:
                        def now(self):
                            return 0.0

                        def post_at(self, when, fn):
                            pass

                        def post_later(self, delay, fn):
                            pass

                        def pending_events(self):
                            return 0

                    def drive():
                        Sess().run(MemberLoop())
                """,
            },
            select={"WL015"},
        )
        assert violations == []

    def test_keyword_argument_checked(self):
        violations = run(
            {
                LOOP_FIXTURE: LOOP_SRC,
                SESS_FIXTURE: SESS_SRC,
                DRIVE_FIXTURE: """
                    from repro.cdn.sess_fixture import Sess

                    class FakeLoop:
                        def now(self):
                            return 0.0

                    def drive():
                        Sess().run(loop=FakeLoop())
                """,
            },
            select={"WL015"},
        )
        assert codes(violations) == ["WL015"]


# ---------------------------------------------------------------------------
# WL016: deprecated construction APIs.


class TestWL016DeprecatedApi:
    def test_workload_sessionspec_import_flagged(self):
        src = """
            from repro.workload.population import SessionSpec
        """
        found = [v.code for v in lint_source(textwrap.dedent(src), "tests/x/fixture.py")]
        assert found == ["WL016"]

    def test_package_alias_attribute_flagged(self):
        src = """
            import repro.workload as wl

            def make():
                return wl.SessionSpec
        """
        found = [v.code for v in lint_source(textwrap.dedent(src), "tests/x/fixture.py")]
        assert found == ["WL016"]

    def test_legacy_ctor_flagged_and_from_spec_clean(self):
        src = """
            from repro.cdn.session import StreamingSession

            def legacy():
                return StreamingSession(conditions=None)

            def supported(spec):
                return StreamingSession.from_spec(spec, None, "demo")
        """
        violations = lint_source(textwrap.dedent(src), "examples/fixture.py")
        assert [v.code for v in violations] == ["WL016"]
        assert violations[0].line == 5

    def test_cdn_sessionspec_not_flagged(self):
        # repro.cdn.session.SessionSpec is the *supported* API; only the
        # workload alias is deprecated.
        src = """
            from repro.cdn.session import SessionSpec

            def make():
                return SessionSpec
        """
        assert lint_source(textwrap.dedent(src), "tests/x/fixture.py") == []

    def test_pragma_suppresses(self):
        src = """
            from repro.workload.population import SessionSpec  # wira-lint: disable=WL016
        """
        assert lint_source(textwrap.dedent(src), "tests/x/fixture.py") == []


# ---------------------------------------------------------------------------
# WL009: unused pragmas.


class TestWL009UnusedPragma:
    def test_unused_pragma_flagged_in_src(self):
        src = """
            def f() -> int:
                return 1  # wira-lint: disable=WL003
        """
        violations = lint_source(textwrap.dedent(src), METRICS)
        assert [v.code for v in violations] == ["WL009"]
        assert "suppresses no finding" in violations[0].message

    def test_used_pragma_clean(self):
        src = """
            import time

            def stamp():
                return time.time()  # wira-lint: disable=WL001
        """
        violations = lint_source(textwrap.dedent(src), SIM)
        assert "WL009" not in [v.code for v in violations]

    def test_wrong_zone_pragma_flagged(self):
        # WL001 cannot fire outside the sim zone, so disabling it in
        # metrics is always dead weight.
        src = """
            import time

            def stamp():
                return time.time()  # wira-lint: disable=WL001
        """
        violations = lint_source(textwrap.dedent(src), METRICS)
        assert [v.code for v in violations] == ["WL009"]
        assert "cannot fire in this file" in violations[0].message

    def test_unknown_code_flagged(self):
        src = """
            x = 1  # wira-lint: disable=WL999
        """
        violations = lint_source(textwrap.dedent(src), METRICS)
        assert [v.code for v in violations] == ["WL009"]
        assert "unknown rule code" in violations[0].message

    def test_tests_zone_not_policed(self):
        src = """
            x = 1  # wira-lint: disable=WL003
        """
        assert lint_source(textwrap.dedent(src), "tests/simnet/fixture.py") == []

    def test_wl009_self_opt_out(self):
        src = """
            x = 1  # wira-lint: disable=WL003,WL009
        """
        assert lint_source(textwrap.dedent(src), METRICS) == []

    def test_select_without_rule_skips_judgement(self):
        # When WL003 is not part of the run we cannot tell whether its
        # pragma is dead, so WL009 stays quiet about it.
        src = """
            x = 1  # wira-lint: disable=WL003
        """
        assert lint_source(textwrap.dedent(src), METRICS, select={"WL009"}) == []

"""Tests for the ``tools/wira_fleet`` CLI: run / resume / status / verify /
report.

Campaigns are tiny but real — every test replays actual sessions — and
the determinism assertions compare the same report hash the CI smoke
job checks.
"""

import json
import threading
import time

import pytest

from repro.fleet import (
    TELEMETRY_SCHEMA_VERSION,
    CheckpointState,
    FleetConfig,
    run_chunk,
    save_checkpoint,
    scan_snapshots,
)
from repro.fleet.telemetry import snapshot_path
from repro.workload import DeploymentConfig
from tools.wira_fleet.cli import EXIT_FAILED, EXIT_OK, main

SMALL = [
    "--od-pairs", "4", "--seed", "3",
    "--schemes", "baseline", "wira",
    "--chunk-chains", "2",
]


def small_config():
    return FleetConfig(
        population=DeploymentConfig(n_od_pairs=4, seed=3),
        schemes=("baseline", "wira"),
        chunk_chains=2,
    )


def read_report(path):
    return json.loads(path.read_text(encoding="utf-8"))


class TestRun:
    def test_run_writes_report_and_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "cp.json"
        out = tmp_path / "report.json"
        code = main(
            ["run", *SMALL, "--quiet",
             "--checkpoint", str(checkpoint), "--out", str(out)]
        )
        assert code == EXIT_OK
        report = read_report(out)
        assert report["total_sessions"] > 0
        assert set(report["schemes"]) == {"baseline", "wira"}
        assert checkpoint.exists()
        assert "report hash:" in capsys.readouterr().out

    def test_serial_and_sharded_reports_identical(self, tmp_path):
        """The CLI-level determinism check CI runs on every push."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["run", *SMALL, "--quiet", "--jobs", "1", "--out", str(a)]) == EXIT_OK
        assert main(["run", *SMALL, "--quiet", "--jobs", "2", "--out", str(b)]) == EXIT_OK
        assert a.read_bytes() == b.read_bytes()


class TestResume:
    def test_resume_completes_partial_campaign(self, tmp_path):
        config = small_config()
        checkpoint = tmp_path / "cp.json"
        save_checkpoint(
            checkpoint,
            CheckpointState(
                key=config.key(),
                config=config.to_json(),
                n_chunks=config.n_chunks,
                chunks={0: run_chunk(config, 0)},
            ),
        )
        resumed_out = tmp_path / "resumed.json"
        code = main(
            ["resume", "--checkpoint", str(checkpoint),
             "--quiet", "--out", str(resumed_out)]
        )
        assert code == EXIT_OK

        # Byte-identical to an uninterrupted CLI run of the same campaign.
        fresh_out = tmp_path / "fresh.json"
        assert main(["run", *SMALL, "--quiet", "--out", str(fresh_out)]) == EXIT_OK
        assert resumed_out.read_bytes() == fresh_out.read_bytes()

    def test_resume_without_checkpoint_fails(self, tmp_path, capsys):
        code = main(["resume", "--checkpoint", str(tmp_path / "nope.json"), "--quiet"])
        assert code == EXIT_FAILED
        assert "no usable checkpoint" in capsys.readouterr().err


class TestStatusAndReport:
    @pytest.fixture()
    def partial_checkpoint(self, tmp_path):
        config = small_config()
        path = tmp_path / "cp.json"
        save_checkpoint(
            path,
            CheckpointState(
                key=config.key(),
                config=config.to_json(),
                n_chunks=config.n_chunks,
                chunks={0: run_chunk(config, 0)},
            ),
        )
        return path

    def test_status_reports_progress(self, partial_checkpoint, capsys):
        assert main(["status", "--checkpoint", str(partial_checkpoint)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "chunks:    1/2 completed" in out
        assert "resumable" in out

    def test_status_on_missing_checkpoint_fails(self, tmp_path, capsys):
        code = main(["status", "--checkpoint", str(tmp_path / "nope.json")])
        assert code == EXIT_FAILED

    def test_report_refuses_partial_without_flag(self, partial_checkpoint, capsys):
        code = main(["report", "--checkpoint", str(partial_checkpoint)])
        assert code == EXIT_FAILED
        assert "incomplete" in capsys.readouterr().err

    def test_partial_report_flagged(self, partial_checkpoint, tmp_path):
        out = tmp_path / "partial.json"
        code = main(
            ["report", "--checkpoint", str(partial_checkpoint),
             "--partial", "--out", str(out)]
        )
        assert code == EXIT_OK
        report = read_report(out)
        assert report["partial"] == {"chunks_completed": 1, "chunks_total": 2}

    def test_v1_checkpoint_refused_cleanly(self, tmp_path, capsys):
        """A checkpoint from before chunk payloads carried "phases"
        (format_version 1) must hit the designed "no usable checkpoint"
        error — not a KeyError traceback out of the merge."""
        config = small_config()
        path = tmp_path / "cp.json"
        chunk = run_chunk(config, 0)
        for scheme_payload in chunk["schemes"].values():
            del scheme_payload["phases"]
        payload = CheckpointState(
            key=config.key(),
            config=config.to_json(),
            n_chunks=config.n_chunks,
            chunks={0: chunk},
        ).to_json()
        payload["format_version"] = 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        for argv in (
            ["report", "--checkpoint", str(path), "--partial"],
            ["resume", "--checkpoint", str(path), "--quiet"],
            ["status", "--checkpoint", str(path)],
        ):
            assert main(argv) == EXIT_FAILED
            assert "no usable checkpoint" in capsys.readouterr().err

    def test_report_matches_run_output(self, tmp_path):
        checkpoint = tmp_path / "cp.json"
        run_out = tmp_path / "run.json"
        assert main(
            ["run", *SMALL, "--quiet",
             "--checkpoint", str(checkpoint), "--out", str(run_out)]
        ) == EXIT_OK
        report_out = tmp_path / "report.json"
        assert main(
            ["report", "--checkpoint", str(checkpoint), "--out", str(report_out)]
        ) == EXIT_OK
        assert run_out.read_bytes() == report_out.read_bytes()


class TestTelemetry:
    def completed_campaign(self, tmp_path):
        checkpoint = tmp_path / "cp.json"
        out = tmp_path / "report.json"
        code = main(
            ["run", *SMALL, "--quiet", "--telemetry",
             "--checkpoint", str(checkpoint), "--out", str(out)]
        )
        assert code == EXIT_OK
        return checkpoint, checkpoint.parent / (checkpoint.name + ".telemetry")

    def test_run_with_telemetry_writes_snapshots(self, tmp_path):
        _, telemetry = self.completed_campaign(tmp_path)
        snapshots = scan_snapshots(telemetry)
        assert sorted(snapshots) == [0, 1]

    def test_telemetry_without_checkpoint_needs_explicit_dir(self, tmp_path, capsys):
        code = main(["run", *SMALL, "--quiet", "--telemetry"])
        assert code != EXIT_OK
        assert "--telemetry" in capsys.readouterr().err
        explicit = tmp_path / "tap"
        assert main(
            ["run", *SMALL, "--quiet", "--telemetry", str(explicit)]
        ) == EXIT_OK
        assert sorted(scan_snapshots(explicit)) == [0, 1]

    def test_verify_passes_on_consistent_campaign(self, tmp_path, capsys):
        checkpoint, _ = self.completed_campaign(tmp_path)
        assert main(["verify", "--checkpoint", str(checkpoint)]) == EXIT_OK
        assert "byte-identical" in capsys.readouterr().out

    def test_verify_fails_on_missing_snapshot(self, tmp_path, capsys):
        checkpoint, telemetry = self.completed_campaign(tmp_path)
        snapshot_path(telemetry, 0).unlink()
        assert main(["verify", "--checkpoint", str(checkpoint)]) == EXIT_FAILED
        assert "missing snapshots" in capsys.readouterr().err

    def test_verify_fails_on_schema_skew(self, tmp_path, capsys):
        checkpoint, telemetry = self.completed_campaign(tmp_path)
        path = snapshot_path(telemetry, 0)
        payload = json.loads(path.read_text())
        payload["schema_version"] = TELEMETRY_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert main(["verify", "--checkpoint", str(checkpoint)]) == EXIT_FAILED
        assert "schema_version" in capsys.readouterr().err

    def test_live_status_renders_dashboard(self, tmp_path, capsys):
        checkpoint, _ = self.completed_campaign(tmp_path)
        code = main(
            ["status", "--checkpoint", str(checkpoint),
             "--live", "--polls", "1", "--interval", "0"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "chunks 2/2" in out
        assert "p50" in out
        assert "baseline" in out and "wira" in out

    def test_live_status_tolerates_stale_foreign_snapshot(self, tmp_path, capsys):
        """A snapshot left behind by a different campaign (polling
        across a restart) must be ignored, not crash the dashboard
        with exit 2 on the mixed-campaign merge."""
        checkpoint, telemetry = self.completed_campaign(tmp_path)
        foreign = json.loads(snapshot_path(telemetry, 0).read_text())
        foreign["campaign_key"] = "f" * 40
        foreign["chunk_index"] = 5
        foreign["n_chunks"] = 9
        snapshot_path(telemetry, 5).write_text(json.dumps(foreign))
        code = main(
            ["status", "--checkpoint", str(checkpoint),
             "--live", "--polls", "1", "--interval", "0"]
        )
        assert code == EXIT_OK
        assert "chunks 2/2" in capsys.readouterr().out

    def test_report_html_warns_on_schema_skew(self, tmp_path, capsys):
        """Schema-skewed snapshots drop the HTML throughput section with
        a visible warning — silence would mask a version mismatch."""
        checkpoint, telemetry = self.completed_campaign(tmp_path)
        for index in (0, 1):
            path = snapshot_path(telemetry, index)
            payload = json.loads(path.read_text())
            payload["schema_version"] = TELEMETRY_SCHEMA_VERSION + 1
            path.write_text(json.dumps(payload))
        html_out = tmp_path / "report.html"
        code = main(
            ["report", "--checkpoint", str(checkpoint),
             "--html", str(html_out), "--out", str(tmp_path / "r.json")]
        )
        assert code == EXIT_OK
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "schema_version" in captured.err
        document = html_out.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "Live telemetry" not in document

    def test_live_status_waits_when_no_snapshots(self, tmp_path, capsys):
        config = small_config()
        checkpoint = tmp_path / "cp.json"
        save_checkpoint(
            checkpoint,
            CheckpointState(
                key=config.key(),
                config=config.to_json(),
                n_chunks=config.n_chunks,
                chunks={},
            ),
        )
        code = main(
            ["status", "--checkpoint", str(checkpoint),
             "--live", "--polls", "2", "--interval", "0"]
        )
        assert code == EXIT_OK
        assert "no telemetry snapshots yet" in capsys.readouterr().out

    def test_report_html_artifact(self, tmp_path):
        checkpoint, _ = self.completed_campaign(tmp_path)
        html_out = tmp_path / "report.html"
        code = main(
            ["report", "--checkpoint", str(checkpoint),
             "--html", str(html_out), "--out", str(tmp_path / "r.json")]
        )
        assert code == EXIT_OK
        document = html_out.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "Live telemetry" in document  # snapshots feed the section
        assert "polyline" in document


class TestWriterRace:
    def test_status_survives_concurrent_writer(self, tmp_path, capsys):
        """``status`` must retry — never exit 2 or crash — while a
        campaign (simulated by a non-atomic torn-then-valid writer) is
        rewriting the checkpoint under it."""
        config = small_config()
        checkpoint = tmp_path / "cp.json"
        state = CheckpointState(
            key=config.key(),
            config=config.to_json(),
            n_chunks=config.n_chunks,
            chunks={0: run_chunk(config, 0)},
        )
        valid = json.dumps(state.to_json(), sort_keys=True)
        checkpoint.write_text(valid[: len(valid) // 2])  # start torn

        stop = threading.Event()

        def writer():
            # Keep tearing and healing the file the way a hostile
            # (non-atomic) writer would, ending on a valid state.
            while not stop.is_set():
                checkpoint.write_text(valid[: len(valid) // 2])
                time.sleep(0.005)
                checkpoint.write_text(valid)
                time.sleep(0.005)
            checkpoint.write_text(valid)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            code = main(["status", "--checkpoint", str(checkpoint)])
        finally:
            stop.set()
            thread.join()
        # The retry loop must eventually read a complete state and
        # report it — exit 2 (usage/IO crash) is the regression.
        assert code in (EXIT_OK, EXIT_FAILED)
        assert code == EXIT_OK
        assert "chunks:    1/2" in capsys.readouterr().out

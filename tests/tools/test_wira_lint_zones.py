"""Regression tests for anchored zone matching in the rule registry.

The original matcher used substring-in-path tests, so a zone like
``src/repro/cdn/batchrun`` matched *any* path containing that substring
(``src/repro/cdn/batchrun_extra.py``, ``attic/src/repro/cdn/batchrun/…``
copies, even paths where the run straddles segment boundaries).  The
anchored matcher requires whole path segments; these tests pin the
near-miss behaviour so the bug cannot return.
"""

from tools.wira_lint.rules import RULES, zone_match


class TestZoneMatch:
    def test_exact_directory_match(self):
        assert zone_match("src/repro/simnet/engine.py", "src/repro/simnet")

    def test_module_file_matches_final_segment(self):
        # The final zone segment may name the module file itself.
        assert zone_match("src/repro/cdn/batchrun.py", "src/repro/cdn/batchrun")

    def test_near_miss_prefix_module_name_rejected(self):
        # The substring matcher accepted this: "src/repro/cdn/batchrun"
        # is a substring of the path, but batchrun_extra is a different
        # module and must not inherit batchrun's typed-zone contract.
        assert not zone_match("src/repro/cdn/batchrun_extra.py", "src/repro/cdn/batchrun")

    def test_near_miss_segment_straddle_rejected(self):
        assert not zone_match("notsrc/repro/simnet/engine.py", "src/repro/simnet")

    def test_near_miss_suffix_segment_rejected(self):
        assert not zone_match("src/repro/simnet_backup/engine.py", "src/repro/simnet")

    def test_absolute_tmp_path_anchors_on_segment_run(self):
        # CLI fixture trees live under pytest tmp dirs; the zone must
        # match the mirrored layout anywhere in the path.
        assert zone_match("/tmp/pytest-123/t0/src/repro/simnet/fixture.py", "src/repro/simnet")

    def test_nested_file_under_zone_directory(self):
        assert zone_match("src/repro/quic/cc/bbr.py", "src/repro/quic")

    def test_glob_segment(self):
        assert zone_match("src/repro/media/frames.py", "src/repro/*")

    def test_zone_longer_than_path_rejected(self):
        assert not zone_match("simnet/engine.py", "src/repro/simnet")

    def test_directory_name_equal_to_zone_file_segment(self):
        # Zone naming a module also matches a package directory of the
        # same name (batchrun/ split into a package keeps its contract).
        assert zone_match("src/repro/cdn/batchrun/driver.py", "src/repro/cdn/batchrun")


class TestRuleAppliesTo:
    def test_wl006_does_not_leak_to_sibling_module(self):
        rule = RULES["WL006"]
        assert rule.applies_to("src/repro/cdn/batchrun.py")
        assert not rule.applies_to("src/repro/cdn/batchrun_extra.py")
        assert not rule.applies_to("src/repro/cdn/session.py")

    def test_exempt_zone_wins(self):
        rule = RULES["WL007"]
        assert rule.applies_to("src/repro/cdn/session.py")
        assert not rule.applies_to("src/repro/experiments/table1.py")
        assert not rule.applies_to("src/repro/metrics/report.py")

    def test_windows_separators_normalised(self):
        rule = RULES["WL001"]
        assert rule.applies_to("src\\repro\\simnet\\engine.py")

    def test_settings_file_exempt_from_wl012(self):
        rule = RULES["WL012"]
        assert not rule.applies_to("src/repro/runtime/settings.py")
        assert rule.applies_to("src/repro/runtime/config.py")
        assert rule.applies_to("tools/wira_fleet/campaign.py")
        assert not rule.applies_to("benchmarks/bench_speed.py")

    def test_wl016_reaches_tests_and_examples(self):
        rule = RULES["WL016"]
        assert rule.applies_to("tests/cdn/test_session_spec.py")
        assert rule.applies_to("examples/quickstart.py")
        assert not rule.applies_to("docs/conf.py")

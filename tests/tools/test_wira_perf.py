"""Tests for the wira-perf trajectory recorder and regression ratchet."""

import json

import pytest

from tools.wira_perf.cli import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    extract_metrics,
    latest_comparable,
    machine_fingerprint,
    main,
)

BENCH = {
    "schema_version": 2,
    "event_loop": {"events": 200_000, "events_per_second": 800_000},
    "batched_kernel": {
        "sessions": 32,
        "burst_size": 256,
        "events": 1_499_136,
        "events_per_second": 3_600_000,
    },
    "deployment_replay": {
        "od_pairs": 120,
        "sessions_per_second": 42.5,
        "speedup": 2.1,
    },
}


def write_bench(path, payload=BENCH):
    path.write_text(json.dumps(payload))
    return str(path)


def scaled(factor, sections=("event_loop", "batched_kernel", "deployment_replay")):
    """BENCH with every ratchet metric multiplied by ``factor``."""
    payload = json.loads(json.dumps(BENCH))
    payload["event_loop"]["events_per_second"] *= factor
    payload["batched_kernel"]["events_per_second"] *= factor
    payload["deployment_replay"]["sessions_per_second"] *= factor
    return payload


class TestExtraction:
    def test_extracts_all_three_ratchet_metrics(self):
        metrics = extract_metrics(BENCH)
        assert metrics == {
            "event_loop_events_per_second": 800_000,
            "batched_kernel_events_per_second": 3_600_000,
            "replay_sessions_per_second": 42.5,
        }

    def test_missing_sections_are_skipped_not_invented(self):
        metrics = extract_metrics({"event_loop": {"events_per_second": 5}})
        assert metrics == {"event_loop_events_per_second": 5.0}

    def test_fingerprint_is_stable_within_a_process(self):
        assert machine_fingerprint() == machine_fingerprint()

    def test_latest_comparable_ignores_other_machines(self):
        me = machine_fingerprint()
        other = dict(me, cpu_count=(me["cpu_count"] or 0) + 64)
        snapshots = [
            {"label": "old", "machine": me, "metrics": {}},
            {"label": "foreign", "machine": other, "metrics": {}},
        ]
        assert latest_comparable(snapshots, me)["label"] == "old"
        assert latest_comparable([snapshots[1]], me) is None


class TestRecord:
    def test_record_appends(self, tmp_path):
        bench = write_bench(tmp_path / "bench.json")
        trajectory = tmp_path / "traj.json"
        for label in ("pr1", "pr2"):
            code = main(
                ["record", "--bench", bench, "--trajectory", str(trajectory), "--label", label]
            )
            assert code == EXIT_OK
        snapshots = json.loads(trajectory.read_text())
        assert [s["label"] for s in snapshots] == ["pr1", "pr2"]
        assert snapshots[0]["machine"] == machine_fingerprint()
        assert snapshots[1]["metrics"]["batched_kernel_events_per_second"] == 3_600_000

    def test_record_without_metrics_errors(self, tmp_path):
        bench = write_bench(tmp_path / "bench.json", {"unrelated": {}})
        code = main(
            # Pin --fleet-bench to an absent file: a BENCH_fleet.json at
            # the repo root (the default) would otherwise supply metrics.
            ["record", "--bench", bench,
             "--fleet-bench", str(tmp_path / "absent.json"),
             "--trajectory", str(tmp_path / "t.json"), "--label", "x"]
        )
        assert code == EXIT_ERROR

    def test_missing_bench_file_errors(self, tmp_path):
        code = main(
            [
                "record",
                "--bench",
                str(tmp_path / "nope.json"),
                "--trajectory",
                str(tmp_path / "t.json"),
                "--label",
                "x",
            ]
        )
        assert code == EXIT_ERROR


class TestCheck:
    def _recorded(self, tmp_path):
        bench = write_bench(tmp_path / "bench.json")
        trajectory = tmp_path / "traj.json"
        main(["record", "--bench", bench, "--trajectory", str(trajectory), "--label", "base"])
        return trajectory

    def test_identical_numbers_pass(self, tmp_path):
        trajectory = self._recorded(tmp_path)
        bench = write_bench(tmp_path / "now.json")
        assert main(["check", "--bench", bench, "--trajectory", str(trajectory)]) == EXIT_OK

    def test_small_drop_within_tolerance_passes(self, tmp_path):
        trajectory = self._recorded(tmp_path)
        bench = write_bench(tmp_path / "now.json", scaled(0.95))
        assert main(["check", "--bench", bench, "--trajectory", str(trajectory)]) == EXIT_OK

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        trajectory = self._recorded(tmp_path)
        bench = write_bench(tmp_path / "now.json", scaled(0.85))
        assert (
            main(["check", "--bench", bench, "--trajectory", str(trajectory)])
            == EXIT_REGRESSION
        )

    def test_single_metric_regression_is_enough(self, tmp_path):
        trajectory = self._recorded(tmp_path)
        payload = json.loads(json.dumps(BENCH))
        payload["deployment_replay"]["sessions_per_second"] *= 0.5
        bench = write_bench(tmp_path / "now.json", payload)
        assert (
            main(["check", "--bench", bench, "--trajectory", str(trajectory)])
            == EXIT_REGRESSION
        )

    def test_improvement_passes(self, tmp_path):
        trajectory = self._recorded(tmp_path)
        bench = write_bench(tmp_path / "now.json", scaled(1.5))
        assert main(["check", "--bench", bench, "--trajectory", str(trajectory)]) == EXIT_OK

    def test_custom_tolerance(self, tmp_path):
        trajectory = self._recorded(tmp_path)
        bench = write_bench(tmp_path / "now.json", scaled(0.85))
        assert (
            main(
                [
                    "check",
                    "--bench",
                    bench,
                    "--trajectory",
                    str(trajectory),
                    "--tolerance",
                    "0.2",
                ]
            )
            == EXIT_OK
        )

    def test_no_baseline_passes_unless_strict(self, tmp_path):
        bench = write_bench(tmp_path / "now.json")
        empty = tmp_path / "traj.json"
        assert main(["check", "--bench", bench, "--trajectory", str(empty)]) == EXIT_OK
        assert (
            main(["check", "--bench", bench, "--trajectory", str(empty), "--strict"])
            == EXIT_ERROR
        )

    def test_foreign_machine_snapshots_are_not_compared(self, tmp_path):
        trajectory = tmp_path / "traj.json"
        foreign = dict(machine_fingerprint(), cpu_count=4096)
        trajectory.write_text(
            json.dumps(
                [
                    {
                        "label": "foreign",
                        "machine": foreign,
                        "metrics": {"event_loop_events_per_second": 10**12},
                    }
                ]
            )
        )
        bench = write_bench(tmp_path / "now.json")
        assert main(["check", "--bench", bench, "--trajectory", str(trajectory)]) == EXIT_OK


FLEET_BENCH = {
    "campaign": {
        "od_pairs": 24,
        "sessions": 180,
        "serial_sessions_per_sec": 50.0,
        "sharded_sessions_per_sec": 90.0,
    },
    "checkpoint_overhead": {"overhead_frac": 0.01},
}


class TestFleetMetrics:
    def _recorded(self, tmp_path, fleet_payload=FLEET_BENCH):
        bench = write_bench(tmp_path / "bench.json")
        fleet = write_bench(tmp_path / "fleet.json", fleet_payload)
        trajectory = tmp_path / "traj.json"
        main(
            ["record", "--bench", bench, "--fleet-bench", fleet,
             "--trajectory", str(trajectory), "--label", "base"]
        )
        return bench, trajectory

    def test_fleet_metrics_extracted_from_fleet_source(self):
        metrics = extract_metrics(FLEET_BENCH, source="fleet")
        assert metrics == {
            "fleet_sessions_per_second": 50.0,
            "fleet_checkpoint_overhead_frac": 0.01,
        }
        # The fleet file never contributes speed metrics and vice versa.
        assert extract_metrics(FLEET_BENCH, source="speed") == {}
        assert extract_metrics(BENCH, source="fleet") == {}

    def test_record_folds_fleet_metrics_into_snapshot(self, tmp_path):
        _, trajectory = self._recorded(tmp_path)
        snapshot = json.loads(trajectory.read_text())[0]
        assert snapshot["metrics"]["fleet_sessions_per_second"] == 50.0
        assert snapshot["metrics"]["fleet_checkpoint_overhead_frac"] == 0.01

    def test_missing_fleet_bench_is_skipped_silently(self, tmp_path):
        bench = write_bench(tmp_path / "bench.json")
        trajectory = tmp_path / "traj.json"
        code = main(
            ["record", "--bench", bench,
             "--fleet-bench", str(tmp_path / "absent.json"),
             "--trajectory", str(trajectory), "--label", "x"]
        )
        assert code == EXIT_OK
        snapshot = json.loads(trajectory.read_text())[0]
        assert "fleet_sessions_per_second" not in snapshot["metrics"]

    def test_fleet_throughput_regression_fails(self, tmp_path):
        bench, trajectory = self._recorded(tmp_path)
        slower = json.loads(json.dumps(FLEET_BENCH))
        slower["campaign"]["serial_sessions_per_sec"] = 30.0
        fleet = write_bench(tmp_path / "now-fleet.json", slower)
        code = main(
            ["check", "--bench", bench, "--fleet-bench", fleet,
             "--trajectory", str(trajectory)]
        )
        assert code == EXIT_REGRESSION

    def test_overhead_growth_fails_lower_is_better(self, tmp_path):
        base = json.loads(json.dumps(FLEET_BENCH))
        base["checkpoint_overhead"]["overhead_frac"] = 0.05
        bench, trajectory = self._recorded(tmp_path, base)
        worse = json.loads(json.dumps(FLEET_BENCH))
        worse["checkpoint_overhead"]["overhead_frac"] = 0.12
        fleet = write_bench(tmp_path / "now-fleet.json", worse)
        code = main(
            ["check", "--bench", bench, "--fleet-bench", fleet,
             "--trajectory", str(trajectory)]
        )
        assert code == EXIT_REGRESSION

    def test_overhead_noise_floor_tolerated(self, tmp_path):
        """Near-zero baselines get the absolute floor: 0.1% → 1.5% is
        timer noise at smoke scale, not a regression."""
        base = json.loads(json.dumps(FLEET_BENCH))
        base["checkpoint_overhead"]["overhead_frac"] = 0.001
        bench, trajectory = self._recorded(tmp_path, base)
        noisy = json.loads(json.dumps(FLEET_BENCH))
        noisy["checkpoint_overhead"]["overhead_frac"] = 0.015
        fleet = write_bench(tmp_path / "now-fleet.json", noisy)
        code = main(
            ["check", "--bench", bench, "--fleet-bench", fleet,
             "--trajectory", str(trajectory)]
        )
        assert code == EXIT_OK

    def test_check_without_fleet_bench_still_gates_speed(self, tmp_path):
        _, trajectory = self._recorded(tmp_path)
        bench = write_bench(tmp_path / "now.json", scaled(0.5))
        code = main(
            ["check", "--bench", bench,
             "--fleet-bench", str(tmp_path / "absent.json"),
             "--trajectory", str(trajectory)]
        )
        assert code == EXIT_REGRESSION


class TestRepoArtifact:
    def test_repo_trajectory_is_well_formed(self):
        """The committed BENCH_TRAJECTORY.json must parse and carry the
        ratchet metrics — the CI perf gate consumes it as-is."""
        from tools.wira_perf.cli import DEFAULT_TRAJECTORY, load_trajectory

        snapshots = load_trajectory(DEFAULT_TRAJECTORY)
        assert snapshots, "BENCH_TRAJECTORY.json must hold at least one snapshot"
        for snapshot in snapshots:
            assert snapshot["label"]
            assert "machine" in snapshot
            assert "batched_kernel_events_per_second" in snapshot["metrics"]

"""Fixture tests for the wira-lint determinism linter.

Each rule gets three fixtures: a positive hit, the same snippet with a
suppressing pragma, and a clean variant.  Snippets are linted via
``lint_source`` under a *virtual* path inside the rule's zone (e.g.
``src/repro/simnet/fixture.py``), so zone scoping applies exactly as it
would in CI.  The CLI tests write real files under ``tmp_path`` with the
same mirrored layout.
"""

import json
import textwrap

import pytest

from tools.wira_lint import RULES, lint_paths, lint_source
from tools.wira_lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_VIOLATIONS, main
from tools.wira_lint.engine import PARSE_ERROR_CODE

SIM_PATH = "src/repro/simnet/fixture.py"
QUIC_PATH = "src/repro/quic/fixture.py"
SRC_PATH = "src/repro/metrics/fixture.py"
TEST_PATH = "tests/simnet/fixture.py"


def codes(source, path):
    return [v.code for v in lint_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# WL001: wall-clock reads in simulation code.


class TestWL001WallClock:
    def test_time_time_flagged(self):
        src = """
            import time

            def stamp() -> float:
                return time.time()
        """
        assert "WL001" in codes(src, SIM_PATH)

    def test_time_monotonic_flagged(self):
        src = """
            import time

            def stamp() -> float:
                return time.monotonic()
        """
        assert "WL001" in codes(src, SIM_PATH)

    def test_datetime_now_flagged_through_from_import(self):
        src = """
            from datetime import datetime

            def stamp() -> object:
                return datetime.now()
        """
        assert "WL001" in codes(src, SIM_PATH)

    def test_aliased_import_resolved(self):
        src = """
            import time as _t

            def stamp() -> float:
                return _t.time()
        """
        assert "WL001" in codes(src, SIM_PATH)

    def test_pragma_suppresses(self):
        src = """
            import time

            def stamp() -> float:
                return time.time()  # wira-lint: disable=WL001
        """
        assert "WL001" not in codes(src, SIM_PATH)

    def test_clean_sim_clock_usage(self):
        src = """
            def stamp(loop) -> float:  # wira-lint: disable=WL006
                return loop.now
        """
        assert codes(src, SIM_PATH) == []

    def test_outside_sim_zone_not_flagged(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert "WL001" not in codes(src, TEST_PATH)

    def test_time_perf_counter_also_banned_in_sim_zone(self):
        # Benchmarks measure wall time from benchmarks/ (outside the sim
        # zone); inside it, every process clock poisons determinism.
        src = """
            import time

            def stamp() -> float:
                return time.perf_counter()
        """
        assert "WL001" in codes(src, SIM_PATH)


# ---------------------------------------------------------------------------
# WL002: unseeded / global randomness.


class TestWL002Randomness:
    def test_module_level_random_flagged(self):
        src = """
            import random

            def jitter() -> float:
                return random.random()
        """
        assert "WL002" in codes(src, SIM_PATH)

    def test_unseeded_random_instance_flagged(self):
        src = """
            import random

            def make_rng() -> object:
                return random.Random()
        """
        assert "WL002" in codes(src, SIM_PATH)

    def test_hardcoded_seed_flagged(self):
        src = """
            import random

            def make_rng() -> object:
                return random.Random(0)
        """
        assert "WL002" in codes(src, SIM_PATH)

    def test_pragma_suppresses(self):
        src = """
            import random

            def make_rng() -> object:
                return random.Random(0)  # wira-lint: disable=WL002
        """
        assert "WL002" not in codes(src, SIM_PATH)

    def test_caller_seeded_rng_clean(self):
        src = """
            import random

            def make_rng(seed: int) -> object:
                return random.Random(seed)
        """
        assert codes(src, SIM_PATH) == []

    def test_from_import_flagged(self):
        src = """
            from random import random

            def jitter() -> float:
                return random()
        """
        assert "WL002" in codes(src, SIM_PATH)


# ---------------------------------------------------------------------------
# WL003: float equality on time/rate quantities.


class TestWL003FloatEquality:
    def test_time_named_equality_flagged(self):
        src = """
            def check(rtt_a, rtt_b):
                return rtt_a == rtt_b
        """
        assert "WL003" in codes(src, SRC_PATH)

    def test_float_literal_equality_flagged(self):
        src = """
            def check(gain):
                return gain == 0.75
        """
        assert "WL003" in codes(src, SRC_PATH)

    def test_pragma_suppresses(self):
        src = """
            def check(rtt_a, rtt_b):
                return rtt_a == rtt_b  # wira-lint: disable=WL003
        """
        assert "WL003" not in codes(src, SRC_PATH)

    def test_named_constant_comparison_clean(self):
        src = """
            MAX_BW_BPS = b"MBPS"

            def check(tag):
                return tag == MAX_BW_BPS
        """
        assert codes(src, SRC_PATH) == []

    def test_infinity_comparison_clean(self):
        src = """
            def check(deadline):
                return deadline == float("inf")
        """
        assert codes(src, SRC_PATH) == []

    def test_int_comparison_clean(self):
        src = """
            def check(count, total):
                return count == total
        """
        assert codes(src, SRC_PATH) == []


# ---------------------------------------------------------------------------
# WL004: hot-path classes must declare __slots__.


class TestWL004Slots:
    def test_registry_class_without_slots_flagged(self):
        src = """
            class Pacer:
                def __init__(self) -> None:
                    self.tokens = 0.0
        """
        assert "WL004" in codes(src, QUIC_PATH)

    def test_slots_declaration_clean(self):
        src = """
            class Pacer:
                __slots__ = ("tokens",)

                def __init__(self) -> None:
                    self.tokens = 0.0
        """
        assert codes(src, QUIC_PATH) == []

    def test_dataclass_slots_clean(self):
        src = """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class SentPacket:
                packet_number: int
        """
        assert codes(src, QUIC_PATH) == []

    def test_pragma_suppresses(self):
        src = """
            class Link:  # wira-lint: disable=WL004
                def __init__(self) -> None:
                    self.rate = 0.0
        """
        assert "WL004" not in codes(src, SIM_PATH)

    def test_unregistered_class_clean(self):
        src = """
            class SessionResult:
                def __init__(self) -> None:
                    self.ffct = None
        """
        assert "WL004" not in codes(src, SIM_PATH)


# ---------------------------------------------------------------------------
# WL005: dict-ordering-dependent iteration in merge paths.


class TestWL005MergeOrdering:
    def test_dict_values_in_merge_flagged(self):
        src = """
            def merge_results(shards: dict) -> list:
                out = []
                for shard in shards.values():
                    out.append(shard)
                return out
        """
        assert "WL005" in codes(src, SRC_PATH)

    def test_replay_function_also_matches(self):
        src = """
            def replay_cached(entries: dict) -> list:
                return [v for v in entries.values()]
        """
        assert "WL005" in codes(src, SRC_PATH)

    def test_sorted_iteration_clean(self):
        src = """
            def merge_results(shards: dict) -> list:
                out = []
                for key in sorted(shards.keys()):
                    out.append(shards[key])
                return out
        """
        assert codes(src, SRC_PATH) == []

    def test_non_merge_function_clean(self):
        src = """
            def collect(shards: dict) -> list:
                return [v for v in shards.values()]
        """
        assert "WL005" not in codes(src, SRC_PATH)

    def test_pragma_suppresses(self):
        src = """
            def merge_results(shards: dict) -> list:
                return [v for v in shards.values()]  # wira-lint: disable=WL005
        """
        assert "WL005" not in codes(src, SRC_PATH)


# ---------------------------------------------------------------------------
# WL006: typed defs in the quic/simnet zones.


class TestWL006TypedDefs:
    def test_untyped_def_flagged(self):
        src = """
            def pace(size, now):
                return size / now
        """
        assert "WL006" in codes(src, QUIC_PATH)

    def test_missing_return_annotation_flagged(self):
        src = """
            def pace(size: int, now: float):
                return size / now
        """
        assert "WL006" in codes(src, QUIC_PATH)

    def test_fully_typed_clean(self):
        src = """
            def pace(size: int, now: float) -> float:
                return size / now
        """
        assert codes(src, QUIC_PATH) == []

    def test_self_and_cls_exempt(self):
        src = """
            class Pacer:
                __slots__ = ()

                def rate(self) -> float:
                    return 0.0

                @classmethod
                def default(cls) -> "Pacer":
                    return cls()
        """
        assert codes(src, QUIC_PATH) == []

    def test_not_applied_outside_typed_zone(self):
        src = """
            def helper(x):
                return x
        """
        assert "WL006" not in codes(src, SRC_PATH)


# ---------------------------------------------------------------------------
# WL007: no bare print() in library code.


class TestWL007BarePrint:
    def test_print_flagged_in_library_code(self):
        src = """
            def debug(x: int) -> int:
                print(x)
                return x
        """
        assert "WL007" in codes(src, SRC_PATH)
        assert "WL007" in codes(src, "src/repro/cdn/fixture.py")

    def test_pragma_suppresses(self):
        src = """
            def debug(x: int) -> int:
                print(x)  # wira-lint: disable=WL007
                return x
        """
        assert "WL007" not in codes(src, SRC_PATH)

    def test_experiments_zone_exempt(self):
        # Figure scripts report to stdout by design.
        src = """
            def report(x: int) -> None:
                print(x)
        """
        assert "WL007" not in codes(src, "src/repro/experiments/fixture.py")

    def test_report_module_exempt(self):
        src = """
            def show(table: object) -> None:
                print(table)
        """
        assert "WL007" not in codes(src, "src/repro/metrics/report.py")

    def test_tests_zone_not_covered(self):
        src = """
            def noisy() -> None:
                print("debugging")
        """
        assert "WL007" not in codes(src, TEST_PATH)

    def test_method_named_print_clean(self):
        src = """
            def show(table) -> None:
                table.print()
        """
        assert "WL007" not in codes(src, SRC_PATH)


# ---------------------------------------------------------------------------
# Pragma machinery.


class TestPragmas:
    def test_file_wide_disable(self):
        src = """
            # wira-lint: disable-file=WL002
            import random

            def a() -> float:
                return random.random()

            def b() -> float:
                return random.random()
        """
        assert codes(src, SIM_PATH) == []

    def test_multiple_codes_one_pragma(self):
        src = """
            import time, random

            def stamp() -> float:
                return time.time() + random.random()  # wira-lint: disable=WL001,WL002
        """
        assert codes(src, SIM_PATH) == []

    def test_pragma_only_covers_its_line(self):
        src = """
            import random

            def a() -> float:
                return random.random()  # wira-lint: disable=WL002

            def b() -> float:
                return random.random()
        """
        assert codes(src, SIM_PATH) == ["WL002"]


# ---------------------------------------------------------------------------
# Parse errors and the file walker.


class TestEngine:
    def test_parse_error_reported(self):
        found = lint_source("def broken(:\n", SIM_PATH)
        assert [v.code for v in found] == [PARSE_ERROR_CODE]

    def test_render_format(self):
        src = "import time\n\ndef f() -> float:\n    return time.time()\n"
        violation = lint_source(src, SIM_PATH)[0]
        rendered = violation.render()
        assert rendered.startswith(f"{SIM_PATH}:4:")
        assert "WL001" in rendered

    def test_out_of_zone_file_skipped_entirely(self):
        assert lint_source("import time\ntime.time()\n", "scripts/tool.py") == []

    def test_lint_paths_walks_mirrored_tree(self, tmp_path):
        zone = tmp_path / "src" / "repro" / "simnet"
        zone.mkdir(parents=True)
        (zone / "bad.py").write_text("import time\n\n\ndef f() -> float:\n    return time.time()\n")
        (zone / "good.py").write_text("def f(x: int) -> int:\n    return x\n")
        violations, scanned = lint_paths([str(tmp_path)])
        assert scanned == 2
        assert [v.code for v in violations] == ["WL001"]

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "src" / "repro" / "simnet" / "__pycache__"
        cache.mkdir(parents=True)
        (cache / "junk.py").write_text("import time\ntime.time()\n")
        violations, scanned = lint_paths([str(tmp_path)])
        assert scanned == 0 and violations == []


# ---------------------------------------------------------------------------
# CLI exit codes and reports.


def write_fixture(tmp_path, relpath, body):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(body))
    return target


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_fixture(
            tmp_path, "src/repro/simnet/ok.py", "def f(x: int) -> int:\n    return x\n"
        )
        assert main([str(tmp_path)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "relpath,body",
        [
            (
                "src/repro/simnet/wl001.py",
                """
                import time

                def f() -> float:
                    return time.time()
                """,
            ),
            (
                "src/repro/simnet/wl002.py",
                """
                import random

                def f() -> float:
                    return random.random()
                """,
            ),
            (
                "src/repro/metrics/wl003.py",
                """
                def f(rtt_a, rtt_b):
                    return rtt_a == rtt_b
                """,
            ),
            (
                "src/repro/quic/wl004.py",
                """
                class Pacer:
                    def __init__(self) -> None:
                        self.t = 0.0
                """,
            ),
            (
                "src/repro/metrics/wl005.py",
                """
                def merge(d: dict) -> list:
                    return [v for v in d.values()]
                """,
            ),
            (
                "src/repro/quic/wl006.py",
                """
                def f(x):
                    return x
                """,
            ),
            (
                "src/repro/cdn/wl007.py",
                """
                def f(x: int) -> int:
                    print(x)
                    return x
                """,
            ),
        ],
        ids=["WL001", "WL002", "WL003", "WL004", "WL005", "WL006", "WL007"],
    )
    def test_each_rule_fixture_fails_the_build(self, tmp_path, capsys, relpath, body):
        write_fixture(tmp_path, relpath, body)
        assert main([str(tmp_path)]) == EXIT_VIOLATIONS
        capsys.readouterr()

    def test_parse_error_exits_two(self, tmp_path, capsys):
        write_fixture(tmp_path, "src/repro/simnet/broken.py", "def broken(:\n")
        assert main([str(tmp_path)]) == EXIT_ERROR
        capsys.readouterr()

    def test_json_report(self, tmp_path, capsys):
        write_fixture(
            tmp_path,
            "src/repro/simnet/bad.py",
            """
            import time

            def f() -> float:
                return time.time()
            """,
        )
        out_file = tmp_path / "report.json"
        code = main([str(tmp_path), "--format", "json", "--output", str(out_file)])
        capsys.readouterr()
        assert code == EXIT_VIOLATIONS
        report = json.loads(out_file.read_text())
        assert report["files_scanned"] == 1
        assert report["counts"] == {"WL001": 1}
        (entry,) = report["violations"]
        assert entry["code"] == "WL001"
        assert entry["rule"] == RULES["WL001"].name
        assert entry["file"].endswith("bad.py")
        assert entry["line"] == 5

    def test_select_limits_rules(self, tmp_path, capsys):
        write_fixture(
            tmp_path,
            "src/repro/simnet/bad.py",
            """
            import time

            def f() -> float:
                return time.time()
            """,
        )
        assert main([str(tmp_path), "--select", "WL002"]) == EXIT_CLEAN
        assert main([str(tmp_path), "--select", "WL001"]) == EXIT_VIOLATIONS
        capsys.readouterr()

    def test_unknown_select_exits_two(self, capsys):
        assert main(["--select", "WL099"]) == EXIT_ERROR
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

"""Tests for the repo-local tooling (:mod:`tools.wira_lint`)."""

"""Incremental-engine tests: facts cache, baseline semantics, reporters.

Covers the acceptance bar for the engine itself: fingerprint-cache
hit/miss/invalidated-on-edit, corrupted-cache recovery, baseline
add/shrink (the baseline may only *shrink* in CI — stale entries fail
the run), byte-identical warm output, and the SARIF reporter.
"""

import gc
import json
import textwrap
import time

import pytest

from tools.wira_lint.baseline import BaselineError, load_baseline
from tools.wira_lint.cache import CACHE_FILENAME
from tools.wira_lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_VIOLATIONS, main
from tools.wira_lint.engine import lint_paths
from tools.wira_lint.report import render_json, render_sarif, render_text

CLOCK_SRC = """
    import time


    def stamp() -> float:
        return time.time()
"""

CLEAN_SRC = """
    def advance(loop: object) -> float:
        return loop.now
"""


def write_tree(root, clock: bool = True):
    sim = root / "src" / "repro" / "simnet"
    sim.mkdir(parents=True, exist_ok=True)
    (sim / "__init__.py").write_text("")
    (sim / "clock.py").write_text(textwrap.dedent(CLOCK_SRC if clock else CLEAN_SRC))
    (sim / "engine.py").write_text(textwrap.dedent(CLEAN_SRC))
    for i in range(6):
        (sim / f"mod{i}.py").write_text(textwrap.dedent(CLEAN_SRC))
    return root / "src"


class TestFactsCache:
    def test_cold_then_warm_hit_counts(self, tmp_path):
        src = write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = lint_paths([str(src)], cache_dir=str(cache_dir))
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.files_scanned > 0
        warm = lint_paths([str(src)], cache_dir=str(cache_dir))
        assert warm.cache_misses == 0
        assert warm.cache_hits == warm.files_scanned
        assert warm.violations == cold.violations

    def test_edit_invalidates_only_that_file(self, tmp_path):
        src = write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([str(src)], cache_dir=str(cache_dir))
        (src / "repro" / "simnet" / "mod0.py").write_text(
            textwrap.dedent(CLEAN_SRC) + "\nX = 1\n"
        )
        edited = lint_paths([str(src)], cache_dir=str(cache_dir))
        assert edited.cache_misses == 1
        assert edited.cache_hits == edited.files_scanned - 1

    def test_corrupted_cache_recovers(self, tmp_path):
        src = write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = lint_paths([str(src)], cache_dir=str(cache_dir))
        (cache_dir / CACHE_FILENAME).write_text("{ this is not json")
        recovered = lint_paths([str(src)], cache_dir=str(cache_dir))
        assert recovered.cache_misses == recovered.files_scanned
        assert recovered.violations == cold.violations
        # The recovery run rewrote a valid cache.
        warm = lint_paths([str(src)], cache_dir=str(cache_dir))
        assert warm.cache_misses == 0

    def test_wrong_version_cache_ignored(self, tmp_path):
        src = write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / CACHE_FILENAME).write_text(json.dumps({"version": 999, "entries": {}}))
        run = lint_paths([str(src)], cache_dir=str(cache_dir))
        assert run.cache_misses == run.files_scanned

    def test_jobs_matches_serial_output(self, tmp_path):
        src = write_tree(tmp_path)
        serial = lint_paths([str(src)])
        parallel = lint_paths([str(src)], jobs=2)
        assert serial.violations == parallel.violations

    def test_warm_run_faster_and_byte_identical(self, tmp_path):
        # Acceptance: a warm run on an unchanged tree is at least 5x
        # faster than cold and renders byte-identical reports.  Use the
        # real repository source tree for a realistic extraction load.
        # The warm leg is sub-second, so a single sample late in a full
        # suite run is allocator-noise-dominated on a 1-core box: time
        # it as the best of two runs over a collected heap.
        cache_dir = tmp_path / "cache"
        gc.collect()
        t0 = time.perf_counter()
        cold = lint_paths(["src"], cache_dir=str(cache_dir))
        t1 = time.perf_counter()
        warm_time = float("inf")
        for _ in range(2):
            gc.collect()
            start = time.perf_counter()
            warm = lint_paths(["src"], cache_dir=str(cache_dir))
            warm_time = min(warm_time, time.perf_counter() - start)
        assert warm.cache_misses == 0
        assert (t1 - t0) / max(warm_time, 1e-9) >= 5.0
        for renderer in (render_text, render_json, render_sarif):
            assert renderer(cold.violations, cold.files_scanned) == renderer(
                warm.violations, warm.files_scanned
            )


class TestBaseline:
    def test_update_then_suppress(self, tmp_path):
        src = write_tree(tmp_path, clock=True)
        baseline = tmp_path / "baseline.json"
        first = lint_paths([str(src)], baseline_path=str(baseline), update_baseline=True)
        assert first.violations == []
        assert first.suppressed_baseline > 0
        # Next run: the grandfathered finding stays suppressed, nothing
        # is stale.
        second = lint_paths([str(src)], baseline_path=str(baseline))
        assert second.violations == []
        assert second.suppressed_baseline == first.suppressed_baseline
        assert second.stale_baseline == []

    def test_new_finding_not_masked_by_baseline(self, tmp_path):
        src = write_tree(tmp_path, clock=True)
        baseline = tmp_path / "baseline.json"
        lint_paths([str(src)], baseline_path=str(baseline), update_baseline=True)
        (src / "repro" / "simnet" / "fresh.py").write_text(
            "import time\n\n\ndef other() -> float:\n    return time.monotonic()\n"
        )
        run = lint_paths([str(src)], baseline_path=str(baseline))
        assert [v.code for v in run.violations] == ["WL001"]
        assert "fresh.py" in run.violations[0].path

    def test_fixed_finding_goes_stale(self, tmp_path):
        # The shrink-only contract: once the debt is paid, the baseline
        # entry must be removed or the run fails.
        src = write_tree(tmp_path, clock=True)
        baseline = tmp_path / "baseline.json"
        lint_paths([str(src)], baseline_path=str(baseline), update_baseline=True)
        write_tree(tmp_path, clock=False)
        run = lint_paths([str(src)], baseline_path=str(baseline))
        assert run.violations == []
        assert len(run.stale_baseline) == 1
        assert run.stale_baseline[0][1] == "WL001"

    def test_duplicate_findings_counted_as_multiset(self, tmp_path):
        src = write_tree(tmp_path, clock=True)
        baseline = tmp_path / "baseline.json"
        lint_paths([str(src)], baseline_path=str(baseline), update_baseline=True)
        # A second, identical read in the same file is *new* debt even
        # though (path, code, message) already appears in the baseline.
        clock = src / "repro" / "simnet" / "clock.py"
        clock.write_text(clock.read_text() + "\n\ndef stamp2() -> float:\n    return time.time()\n")
        run = lint_paths([str(src)], baseline_path=str(baseline))
        assert len(run.violations) == 1
        assert run.violations[0].code == "WL001"

    def test_malformed_baseline_raises(self, tmp_path):
        src = write_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json at all")
        with pytest.raises(BaselineError):
            lint_paths([str(src)], baseline_path=str(baseline))

    def test_saved_baseline_round_trips(self, tmp_path):
        src = write_tree(tmp_path, clock=True)
        baseline = tmp_path / "baseline.json"
        lint_paths([str(src)], baseline_path=str(baseline), update_baseline=True)
        entries = load_baseline(baseline)
        assert sum(entries.values()) == 1
        ((path, code, _message),) = entries
        assert code == "WL001"
        assert path.endswith("clock.py")


class TestSarifReport:
    def test_sarif_structure(self, tmp_path):
        src = write_tree(tmp_path, clock=True)
        result = lint_paths([str(src)])
        payload = json.loads(render_sarif(result.violations, result.files_scanned))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "wira-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"WL000", "WL001", "WL010", "WL016"} <= rule_ids
        result_ids = [r["ruleId"] for r in run["results"]]
        assert "WL001" in result_ids
        region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


class TestCli:
    def test_cli_cache_jobs_and_sarif_artifact(self, tmp_path, capsys):
        src = write_tree(tmp_path, clock=True)
        out = tmp_path / "lint.sarif"
        argv = [
            str(src),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--jobs",
            "2",
            "--format",
            "sarif",
            "--output",
            str(out),
            "--no-baseline",
        ]
        assert main(argv) == EXIT_VIOLATIONS
        payload = json.loads(out.read_text())
        assert payload["runs"][0]["results"]
        # Warm run: identical artifact bytes.
        first = out.read_text()
        assert main(argv) == EXIT_VIOLATIONS
        assert out.read_text() == first

    def test_cli_update_baseline_then_clean_then_stale(self, tmp_path, capsys):
        src = write_tree(tmp_path, clock=True)
        baseline = tmp_path / "baseline.json"
        assert (
            main([str(src), "--baseline", str(baseline), "--update-baseline"]) == EXIT_CLEAN
        )
        assert main([str(src), "--baseline", str(baseline)]) == EXIT_CLEAN
        write_tree(tmp_path, clock=False)
        assert main([str(src), "--baseline", str(baseline)]) == EXIT_VIOLATIONS
        err = capsys.readouterr().err
        assert "baseline" in err and "shrink" in err

    def test_cli_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        src = write_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        assert main([str(src), "--baseline", str(baseline)]) == EXIT_ERROR

    def test_cli_no_cache_flag(self, tmp_path):
        src = write_tree(tmp_path, clock=False)
        cache_dir = tmp_path / "cache"
        assert (
            main([str(src), "--cache-dir", str(cache_dir), "--no-cache", "--no-baseline"])
            == EXIT_CLEAN
        )
        assert not (cache_dir / CACHE_FILENAME).exists()

"""Tests for the ASCII reporting helpers (``repro.metrics.report``).

Every benchmark table goes through this module, and the trace tooling
leans on the ``None`` → ``"-"`` convention for missing values, so the
formatting edges are pinned here.
"""

import pytest

from repro.metrics.report import Table, format_ms, format_pct


class TestFormatMs:
    def test_converts_seconds_to_milliseconds(self):
        assert format_ms(0.1425) == "142.5ms"

    def test_rounds_to_one_decimal(self):
        assert format_ms(0.123456) == "123.5ms"

    def test_none_renders_as_dash(self):
        assert format_ms(None) == "-"

    def test_zero(self):
        assert format_ms(0.0) == "0.0ms"

    def test_negative_delta(self):
        assert format_ms(-0.0347) == "-34.7ms"


class TestFormatPct:
    def test_basic(self):
        assert format_pct(0.106) == "10.6%"

    def test_none_renders_as_dash(self):
        assert format_pct(None) == "-"
        assert format_pct(None, signed=True) == "-"

    def test_signed_positive_gains_plus(self):
        assert format_pct(0.106, signed=True) == "+10.6%"

    def test_signed_negative_keeps_minus(self):
        assert format_pct(-0.05, signed=True) == "-5.0%"

    def test_signed_zero_has_no_sign(self):
        assert format_pct(0.0, signed=True) == "0.0%"

    def test_unsigned_never_shows_plus(self):
        assert format_pct(0.5) == "50.0%"


class TestTable:
    def test_render_layout(self):
        table = Table("Title", ["col", "x"])
        table.add_row("a", "bb")
        title, header, separator, row = table.render().splitlines()
        assert title == "Title"
        assert header == "col | x "
        assert separator == "----+---"
        assert row == "a   | bb"

    def test_columns_widen_to_longest_cell(self):
        table = Table("T", ["a", "b"])
        table.add_row("wide-cell", "y")
        header, separator = table.render().splitlines()[1:3]
        assert header.startswith("a".ljust(9))
        assert separator == "-" * 9 + "-+-" + "-"

    def test_empty_table_renders_header_only(self):
        table = Table("T", ["a", "b"])
        assert len(table.render().splitlines()) == 3  # title, header, rule

    def test_cells_coerced_to_str(self):
        table = Table("T", ["n", "v"])
        table.add_row(3, 1.5)
        assert table.render().splitlines()[-1] == "3 | 1.5"

    def test_wrong_cell_count_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError, match="expected 2 cells, got 1"):
            table.add_row("only-one")
        with pytest.raises(ValueError, match="expected 2 cells, got 3"):
            table.add_row("x", "y", "z")

    def test_print_emits_blank_line_then_render(self, capsys):
        table = Table("T", ["a"])
        table.add_row("x")
        table.print()
        assert capsys.readouterr().out == "\n" + table.render() + "\n"

"""Sketch correctness: merge algebra, error bounds, serialization.

The fleet engine's serial == sharded byte-identity rests on three
properties proved here:

* folding and merging are **associative and commutative** — not just
  value-close but *byte-identical* through JSON serialization;
* sketch percentiles stay within the documented relative-error bound of
  the exact nearest-rank percentile on adversarial distributions;
* checkpointed (JSON round-tripped) state keeps folding identically.
"""

import json
import math
import random

import pytest

from repro.metrics import MetricSeries
from repro.metrics.sketch import (
    DEFAULT_ALPHA,
    ExactSum,
    QuantileSketch,
    StatAccumulator,
)


def canon(obj):
    """Canonical JSON bytes — the byte-identity yardstick."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


def exact_nearest_rank(values, q):
    ordered = sorted(values)
    return ordered[int(q * (len(ordered) - 1))]


#: Adversarial sample shapes: heavy tails, constants, extreme bimodality,
#: geometric spacing across many orders of magnitude, zero-inflation.
def adversarial_distributions():
    rng = random.Random(20240806)
    return {
        "lognormal_heavy": [rng.lognormvariate(0.0, 2.5) for _ in range(5000)],
        "constant": [0.137] * 1000,
        "bimodal_extreme": [1e-6] * 500 + [1e6] * 500,
        "geometric_span": [2.0**k for k in range(-20, 21) for _ in range(25)],
        "zero_inflated": [0.0] * 400 + [rng.expovariate(3.0) for _ in range(600)],
        "tiny": [0.042],
        "two_samples": [1.0, 1000.0],
    }


class TestExactSum:
    def test_matches_fsum(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 3.0) * (-1) ** i for i, rng_ in enumerate([rng] * 500) for rng in [rng_]]
        acc = ExactSum()
        for v in values:
            acc.add(v)
        assert acc.value == math.fsum(values)

    def test_merge_order_invariant_bitwise(self):
        rng = random.Random(11)
        values = [rng.lognormvariate(0.0, 4.0) for _ in range(300)]
        # Ill-conditioned additions: huge dynamic range.
        values += [1e-12, 1e12, 3.0, 1e-300]

        def summed(order, split):
            parts = [ExactSum() for _ in range(split)]
            for i, v in enumerate(order):
                parts[i % split].add(v)
            total = ExactSum()
            for part in parts:
                total.merge(part)
            return total.value

        reference = summed(values, 1)
        shuffled = list(values)
        for split in (2, 3, 7):
            random.Random(split).shuffle(shuffled)
            assert summed(shuffled, split) == reference

    def test_json_round_trip(self):
        acc = ExactSum()
        for v in (1e16, 1.0, -1e16, 0.123):
            acc.add(v)
        clone = ExactSum.from_json(json.loads(json.dumps(acc.to_json())))
        assert clone.value == acc.value
        clone.add(2.0)
        acc.add(2.0)
        assert clone.value == acc.value


class TestStatAccumulator:
    def test_fold_and_merge(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        a, b, whole = StatAccumulator(), StatAccumulator(), StatAccumulator()
        for v in values:
            whole.add(v)
        for v in values[:2]:
            a.add(v)
        for v in values[2:]:
            b.add(v)
        a.merge(b)
        assert a.count == whole.count == 5
        assert a.mean == whole.mean == math.fsum(values) / 5
        assert a.min == 1.0 and a.max == 9.0

    def test_none_skipped_and_empty(self):
        acc = StatAccumulator()
        acc.add(None)
        assert acc.count == 0
        assert acc.mean is None and acc.min is None and acc.max is None

    def test_json_round_trip_bitwise(self):
        acc = StatAccumulator()
        for v in (0.1, 0.2, 0.3):
            acc.add(v)
        clone = StatAccumulator.from_json(json.loads(json.dumps(acc.to_json())))
        assert canon(clone.to_json()) == canon(acc.to_json())


class TestQuantileSketchErrorBound:
    @pytest.mark.parametrize("name", sorted(adversarial_distributions()))
    @pytest.mark.parametrize("alpha", [DEFAULT_ALPHA, 0.05])
    def test_within_documented_bound(self, name, alpha):
        values = adversarial_distributions()[name]
        sketch = QuantileSketch(alpha)
        for v in values:
            sketch.add(v)
        for q in (0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0):
            exact = exact_nearest_rank(values, q)
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= alpha * exact + 1e-12, (
                f"{name}: q={q} estimate {estimate} vs exact {exact} "
                f"exceeds alpha={alpha}"
            )

    def test_extremes_are_exact(self):
        values = [5.0, 7.5, 11.0, 0.25]
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        assert sketch.quantile(0.0) == 0.25
        assert sketch.quantile(1.0) == 11.0
        assert sketch.min == 0.25 and sketch.max == 11.0

    def test_mean_is_exact(self):
        values = adversarial_distributions()["lognormal_heavy"]
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        assert sketch.mean == math.fsum(values) / len(values)

    def test_rejects_bad_samples(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.add(float("nan"))
        with pytest.raises(ValueError):
            sketch.add(float("inf"))

    def test_empty_queries_raise(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        with pytest.raises(ValueError):
            sketch.cdf()


class TestMergeAlgebra:
    """Shard-order invariance, the property the fleet engine leans on."""

    def _sketch_of(self, values, alpha=DEFAULT_ALPHA):
        sketch = QuantileSketch(alpha)
        for v in values:
            sketch.add(v)
        return sketch

    def test_associativity_bitwise(self):
        rng = random.Random(3)
        a = self._sketch_of([rng.lognormvariate(0, 2) for _ in range(400)])
        b = self._sketch_of([rng.expovariate(0.2) for _ in range(300)])
        c = self._sketch_of([0.0] * 50 + [rng.uniform(0, 1e4) for _ in range(250)])

        left = QuantileSketch.from_json(a.to_json())
        left.merge(b)
        left.merge(c)

        bc = QuantileSketch.from_json(b.to_json())
        bc.merge(c)
        right = QuantileSketch.from_json(a.to_json())
        right.merge(bc)

        assert canon(left.to_json()) == canon(right.to_json())

    def test_commutativity_bitwise(self):
        rng = random.Random(5)
        a = self._sketch_of([rng.lognormvariate(0, 1.5) for _ in range(500)])
        b = self._sketch_of([rng.uniform(0, 10) for _ in range(500)])
        ab = QuantileSketch.from_json(a.to_json())
        ab.merge(b)
        ba = QuantileSketch.from_json(b.to_json())
        ba.merge(a)
        assert canon(ab.to_json()) == canon(ba.to_json())

    def test_shard_order_invariance_bitwise(self):
        """Any sharding, any merge order -> byte-identical state."""
        rng = random.Random(9)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(2000)]
        serial = self._sketch_of(values)

        for n_shards, order_seed in ((2, 1), (5, 2), (16, 3)):
            shards = [QuantileSketch() for _ in range(n_shards)]
            for i, v in enumerate(values):
                shards[i % n_shards].add(v)
            merge_order = list(range(n_shards))
            random.Random(order_seed).shuffle(merge_order)
            merged = QuantileSketch()
            for shard_index in merge_order:
                merged.merge(shards[shard_index])
            assert canon(merged.to_json()) == canon(serial.to_json())

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError, match="different accuracy"):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_json_round_trip_then_fold_continues(self):
        """Checkpoint/resume analogue at the sketch level."""
        first = [1.0, 2.0, 3.0]
        second = [4.0, 5.0]
        straight = self._sketch_of(first + second)
        resumed = QuantileSketch.from_json(
            json.loads(json.dumps(self._sketch_of(first).to_json()))
        )
        for v in second:
            resumed.add(v)
        assert canon(resumed.to_json()) == canon(straight.to_json())


class TestSketchCdf:
    def test_matches_exact_cdf_shape(self):
        rng = random.Random(21)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(2000)]
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        cdf = sketch.cdf()
        assert len(cdf) == 2000
        assert cdf.min == min(values) and cdf.max == max(values)
        ordered = sorted(values)
        for x in (0.2, 0.5, 1.0, 2.0, 5.0):
            exact = sum(1 for v in ordered if v <= x) / len(ordered)
            # Bucket resolution: the boundary bucket may straddle x.
            assert abs(cdf.at(x) - exact) <= 0.02
            assert cdf.fraction_above(x) == pytest.approx(1.0 - cdf.at(x))
        series = cdf.series(points=10)
        assert series[0][1] == 0.0 and series[-1][1] == 1.0
        assert all(a[0] <= b[0] + 1e-12 for a, b in zip(series, series[1:]))


class TestMetricSeriesSketchBackend:
    def test_queries_match_sample_backend_within_alpha(self):
        rng = random.Random(33)
        values = [rng.lognormvariate(-2.0, 1.2) for _ in range(3000)]
        exact = MetricSeries("ffct")
        sketched = MetricSeries.sketched("ffct", alpha=0.01)
        for v in values:
            exact.add(v)
            sketched.add(v)
        sketched.add(None)  # skipped on both backends
        assert len(sketched) == len(exact) == 3000
        assert sketched.avg == pytest.approx(exact.avg, rel=1e-12)
        for q in (50, 90, 99):
            assert sketched.p(q) == pytest.approx(exact.p(q), rel=0.02)
        assert sketched.uses_sketch and not exact.uses_sketch
        assert sketched.samples is None  # nothing retained

    def test_improvement_over_semantics_unchanged(self):
        ours = MetricSeries.sketched("wira")
        base = MetricSeries.sketched("baseline")
        # Empty series -> None, exactly like the sample backend.
        assert ours.improvement_over(base) is None
        for v in (1.0, 2.0, 3.0):
            base.add(v)
        assert ours.improvement_over(base) is None
        for v in (0.5, 1.0, 1.5):
            ours.add(v)
        assert ours.improvement_over(base) == pytest.approx(0.5)
        # Zero baseline -> None (was the PR-3 bugfix; must survive).
        zero = MetricSeries.sketched("zeros")
        for _ in range(3):
            zero.add(0.0)
        assert ours.improvement_over(zero) is None
        # Mixed backends compare fine.
        sampled = MetricSeries("baseline-sampled")
        for v in (1.0, 2.0, 3.0):
            sampled.add(v)
        assert ours.improvement_over(sampled) == pytest.approx(0.5)

    def test_cdf_on_sketch_backend(self):
        series = MetricSeries.sketched("ffct")
        for v in (0.1, 0.2, 0.3, 0.4):
            series.add(v)
        cdf = series.cdf()
        assert cdf.quantile(0.0) == pytest.approx(0.1)
        assert cdf.quantile(1.0) == pytest.approx(0.4)

"""Tests for statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.collector import MetricSeries, SchemeCollector
from repro.metrics.report import Table, format_ms, format_pct
from repro.metrics.stats import Cdf, coefficient_of_variation, mean, percentile


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_percentile_endpoints(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0
        assert percentile(data, 50) == 3.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_single_sample_is_constant(self):
        for q in (0, 50, 90, 100):
            assert percentile([7.5], q) == 7.5

    def test_cv_of_constant_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_cv_known_value(self):
        # std_pop([1,3]) = 1, mean = 2 -> CV = 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_cv_scale_invariant(self):
        a = coefficient_of_variation([1.0, 2.0, 3.0])
        b = coefficient_of_variation([10.0, 20.0, 30.0])
        assert a == pytest.approx(b)

    @given(st.lists(st.floats(min_value=1, max_value=1e6), min_size=2, max_size=50))
    def test_percentile_monotone_property(self, data):
        qs = [percentile(data, q) for q in (0, 25, 50, 75, 100)]
        assert qs == sorted(qs)


class TestCdf:
    def test_at_and_quantile(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(2.0) == 0.5
        assert cdf.at(0.5) == 0.0
        assert cdf.at(10.0) == 1.0
        assert cdf.quantile(0.5) == pytest.approx(2.5)

    def test_fraction_above(self):
        cdf = Cdf([10.0, 20.0, 30.0, 40.0, 50.0])
        assert cdf.fraction_above(30.0) == pytest.approx(0.4)

    def test_series_monotone(self):
        cdf = Cdf([3.0, 1.0, 2.0])
        series = cdf.series(points=10)
        values = [v for v, _ in series]
        assert values == sorted(values)
        assert series[0][1] == 0.0 and series[-1][1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_single_sample(self):
        cdf = Cdf([2.0])
        assert len(cdf) == 1
        assert cdf.min == cdf.max == 2.0
        assert cdf.at(1.9) == 0.0
        assert cdf.at(2.0) == 1.0
        for q in (0.0, 0.5, 1.0):
            assert cdf.quantile(q) == 2.0
        assert cdf.series(points=4) == [(2.0, i / 4) for i in range(5)]


class TestCollector:
    def test_series_accumulates_and_skips_none(self):
        series = MetricSeries("ffct")
        series.add(0.1)
        series.add(None)
        series.add(0.3)
        assert len(series) == 2
        assert series.avg == pytest.approx(0.2)

    def test_improvement_over(self):
        ours = MetricSeries("wira")
        base = MetricSeries("baseline")
        for v in (0.9, 0.9):
            ours.add(v)
        for v in (1.0, 1.0):
            base.add(v)
        assert ours.improvement_over(base) == pytest.approx(0.1)

    def test_improvement_over_percentile(self):
        ours = MetricSeries("wira")
        base = MetricSeries("baseline")
        for v in (0.5, 0.9):
            ours.add(v)
        for v in (1.0, 1.0):
            base.add(v)
        assert ours.improvement_over(base, q=90) == pytest.approx(1 - 0.86)

    def test_improvement_over_empty_series_is_none(self):
        # Regression: an incomparable pair used to read as 0.0 — "no
        # improvement" — instead of "not measurable".
        empty = MetricSeries("empty")
        filled = MetricSeries("filled")
        filled.add(1.0)
        assert empty.improvement_over(filled) is None
        assert filled.improvement_over(empty) is None
        assert empty.improvement_over(empty) is None

    def test_improvement_over_zero_baseline_is_none(self):
        ours = MetricSeries("wira")
        ours.add(0.5)
        base = MetricSeries("baseline")
        base.add(0.0)
        assert ours.improvement_over(base) is None

    def test_improvement_over_none_renders_as_dash(self):
        empty = MetricSeries("empty")
        assert format_pct(empty.improvement_over(empty), signed=True) == "-"

    def test_scheme_collector_buckets(self):
        collector = SchemeCollector()
        collector.add("wira", "ffct", 0.1, bucket="(30,50]")
        collector.add("wira", "ffct", 0.2, bucket="(50,80]")
        collector.add("baseline", "ffct", 0.3)
        assert collector.schemes() == ["baseline", "wira"]
        assert collector.buckets("ffct") == ["(30,50]", "(50,80]"]
        assert len(collector.series("wira", "ffct", "(30,50]")) == 1


class TestReport:
    def test_format_helpers(self):
        assert format_ms(0.1425) == "142.5ms"
        assert format_ms(None) == "-"
        assert format_pct(0.106) == "10.6%"
        assert format_pct(0.106, signed=True) == "+10.6%"

    def test_table_renders_aligned(self):
        table = Table("T", ["a", "bb"])
        table.add_row("x", "y")
        rendered = table.render()
        assert "a" in rendered and "x" in rendered
        assert len(rendered.splitlines()) == 4

    def test_table_cell_count_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

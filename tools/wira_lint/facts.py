"""Per-file fact extraction: one AST pass per file.

The extractor is the data source for *everything* the engine does:

* **raw per-file violations** for the single-file rules (WL001-WL004,
  WL006, WL007, WL012, WL016), recorded pre-pragma so the engine can
  account pragma usage (WL009) and apply ``--select`` without
  re-parsing;
* **facts** for the whole-program passes in :mod:`tools.wira_lint.graph`
  — functions with their call sites, wall-clock/RNG reads and dict-view
  iterations, classes with their member surface, import tables, contract
  registries (``EVENT_NAMES``/``INVARIANTS``/``KNOWN_KNOBS``), obs emit
  sites, sanitizer raise sites, and ``typing.cast`` expectation sites;
* **pragmas**, parsed from raw source lines.

:class:`FileFacts` round-trips through plain JSON (``to_json`` /
``from_json``) — that is what the incremental cache persists, keyed on
file content, so a warm run never re-parses an unchanged file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from tools.wira_lint.rules import (
    DEPRECATED_ALIASES,
    DEPRECATED_CTORS,
    DUCK_CONTRACTS,
    EVENT_NAME_RE,
    GLOBAL_RANDOM_FUNCS,
    REGISTRY_NAMES,
    RULES,
    SLOTS_REGISTRY,
    TIME_RATE_WORDS,
    WALL_CLOCK_DATETIME_FUNCS,
    WALL_CLOCK_TIME_FUNCS,
)

#: Trailing pragma: ``# wira-lint: disable=WL001,WL003``
#: Standalone file pragma: ``# wira-lint: disable-file=WL003``
PRAGMA_RE = re.compile(r"#\s*wira-lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_, ]+)")

#: Code assigned to files the parser rejects; cannot be suppressed.
PARSE_ERROR_CODE = "WL000"

#: Pseudo-function holding module-level statements' facts.
MODULE_SCOPE = "<module>"

_SCREAMING_CASE_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

#: Path segments after which the dotted module name starts (last match
#: wins, so ``/tmp/x/src/repro/...`` works like a checkout).
_SRC_ANCHOR = "src"
#: Path segments at which the dotted module name starts.
_ROOT_ANCHORS = ("tests", "tools", "examples", "benchmarks")


def module_name_for_path(path: str) -> str:
    """Dotted module name a file would import as, derived from its path."""
    segments = [part for part in path.replace("\\", "/").split("/") if part and part != "."]
    if segments and segments[-1].endswith(".py"):
        segments[-1] = segments[-1][: -len(".py")]
    if segments and segments[-1] == "__init__":
        segments = segments[:-1]
    if _SRC_ANCHOR in segments:
        start = len(segments) - 1 - segments[::-1].index(_SRC_ANCHOR) + 1
        tail = segments[start:]
    else:
        for anchor in _ROOT_ANCHORS:
            if anchor in segments:
                tail = segments[segments.index(anchor) :]
                break
        else:
            tail = segments[-1:]
    return ".".join(tail) if tail else (segments[-1] if segments else "")


# ---------------------------------------------------------------------------
# Fact records.  Plain-JSON-shaped so the cache can persist them.


@dataclass
class FunctionFacts:
    """One ``def`` (or the module pseudo-scope) and what it does."""

    qualname: str
    name: str
    line: int
    parent: Optional[str] = None
    cls: Optional[str] = None
    #: Ordered parameters as ``[name, annotation-terminal-or-None]``.
    params: List[List[Optional[str]]] = field(default_factory=list)
    #: Call sites: ``{"line", "kind", "target", "hint", "args", "kwargs"}``
    #: where kind is one of ``name``/``dotted``/``self``/``method``.
    calls: List[Dict[str, Any]] = field(default_factory=list)
    #: ``typing.cast(Contract, x)`` sites: ``{"line", "contract", "hint"}``.
    casts: List[Dict[str, Any]] = field(default_factory=list)
    #: Direct wall-clock reads: ``{"line", "what"}``.
    clock_reads: List[Dict[str, Any]] = field(default_factory=list)
    #: Direct process-global RNG uses: ``{"line", "what"}``.
    rng_reads: List[Dict[str, Any]] = field(default_factory=list)
    #: Unsorted dict-view iterations: ``{"line", "col", "base", "attr"}``.
    dict_iters: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class ClassFacts:
    name: str
    qualname: str
    line: int
    bases: List[str] = field(default_factory=list)
    members: List[str] = field(default_factory=list)


@dataclass
class FileFacts:
    """Everything the engine knows about one file."""

    path: str
    module: str
    module_aliases: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, List[str]] = field(default_factory=dict)
    functions: List[FunctionFacts] = field(default_factory=list)
    classes: List[ClassFacts] = field(default_factory=list)
    #: Module-level registry assignments: name -> sorted string values.
    registries: Dict[str, List[str]] = field(default_factory=dict)
    #: Line of the first assignment contributing to each registry.
    registry_lines: Dict[str, int] = field(default_factory=dict)
    #: Every ``category:event``-shaped string literal: ``[line, value]``.
    event_literals: List[List[Any]] = field(default_factory=list)
    #: Literal event names at ``emit``/``_emit`` call sites.
    emit_events: List[List[Any]] = field(default_factory=list)
    #: Literal invariant names at ``SanitizerError(...)`` sites.
    invariant_raises: List[List[Any]] = field(default_factory=list)
    #: Pragmas: ``[line, "line"|"file", [codes...]]``.
    pragmas: List[List[Any]] = field(default_factory=list)
    #: Raw zone-filtered per-file violations: ``[line, col, code, message]``.
    violations: List[List[Any]] = field(default_factory=list)
    parse_error: Optional[List[Any]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "module_aliases": self.module_aliases,
            "from_imports": self.from_imports,
            "functions": [vars(f) for f in self.functions],
            "classes": [vars(c) for c in self.classes],
            "registries": self.registries,
            "registry_lines": self.registry_lines,
            "event_literals": self.event_literals,
            "emit_events": self.emit_events,
            "invariant_raises": self.invariant_raises,
            "pragmas": self.pragmas,
            "violations": self.violations,
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "FileFacts":
        facts = cls(path=payload["path"], module=payload["module"])
        facts.module_aliases = dict(payload["module_aliases"])
        facts.from_imports = {k: list(v) for k, v in payload["from_imports"].items()}
        facts.functions = [FunctionFacts(**f) for f in payload["functions"]]
        facts.classes = [ClassFacts(**c) for c in payload["classes"]]
        facts.registries = {k: list(v) for k, v in payload["registries"].items()}
        facts.registry_lines = {k: int(v) for k, v in payload.get("registry_lines", {}).items()}
        facts.event_literals = [list(e) for e in payload["event_literals"]]
        facts.emit_events = [list(e) for e in payload["emit_events"]]
        facts.invariant_raises = [list(e) for e in payload["invariant_raises"]]
        facts.pragmas = [list(p) for p in payload["pragmas"]]
        facts.violations = [list(v) for v in payload["violations"]]
        facts.parse_error = list(payload["parse_error"]) if payload["parse_error"] else None
        return facts


def parse_pragmas(source: str) -> List[List[Any]]:
    """``[line, scope, codes]`` for every pragma comment in ``source``."""
    found: List[List[Any]] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = sorted({c.strip().upper() for c in match.group("codes").split(",") if c.strip()})
        scope = "file" if match.group("scope") else "line"
        if codes:
            found.append([lineno, scope, codes])
    return found


# ---------------------------------------------------------------------------
# Identifier heuristics (shared with the WL003 checker).


def _terminal_name(node: ast.expr) -> Optional[str]:
    """Innermost identifier of a Name/Attribute/Subscript chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _is_time_rate_identifier(name: Optional[str]) -> bool:
    if not name:
        return False
    return bool(set(name.lower().split("_")) & TIME_RATE_WORDS)


def _dotted(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_infinity(node: ast.expr) -> bool:
    """``float("inf")`` / ``math.inf`` / their negations compare exactly."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_infinity(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "float":
        if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            return isinstance(value, str) and "inf" in value.lower()
    dotted = _dotted(node)
    return dotted in ("math.inf", "math.nan")


def _string_values(node: ast.expr) -> Optional[List[str]]:
    """Literal string collection behind ``frozenset({...})``/tuples/etc."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set", "tuple", "list") and len(node.args) == 1:
            return _string_values(node.args[0])
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values: List[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                values.append(element.value)
            else:
                return None
        return values
    return None


# ---------------------------------------------------------------------------
# The extractor.


class _Extractor(ast.NodeVisitor):
    """One pass that records facts and raw per-file violations."""

    def __init__(self, path: str, facts: FileFacts, zone_active: Set[str]) -> None:
        self.path = path
        self.facts = facts
        self.zone_active = zone_active
        self._class_stack: List[str] = []
        #: Parallel stacks: function facts and local class-hint frames.
        self._func_stack: List[FunctionFacts] = []
        self._frame_stack: List[Dict[str, str]] = []
        self._module_scope = FunctionFacts(qualname=MODULE_SCOPE, name=MODULE_SCOPE, line=0)
        facts.functions.append(self._module_scope)

    # -- plumbing ------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if code in self.zone_active:
            self.facts.violations.append(
                [getattr(node, "lineno", 0), getattr(node, "col_offset", 0), code, message]
            )

    def _current(self) -> FunctionFacts:
        return self._func_stack[-1] if self._func_stack else self._module_scope

    def _frame(self) -> Dict[str, str]:
        return self._frame_stack[-1] if self._frame_stack else {}

    def _qualprefix(self) -> str:
        parts = []
        if self._class_stack:
            parts.extend(self._class_stack)
        if self._func_stack:
            parts = self._func_stack[-1].qualname.split(".")
        return ".".join(parts)

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname is None and "." in alias.name:
                # ``import a.b.c`` binds ``a``; attribute chains through
                # the full dotted path still resolve via the root entry.
                self.facts.module_aliases.setdefault(alias.name.split(".")[0], alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.facts.from_imports[alias.asname or alias.name] = [node.module, alias.name]
                self._check_deprecated_import(node, alias)
        self.generic_visit(node)

    def _check_deprecated_import(self, node: ast.ImportFrom, alias: ast.alias) -> None:
        hint = DEPRECATED_ALIASES.get((node.module or "", alias.name))
        if hint is not None:
            self._report(
                node,
                "WL016",
                f"import of deprecated alias {node.module}.{alias.name}; {hint}",
            )

    def _canonical(self, dotted: Optional[str]) -> Optional[str]:
        """Expand the head of a dotted chain through the import tables."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.facts.from_imports:
            module, orig = self.facts.from_imports[head]
            expanded = f"{module}.{orig}"
        elif head in self.facts.module_aliases:
            expanded = self.facts.module_aliases[head]
        else:
            return None
        return f"{expanded}.{rest}" if rest else expanded

    # -- defs ----------------------------------------------------------

    def _enter_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._check_typed_def(node)
        prefix = self._qualprefix()
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        params: List[List[Optional[str]]] = []
        frame: Dict[str, str] = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            annotation = _terminal_name(arg.annotation) if arg.annotation is not None else None
            if annotation is None and isinstance(arg.annotation, ast.Constant):
                # String annotations: ``loop: "EventLoop"``.
                value = arg.annotation.value
                if isinstance(value, str):
                    annotation = value.split("[")[0].split(".")[-1]
            params.append([arg.arg, annotation])
            if annotation:
                frame[arg.arg] = annotation
        if self._class_stack:
            frame.setdefault("self", self._class_stack[-1])
        record = FunctionFacts(
            qualname=qualname,
            name=node.name,
            line=node.lineno,
            parent=self._func_stack[-1].qualname if self._func_stack else None,
            cls=self._class_stack[-1] if self._class_stack else None,
            params=params,
        )
        self.facts.functions.append(record)
        self._func_stack.append(record)
        self._frame_stack.append(frame)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._func_stack.pop()
        self._frame_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._func_stack.pop()
        self._frame_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name in SLOTS_REGISTRY and not self._declares_slots(node):
            self._report(
                node,
                "WL004",
                f"hot-path class {node.name} must declare __slots__ "
                "(or use @dataclass(slots=True))",
            )
        prefix = self._qualprefix()
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        members: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                members.append(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        members.append(target.id)
                        if target.id == "__slots__":
                            slot_names = _string_values(stmt.value)
                            if slot_names:
                                members.extend(name.lstrip("_") for name in slot_names)
                                members.extend(slot_names)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                members.append(stmt.target.id)
        self.facts.classes.append(
            ClassFacts(
                name=node.name,
                qualname=qualname,
                line=node.lineno,
                bases=sorted({b for b in (_terminal_name(base) for base in node.bases) if b}),
                members=sorted(set(members)),
            )
        )
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call) and _terminal_name(decorator.func) == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        return False

    # -- assignments: registries and local class hints -----------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_registry(node.targets, node.value)
        self._record_local_hint(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_registry([node.target], node.value)
            self._record_local_hint([node.target], node.value)
        if (
            self._func_stack
            and isinstance(node.target, ast.Name)
            and node.annotation is not None
        ):
            annotation = _terminal_name(node.annotation)
            if annotation:
                self._frame()[node.target.id] = annotation
        self.generic_visit(node)

    def _record_registry(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        if self._func_stack or self._class_stack:
            return
        for target in targets:
            if isinstance(target, ast.Name) and target.id in REGISTRY_NAMES:
                values = _string_values(value)
                if values is not None:
                    merged = set(self.facts.registries.get(target.id, [])) | set(values)
                    self.facts.registries[target.id] = sorted(merged)
                    self.facts.registry_lines.setdefault(target.id, target.lineno)

    def _record_local_hint(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        if not self._func_stack:
            return
        hint = self._class_hint(value)
        if hint is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self._frame()[target.id] = hint

    def _class_hint(self, node: ast.expr) -> Optional[str]:
        """Statically-apparent class of an expression, or None."""
        if isinstance(node, ast.Name):
            return self._frame().get(node.id)
        if isinstance(node, ast.Call):
            terminal = _terminal_name(node.func)
            if terminal == "cast" and len(node.args) == 2:
                return self._class_hint(node.args[1])
            if terminal and terminal[:1].isupper():
                return terminal
        return None

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        self._check_wall_clock(node)
        self._check_randomness(node)
        self._check_bare_print(node)
        self._check_environ_call(node)
        self._check_emit(node)
        self._check_sanitizer_raise(node)
        self._check_deprecated_ctor(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        kind: Optional[str] = None
        target = ""
        hint: Optional[str] = None
        if isinstance(func, ast.Name):
            if func.id == "cast" and len(node.args) == 2:
                contract = _terminal_name(node.args[0])
                if contract in DUCK_CONTRACTS:
                    self._current().casts.append(
                        {
                            "line": node.lineno,
                            "contract": contract,
                            "hint": self._class_hint(node.args[1]),
                        }
                    )
            kind, target = "name", func.id
        elif isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                if head == "self" and rest:
                    kind, target = "self", rest
                elif head in self._frame() and rest and "." not in rest:
                    kind, target, hint = "method", rest, self._frame()[head]
                else:
                    kind, target = "dotted", dotted
            elif isinstance(func.value, ast.expr):
                value_hint = self._class_hint(func.value)
                if value_hint is not None:
                    kind, target, hint = "method", func.attr, value_hint
        if kind is None:
            return
        args = [self._class_hint(arg) for arg in node.args]
        kwargs = {
            keyword.arg: self._class_hint(keyword.value)
            for keyword in node.keywords
            if keyword.arg is not None and self._class_hint(keyword.value) is not None
        }
        self._current().calls.append(
            {
                "line": node.lineno,
                "kind": kind,
                "target": target,
                "hint": hint,
                "args": args,
                "kwargs": kwargs,
            }
        )

    # -- WL007 ---------------------------------------------------------

    def _check_bare_print(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self._report(
                node,
                "WL007",
                "bare print() in library code; use logging or return a report",
            )

    # -- WL001 / WL002 -------------------------------------------------

    def _resolved_callee(self, node: ast.Call) -> Optional[str]:
        """Canonical dotted target of a call through the import tables."""
        func = node.func
        if isinstance(func, ast.Name):
            return self._canonical(func.id)
        return self._canonical(_dotted(func))

    def _check_wall_clock(self, node: ast.Call) -> None:
        canonical = self._resolved_callee(node)
        if canonical is None:
            return
        parts = canonical.split(".")
        what: Optional[str] = None
        if parts[0] == "time" and len(parts) == 2 and parts[1] in WALL_CLOCK_TIME_FUNCS:
            what = canonical
            self._report(
                node,
                "WL001",
                f"wall-clock read time.{parts[1]}(); simulation code must use EventLoop.now",
            )
        elif parts[0] == "datetime" and parts[-1] in WALL_CLOCK_DATETIME_FUNCS:
            what = canonical
            self._report(
                node,
                "WL001",
                f"wall-clock read datetime {'.'.join(parts[1:])}(); "
                "simulation code must use EventLoop.now",
            )
        if what is not None:
            self._current().clock_reads.append({"line": node.lineno, "what": f"{what}()"})

    def _check_randomness(self, node: ast.Call) -> None:
        canonical = self._resolved_callee(node)
        if canonical is None:
            return
        parts = canonical.split(".")
        if parts[0] != "random" or len(parts) != 2:
            return
        func = parts[1]
        if func in GLOBAL_RANDOM_FUNCS:
            self._current().rng_reads.append({"line": node.lineno, "what": f"random.{func}()"})
            self._report(
                node,
                "WL002",
                f"module-level random.{func}() uses the process-global RNG; "
                "take a seeded random.Random from the caller",
            )
        elif func == "Random":
            if not node.args and not node.keywords:
                self._current().rng_reads.append(
                    {"line": node.lineno, "what": "random.Random()"}
                )
                self._report(
                    node,
                    "WL002",
                    "random.Random() without a seed is nondeterministic; "
                    "require a caller-supplied seeded instance",
                )
            elif len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
                self._report(
                    node,
                    "WL002",
                    f"random.Random({node.args[0].value!r}) hard-codes the seed; "
                    "require an explicit rng (or pragma-document the fallback)",
                )

    # -- WL012: WIRA_* environment knobs -------------------------------

    def _environ_key(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def _check_environ_call(self, node: ast.Call) -> None:
        canonical = self._resolved_callee(node)
        if canonical not in ("os.environ.get", "os.getenv"):
            return
        key = self._environ_key(node.args[0]) if node.args else None
        self._flag_environ(node, key)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        canonical = self._canonical(_dotted(node.value))
        if canonical == "os.environ":
            self._flag_environ(node, self._environ_key(node.slice))
        self.generic_visit(node)

    def _flag_environ(self, node: ast.AST, key: Optional[str]) -> None:
        if key is not None and key.startswith("WIRA_"):
            self._report(
                node,
                "WL012",
                f"direct os.environ read of {key}; WIRA_* knobs must flow "
                "through repro.runtime.settings.Settings",
            )

    # -- WL013 / WL014 fact capture ------------------------------------

    def _check_emit(self, node: ast.Call) -> None:
        terminal = _terminal_name(node.func)
        if terminal not in ("emit", "_emit"):
            return
        for arg in node.args[:4]:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if EVENT_NAME_RE.match(arg.value):
                    self.facts.emit_events.append([node.lineno, arg.value])
                    return

    def _check_sanitizer_raise(self, node: ast.Call) -> None:
        if _terminal_name(node.func) != "SanitizerError" or not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            self.facts.invariant_raises.append([node.lineno, first.value])

    # -- WL016: deprecated constructors --------------------------------

    def _check_deprecated_ctor(self, node: ast.Call) -> None:
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            imported = self.facts.from_imports.get(func.id)
            if imported is not None and imported[1] in DEPRECATED_CTORS:
                name = imported[1]
        elif isinstance(func, ast.Attribute):
            canonical = self._canonical(_dotted(func))
            if canonical is not None and canonical.split(".")[-1] in DEPRECATED_CTORS:
                name = canonical.split(".")[-1]
        if name is not None:
            self._report(
                node,
                "WL016",
                f"legacy {name}(...) constructor is deprecated; {DEPRECATED_CTORS[name]}",
            )

    # -- WL016: deprecated alias attribute access ----------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        canonical = self._canonical(_dotted(node))
        if canonical is not None:
            for (module, name), hint in DEPRECATED_ALIASES.items():
                if canonical == f"{module}.{name}":
                    self._report(
                        node,
                        "WL016",
                        f"use of deprecated alias {module}.{name}; {hint}",
                    )
                    break
        self.generic_visit(node)

    # -- WL003 ---------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left] + list(node.comparators)
            if not any(_is_infinity(op) for op in operands):
                flagged = self._float_equality_operand(operands)
                if flagged is not None:
                    self._report(
                        node,
                        "WL003",
                        f"float equality on time/rate quantity {flagged!r}; "
                        "compare with a tolerance or restructure",
                    )
        self.generic_visit(node)

    @staticmethod
    def _float_equality_operand(operands: Sequence[ast.expr]) -> Optional[str]:
        # ALL_CAPS terminal identifiers are named constants (enum members,
        # wire tags, gain tables): comparing against them is exact by
        # construction, not an arithmetic float comparison.
        names = [
            name
            for name in (_terminal_name(op) for op in operands)
            if name is not None and not _SCREAMING_CASE_RE.match(name)
        ]
        has_float_literal = any(
            isinstance(op, ast.Constant) and isinstance(op.value, float) for op in operands
        )
        for name in names:
            if _is_time_rate_identifier(name):
                return name
        if has_float_literal and names:
            # ``x == 0.5``: a float literal against any identifier.
            return names[0]
        return None

    # -- WL005 facts: dict-view iterations -----------------------------

    def visit_For(self, node: ast.For) -> None:
        self._record_dict_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._record_dict_iteration(node.iter)
        self.generic_visit(node)

    def _record_dict_iteration(self, iter_node: ast.expr) -> None:
        for view_call, sorted_ancestor in self._dict_view_calls(iter_node, False):
            if sorted_ancestor:
                continue
            func = view_call.func
            assert isinstance(func, ast.Attribute)
            self._current().dict_iters.append(
                {
                    "line": view_call.lineno,
                    "col": view_call.col_offset,
                    "base": _terminal_name(func.value),
                    "attr": func.attr,
                }
            )

    def _dict_view_calls(self, node: ast.expr, under_sorted: bool):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "sorted":
                for arg in node.args:
                    yield from self._dict_view_calls(arg, True)
                return
            if isinstance(func, ast.Attribute) and func.attr in ("values", "items", "keys"):
                yield node, under_sorted
                return
            for arg in node.args:
                yield from self._dict_view_calls(arg, under_sorted)

    # -- WL013 evidence: event-shaped literals -------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and EVENT_NAME_RE.match(node.value):
            self.facts.event_literals.append([node.lineno, node.value])

    # -- WL006 ---------------------------------------------------------

    def _check_typed_def(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if "WL006" not in self.zone_active:
            return
        args = node.args
        missing: List[str] = []
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return type")
        if missing:
            self._report(
                node,
                "WL006",
                f"def {node.name} in a typed zone is missing annotations: "
                + ", ".join(missing),
            )


def zone_active_codes(path: str) -> Set[str]:
    """Per-file rule codes whose zone covers ``path`` (select-independent)."""
    norm = path.replace("\\", "/")
    return {
        code
        for code, rule in RULES.items()
        if not rule.whole_program and rule.applies_to(norm)
    }


def extract_facts(source: str, path: str) -> FileFacts:
    """Parse ``source`` as ``path`` and extract all facts + raw findings."""
    norm = path.replace("\\", "/")
    facts = FileFacts(path=norm, module=module_name_for_path(norm))
    facts.pragmas = parse_pragmas(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        facts.parse_error = [exc.lineno or 0, exc.offset or 0, f"parse error: {exc.msg}"]
        return facts
    extractor = _Extractor(norm, facts, zone_active_codes(norm))
    extractor.visit(tree)
    facts.violations.sort(key=lambda v: (v[0], v[1], v[2]))
    return facts

"""Module entry point for ``python -m tools.wira_lint``."""

import sys

from tools.wira_lint.cli import main

sys.exit(main())

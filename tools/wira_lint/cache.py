"""Content-fingerprint cache of per-file extracted facts.

Same pattern as the repo's disk result cache: the key is a sha256 over
everything that can change the extraction output — engine version, rule
fingerprint, the file's path (zone filtering is path-dependent), and the
file's exact bytes.  A warm run on an unchanged tree therefore skips
``ast.parse`` entirely; an edit, a rule change, or an engine upgrade
invalidates exactly the affected entries.

The cache is one JSON file, written atomically and pruned to the current
key set on every save.  A missing, corrupt, or version-skewed cache file
degrades to a cold run — never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from tools.wira_lint.facts import FileFacts
from tools.wira_lint.rules import RULES_FINGERPRINT

#: Bump when the fact schema or extraction semantics change.
CACHE_VERSION = 1
ENGINE_FINGERPRINT = f"wira-lint-engine-v{CACHE_VERSION}"
CACHE_FILENAME = "facts-cache.json"


def fact_key(path: str, source: str) -> str:
    """Cache key for one file's extracted facts."""
    digest = hashlib.sha256()
    for part in (ENGINE_FINGERPRINT, RULES_FINGERPRINT, path.replace("\\", "/"), source):
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


class FactCache:
    """Load-once / save-once JSON cache of :class:`FileFacts` by key."""

    def __init__(self, cache_dir: Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / CACHE_FILENAME
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = self._load()
        self._touched: Dict[str, dict] = {}
        self._dirty = False

    def _load(self) -> Dict[str, dict]:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return {}
        entries = payload.get("entries")
        return entries if isinstance(entries, dict) else {}

    def get(self, path: str, source: str) -> Optional[FileFacts]:
        key = fact_key(path, source)
        raw = self._entries.get(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            facts = FileFacts.from_json(raw)
        except (KeyError, TypeError, ValueError):
            # Corrupt entry: treat as a miss and let put() overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        self._touched[key] = raw
        return facts

    def put(self, path: str, source: str, facts: FileFacts) -> None:
        raw = facts.to_json()
        key = fact_key(path, source)
        self._entries[key] = raw
        self._touched[key] = raw
        self._dirty = True

    def save(self) -> None:
        """Persist only the entries used this run (prunes stale keys).

        An all-hit run writes nothing: the file on disk already holds a
        superset of the touched entries, and skipping the rewrite is
        what makes the warm path cheap.
        """
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "entries": self._touched}
        handle = tempfile.NamedTemporaryFile(
            "w", dir=str(self.cache_dir), prefix=".facts-cache-", suffix=".tmp", delete=False
        )
        try:
            with handle as stream:
                stream.write(json.dumps(payload, sort_keys=True))
            os.replace(handle.name, self.path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass

"""Rule registry: codes, scopes, and the name tables the checkers use.

Scopes map a rule to the portion of the tree it patrols.  Paths are
matched by substring against a ``/``-normalised path, so the registry
works both on checkouts (``src/repro/simnet/...``) and on test fixtures
written to a temporary directory mirroring the layout.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

#: Simulation zone: code that must be bit-exact deterministic.  These are
#: the packages replayed under the content-hash disk cache; one wall-clock
#: read or process-global RNG call silently poisons every cached figure.
SIM_ZONE: Tuple[str, ...] = (
    "src/repro/simnet",
    "src/repro/quic",
    "src/repro/core",
    "src/repro/workload",
    "src/repro/faults",
)

#: Typed zone: packages under the mypy ``disallow_untyped_defs`` contract
#: (WL006 mirrors it so the contract is enforced even where mypy is not
#: installed).
TYPED_ZONE: Tuple[str, ...] = (
    "src/repro/quic",
    "src/repro/simnet",
    "src/repro/faults",
    "src/repro/fleet",
    "src/repro/runtime",
    "src/repro/cdn/batchrun",
)

#: Whole-package zone for the style/structure rules.
SRC_ZONE: Tuple[str, ...] = ("src/repro",)


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    zone: Tuple[str, ...]
    #: Path substrings exempt from the rule even inside its zone.
    exempt: Tuple[str, ...] = ()


RULES = {
    "WL001": Rule(
        "WL001",
        "no-wall-clock",
        "simulation code must read EventLoop.now, never the wall clock",
        SIM_ZONE,
    ),
    "WL002": Rule(
        "WL002",
        "no-unseeded-random",
        "randomness must come from a caller-supplied seeded random.Random",
        SIM_ZONE,
    ),
    "WL003": Rule(
        "WL003",
        "no-float-equality",
        "time/rate quantities must not be compared with == / !=",
        SRC_ZONE,
    ),
    "WL004": Rule(
        "WL004",
        "hot-path-slots",
        "registered hot-path classes must declare __slots__",
        SRC_ZONE,
    ),
    "WL005": Rule(
        "WL005",
        "deterministic-merge",
        "merge paths must not iterate dicts in insertion order",
        SRC_ZONE,
    ),
    "WL006": Rule(
        "WL006",
        "typed-defs",
        "typed zones require annotations on every def",
        TYPED_ZONE,
    ),
    "WL007": Rule(
        "WL007",
        "no-bare-print",
        "library code must not print(); use logging or return a report",
        SRC_ZONE,
        # Report rendering and the experiment drivers are presentation
        # layers whose job is terminal output.
        exempt=("src/repro/experiments", "src/repro/metrics/report"),
    ),
}

#: ``time`` module functions that read the host clock.
WALL_CLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "localtime",
        "gmtime",
    }
)

#: ``datetime`` constructors that read the host clock.
WALL_CLOCK_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Module-level ``random.*`` functions driven by the process-global RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Identifier words marking a float as a time/rate quantity for WL003.
TIME_RATE_WORDS = frozenset(
    {
        "bps",
        "bw",
        "deadline",
        "delay",
        "elapsed",
        "latency",
        "now",
        "rate",
        "rtt",
        "seconds",
        "time",
        "timeout",
        "timestamp",
        "tokens",
    }
)

#: Hot-path classes that must stay ``__slots__``-packed (WL004).  These
#: are allocated per packet or per event; an instance ``__dict__`` on any
#: of them costs both memory and the BENCH_speed throughput floor.
SLOTS_REGISTRY = frozenset(
    {
        "Datagram",
        "Event",
        "EventLoop",
        "Link",
        "Pacer",
        "SentPacket",
        # Batched-kernel scheduler core: one CalendarQueue entry and one
        # MemberLoop clock touch per simulated event across every member
        # session sharing the kernel.
        "BatchEventLoop",
        "CalendarQueue",
        "MemberLoop",
        # Fleet-scale streaming accumulators: allocated per campaign but
        # fold()/add() run once per session across 10^5–10^6 sessions.
        "CampaignAggregate",
        "ExactSum",
        "QuantileSketch",
        "SchemeAggregate",
        "SketchCdf",
        "StatAccumulator",
    }
)

#: Functions treated as merge paths for WL005: anywhere parallel shards
#: are recombined, iteration order must come from an explicit sort key,
#: never from dict insertion order (which differs shard-by-shard).
MERGE_FUNC_RE = re.compile(r"(?:^|_)(merge|replay|aggregate|combine|reduce|recombine)", re.I)

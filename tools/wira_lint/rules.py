"""Rule registry: codes, zones, and the name tables the checkers use.

Zone matching
-------------
A zone entry like ``src/repro/simnet`` is an **anchored segment
pattern**: it matches a path when its ``/``-separated segments appear as
a contiguous run of whole path segments, with the final zone segment
allowed to name either a directory (``.../simnet/engine.py``) or the
module file itself (``src/repro/cdn/batchrun`` matches
``src/repro/cdn/batchrun.py``).  Each segment is an ``fnmatch`` glob, so
``src/repro/*`` is legal.  Segment anchoring is what lets the registry
work both on checkouts and on test fixtures written to a temporary
directory mirroring the layout (``/tmp/.../src/repro/simnet/x.py``)
while rejecting near-misses such as ``src/repro/cdn/batchrun_extra.py``
or ``notsrc/repro/simnet/x.py`` that the old substring matcher accepted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Optional, Tuple

#: Bump when rule semantics change in a way that must invalidate cached
#: per-file facts (the fact cache keys on this).
RULES_FINGERPRINT = "wira-lint-rules-v10"

#: Simulation zone: code that must be bit-exact deterministic.  These are
#: the packages replayed under the content-hash disk cache; one wall-clock
#: read or process-global RNG call silently poisons every cached figure.
SIM_ZONE: Tuple[str, ...] = (
    "src/repro/simnet",
    "src/repro/quic",
    "src/repro/core",
    "src/repro/workload",
    "src/repro/faults",
)

#: Replay zone: everything whose behaviour feeds replayed results.  The
#: interprocedural taint rules (WL010/WL011) patrol this superset of the
#: simulation zone — a wall-clock read laundered through a ``media`` or
#: ``cdn`` helper poisons figures just as surely as a direct read in
#: ``simnet``.
REPLAY_ZONE: Tuple[str, ...] = SIM_ZONE + (
    "src/repro/cdn",
    "src/repro/media",
)
# ``src/repro/serve`` is deliberately NOT in the replay zone: service
# mode runs sessions over real UDP sockets on the asyncio loop, so wall
# clocks and socket timing are its whole job (see CONTRIBUTING.md,
# "Wall-clock territory").  It still sits in TYPED_ZONE below.

#: Typed zone: packages under the mypy ``disallow_untyped_defs`` contract
#: (WL006 mirrors it so the contract is enforced even where mypy is not
#: installed).
TYPED_ZONE: Tuple[str, ...] = (
    "src/repro/quic",
    "src/repro/simnet",
    "src/repro/faults",
    "src/repro/fleet",
    "src/repro/runtime",
    "src/repro/cdn/batchrun",
    "src/repro/serve",
    # Scheme-plugin surface: the registry and the online policies are an
    # extension API, so their signatures are part of the contract.
    "src/repro/core/schemes",
    "src/repro/core/adaptive",
    "tools/wira_fleet",
    "tools/wira_serve",
)

#: Whole-package zone for the style/structure rules.
SRC_ZONE: Tuple[str, ...] = ("src/repro",)

#: Zone for the deprecation-usage rule: deprecated APIs must not reappear
#: anywhere, including tests, examples, and benchmarks.
EVERYWHERE_ZONE: Tuple[str, ...] = (
    "src/repro",
    "tests",
    "examples",
    "benchmarks",
)


def zone_match(path: str, zone: str) -> bool:
    """Anchored segment match of ``zone`` against ``path`` (see module
    docstring).  Both are ``/``-separated; ``path`` may be absolute."""
    segments = [part for part in path.split("/") if part not in ("", ".")]
    zparts = zone.split("/")
    width = len(zparts)
    if width == 0 or len(segments) < width:
        return False
    for start in range(len(segments) - width + 1):
        window = segments[start : start + width]
        if not all(fnmatchcase(window[i], zparts[i]) for i in range(width - 1)):
            continue
        last, zlast = window[-1], zparts[-1]
        if fnmatchcase(last, zlast) or fnmatchcase(last, zlast + ".py"):
            return True
    return False


def zone_match_any(path: str, zones: Tuple[str, ...]) -> bool:
    return any(zone_match(path, zone) for zone in zones)


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    zone: Tuple[str, ...]
    #: Anchored segment patterns exempt from the rule even inside its zone.
    exempt: Tuple[str, ...] = ()
    #: Whole-program rules need every file's facts before they can fire;
    #: per-file rules run (and cache) file by file.
    whole_program: bool = False

    def applies_to(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        if zone_match_any(norm, self.exempt):
            return False
        return zone_match_any(norm, self.zone)


RULES = {
    "WL001": Rule(
        "WL001",
        "no-wall-clock",
        "simulation code must read EventLoop.now, never the wall clock",
        SIM_ZONE,
    ),
    "WL002": Rule(
        "WL002",
        "no-unseeded-random",
        "randomness must come from a caller-supplied seeded random.Random",
        SIM_ZONE,
    ),
    "WL003": Rule(
        "WL003",
        "no-float-equality",
        "time/rate quantities must not be compared with == / !=",
        SRC_ZONE,
    ),
    "WL004": Rule(
        "WL004",
        "hot-path-slots",
        "registered hot-path classes must declare __slots__",
        SRC_ZONE,
    ),
    "WL005": Rule(
        "WL005",
        "deterministic-merge",
        "merge/serialization paths must not iterate dicts in insertion order",
        SRC_ZONE,
        whole_program=True,
    ),
    "WL006": Rule(
        "WL006",
        "typed-defs",
        "typed zones require annotations on every def",
        TYPED_ZONE,
    ),
    "WL007": Rule(
        "WL007",
        "no-bare-print",
        "library code must not print(); use logging or return a report",
        SRC_ZONE,
        # Report rendering and the experiment drivers are presentation
        # layers whose job is terminal output.
        exempt=("src/repro/experiments", "src/repro/metrics/report"),
    ),
    "WL009": Rule(
        "WL009",
        "unused-pragma",
        "wira-lint pragmas must suppress at least one live finding",
        # Tests embed pragma-bearing fixture snippets inside string
        # literals, which the line-based pragma scanner cannot tell from
        # real pragmas — so staleness is only enforced on shipped code.
        ("src/repro", "examples"),
        whole_program=True,
    ),
    "WL010": Rule(
        "WL010",
        "no-wall-clock-taint",
        "replay-zone code must not transitively call wall-clock readers",
        REPLAY_ZONE,
        whole_program=True,
    ),
    "WL011": Rule(
        "WL011",
        "no-global-rng-taint",
        "replay-zone code must not transitively use the process-global RNG",
        REPLAY_ZONE,
        whole_program=True,
    ),
    "WL012": Rule(
        "WL012",
        "settings-knobs",
        "WIRA_* environment knobs must flow through runtime.Settings",
        ("src/repro", "tools"),
        exempt=("src/repro/runtime/settings",),
    ),
    "WL013": Rule(
        "WL013",
        "event-registry",
        "emitted obs event names and events.EVENT_NAMES must agree",
        SRC_ZONE,
        whole_program=True,
    ),
    "WL014": Rule(
        "WL014",
        "invariant-registry",
        "sanitizer invariant names raised and INVARIANTS must agree",
        SRC_ZONE,
        whole_program=True,
    ),
    "WL015": Rule(
        "WL015",
        "event-loop-surface",
        "classes passed where an EventLoop is expected must provide its surface",
        SRC_ZONE,
        whole_program=True,
    ),
    "WL016": Rule(
        "WL016",
        "no-deprecated-api",
        "deprecated construction APIs must not be used",
        EVERYWHERE_ZONE,
    ),
}

#: ``time`` module functions that read the host clock.
WALL_CLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "localtime",
        "gmtime",
    }
)

#: ``datetime`` constructors that read the host clock.
WALL_CLOCK_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Module-level ``random.*`` functions driven by the process-global RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Identifier words marking a float as a time/rate quantity for WL003.
TIME_RATE_WORDS = frozenset(
    {
        "bps",
        "bw",
        "deadline",
        "delay",
        "elapsed",
        "latency",
        "now",
        "rate",
        "rtt",
        "seconds",
        "time",
        "timeout",
        "timestamp",
        "tokens",
    }
)

#: Hot-path classes that must stay ``__slots__``-packed (WL004).  These
#: are allocated per packet or per event; an instance ``__dict__`` on any
#: of them costs both memory and the BENCH_speed throughput floor.
SLOTS_REGISTRY = frozenset(
    {
        "Datagram",
        "Event",
        "EventLoop",
        "Link",
        "Pacer",
        "SentPacket",
        # Batched-kernel scheduler core: one CalendarQueue entry and one
        # MemberLoop clock touch per simulated event across every member
        # session sharing the kernel.
        "BatchEventLoop",
        "CalendarQueue",
        "MemberLoop",
        # Fleet-scale streaming accumulators: allocated per campaign but
        # fold()/add() run once per session across 10^5–10^6 sessions.
        "CampaignAggregate",
        "ExactSum",
        "QuantileSketch",
        "SchemeAggregate",
        "SketchCdf",
        "StatAccumulator",
        # Live-telemetry views: one per snapshot/poll, but campaigns at
        # fleet scale write thousands of snapshots and the live
        # dashboard re-merges them every poll.
        "LiveStatus",
        "TelemetrySnapshot",
        # Scheme-plugin policies: one instance per chain at fleet scale,
        # queried once per session; an instance ``__dict__`` here also
        # invites ad-hoc state that escapes the state_digest contract.
        "TableIPolicy",
        "AdaptiveInitPolicy",
    }
)

#: Functions treated as merge paths for WL005: anywhere parallel shards
#: are recombined, iteration order must come from an explicit sort key,
#: never from dict insertion order (which differs shard-by-shard).
MERGE_FUNC_RE = re.compile(r"(?:^|_)(merge|replay|aggregate|combine|reduce|recombine)", re.I)

#: Duck-type contracts for WL015: any class statically observed flowing
#: into a parameter annotated with (or ``typing.cast`` to) the contract
#: name must provide every member of the surface.  ``EventLoop`` is the
#: canonical solo scheduler; ``BatchEventLoop`` members (``MemberLoop``)
#: duck-type the same surface so sessions cannot tell solo from batched.
DUCK_CONTRACTS = {
    "EventLoop": ("now", "post_at", "post_later", "pending_events"),
}

#: Deprecated construction APIs for WL016.  Maps the module that still
#: exports the deprecated name to (name, replacement-hint).
DEPRECATED_ALIASES = {
    ("repro.workload", "SessionSpec"): "use repro.workload.population.PlannedSession",
    ("repro.workload.population", "SessionSpec"): "use PlannedSession",
}

#: Classes whose direct-call constructor is deprecated (WL016): the
#: supported path is the named classmethod.
DEPRECATED_CTORS = {
    "StreamingSession": "build a SessionSpec and call StreamingSession.from_spec",
    "compute_initial_params": (
        "use repro.core.schemes.make_policy(scheme).initial_params(InitContext(...))"
    ),
}

#: Module-level registry assignments the contract cross-checks consume.
#: Any scanned file assigning one of these names to a literal collection
#: of strings contributes to the program-wide registry of that kind.
REGISTRY_NAMES = ("EVENT_NAMES", "INVARIANTS", "KNOWN_KNOBS")

#: Shape of an obs event name: ``category:event``.
EVENT_NAME_RE = re.compile(r"^[a-z_]+:[a-z_]+$")

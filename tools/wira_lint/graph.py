"""Whole-program passes: symbol table, call graph, and cross-module rules.

:class:`Program` links the per-file :class:`~tools.wira_lint.facts.FileFacts`
into a project-wide view — module table, top-level function table, class
method tables with base-class closure, and an approximate call graph —
and then runs the rule families that cannot be decided file-by-file:

* **WL010 / WL011** — interprocedural wall-clock / global-RNG taint with
  a printed call-path witness (``f -> g -> time.time() [path:line]``);
* **WL005** — dict-view iteration order flowing into merge paths, now
  followed one call level deep instead of matching names only;
* **WL013 / WL014** — obs event names and sanitizer invariant names
  cross-checked against their contract registries, both directions;
* **WL015** — duck-type conformance of classes flowing into
  EventLoop-typed parameters and ``typing.cast(EventLoop, ...)`` sites.

All passes produce plain ``(path, line, col, code, message)`` tuples;
pragma suppression and baseline filtering happen in the engine.

Resolution is intentionally *approximate*: a call site that cannot be
statically resolved produces no edge (never a spurious one), so every
finding reported here is backed by an actual witness chain — the cost is
that dynamically-dispatched calls are invisible to the taint passes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.wira_lint.facts import MODULE_SCOPE, FileFacts, FunctionFacts
from tools.wira_lint.rules import DUCK_CONTRACTS, MERGE_FUNC_RE, RULES

Finding = Tuple[str, int, int, str, str]

#: Pragma codes that vet a direct clock/RNG read: a read suppressed under
#: any of these does not seed the corresponding taint pass (the pragma is
#: an explicit human sign-off on that exact read).
_CLOCK_VETO = frozenset({"WL001", "WL010"})
_RNG_VETO = frozenset({"WL002", "WL011"})


class Program:
    """Cross-module view over a set of extracted file facts."""

    def __init__(self, all_facts: Sequence[FileFacts]) -> None:
        self.files: List[FileFacts] = sorted(all_facts, key=lambda f: f.path)
        #: module name -> facts (first file per module in path order wins).
        self.modules: Dict[str, FileFacts] = {}
        #: fid "module:qualname" -> (file facts, function facts).
        self.functions: Dict[str, Tuple[FileFacts, FunctionFacts]] = {}
        #: module -> {top-level function name -> fid}.
        self.top_level: Dict[str, Dict[str, str]] = {}
        #: (class name, method name) -> sorted fids.
        self.methods: Dict[Tuple[str, str], List[str]] = {}
        #: class name -> union of base-class terminal names.
        self.class_bases: Dict[str, Set[str]] = {}
        #: class name -> union of directly-declared members.
        self.class_members: Dict[str, Set[str]] = {}
        #: caller fid -> {callee fid: first call line}.
        self.edges: Dict[str, Dict[str, int]] = {}
        #: callee fid -> {caller fid: first call line}.
        self.redges: Dict[str, Dict[str, int]] = {}
        self._index()
        self._link()

    # -- construction --------------------------------------------------

    def _index(self) -> None:
        for facts in self.files:
            self.modules.setdefault(facts.module, facts)
        for facts in self.files:
            if self.modules[facts.module] is not facts:
                continue  # duplicate module name: first path wins
            top: Dict[str, str] = {}
            for fn in facts.functions:
                fid = f"{facts.module}:{fn.qualname}"
                self.functions[fid] = (facts, fn)
                if fn.parent is None and fn.cls is None and fn.qualname == fn.name:
                    top[fn.name] = fid
                if fn.cls is not None:
                    self.methods.setdefault((fn.cls, fn.name), []).append(fid)
            self.top_level[facts.module] = top
            for cls in facts.classes:
                self.class_bases.setdefault(cls.name, set()).update(cls.bases)
                self.class_members.setdefault(cls.name, set()).update(cls.members)
        for fids in self.methods.values():
            fids.sort()

    def _canonical(self, facts: FileFacts, dotted: str) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        if head in facts.from_imports:
            module, orig = facts.from_imports[head]
            expanded = f"{module}.{orig}"
        elif head in facts.module_aliases:
            expanded = facts.module_aliases[head]
        else:
            return None
        return f"{expanded}.{rest}" if rest else expanded

    def _function_in_module(self, module: str, qualname: str) -> Optional[str]:
        fid = f"{module}:{qualname}"
        if fid in self.functions:
            return fid
        ctor = f"{module}:{qualname}.__init__"
        return ctor if ctor in self.functions else None

    def _resolve_dotted(self, facts: FileFacts, dotted: str) -> List[str]:
        canonical = self._canonical(facts, dotted) or dotted
        parts = canonical.split(".")
        # Longest module prefix wins: "repro.simnet.engine.EventLoop.post_at"
        # resolves module "repro.simnet.engine", qualname "EventLoop.post_at".
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module in self.modules:
                fid = self._function_in_module(module, ".".join(parts[split:]))
                return [fid] if fid else []
        return []

    def _resolve_method(self, cls: Optional[str], name: str) -> List[str]:
        if cls is None:
            return []
        seen: Set[str] = set()
        queue = deque([cls])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            fids = self.methods.get((current, name))
            if fids:
                return list(fids)
            queue.extend(sorted(self.class_bases.get(current, ())))
        return []

    def resolve_call(self, facts: FileFacts, caller: FunctionFacts, call: Dict) -> List[str]:
        kind, target = call["kind"], call["target"]
        if kind == "name":
            fid = self.top_level.get(facts.module, {}).get(target)
            if fid is not None:
                return [fid]
            imported = facts.from_imports.get(target)
            if imported is not None:
                module, orig = imported
                fid = self._function_in_module(module, orig)
                if fid is not None:
                    return [fid]
                if not any(m == module or m.startswith(module + ".") for m in self.modules):
                    # Known to come from a module outside the scanned
                    # program (e.g. pathlib.Path): never guess by class
                    # name — a same-named scanned class is a different type.
                    return []
                return self._resolve_method(orig, "__init__") if orig[:1].isupper() else []
            if target[:1].isupper():
                return self._resolve_method(target, "__init__")
            return []
        if kind == "dotted":
            return self._resolve_dotted(facts, target)
        if kind == "self":
            if "." in target:
                return []
            return self._resolve_method(caller.cls, target)
        if kind == "method":
            return self._resolve_method(call.get("hint"), target)
        return []

    def _link(self) -> None:
        for fid, (facts, fn) in sorted(self.functions.items()):
            out = self.edges.setdefault(fid, {})
            for call in fn.calls:
                for callee in self.resolve_call(facts, fn, call):
                    if callee == fid:
                        continue
                    line = int(call["line"])
                    if callee not in out or line < out[callee]:
                        out[callee] = line
                    back = self.redges.setdefault(callee, {})
                    if fid not in back or line < back[fid]:
                        back[fid] = line

    # -- pragma helpers ------------------------------------------------

    @staticmethod
    def _vetoed_lines(facts: FileFacts, veto: frozenset) -> Tuple[Set[int], bool]:
        """Lines (and whether the whole file) carry a vetoing pragma."""
        lines: Set[int] = set()
        file_wide = False
        for line, scope, codes in facts.pragmas:
            if not veto.intersection(codes):
                continue
            if scope == "file":
                file_wide = True
            else:
                lines.add(int(line))
        return lines, file_wide

    # -- WL010 / WL011: interprocedural taint --------------------------

    def _taint_findings(
        self, code: str, reads_attr: str, veto: frozenset, per_file_code: str, noun: str
    ) -> List[Finding]:
        rule = RULES[code]
        per_file_rule = RULES[per_file_code]
        # Seed set: direct reads not vetoed by a pragma.
        taint: Dict[str, Dict] = {}
        for fid in sorted(self.functions):
            facts, fn = self.functions[fid]
            vetoed, file_wide = self._vetoed_lines(facts, veto)
            if file_wide:
                continue
            reads = [r for r in getattr(fn, reads_attr) if int(r["line"]) not in vetoed]
            if reads:
                read = min(reads, key=lambda r: int(r["line"]))
                taint[fid] = {
                    "next": None,
                    "call_line": None,
                    "read": (facts.path, int(read["line"]), read["what"]),
                }
        # Reverse BFS: a caller of a tainted function is tainted.  Sorted
        # wave processing keeps witness choice deterministic.
        frontier = sorted(taint)
        while frontier:
            next_frontier: List[str] = []
            for fid in frontier:
                for caller, line in sorted(self.redges.get(fid, {}).items()):
                    if caller in taint:
                        continue
                    taint[caller] = {
                        "next": fid,
                        "call_line": line,
                        "read": taint[fid]["read"],
                    }
                    next_frontier.append(caller)
            frontier = sorted(next_frontier)
        self._taint_map = taint

        findings: List[Finding] = []
        for fid in sorted(taint):
            facts, fn = self.functions[fid]
            if not rule.applies_to(facts.path):
                continue
            info = taint[fid]
            if info["next"] is None:
                # Direct read: WL001/WL002 already covers it inside the
                # sim zone; the taint rule reports it only where the
                # per-file rule does not reach (media/cdn).
                if per_file_rule.applies_to(facts.path):
                    continue
                path, line, what = info["read"]
                findings.append(
                    (
                        facts.path,
                        line,
                        0,
                        code,
                        f"{fn.qualname}() reads {noun}: {what} [{path}:{line}]",
                    )
                )
                continue
            next_facts, _ = self.functions[info["next"]]
            if rule.applies_to(next_facts.path):
                # The callee is itself in the replay zone: it carries the
                # finding (or a vetting pragma); do not cascade upward.
                continue
            witness = self._witness(fid)
            findings.append(
                (
                    facts.path,
                    int(info["call_line"]),
                    0,
                    code,
                    f"{fn.qualname}() transitively reads {noun} via: {witness}",
                )
            )
        return findings

    def _witness(self, fid: str) -> str:
        parts: List[str] = []
        current: Optional[str] = fid
        guard = 0
        while current is not None and guard < 64:
            facts, fn = self.functions[current]
            parts.append(f"{facts.module}.{fn.qualname}" if fn.qualname != MODULE_SCOPE else facts.module)
            info = self._taint_map.get(current) if hasattr(self, "_taint_map") else None
            if info is None:
                break
            if info["next"] is None:
                path, line, what = info["read"]
                parts.append(f"{what} [{path}:{line}]")
                break
            current = info["next"]
            guard += 1
        return " -> ".join(parts)

    def wall_clock_taint(self) -> List[Finding]:
        return self._taint_findings("WL010", "clock_reads", _CLOCK_VETO, "WL001", "the wall clock")

    def global_rng_taint(self) -> List[Finding]:
        return self._taint_findings("WL011", "rng_reads", _RNG_VETO, "WL002", "the process-global RNG")

    # -- WL005: merge-path dict iteration ------------------------------

    def _merge_context(self, fid: str) -> Optional[str]:
        """Qualname of the merge function enclosing ``fid``, if any."""
        facts, fn = self.functions[fid]
        current: Optional[FunctionFacts] = fn
        while current is not None:
            if MERGE_FUNC_RE.search(current.name):
                return current.qualname
            parent = current.parent
            current = self.functions.get(f"{facts.module}:{parent}")[1] if (
                parent is not None and f"{facts.module}:{parent}" in self.functions
            ) else None
        return None

    def merge_order_findings(self) -> List[Finding]:
        rule = RULES["WL005"]
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int]] = set()
        for fid in sorted(self.functions):
            facts, fn = self.functions[fid]
            if not fn.dict_iters or not rule.applies_to(facts.path):
                continue
            context = self._merge_context(fid)
            caller_context: Optional[str] = None
            if context is None:
                for caller in sorted(self.redges.get(fid, {})):
                    caller_facts, caller_fn = self.functions[caller]
                    if MERGE_FUNC_RE.search(caller_fn.name):
                        caller_context = f"{caller_facts.module}.{caller_fn.qualname}"
                        break
            if context is None and caller_context is None:
                continue
            for it in fn.dict_iters:
                key = (facts.path, int(it["line"]), int(it["col"]))
                if key in seen:
                    continue
                seen.add(key)
                base = it["base"] or "dict"
                if context is not None:
                    message = (
                        f"merge path iterates {base}.{it['attr']}() in insertion "
                        "order; merged shards differ -- iterate sorted(...) with "
                        "an explicit key"
                    )
                else:
                    message = (
                        f"{fn.qualname}() iterates {base}.{it['attr']}() in "
                        f"insertion order and feeds merge path {caller_context}(); "
                        "iterate sorted(...) with an explicit key"
                    )
                findings.append((facts.path, int(it["line"]), int(it["col"]), "WL005", message))
        return findings

    # -- WL013 / WL014: contract registries ----------------------------

    def _registry(self, name: str) -> Tuple[Set[str], List[FileFacts]]:
        values: Set[str] = set()
        defining: List[FileFacts] = []
        for facts in self.files:
            if name in facts.registries:
                values.update(facts.registries[name])
                defining.append(facts)
        return values, defining

    def event_registry_findings(self) -> List[Finding]:
        rule = RULES["WL013"]
        registry, defining = self._registry("EVENT_NAMES")
        if not defining:
            return []
        findings: List[Finding] = []
        emitted: Set[str] = set()
        for facts in self.files:
            for line, name in facts.emit_events:
                emitted.add(name)
                if name not in registry and rule.applies_to(facts.path):
                    findings.append(
                        (
                            facts.path,
                            int(line),
                            0,
                            "WL013",
                            f"emitted event name '{name}' is not registered in "
                            "events.EVENT_NAMES",
                        )
                    )
        if not emitted:
            # No emit site in scope (e.g. linting the registry module by
            # itself): the reverse direction would flag every name.
            return findings
        defining_paths = {facts.path for facts in defining}
        for name in sorted(registry):
            if name in emitted:
                continue
            if self._literal_evidence(name, defining_paths):
                continue
            anchor = defining[0]
            if not rule.applies_to(anchor.path):
                continue
            line = next(
                (int(l) for l, value in anchor.event_literals if value == name),
                anchor.registry_lines.get("EVENT_NAMES", 1),
            )
            findings.append(
                (
                    anchor.path,
                    line,
                    0,
                    "WL013",
                    f"EVENT_NAMES registers '{name}' but no scanned code emits "
                    "or references it",
                )
            )
        return findings

    def _literal_evidence(self, name: str, defining_paths: Set[str]) -> bool:
        """True when ``name`` appears as a literal outside its registry
        definition (covers dynamically-selected emit names such as
        ``name = "fault:link_down" if down else "fault:link_up"``)."""
        for facts in self.files:
            hits = sum(1 for _, value in facts.event_literals if value == name)
            if facts.path in defining_paths:
                if hits > 1:
                    return True
            elif hits:
                return True
        return False

    def invariant_registry_findings(self) -> List[Finding]:
        rule = RULES["WL014"]
        registry, defining = self._registry("INVARIANTS")
        if not defining:
            return []
        findings: List[Finding] = []
        raised: Set[str] = set()
        for facts in self.files:
            for line, name in facts.invariant_raises:
                raised.add(name)
                if name not in registry and rule.applies_to(facts.path):
                    findings.append(
                        (
                            facts.path,
                            int(line),
                            0,
                            "WL014",
                            f"SanitizerError raised with invariant '{name}' which is "
                            "not registered in INVARIANTS",
                        )
                    )
        if not raised:
            return findings
        for name in sorted(registry - raised):
            anchor = defining[0]
            if not rule.applies_to(anchor.path):
                continue
            findings.append(
                (
                    anchor.path,
                    anchor.registry_lines.get("INVARIANTS", 1),
                    0,
                    "WL014",
                    f"INVARIANTS registers '{name}' but no scanned code raises "
                    "SanitizerError with it",
                )
            )
        return findings

    # -- WL015: duck-type conformance ----------------------------------

    def _surface_missing(self, cls: str, contract: str) -> Optional[List[str]]:
        """Members of ``contract``'s surface that ``cls`` lacks, following
        base classes; None when ``cls`` is unknown (nothing to check)."""
        if cls == contract:
            return []
        if cls not in self.class_members:
            return None
        surface = DUCK_CONTRACTS[contract]
        members: Set[str] = set()
        seen: Set[str] = set()
        queue = deque([cls])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            members.update(self.class_members.get(current, ()))
            queue.extend(sorted(self.class_bases.get(current, ())))
        return [name for name in surface if name not in members]

    def duck_type_findings(self) -> List[Finding]:
        rule = RULES["WL015"]
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str, str]] = set()

        def check(facts: FileFacts, line: int, cls: Optional[str], contract: str) -> None:
            if cls is None or not rule.applies_to(facts.path):
                return
            missing = self._surface_missing(cls, contract)
            if not missing:
                return
            key = (facts.path, line, cls, contract)
            if key in seen:
                return
            seen.add(key)
            surface = "/".join(DUCK_CONTRACTS[contract])
            findings.append(
                (
                    facts.path,
                    line,
                    0,
                    "WL015",
                    f"{cls} flows into a {contract}-typed site but lacks: "
                    f"{', '.join(missing)}; required surface: {surface}",
                )
            )

        for fid in sorted(self.functions):
            facts, fn = self.functions[fid]
            for cast in fn.casts:
                check(facts, int(cast["line"]), cast.get("hint"), cast["contract"])
            for call in fn.calls:
                callees = self.resolve_call(facts, fn, call)
                if not callees:
                    continue
                _, callee = self.functions[callees[0]]
                params = callee.params
                if params and params[0][0] in ("self", "cls") and (
                    call["kind"] in ("self", "method") or callee.name == "__init__"
                ):
                    params = params[1:]
                for index, hint in enumerate(call["args"]):
                    if hint is None or index >= len(params):
                        continue
                    annotation = params[index][1]
                    if annotation in DUCK_CONTRACTS:
                        check(facts, int(call["line"]), hint, annotation)
                by_name = {name: ann for name, ann in params}
                for name, hint in sorted(call["kwargs"].items()):
                    annotation = by_name.get(name)
                    if annotation in DUCK_CONTRACTS:
                        check(facts, int(call["line"]), hint, annotation)
        return findings

    # -- entry point ---------------------------------------------------

    def findings(self, select: Optional[Set[str]] = None) -> List[Finding]:
        """All whole-program findings, optionally filtered by ``select``."""
        passes = {
            "WL005": self.merge_order_findings,
            "WL010": self.wall_clock_taint,
            "WL011": self.global_rng_taint,
            "WL013": self.event_registry_findings,
            "WL014": self.invariant_registry_findings,
            "WL015": self.duck_type_findings,
        }
        results: List[Finding] = []
        for code in sorted(passes):
            if select is not None and code not in select:
                continue
            results.extend(passes[code]())
        return results

"""AST walker, pragma handling, and the rule implementations."""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.wira_lint.rules import (
    GLOBAL_RANDOM_FUNCS,
    MERGE_FUNC_RE,
    RULES,
    SLOTS_REGISTRY,
    TIME_RATE_WORDS,
    WALL_CLOCK_DATETIME_FUNCS,
    WALL_CLOCK_TIME_FUNCS,
)

#: Trailing pragma: ``# wira-lint: disable=WL001,WL003``
#: Standalone file pragma: ``# wira-lint: disable-file=WL003``
_PRAGMA_RE = re.compile(r"#\s*wira-lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_, ]+)")

#: Code assigned to files the parser rejects; cannot be suppressed.
PARSE_ERROR_CODE = "WL000"

_SCREAMING_CASE_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


@dataclass(frozen=True)
class Violation:
    """One finding, formatted as ``file:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _normalise(path: str) -> str:
    return path.replace(os.sep, "/")


def _applicable_rules(path: str, select: Optional[Set[str]]) -> Set[str]:
    norm = _normalise(path)
    codes = set()
    for code, rule in RULES.items():
        if select is not None and code not in select:
            continue
        if any(exempt in norm for exempt in rule.exempt):
            continue
        if any(zone in norm for zone in rule.zone):
            codes.add(code)
    return codes


def _parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Return (line -> disabled codes, file-wide disabled codes)."""
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = {c.strip().upper() for c in match.group("codes").split(",") if c.strip()}
        if match.group("scope"):
            per_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


# ---------------------------------------------------------------------------
# Identifier heuristics.


def _terminal_name(node: ast.expr) -> Optional[str]:
    """Innermost identifier of a Name/Attribute/Subscript chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _is_time_rate_identifier(name: Optional[str]) -> bool:
    if not name:
        return False
    return bool(set(name.lower().split("_")) & TIME_RATE_WORDS)


def _dotted(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_infinity(node: ast.expr) -> bool:
    """``float("inf")`` / ``math.inf`` / their negations compare exactly."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_infinity(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "float":
        if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            return isinstance(value, str) and "inf" in value.lower()
    dotted = _dotted(node)
    return dotted in ("math.inf", "math.nan")


# ---------------------------------------------------------------------------
# The visitor.


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, active: Set[str]) -> None:
        self.path = path
        self.active = active
        self.violations: List[Violation] = []
        self._func_stack: List[str] = []
        # Import tracking: local alias -> canonical module, and names
        # imported straight into the namespace -> (module, original).
        self._module_aliases: Dict[str, str] = {}
        self._from_imports: Dict[str, Tuple[str, str]] = {}

    # -- plumbing ------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if code in self.active:
            self.violations.append(
                Violation(
                    self.path,
                    getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0),
                    code,
                    message,
                )
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("time", "datetime", "random"):
                self._module_aliases[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            root = node.module.split(".")[0]
            if root in ("time", "datetime", "random"):
                for alias in node.names:
                    self._from_imports[alias.asname or alias.name] = (root, alias.name)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_typed_def(node)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_typed_def(node)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    # -- WL001 / WL002: calls ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_randomness(node)
        self._check_bare_print(node)
        self.generic_visit(node)

    # -- WL007: no bare print in library code --------------------------

    def _check_bare_print(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self._report(
                node,
                "WL007",
                "bare print() in library code; use logging or return a report",
            )

    def _resolve_call(self, node: ast.Call) -> Optional[Tuple[str, str]]:
        """Resolve a call target to ``(module, function)`` for the three
        tracked stdlib modules, following both import styles."""
        func = node.func
        if isinstance(func, ast.Name):
            imported = self._from_imports.get(func.id)
            if imported is not None:
                return imported
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        module = self._module_aliases.get(head)
        if module is not None and rest:
            return module, rest
        imported = self._from_imports.get(head)
        if imported is not None and rest:
            # e.g. ``from datetime import datetime`` then ``datetime.now``.
            return imported[0], f"{imported[1]}.{rest}"
        return None

    def _check_wall_clock(self, node: ast.Call) -> None:
        resolved = self._resolve_call(node)
        if resolved is None:
            return
        module, func = resolved
        if module == "time" and func in WALL_CLOCK_TIME_FUNCS:
            self._report(
                node,
                "WL001",
                f"wall-clock read time.{func}(); simulation code must use EventLoop.now",
            )
        elif module == "datetime":
            tail = func.split(".")[-1]
            if tail in WALL_CLOCK_DATETIME_FUNCS:
                self._report(
                    node,
                    "WL001",
                    f"wall-clock read datetime {func}(); simulation code must use EventLoop.now",
                )

    def _check_randomness(self, node: ast.Call) -> None:
        resolved = self._resolve_call(node)
        if resolved is None:
            return
        module, func = resolved
        if module != "random":
            return
        if func in GLOBAL_RANDOM_FUNCS:
            self._report(
                node,
                "WL002",
                f"module-level random.{func}() uses the process-global RNG; "
                "take a seeded random.Random from the caller",
            )
        elif func == "Random":
            if not node.args and not node.keywords:
                self._report(
                    node,
                    "WL002",
                    "random.Random() without a seed is nondeterministic; "
                    "require a caller-supplied seeded instance",
                )
            elif len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
                self._report(
                    node,
                    "WL002",
                    f"random.Random({node.args[0].value!r}) hard-codes the seed; "
                    "require an explicit rng (or pragma-document the fallback)",
                )

    # -- WL003: float equality -----------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left] + list(node.comparators)
            if not any(_is_infinity(op) for op in operands):
                flagged = self._float_equality_operand(operands)
                if flagged is not None:
                    self._report(
                        node,
                        "WL003",
                        f"float equality on time/rate quantity {flagged!r}; "
                        "compare with a tolerance or restructure",
                    )
        self.generic_visit(node)

    @staticmethod
    def _float_equality_operand(operands: Sequence[ast.expr]) -> Optional[str]:
        # ALL_CAPS terminal identifiers are named constants (enum members,
        # wire tags, gain tables): comparing against them is exact by
        # construction, not an arithmetic float comparison.
        names = [
            name
            for name in (_terminal_name(op) for op in operands)
            if name is not None and not _SCREAMING_CASE_RE.match(name)
        ]
        has_float_literal = any(
            isinstance(op, ast.Constant) and isinstance(op.value, float) for op in operands
        )
        for name in names:
            if _is_time_rate_identifier(name):
                return name
        if has_float_literal and names:
            # ``x == 0.5``: a float literal against any identifier.
            return names[0]
        return None

    # -- WL004: __slots__ registry -------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name in SLOTS_REGISTRY and not self._declares_slots(node):
            self._report(
                node,
                "WL004",
                f"hot-path class {node.name} must declare __slots__ "
                "(or use @dataclass(slots=True))",
            )
        self.generic_visit(node)

    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call) and _terminal_name(decorator.func) == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        return False

    # -- WL005: merge-path dict iteration ------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_merge_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_merge_iteration(node.iter)
        self.generic_visit(node)

    def _in_merge_path(self) -> bool:
        return any(MERGE_FUNC_RE.search(name) for name in self._func_stack)

    def _check_merge_iteration(self, iter_node: ast.expr) -> None:
        if "WL005" not in self.active or not self._in_merge_path():
            return
        for view_call, sorted_ancestor in self._dict_view_calls(iter_node, False):
            if sorted_ancestor:
                continue
            attr = view_call.func.attr  # type: ignore[attr-defined]
            base = _terminal_name(view_call.func.value)  # type: ignore[attr-defined]
            self._report(
                view_call,
                "WL005",
                f"merge path iterates {base or 'a dict'}.{attr}() in insertion "
                "order; wrap in sorted(...) with an explicit key",
            )

    def _dict_view_calls(
        self, node: ast.expr, under_sorted: bool
    ) -> Iterable[Tuple[ast.Call, bool]]:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "sorted":
                for arg in node.args:
                    yield from self._dict_view_calls(arg, True)
                return
            if isinstance(func, ast.Attribute) and func.attr in ("values", "items", "keys"):
                yield node, under_sorted
                return
            for arg in node.args:
                yield from self._dict_view_calls(arg, under_sorted)

    # -- WL006: typed defs ---------------------------------------------

    def _check_typed_def(self, node: ast.AST) -> None:
        if "WL006" not in self.active:
            return
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        missing: List[str] = []
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return type")
        if missing:
            self._report(
                node,
                "WL006",
                f"def {node.name} in a typed zone is missing annotations: "
                + ", ".join(missing),
            )


# ---------------------------------------------------------------------------
# Entry points.


def lint_source(
    source: str, path: str, select: Optional[Set[str]] = None
) -> List[Violation]:
    """Lint one unit of source as if it lived at ``path``."""
    active = _applicable_rules(path, select)
    if not active:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(path, exc.lineno or 0, exc.offset or 0, PARSE_ERROR_CODE, f"parse error: {exc.msg}")
        ]
    per_line, per_file = _parse_pragmas(source)
    checker = _Checker(path, active)
    checker.visit(tree)
    kept = []
    for violation in checker.violations:
        if violation.code in per_file:
            continue
        if violation.code in per_line.get(violation.line, ()):
            continue
        kept.append(violation)
    return kept


def lint_file(path: str, select: Optional[Set[str]] = None) -> List[Violation]:
    try:
        source = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Violation(path, 0, 0, PARSE_ERROR_CODE, f"unreadable file: {exc}")]
    return lint_source(source, path, select)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                parts = set(sub.parts)
                if "__pycache__" in parts or any(part.startswith(".") for part in sub.parts):
                    continue
                found.append(str(sub))
        elif p.suffix == ".py":
            found.append(str(p))
    return found


def lint_paths(
    paths: Sequence[str], select: Optional[Set[str]] = None
) -> Tuple[List[Violation], int]:
    """Lint every ``.py`` under ``paths``; returns (violations, files scanned)."""
    files = iter_python_files(paths)
    violations: List[Violation] = []
    for file_path in files:
        violations.extend(lint_file(file_path, select))
    return violations, len(files)

"""Lint engine: fact extraction -> whole-program passes -> suppression.

The pipeline for every entry point is the same:

1. **extract** — one AST pass per file producing :class:`FileFacts`
   (raw per-file findings + cross-module facts), served from the
   content-fingerprint cache when available (:mod:`.cache`);
2. **link** — :class:`~tools.wira_lint.graph.Program` joins all facts
   and runs the whole-program passes (taint, registries, duck types);
3. **suppress** — pragmas are applied per line / per file, pragma usage
   is accounted (feeding WL009 unused-pragma findings), and optionally a
   committed baseline filters grandfathered findings (:mod:`.baseline`).

Public API (kept stable for the test-suite and external callers):
``Violation``, ``lint_source``, ``lint_sources``, ``lint_file``,
``lint_paths`` (returns a :class:`LintResult`, unpackable as the legacy
``(violations, files_scanned)`` tuple), and ``iter_python_files``.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.wira_lint.baseline import apply_baseline, load_baseline, save_baseline
from tools.wira_lint.cache import FactCache
from tools.wira_lint.facts import PARSE_ERROR_CODE, FileFacts, extract_facts
from tools.wira_lint.graph import Program
from tools.wira_lint.rules import RULES

__all__ = [
    "PARSE_ERROR_CODE",
    "LintResult",
    "Violation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]


@dataclass(frozen=True)
class Violation:
    """One finding, formatted as ``file:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintResult:
    """Full result of a lint run.

    Iterable as ``(violations, files_scanned)`` so legacy callers that
    unpack the old two-tuple keep working unchanged.
    """

    violations: List[Violation]
    files_scanned: int
    suppressed_baseline: int = 0
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def __iter__(self) -> Iterator:
        return iter((self.violations, self.files_scanned))


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """All ``.py`` files under ``paths``, deduplicated and sorted."""
    found: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                found.add(candidate)
    return sorted(found)


# ---------------------------------------------------------------------------
# Extraction (serial or process pool).


def _extract_json(item: Tuple[str, str]) -> dict:
    """Process-pool worker: extract facts and return the JSON form."""
    path, source = item
    return extract_facts(source, path).to_json()


def _gather_facts(
    files: Sequence[Tuple[str, str]],
    cache: Optional[FactCache],
    jobs: Optional[int],
) -> List[FileFacts]:
    facts_by_path: Dict[str, FileFacts] = {}
    misses: List[Tuple[str, str]] = []
    for path, source in files:
        cached = cache.get(path, source) if cache is not None else None
        if cached is not None:
            facts_by_path[path] = cached
        else:
            misses.append((path, source))
    if misses:
        if jobs is not None and jobs > 1 and len(misses) > 1:
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                extracted = list(pool.map(_extract_json, misses, chunksize=8))
            fresh = [FileFacts.from_json(raw) for raw in extracted]
        else:
            fresh = [extract_facts(source, path) for path, source in misses]
        for (path, source), facts in zip(misses, fresh):
            facts_by_path[path] = facts
            if cache is not None:
                cache.put(path, source, facts)
    return [facts_by_path[path] for path, _ in files]


# ---------------------------------------------------------------------------
# Suppression and WL009 accounting.


def _pragma_maps(facts: FileFacts):
    """(line -> codes, file-wide code -> pragma line) for one file."""
    by_line: Dict[int, Set[str]] = {}
    file_wide: Dict[str, int] = {}
    for line, scope, codes in facts.pragmas:
        if scope == "file":
            for code in codes:
                file_wide.setdefault(code, int(line))
        else:
            by_line.setdefault(int(line), set()).update(codes)
    return by_line, file_wide


def _apply_pragmas(
    all_facts: Sequence[FileFacts],
    violations: List[Violation],
    select: Optional[Set[str]],
) -> List[Violation]:
    """Drop pragma-suppressed findings; emit WL009 for dead pragmas."""
    maps = {facts.path: _pragma_maps(facts) for facts in all_facts}
    used: Set[Tuple[str, int, str]] = set()
    kept: List[Violation] = []
    for violation in violations:
        if violation.code == PARSE_ERROR_CODE or violation.path not in maps:
            kept.append(violation)
            continue
        by_line, file_wide = maps[violation.path]
        if violation.code in by_line.get(violation.line, ()):
            used.add((violation.path, violation.line, violation.code))
        elif violation.code in file_wide:
            used.add((violation.path, file_wide[violation.code], violation.code))
        else:
            kept.append(violation)

    wl009 = RULES["WL009"]
    if select is not None and "WL009" not in select:
        return kept
    for facts in all_facts:
        if facts.parse_error is not None or not wl009.applies_to(facts.path):
            continue
        by_line, file_wide = maps[facts.path]
        for line, scope, codes in facts.pragmas:
            line = int(line)
            # A pragma naming WL009 on its own line (or file-wide) is the
            # explicit opt-out for this check.
            if "WL009" in by_line.get(line, ()) or "WL009" in file_wide:
                continue
            for code in codes:
                if code == "WL009":
                    continue
                rule = RULES.get(code)
                if rule is None:
                    message = f"pragma disables unknown rule code {code}"
                elif select is not None and code not in select:
                    continue  # rule not run this time: cannot judge usefulness
                elif not rule.applies_to(facts.path):
                    message = (
                        f"pragma disables {code} ({rule.name}) which cannot "
                        "fire in this file; remove it"
                    )
                elif (facts.path, line, code) not in used:
                    message = (
                        f"pragma disables {code} ({rule.name}) but suppresses "
                        "no finding; remove it"
                    )
                else:
                    continue
                kept.append(Violation(facts.path, line, 0, "WL009", message))
    return kept


# ---------------------------------------------------------------------------
# Core pipeline.


def _analyze(
    files: Sequence[Tuple[str, str]],
    select: Optional[Set[str]] = None,
    cache: Optional[FactCache] = None,
    jobs: Optional[int] = None,
) -> List[Violation]:
    all_facts = _gather_facts(files, cache, jobs)
    violations: List[Violation] = []
    for facts in all_facts:
        if facts.parse_error is not None:
            line, col, message = facts.parse_error
            violations.append(
                Violation(facts.path, int(line), int(col), PARSE_ERROR_CODE, message)
            )
            continue
        for line, col, code, message in facts.violations:
            if select is None or code in select:
                violations.append(Violation(facts.path, int(line), int(col), code, message))
    program = Program([f for f in all_facts if f.parse_error is None])
    for path, line, col, code, message in program.findings(select):
        violations.append(Violation(path, line, col, code, message))
    violations = _apply_pragmas(all_facts, violations, select)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code, v.message))
    return violations


# ---------------------------------------------------------------------------
# Public entry points.


def lint_source(source: str, path: str, select: Optional[Set[str]] = None) -> List[Violation]:
    """Lint one in-memory file (whole-program passes see only it)."""
    return _analyze([(path.replace("\\", "/"), source)], select)


def lint_sources(sources: Dict[str, str], select: Optional[Set[str]] = None) -> List[Violation]:
    """Lint a set of in-memory files as one program (fixture helper)."""
    files = [(path.replace("\\", "/"), text) for path, text in sorted(sources.items())]
    return _analyze(files, select)


def lint_file(path: str, select: Optional[Set[str]] = None) -> List[Violation]:
    return lint_source(Path(path).read_text(), str(path), select)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    *,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
) -> LintResult:
    """Lint files/directories; returns a :class:`LintResult`.

    ``baseline_path`` (when set and not updating) suppresses findings
    recorded in the baseline and reports entries that no longer match as
    stale — CI fails on stale entries so the baseline can only shrink.
    """
    files: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        files.append((str(path).replace("\\", "/"), path.read_text()))
    cache = FactCache(Path(cache_dir)) if cache_dir is not None else None
    violations = _analyze(files, select, cache, jobs)
    if cache is not None:
        cache.save()

    result = LintResult(violations=violations, files_scanned=len(files))
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
    if baseline_path is None:
        return result

    reportable = [v for v in violations if v.code != PARSE_ERROR_CODE]
    parse_errors = [v for v in violations if v.code == PARSE_ERROR_CODE]
    if update_baseline:
        save_baseline(Path(baseline_path), reportable)
        result.violations = parse_errors
        result.suppressed_baseline = len(reportable)
        return result
    baseline = load_baseline(Path(baseline_path))
    kept, suppressed, stale = apply_baseline(reportable, baseline)
    result.violations = sorted(
        parse_errors + kept, key=lambda v: (v.path, v.line, v.col, v.code, v.message)
    )
    result.suppressed_baseline = suppressed
    result.stale_baseline = stale
    return result

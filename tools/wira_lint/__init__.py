"""wira-lint: repo-specific AST determinism linter.

Every figure in this reproduction (Figs 11-15, Table 1) and the PR 1
disk cache keyed by content hash depend on properties the Python
toolchain does not enforce:

* **bit-exact determinism** — all randomness must flow through
  caller-supplied seeded :class:`random.Random` instances and no
  simulation code may consult the wall clock;
* **transport invariants** — hot-path classes stay ``__slots__``-packed,
  merge paths never depend on dict iteration order, and time/rate
  floats are never compared with ``==``.

``wira-lint`` is a stdlib-only (``ast``) linter encoding those rules:

=======  ==============================================================
Code     Rule
=======  ==============================================================
WL001    no wall-clock reads in simulation code
WL002    no unseeded / hard-coded-seed randomness in simulation code
WL003    no float equality on time/rate quantities
WL004    registered hot-path classes must declare ``__slots__``
WL005    no dict-order-dependent iteration in merge paths
WL006    typed zones (quic/, simnet/) require full annotations
=======  ==============================================================

Violations can be suppressed per line with a trailing pragma::

    rng = rng or random.Random(0)  # wira-lint: disable=WL002

or per file with a standalone pragma line near the top::

    # wira-lint: disable-file=WL003

Run ``python -m tools.wira_lint src/ tests/`` from the repository root;
see ``--help`` for the JSON reporter and rule selection.
"""

from tools.wira_lint.engine import Violation, lint_file, lint_paths, lint_source
from tools.wira_lint.rules import RULES, Rule

__all__ = ["RULES", "Rule", "Violation", "lint_file", "lint_paths", "lint_source"]

"""wira-lint: repo-specific whole-program determinism linter.

Every figure in this reproduction (Figs 11-15, Table 1) and the PR 1
disk cache keyed by content hash depend on properties the Python
toolchain does not enforce:

* **bit-exact determinism** — all randomness must flow through
  caller-supplied seeded :class:`random.Random` instances and no
  simulation code may consult the wall clock, even transitively through
  helpers in other modules;
* **transport invariants** — hot-path classes stay ``__slots__``-packed,
  merge paths never depend on dict iteration order, and time/rate
  floats are never compared with ``==``;
* **contract registries** — obs event names, sanitizer invariant names,
  and ``WIRA_*`` settings knobs each have a single registry that code
  must agree with in both directions.

``wira-lint`` is a stdlib-only (``ast``) engine encoding those rules.
Per-file rules run (and cache) file by file; whole-program rules run
over a project-wide symbol table and approximate call graph:

=======  ==============================================================
Code     Rule
=======  ==============================================================
WL001    no wall-clock reads in simulation code
WL002    no unseeded / hard-coded-seed randomness in simulation code
WL003    no float equality on time/rate quantities
WL004    registered hot-path classes must declare ``__slots__``
WL005    no dict-order-dependent iteration in (or feeding) merge paths
WL006    typed zones (quic/, simnet/) require full annotations
WL007    no bare ``print()`` in library code
WL009    pragmas must suppress at least one live finding
WL010    no transitive wall-clock reads in the replay zone (taint)
WL011    no transitive process-global RNG use in the replay zone (taint)
WL012    ``WIRA_*`` env knobs must flow through ``runtime.Settings``
WL013    emitted obs event names <-> ``events.EVENT_NAMES`` (both ways)
WL014    raised sanitizer invariants <-> ``INVARIANTS`` (both ways)
WL015    classes passed as ``EventLoop`` must provide its surface
WL016    deprecated construction APIs must not be used
=======  ==============================================================

Violations can be suppressed per line with a trailing pragma::

    rng = rng or random.Random(0)  # wira-lint: disable=WL002

or per file with a standalone pragma line near the top::

    # wira-lint: disable-file=WL003

Stale pragmas are themselves findings (WL009).  Grandfathered findings
live in the committed ``tools/wira_lint/baseline.json``, which may only
shrink: a baseline entry matching no finding fails the build.

Run ``python -m tools.wira_lint src/ tests/`` from the repository root
(or the ``wira-lint`` console script); see ``--help`` for the JSON and
SARIF reporters, rule selection, ``--jobs``, and the facts cache.
"""

from tools.wira_lint.engine import (
    LintResult,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
)
from tools.wira_lint.rules import RULES, Rule

__all__ = [
    "RULES",
    "Rule",
    "LintResult",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]

"""Committed baseline of grandfathered findings.

The baseline lets a new rule land with existing debt recorded instead of
blocking the build, while guaranteeing the debt can only shrink:

* a finding matching a baseline entry is suppressed (not reported, does
  not fail the build);
* a baseline entry matching nothing is **stale** — in CI that fails the
  build, forcing the entry's removal (``--update-baseline`` rewrites the
  file from the current findings);
* a finding *not* in the baseline is new and fails the build normally.

Entries match on ``(path, code, message)`` — deliberately line-agnostic
so edits above a grandfathered finding do not churn the file — and are
counted as a multiset, so adding a *second* identical finding in the
same file is still new debt.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Tuple

BASELINE_VERSION = 1

#: (path, code, message)
BaselineKey = Tuple[str, str, str]


class BaselineError(ValueError):
    """Raised for an unreadable or malformed baseline file."""


def load_baseline(path: Path) -> Counter:
    """Multiset of grandfathered finding keys."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(f"baseline {path} has an unsupported format")
    entries = Counter()
    for item in payload.get("findings", []):
        entries[(item["path"], item["code"], item["message"])] += int(item.get("count", 1))
    return entries


def save_baseline(path: Path, violations: Sequence) -> None:
    """Rewrite the baseline from the current (post-pragma) findings."""
    counts = Counter((v.path, v.code, v.message) for v in violations)
    findings = [
        {"path": p, "code": c, "message": m, "count": n}
        for (p, c, m), n in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": findings}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(violations: Sequence, baseline: Counter):
    """Split findings into (new, suppressed_count, stale_keys)."""
    remaining = Counter(baseline)
    kept: List = []
    suppressed = 0
    for violation in violations:
        key = (violation.path, violation.code, violation.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            kept.append(violation)
    stale: List[BaselineKey] = sorted(
        key for key, count in remaining.items() if count > 0 for _ in range(count)
    )
    return kept, suppressed, stale

"""Command line front end: ``python -m tools.wira_lint src/ tests/``.

Exit codes: 0 clean, 1 violations found, 2 parse/usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Set

from tools.wira_lint.engine import PARSE_ERROR_CODE, lint_paths
from tools.wira_lint.report import render_json, render_text
from tools.wira_lint.rules import RULES

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _parse_select(raw: Optional[str]) -> Optional[Set[str]]:
    if raw is None:
        return None
    codes = {part.strip().upper() for part in raw.split(",") if part.strip()}
    unknown = codes - set(RULES)
    if unknown:
        raise SystemExit(f"wira-lint: unknown rule code(s): {', '.join(sorted(unknown))}")
    return codes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.wira_lint",
        description="Repo-specific AST determinism linter (rules WL001-WL007).",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"], help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument("--output", help="write the report to a file instead of stdout")
    parser.add_argument(
        "--select", help="comma-separated rule codes to run (default: all)", default=None
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code}  {rule.name:<22} {rule.summary}")
        return EXIT_CLEAN

    try:
        select = _parse_select(args.select)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return EXIT_ERROR

    violations, files_scanned = lint_paths(args.paths, select)
    report = (
        render_json(violations, files_scanned)
        if args.format == "json"
        else render_text(violations, files_scanned)
    )
    if args.output:
        Path(args.output).write_text(report if report.endswith("\n") else report + "\n")
    else:
        print(report, end="" if report.endswith("\n") else "\n")

    if any(v.code == PARSE_ERROR_CODE for v in violations):
        return EXIT_ERROR
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Command line front end: ``python -m tools.wira_lint src/ tests/``.

Exit codes: 0 clean, 1 violations found (or stale baseline entries),
2 parse/usage errors.

The committed baseline at ``tools/wira_lint/baseline.json`` is picked up
automatically when it exists relative to the working directory; pass
``--no-baseline`` to see grandfathered findings, ``--update-baseline``
to rewrite it from the current findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Set

from tools.wira_lint.baseline import BaselineError
from tools.wira_lint.engine import PARSE_ERROR_CODE, lint_paths
from tools.wira_lint.report import render_json, render_sarif, render_text
from tools.wira_lint.rules import RULES

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2

DEFAULT_BASELINE = Path("tools/wira_lint/baseline.json")


def _parse_select(raw: Optional[str]) -> Optional[Set[str]]:
    if raw is None:
        return None
    codes = {part.strip().upper() for part in raw.split(",") if part.strip()}
    unknown = codes - set(RULES)
    if unknown:
        raise SystemExit(f"wira-lint: unknown rule code(s): {', '.join(sorted(unknown))}")
    return codes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.wira_lint",
        description="Repo-specific whole-program determinism linter (rules WL001-WL016).",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"], help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", help="report format"
    )
    parser.add_argument("--output", help="write the report to a file instead of stdout")
    parser.add_argument(
        "--select", help="comma-separated rule codes to run (default: all)", default=None
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    parser.add_argument(
        "--jobs", type=int, default=None, help="extract facts with N worker processes"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the content-fingerprint facts cache (off by default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="ignore --cache-dir and run cold"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="report grandfathered findings too"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit clean",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code}  {rule.name:<22} {rule.summary}")
        return EXIT_CLEAN

    try:
        select = _parse_select(args.select)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return EXIT_ERROR

    baseline_path: Optional[str] = args.baseline
    if baseline_path is None and not args.no_baseline and DEFAULT_BASELINE.is_file():
        baseline_path = str(DEFAULT_BASELINE)
    if args.no_baseline and not args.update_baseline:
        baseline_path = None
    if args.update_baseline and baseline_path is None:
        baseline_path = str(DEFAULT_BASELINE)

    cache_dir = None if args.no_cache else args.cache_dir

    try:
        result = lint_paths(
            args.paths,
            select,
            jobs=args.jobs,
            cache_dir=cache_dir,
            baseline_path=baseline_path,
            update_baseline=args.update_baseline,
        )
    except BaselineError as exc:
        print(f"wira-lint: {exc}", file=sys.stderr)
        return EXIT_ERROR

    violations = result.violations
    if args.format == "json":
        report = render_json(violations, result.files_scanned)
    elif args.format == "sarif":
        report = render_sarif(violations, result.files_scanned)
    else:
        report = render_text(violations, result.files_scanned)
    if args.output:
        Path(args.output).write_text(report if report.endswith("\n") else report + "\n")
    else:
        print(report, end="" if report.endswith("\n") else "\n")

    if result.suppressed_baseline and args.format == "text" and not args.output:
        print(
            f"wira-lint: {result.suppressed_baseline} finding(s) suppressed by baseline",
            file=sys.stderr,
        )
    if result.stale_baseline:
        print(
            "wira-lint: baseline entries no longer match any finding "
            "(the baseline may only shrink -- run --update-baseline):",
            file=sys.stderr,
        )
        for path, code, message in result.stale_baseline:
            print(f"  {path}: {code} {message}", file=sys.stderr)

    if any(v.code == PARSE_ERROR_CODE for v in violations):
        return EXIT_ERROR
    if violations or result.stale_baseline:
        return EXIT_VIOLATIONS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

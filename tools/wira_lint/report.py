"""Text and JSON reporters for wira-lint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from tools.wira_lint.engine import Violation
from tools.wira_lint.rules import RULES

REPORT_VERSION = 1


def render_text(violations: Sequence[Violation], files_scanned: int) -> str:
    lines: List[str] = [v.render() for v in violations]
    counts = Counter(v.code for v in violations)
    if violations:
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"wira-lint: {len(violations)} violation(s) in {files_scanned} file(s) [{summary}]"
        )
    else:
        lines.append(f"wira-lint: clean ({files_scanned} file(s) scanned)")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_scanned: int) -> str:
    payload = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "counts": dict(sorted(Counter(v.code for v in violations).items())),
        "violations": [
            {
                "file": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "rule": RULES[v.code].name if v.code in RULES else "parse-error",
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"

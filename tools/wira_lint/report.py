"""Text, JSON, and SARIF reporters for wira-lint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from tools.wira_lint.engine import Violation
from tools.wira_lint.rules import RULES

REPORT_VERSION = 1
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_VERSION = "2.0"


def render_text(violations: Sequence[Violation], files_scanned: int) -> str:
    lines: List[str] = [v.render() for v in violations]
    counts = Counter(v.code for v in violations)
    if violations:
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"wira-lint: {len(violations)} violation(s) in {files_scanned} file(s) [{summary}]"
        )
    else:
        lines.append(f"wira-lint: clean ({files_scanned} file(s) scanned)")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_scanned: int) -> str:
    payload = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "counts": dict(sorted(Counter(v.code for v in violations).items())),
        "violations": [
            {
                "file": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "rule": RULES[v.code].name if v.code in RULES else "parse-error",
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(violations: Sequence[Violation], files_scanned: int) -> str:
    """SARIF 2.1.0 log, deterministic for byte-identical warm runs."""
    rules = [
        {
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
        }
        for code, rule in sorted(RULES.items())
    ]
    rules.append(
        {
            "id": "WL000",
            "name": "parse-error",
            "shortDescription": {"text": "file could not be parsed"},
        }
    )
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "wira-lint",
                        "informationUri": "https://example.invalid/wira-lint",
                        "version": TOOL_VERSION,
                        "rules": sorted(rules, key=lambda r: r["id"]),
                    }
                },
                "properties": {"filesScanned": files_scanned},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"

"""Entry point for ``python -m tools.wira_perf``."""

import sys

from tools.wira_perf.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Command line front end: ``python -m tools.wira_perf <cmd> ...``.

Two commands:

``record``
    Extract the ratchet metrics from ``BENCH_speed.json`` (and, when
    present, the fleet throughput/overhead metrics from
    ``BENCH_fleet.json``) and append a snapshot — ``{label, machine,
    metrics}`` — to the append-only trajectory file
    ``BENCH_TRAJECTORY.json``.  One snapshot per PR is the intended
    cadence.

``check``
    Compare the current ``BENCH_speed.json`` against the most recent
    trajectory snapshot recorded on a *comparable machine* (same
    fingerprint: CPU count, architecture, Python version).  Exits 1
    when any ratchet metric — events/s on the solo loop, aggregate
    events/s on the batched kernel, sessions/s on the replay and the
    fleet campaign — drops more than ``--tolerance`` (default 10%), or
    when the fleet checkpoint-overhead fraction *grows* past the gate
    (lower is better there).  Snapshots from different
    machines are never compared: a laptop-vs-CI delta is hardware, not
    a regression.  A missing baseline passes with a note (use
    ``--strict`` to make it an error, e.g. on a self-hosted runner that
    is supposed to have history).

Exit codes: 0 success, 1 regression found (``check``), 2 usage/IO
errors.  Stdlib-only.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent

DEFAULT_BENCH = _REPO_ROOT / "BENCH_speed.json"
DEFAULT_FLEET_BENCH = _REPO_ROOT / "BENCH_fleet.json"
DEFAULT_TRAJECTORY = _REPO_ROOT / "BENCH_TRAJECTORY.json"

#: The ratchet metrics: (name, bench source, path into that bench file).
#: ``speed`` metrics come from BENCH_speed.json, ``fleet`` ones from
#: BENCH_fleet.json.  All are "higher is better" throughputs except
#: those listed in :data:`LOWER_IS_BETTER`, whose one-sided check runs
#: in the other direction.
RATCHET_METRICS = (
    ("event_loop_events_per_second", "speed", ("event_loop", "events_per_second")),
    ("batched_kernel_events_per_second", "speed", ("batched_kernel", "events_per_second")),
    ("replay_sessions_per_second", "speed", ("deployment_replay", "sessions_per_second")),
    ("fleet_sessions_per_second", "fleet", ("campaign", "serial_sessions_per_sec")),
    ("fleet_checkpoint_overhead_frac", "fleet", ("checkpoint_overhead", "overhead_frac")),
)

#: Metrics where *smaller* is better (overhead fractions).  Their gate
#: allows ``base * (1 + tolerance)`` with a small absolute floor —
#: near-zero overhead baselines would otherwise make any noise a
#: "regression" of hundreds of percent.
LOWER_IS_BETTER = frozenset({"fleet_checkpoint_overhead_frac"})

#: Absolute slack added to lower-is-better gates (fractions ~0 are
#: dominated by timer noise at smoke-test scale).
_ABSOLUTE_FLOOR = 0.02


def machine_fingerprint() -> Dict[str, object]:
    """Identify the benchmarking host well enough to avoid cross-machine
    comparisons; deliberately coarse (no hostnames, no serial numbers)."""
    return {
        "arch": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "system": platform.system(),
    }


def extract_metrics(bench: Dict[str, object], source: str = "speed") -> Dict[str, float]:
    """Pull one bench file's ratchet metrics out of its payload.

    Metrics whose section is absent are skipped (older schema, partial
    bench runs) rather than invented.
    """
    metrics: Dict[str, float] = {}
    for name, metric_source, (section, key) in RATCHET_METRICS:
        if metric_source != source:
            continue
        payload = bench.get(section)
        if isinstance(payload, dict) and key in payload:
            metrics[name] = float(payload[key])  # type: ignore[arg-type]
    return metrics


def gather_metrics(
    bench_path: Path, fleet_bench_path: Optional[Path]
) -> Dict[str, float]:
    """All ratchet metrics from the bench files that exist.

    The speed bench is mandatory; the fleet bench is optional — CI jobs
    that only ran the speed benchmarks still record/check the speed
    metrics rather than failing on the absent file.
    """
    metrics = extract_metrics(load_json(bench_path), source="speed")
    if fleet_bench_path is not None and fleet_bench_path.exists():
        metrics.update(extract_metrics(load_json(fleet_bench_path), source="fleet"))
    return metrics


def load_json(path: Path) -> Dict[str, object]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FileNotFoundError(f"no such file: {path}") from None
    except ValueError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def load_trajectory(path: Path) -> List[Dict[str, object]]:
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of snapshots")
    return data


def latest_comparable(
    snapshots: List[Dict[str, object]], fingerprint: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """Most recent snapshot recorded on a machine like this one."""
    for snapshot in reversed(snapshots):
        if snapshot.get("machine") == fingerprint:
            return snapshot
    return None


def cmd_record(args: argparse.Namespace) -> int:
    metrics = gather_metrics(Path(args.bench), Path(args.fleet_bench))
    if not metrics:
        print(f"error: {args.bench} holds none of the ratchet metrics", file=sys.stderr)
        return EXIT_ERROR
    trajectory_path = Path(args.trajectory)
    snapshots = load_trajectory(trajectory_path)
    snapshots.append(
        {
            "label": args.label,
            "machine": machine_fingerprint(),
            "metrics": metrics,
        }
    )
    trajectory_path.write_text(json.dumps(snapshots, indent=2, sort_keys=True) + "\n")
    print(f"recorded snapshot '{args.label}' ({len(snapshots)} total)")
    return EXIT_OK


def cmd_check(args: argparse.Namespace) -> int:
    current = gather_metrics(Path(args.bench), Path(args.fleet_bench))
    if not current:
        print(f"error: {args.bench} holds none of the ratchet metrics", file=sys.stderr)
        return EXIT_ERROR
    snapshots = load_trajectory(Path(args.trajectory))
    baseline = latest_comparable(snapshots, machine_fingerprint())
    if baseline is None:
        message = "no trajectory snapshot from a comparable machine; nothing to ratchet against"
        if args.strict:
            print(f"error: {message}", file=sys.stderr)
            return EXIT_ERROR
        print(message)
        return EXIT_OK
    base_metrics = baseline.get("metrics", {})
    if not isinstance(base_metrics, dict):
        print(f"error: malformed snapshot {baseline.get('label')!r}", file=sys.stderr)
        return EXIT_ERROR
    failures = []
    for name, value in sorted(current.items()):
        base = base_metrics.get(name)
        if base is None:
            continue
        base_value = float(base)
        if name in LOWER_IS_BETTER:
            allowed = max(base_value * (1.0 + args.tolerance), base_value + _ABSOLUTE_FLOOR)
            ok = value <= allowed
            print(
                f"{name}: {value:.4f} vs baseline {base_value:.4f} "
                f"(allowed <= {allowed:.4f}) [{'ok' if ok else 'REGRESSION'}]"
            )
        else:
            if base_value <= 0:
                continue
            ratio = value / base_value
            ok = ratio >= 1.0 - args.tolerance
            print(
                f"{name}: {value:,.0f} vs baseline {base_value:,.0f} "
                f"({ratio - 1.0:+.1%}) [{'ok' if ok else 'REGRESSION'}]"
            )
        if not ok:
            failures.append(name)
    if failures:
        print(
            f"perf gate failed: {', '.join(failures)} regressed more than "
            f"{args.tolerance:.0%} vs snapshot '{baseline.get('label')}'",
            file=sys.stderr,
        )
        return EXIT_REGRESSION
    print(f"perf gate passed vs snapshot '{baseline.get('label')}'")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wira-perf", description="performance trajectory recorder and ratchet"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="append a snapshot to the trajectory")
    record.add_argument("--bench", default=str(DEFAULT_BENCH), help="BENCH_speed.json path")
    record.add_argument(
        "--fleet-bench", default=str(DEFAULT_FLEET_BENCH),
        help="BENCH_fleet.json path (skipped when absent)",
    )
    record.add_argument(
        "--trajectory", default=str(DEFAULT_TRAJECTORY), help="BENCH_TRAJECTORY.json path"
    )
    record.add_argument("--label", required=True, help="snapshot label (e.g. pr7)")
    record.set_defaults(func=cmd_record)

    check = sub.add_parser("check", help="fail on regression vs the trajectory")
    check.add_argument("--bench", default=str(DEFAULT_BENCH), help="BENCH_speed.json path")
    check.add_argument(
        "--fleet-bench", default=str(DEFAULT_FLEET_BENCH),
        help="BENCH_fleet.json path (skipped when absent)",
    )
    check.add_argument(
        "--trajectory", default=str(DEFAULT_TRAJECTORY), help="BENCH_TRAJECTORY.json path"
    )
    check.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional drop per metric (default 0.10)",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="treat a missing comparable baseline as an error",
    )
    check.set_defaults(func=cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

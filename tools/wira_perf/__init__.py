"""wira-perf: performance trajectory recording and regression ratchet.

Reads the ``BENCH_speed.json`` artifact the speed benchmarks write,
appends per-PR snapshots to the append-only ``BENCH_TRAJECTORY.json``,
and fails CI when a headline throughput metric regresses beyond
tolerance against the last snapshot from a comparable machine.
"""

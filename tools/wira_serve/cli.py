"""Command line front end: ``python -m tools.wira_serve run ...``.

Runs a serve-mode campaign — N real shard worker processes behind the
consistent-hash router, every session pushed over localhost UDP — and
gates the socket-measured results against the simulator reference (the
shards' own timing oracle).  The ``serve-smoke`` CI job is exactly this
command with small knobs.

Exit codes: 0 all gates passed, 1 a gate failed (wire failures,
rejected cookies, or serve/sim disagreement), 2 usage errors.

The tool is stdlib-only: it imports the in-repo ``repro`` packages
(adding ``<repo>/src`` to ``sys.path`` when not already importable) and
nothing else.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_ERROR = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _ensure_repro_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_REPO_ROOT / "src"))


def cmd_run(args: argparse.Namespace) -> int:
    _ensure_repro_importable()
    from repro.serve.loadtest import (
        ServeLoadtestConfig,
        render_serve_html,
        run_loadtest,
    )
    from repro.workload.population import DeploymentConfig

    config = ServeLoadtestConfig(
        population=DeploymentConfig(
            n_od_pairs=args.od_pairs,
            video_frames_per_session=args.video_frames,
            seed=args.seed,
        ),
        schemes=tuple(args.schemes),
        shards=args.shards,
        concurrency=args.concurrency,
        subprocess_shards=not args.in_process,
        reshard_after_chains=args.reshard_after,
        ffct_rel_tol=args.ffct_rel_tol,
        ffct_abs_tol=args.ffct_abs_tol,
    )
    results = run_loadtest(config)
    if args.out is not None:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(results, indent=2, sort_keys=True))
    if args.html is not None:
        html_path = Path(args.html)
        html_path.parent.mkdir(parents=True, exist_ok=True)
        html_path.write_text(render_serve_html(results, config))

    gates = results["gates"]
    comparison = results["comparison"]
    assert isinstance(gates, dict) and isinstance(comparison, dict)
    print(
        f"serve campaign: {results['telemetry']['sessions_measured']} sessions "  # type: ignore[index]
        f"over {config.shards} shard(s), "
        f"{gates['wire_failures']} wire failure(s), "
        f"{gates['rejected_cookies']} rejected cookie(s)"
    )
    for value in sorted(comparison["schemes"]):
        entry = comparison["schemes"][value]
        mean = entry["ffct"]["ffct_mean"]
        fmt = (
            lambda v: "n/a" if v is None else f"{float(v) * 1e3:.1f}ms"
        )
        print(
            f"  {value}: sessions {entry['serve']['sessions']} "
            f"(sim {entry['sim']['sessions']}), "
            f"ffct mean {fmt(mean['serve'])} vs sim {fmt(mean['sim'])} "
            f"[{'ok' if entry['ok'] else 'FAIL'}]"
        )
    verdict = "PASS" if gates["ok"] else "FAIL"
    print(f"verdict: {verdict}")
    return EXIT_OK if gates["ok"] else EXIT_FAILED


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wira-serve", description="Serve-mode socket load test"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="run a serve campaign + sim comparison")
    run.add_argument("--od-pairs", type=int, default=36, help="OD chains")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--schemes", nargs="+", default=["baseline", "wira"], help="scheme values"
    )
    run.add_argument("--shards", type=int, default=2, help="shard worker count")
    run.add_argument(
        "--video-frames", type=int, default=6, help="frames per session"
    )
    run.add_argument(
        "--concurrency", type=int, default=64, help="chains in flight at once"
    )
    run.add_argument(
        "--in-process",
        action="store_true",
        help="run shards in-process instead of worker processes",
    )
    run.add_argument(
        "--reshard-after",
        type=int,
        default=None,
        metavar="CHAINS",
        help="add one shard after this many chains complete",
    )
    run.add_argument("--ffct-rel-tol", type=float, default=0.20)
    run.add_argument("--ffct-abs-tol", type=float, default=0.075)
    run.add_argument("--out", default=None, help="write results JSON here")
    run.add_argument("--html", default=None, help="write the HTML report here")
    run.set_defaults(func=cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_OK
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())

"""Entry point for ``python -m tools.wira_serve``."""

import sys

from tools.wira_serve.cli import main

if __name__ == "__main__":
    sys.exit(main())

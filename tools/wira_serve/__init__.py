"""wira-serve: serve-mode load-test CLI (real sockets, sharded edge)."""

"""Entry point for ``python -m tools.wira_fleet``."""

import sys

from tools.wira_fleet.cli import main

if __name__ == "__main__":
    sys.exit(main())

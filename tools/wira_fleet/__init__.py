"""wira-fleet: campaign runner CLI (run / resume / status / report)."""

"""Command line front end: ``python -m tools.wira_fleet <cmd> ...``.

Commands
--------
``run``
    Start a fresh campaign (overwriting any checkpoint at the path).
``resume``
    Continue an interrupted campaign from its checkpoint.
``status``
    Inspect a checkpoint: chunks done, sessions folded so far.
``report``
    Build the deterministic JSON report from a checkpoint — complete
    campaigns only, unless ``--partial`` asks for a best-effort summary
    of the completed chunks.

Exit codes: 0 success, 1 campaign/validation errors (mismatched or
missing checkpoint, incomplete campaign without ``--partial``),
2 usage/IO errors (argparse errors, unreadable paths).

The tool is stdlib-only: it imports the in-repo ``repro`` packages
(adding ``<repo>/src`` to ``sys.path`` when not already importable) and
nothing else.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_ERROR = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _ensure_repro_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_REPO_ROOT / "src"))


_ensure_repro_importable()

from repro.fleet.aggregate import merge_chunks  # noqa: E402
from repro.fleet.checkpoint import load_checkpoint  # noqa: E402
from repro.fleet.engine import (  # noqa: E402
    DEFAULT_SCHEMES,
    CampaignMismatchError,
    FleetConfig,
    run_campaign,
)
from repro.fleet.report import build_report, canonical_json, report_hash  # noqa: E402
from repro.workload.population import DeploymentConfig  # noqa: E402


# ---------------------------------------------------------------------------
# Helpers


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def emit(done: int, total: int, sessions: int) -> None:
        print(f"\r  chunks {done}/{total}  sessions {sessions}", end="", flush=True)
        if done == total:
            print()

    return emit


def _config_from_args(args: argparse.Namespace) -> FleetConfig:
    population = DeploymentConfig(n_od_pairs=args.od_pairs, seed=args.seed)
    return FleetConfig(
        population=population,
        schemes=tuple(args.schemes),
        chunk_chains=args.chunk_chains,
        checkpoint_every=args.checkpoint_every,
        sketch_alpha=args.alpha,
    )


def _emit_report(report: dict, out: Optional[str]) -> None:
    text = json.dumps(report, indent=2, sort_keys=True)
    if out:
        Path(out).write_text(text + "\n", encoding="utf-8")
        print(f"report written to {out}")
    else:
        print(text)
    print(f"report hash: {report_hash(report)}")


def _finish(config: FleetConfig, aggregate, args: argparse.Namespace) -> int:
    report = build_report(aggregate, config.key())
    _emit_report(report, args.out)
    return EXIT_OK


# ---------------------------------------------------------------------------
# Commands


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    checkpoint = Path(args.checkpoint) if args.checkpoint else None
    aggregate = run_campaign(
        config,
        checkpoint_path=checkpoint,
        jobs=args.jobs,
        resume=False,
        progress=_progress_printer(args.quiet),
    )
    return _finish(config, aggregate, args)


def cmd_resume(args: argparse.Namespace) -> int:
    checkpoint = Path(args.checkpoint)
    state = load_checkpoint(checkpoint)
    if state is None:
        print(f"error: no usable checkpoint at {checkpoint}", file=sys.stderr)
        return EXIT_FAILED
    config = FleetConfig.from_json(state.config)
    try:
        aggregate = run_campaign(
            config,
            checkpoint_path=checkpoint,
            jobs=args.jobs,
            resume=True,
            progress=_progress_printer(args.quiet),
        )
    except CampaignMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    return _finish(config, aggregate, args)


def cmd_status(args: argparse.Namespace) -> int:
    checkpoint = Path(args.checkpoint)
    state = load_checkpoint(checkpoint)
    if state is None:
        print(f"error: no usable checkpoint at {checkpoint}", file=sys.stderr)
        return EXIT_FAILED
    config = FleetConfig.from_json(state.config)
    sessions = sum(
        int(scheme_payload["sessions"])
        for payload in state.chunks.values()
        for scheme_payload in payload["schemes"].values()
    )
    done = len(state.chunks)
    print(f"campaign:  {state.key}")
    print(f"chains:    {config.population.n_od_pairs} OD pairs, seed {config.population.seed}")
    print(f"schemes:   {', '.join(config.schemes)}")
    print(f"chunks:    {done}/{state.n_chunks} completed")
    print(f"sessions:  {sessions} folded")
    print(f"state:     {'complete' if state.complete else 'resumable'}")
    return EXIT_OK


def cmd_report(args: argparse.Namespace) -> int:
    checkpoint = Path(args.checkpoint)
    state = load_checkpoint(checkpoint)
    if state is None:
        print(f"error: no usable checkpoint at {checkpoint}", file=sys.stderr)
        return EXIT_FAILED
    config = FleetConfig.from_json(state.config)
    if not state.complete and not args.partial:
        print(
            f"error: campaign incomplete ({len(state.chunks)}/{state.n_chunks} "
            f"chunks); rerun with --partial for a best-effort summary "
            f"or resume the campaign",
            file=sys.stderr,
        )
        return EXIT_FAILED
    ordered = [state.chunks[i] for i in sorted(state.chunks)]
    aggregate = merge_chunks(config.schemes, config.sketch_alpha, ordered)
    report = build_report(aggregate, state.key)
    if not state.complete:
        report["partial"] = {
            "chunks_completed": len(state.chunks),
            "chunks_total": state.n_chunks,
        }
    _emit_report(report, args.out)
    return EXIT_OK


# ---------------------------------------------------------------------------
# Argument parsing


def _add_report_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSON report here instead of stdout",
    )


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: WIRA_JOBS, else 1)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    _add_report_out(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wira-fleet",
        description="Fleet-scale campaign runner for the Wira reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start a fresh campaign")
    run.add_argument("--od-pairs", type=int, default=1000, metavar="N",
                     help="OD chains in the population (default 1000)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--schemes", nargs="+", default=list(DEFAULT_SCHEMES),
                     metavar="SCHEME", help=f"schemes to replay (default: all of {', '.join(DEFAULT_SCHEMES)})")
    run.add_argument("--chunk-chains", type=int, default=25, metavar="N",
                     help="chains per work unit (default 25)")
    run.add_argument("--checkpoint-every", type=int, default=4, metavar="N",
                     help="chunks between checkpoint writes (default 4)")
    run.add_argument("--alpha", type=float, default=0.01,
                     help="sketch relative-error bound (default 0.01)")
    run.add_argument("--checkpoint", metavar="PATH", default=None,
                     help="checkpoint file (enables resume after interruption)")
    _add_exec_args(run)
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser("resume", help="continue from a checkpoint")
    resume.add_argument("--checkpoint", metavar="PATH", required=True)
    _add_exec_args(resume)
    resume.set_defaults(func=cmd_resume)

    status = sub.add_parser("status", help="inspect a checkpoint")
    status.add_argument("--checkpoint", metavar="PATH", required=True)
    status.set_defaults(func=cmd_status)

    report = sub.add_parser("report", help="build the report from a checkpoint")
    report.add_argument("--checkpoint", metavar="PATH", required=True)
    report.add_argument("--partial", action="store_true",
                        help="allow a best-effort report of an incomplete campaign")
    _add_report_out(report)
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())

"""Command line front end: ``python -m tools.wira_fleet <cmd> ...``.

Commands
--------
``run``
    Start a fresh campaign (overwriting any checkpoint at the path).
    ``--telemetry`` turns on the live snapshot tap.
``resume``
    Continue an interrupted campaign from its checkpoint.
``status``
    Inspect a checkpoint: chunks done, sessions folded so far.  With
    ``--live``, poll the telemetry directory and render an in-terminal
    dashboard (per-scheme FFCT p50/p90/p99 strips, completion, faults,
    sessions/sec, ETA) that tracks the campaign as it runs.
``verify``
    Cross-check the telemetry snapshots against the checkpoint: schema
    versions, campaign key, chunk coverage, and that the live-merged
    aggregates are byte-identical to the checkpoint-merged ones.
``report``
    Build the deterministic JSON report from a checkpoint — complete
    campaigns only, unless ``--partial`` asks for a best-effort summary
    of the completed chunks.  ``--html`` additionally writes a
    self-contained HTML artifact (CDF chart, phase tables).

Reads are safe against a concurrently running campaign: checkpoint and
snapshot files are written atomically, and the inspection commands retry
transient read failures instead of dying on a writer race.

Exit codes: 0 success, 1 campaign/validation errors (mismatched or
missing checkpoint, incomplete campaign without ``--partial``, failed
verification, telemetry schema skew), 2 usage/IO errors (argparse
errors, unreadable paths).

The tool is stdlib-only: it imports the in-repo ``repro`` packages
(adding ``<repo>/src`` to ``sys.path`` when not already importable) and
nothing else.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_ERROR = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _ensure_repro_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_REPO_ROOT / "src"))


_ensure_repro_importable()

from repro.fleet.aggregate import CampaignAggregate, merge_chunks  # noqa: E402
from repro.fleet.checkpoint import CheckpointState, load_checkpoint  # noqa: E402
from repro.fleet.engine import (  # noqa: E402
    DEFAULT_SCHEMES,
    CampaignMismatchError,
    FleetConfig,
    ProgressFn,
    run_campaign,
)
from repro.fleet.htmlreport import render_html_report  # noqa: E402
from repro.fleet.report import build_report, canonical_json, report_hash  # noqa: E402
from repro.fleet.telemetry import (  # noqa: E402
    LiveStatus,
    TelemetrySchemaError,
    TelemetrySnapshot,
    default_telemetry_dir,
    live_status,
    merge_snapshots,
    scan_snapshots,
)
from repro.obs.timeline import render_quantile_strips  # noqa: E402
from repro.workload.population import DeploymentConfig  # noqa: E402


# ---------------------------------------------------------------------------
# Helpers


def _progress_printer(quiet: bool) -> Optional[ProgressFn]:
    if quiet:
        return None

    def emit(done: int, total: int, sessions: int) -> None:
        print(f"\r  chunks {done}/{total}  sessions {sessions}", end="", flush=True)
        if done == total:
            print()

    return emit


def _config_from_args(args: argparse.Namespace) -> FleetConfig:
    population = DeploymentConfig(n_od_pairs=args.od_pairs, seed=args.seed)
    return FleetConfig(
        population=population,
        schemes=tuple(args.schemes),
        chunk_chains=args.chunk_chains,
        checkpoint_every=args.checkpoint_every,
        sketch_alpha=args.alpha,
    )


def _telemetry_dir_from_args(
    args: argparse.Namespace, checkpoint: Optional[Path]
) -> Optional[Path]:
    """Resolve ``--telemetry [DIR]`` to a concrete directory, if enabled."""
    raw: Optional[str] = getattr(args, "telemetry", None)
    if raw is None:
        return None
    if raw != "":
        return Path(raw)
    if checkpoint is None:
        raise ValueError(
            "--telemetry without a directory derives it from the checkpoint "
            "path; pass --checkpoint or an explicit --telemetry DIR"
        )
    return default_telemetry_dir(checkpoint)


def _load_checkpoint_retry(
    path: Path, attempts: int = 8, delay_s: float = 0.05
) -> Optional[CheckpointState]:
    """Load a checkpoint that may be racing its writer.

    Checkpoint writes are atomic, but a reader can still catch transient
    states (the file momentarily absent on non-atomic filesystems, a
    partial copy, an editor's leftovers).  Inspection commands therefore
    retry a failed parse a few times before concluding "no usable
    checkpoint" — they must never crash or lie because a campaign is
    running right now.
    """
    state: Optional[CheckpointState] = None
    for attempt in range(max(1, attempts)):
        state = load_checkpoint(path)
        if state is not None:
            return state
        if attempt + 1 < max(1, attempts):
            time.sleep(delay_s)
    return None


def _campaign_snapshots(
    snapshots: Dict[int, TelemetrySnapshot], preferred_key: Optional[str]
) -> Dict[int, TelemetrySnapshot]:
    """Restrict a snapshot scan to one campaign's snapshots.

    A telemetry directory can transiently hold snapshots from more than
    one campaign (polling across a restart, before the engine's
    ``_sync_telemetry`` clears the stale ones).  Merging such a mix
    raises ``ValueError``, which must never kill an inspection command —
    so filter to the checkpoint's campaign when it matches anything,
    else to the (deterministically tie-broken) majority key.
    """
    if not snapshots:
        return snapshots
    keys = [s.campaign_key for s in snapshots.values()]
    if preferred_key is not None and preferred_key in keys:
        key = preferred_key
    else:
        counts: Dict[str, int] = {}
        for k in keys:
            counts[k] = counts.get(k, 0) + 1
        key = max(sorted(counts), key=lambda k: counts[k])
    return {i: s for i, s in snapshots.items() if s.campaign_key == key}


def _checkpoint_sessions(state: CheckpointState) -> int:
    return sum(
        int(scheme_payload["sessions"])  # type: ignore[call-overload,index]
        for payload in state.chunks.values()
        for scheme_payload in payload["schemes"].values()  # type: ignore[union-attr,index]
    )


def _emit_report(report: Dict[str, object], out: Optional[str]) -> None:
    text = json.dumps(report, indent=2, sort_keys=True)
    if out:
        Path(out).write_text(text + "\n", encoding="utf-8")
        print(f"report written to {out}")
    else:
        print(text)
    print(f"report hash: {report_hash(report)}")


def _finish(
    config: FleetConfig, aggregate: CampaignAggregate, args: argparse.Namespace
) -> int:
    report = build_report(aggregate, config.key())
    _emit_report(report, args.out)
    return EXIT_OK


# ---------------------------------------------------------------------------
# Commands


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    checkpoint = Path(args.checkpoint) if args.checkpoint else None
    aggregate = run_campaign(
        config,
        checkpoint_path=checkpoint,
        jobs=args.jobs,
        resume=False,
        progress=_progress_printer(args.quiet),
        telemetry_dir=_telemetry_dir_from_args(args, checkpoint),
    )
    return _finish(config, aggregate, args)


def cmd_resume(args: argparse.Namespace) -> int:
    checkpoint = Path(args.checkpoint)
    state = _load_checkpoint_retry(checkpoint)
    if state is None:
        print(f"error: no usable checkpoint at {checkpoint}", file=sys.stderr)
        return EXIT_FAILED
    config = FleetConfig.from_json(state.config)
    try:
        aggregate = run_campaign(
            config,
            checkpoint_path=checkpoint,
            jobs=args.jobs,
            resume=True,
            progress=_progress_printer(args.quiet),
            telemetry_dir=_telemetry_dir_from_args(args, checkpoint),
        )
    except CampaignMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    return _finish(config, aggregate, args)


def _print_status_summary(state: CheckpointState) -> None:
    config = FleetConfig.from_json(state.config)
    done = len(state.chunks)
    print(f"campaign:  {state.key}")
    print(
        f"chains:    {config.population.n_od_pairs} OD pairs, "
        f"seed {config.population.seed}"
    )
    print(f"schemes:   {', '.join(config.schemes)}")
    print(f"chunks:    {done}/{state.n_chunks} completed")
    print(f"sessions:  {_checkpoint_sessions(state)} folded")
    print(f"state:     {'complete' if state.complete else 'resumable'}")


def _render_live(status: LiveStatus, rolling_rate: Optional[float]) -> str:
    """One dashboard frame: header, quantile strips, per-scheme counters."""
    lines: List[str] = []
    pct = status.completion_fraction * 100
    lines.append(
        f"campaign {status.campaign_key[:12]}…  "
        f"chunks {status.chunks_done}/{status.n_chunks} ({pct:.0f}%)  "
        f"sessions {status.sessions}  faults {status.faults}"
    )
    rate = rolling_rate if rolling_rate is not None else status.sessions_per_second
    rate_text = f"{rate:.1f}/s" if rate is not None else "–"
    eta = status.eta_seconds
    eta_text = f"{eta:.0f}s" if eta is not None else "–"
    lines.append(f"rate     {rate_text}  eta {eta_text}")
    lines.append("")
    lines.append(render_quantile_strips(status.quantiles_seconds()))
    lines.append("")
    header = f"{'scheme':<12} {'sessions':>9} {'completed':>10} {'faults':>7}"
    lines.append(header)
    for value in sorted(status.per_scheme):
        entry = status.per_scheme[value]
        lines.append(
            f"{value:<12} {entry['sessions']:>9} "
            f"{entry['completed']:>10} {entry['faults']:>7}"
        )
    return "\n".join(lines)


def cmd_status(args: argparse.Namespace) -> int:
    checkpoint = Path(args.checkpoint)
    if not args.live:
        state = _load_checkpoint_retry(checkpoint)
        if state is None:
            print(f"error: no usable checkpoint at {checkpoint}", file=sys.stderr)
            return EXIT_FAILED
        _print_status_summary(state)
        return EXIT_OK

    telemetry_dir = (
        Path(args.telemetry)
        if args.telemetry
        else default_telemetry_dir(checkpoint)
    )
    polls_left: Optional[int] = args.polls
    previous: Optional[LiveStatus] = None
    previous_at: Optional[float] = None
    interactive = sys.stdout.isatty()
    while True:
        try:
            snapshots = scan_snapshots(telemetry_dir)
        except TelemetrySchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_FAILED
        # Keep only one campaign's snapshots (prefer the checkpoint's):
        # a restart can leave a stale foreign snapshot behind for one
        # poll, and a mixed merge must degrade to a skipped poll, never
        # kill the dashboard.
        state = load_checkpoint(checkpoint)
        snapshots = _campaign_snapshots(
            snapshots, state.key if state is not None else None
        )
        status: Optional[LiveStatus] = None
        if snapshots:
            try:
                status = live_status(snapshots)
            except ValueError:
                status = None
        now = time.monotonic()
        if status is not None:
            rolling: Optional[float] = None
            if previous is not None and previous_at is not None and now > previous_at:
                delta = status.sessions - previous.sessions
                if delta >= 0:
                    rolling = delta / (now - previous_at)
            if interactive:
                print("\x1b[2J\x1b[H", end="")
            print(_render_live(status, rolling))
            if status.complete:
                return EXIT_OK
            previous, previous_at = status, now
        else:
            # A failed or empty poll keeps the loop alive — the campaign
            # may simply not have completed a chunk yet, or the writer
            # won a race we will lose again next poll.
            print(f"(no telemetry snapshots yet in {telemetry_dir})")
        if polls_left is not None:
            polls_left -= 1
            if polls_left <= 0:
                return EXIT_OK
        time.sleep(args.interval)


def cmd_verify(args: argparse.Namespace) -> int:
    checkpoint = Path(args.checkpoint)
    state = _load_checkpoint_retry(checkpoint)
    if state is None:
        print(f"error: no usable checkpoint at {checkpoint}", file=sys.stderr)
        return EXIT_FAILED
    telemetry_dir = (
        Path(args.telemetry)
        if args.telemetry
        else default_telemetry_dir(checkpoint)
    )
    try:
        snapshots = scan_snapshots(telemetry_dir)
    except TelemetrySchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    failures: List[str] = []
    if not snapshots:
        failures.append(f"no telemetry snapshots in {telemetry_dir}")
    foreign = sorted(
        i for i, s in snapshots.items() if s.campaign_key != state.key
    )
    if foreign:
        failures.append(
            f"snapshots for chunks {foreign} belong to a different campaign"
        )
    expected = set(state.chunks)
    have = {i for i, s in snapshots.items() if s.campaign_key == state.key}
    missing = sorted(expected - have)
    extra = sorted(have - expected)
    if missing:
        failures.append(f"checkpointed chunks missing snapshots: {missing}")
    if extra:
        failures.append(f"snapshots for chunks not in the checkpoint: {extra}")
    if not failures:
        config = FleetConfig.from_json(state.config)
        ordered = [state.chunks[i] for i in sorted(state.chunks)]
        final = merge_chunks(config.schemes, config.sketch_alpha, ordered)
        live = merge_snapshots(snapshots.values())
        final_json = canonical_json(final.to_json())
        live_json = canonical_json(live.to_json())
        if final_json != live_json:
            failures.append(
                "live-merged snapshot aggregates differ from "
                "checkpoint-merged aggregates"
            )
        else:
            print(
                f"ok: {len(snapshots)} snapshots cover "
                f"{len(expected)}/{state.n_chunks} checkpointed chunks; "
                f"live merge is byte-identical to the checkpoint merge"
            )
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return EXIT_FAILED
    return EXIT_OK


def cmd_report(args: argparse.Namespace) -> int:
    checkpoint = Path(args.checkpoint)
    state = _load_checkpoint_retry(checkpoint)
    if state is None:
        print(f"error: no usable checkpoint at {checkpoint}", file=sys.stderr)
        return EXIT_FAILED
    config = FleetConfig.from_json(state.config)
    if not state.complete and not args.partial:
        print(
            f"error: campaign incomplete ({len(state.chunks)}/{state.n_chunks} "
            f"chunks); rerun with --partial for a best-effort summary "
            f"or resume the campaign",
            file=sys.stderr,
        )
        return EXIT_FAILED
    ordered = [state.chunks[i] for i in sorted(state.chunks)]
    aggregate = merge_chunks(config.schemes, config.sketch_alpha, ordered)
    report = build_report(aggregate, state.key)
    if not state.complete:
        report["partial"] = {
            "chunks_completed": len(state.chunks),
            "chunks_total": state.n_chunks,
        }
    if args.html:
        telemetry_payload: Optional[Dict[str, object]] = None
        telemetry_dir = (
            Path(args.telemetry)
            if args.telemetry
            else default_telemetry_dir(checkpoint)
        )
        try:
            snapshots = scan_snapshots(telemetry_dir)
        except TelemetrySchemaError as exc:
            # status --live and verify treat this skew as a hard error;
            # the HTML report can still be built without its throughput
            # section, but silence would mask a version mismatch.
            print(
                f"warning: ignoring telemetry snapshots in {telemetry_dir} "
                f"({exc}); html report will omit the throughput section",
                file=sys.stderr,
            )
            snapshots = {}
        # Only this campaign's snapshots may feed the throughput section.
        snapshots = {
            i: s for i, s in snapshots.items() if s.campaign_key == state.key
        }
        if snapshots:
            status = live_status(snapshots)
            telemetry_payload = {
                "chunks_done": status.chunks_done,
                "sessions": status.sessions,
                "elapsed_seconds": status.elapsed_seconds,
                "sessions_per_second": status.sessions_per_second,
            }
        document = render_html_report(
            report, aggregate, config=state.config, telemetry=telemetry_payload
        )
        Path(args.html).write_text(document, encoding="utf-8")
        print(f"html report written to {args.html}")
    _emit_report(report, args.out)
    return EXIT_OK


# ---------------------------------------------------------------------------
# Argument parsing


def _add_report_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSON report here instead of stdout",
    )


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", metavar="DIR", nargs="?", const="", default=None,
        help="write live telemetry snapshots (default dir: "
             "<checkpoint>.telemetry when DIR is omitted)",
    )


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: WIRA_JOBS, else 1)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    _add_telemetry_arg(parser)
    _add_report_out(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wira-fleet",
        description="Fleet-scale campaign runner for the Wira reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start a fresh campaign")
    run.add_argument("--od-pairs", type=int, default=1000, metavar="N",
                     help="OD chains in the population (default 1000)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--schemes", nargs="+", default=list(DEFAULT_SCHEMES),
                     metavar="SCHEME", help=f"schemes to replay (default: all of {', '.join(DEFAULT_SCHEMES)})")
    run.add_argument("--chunk-chains", type=int, default=25, metavar="N",
                     help="chains per work unit (default 25)")
    run.add_argument("--checkpoint-every", type=int, default=4, metavar="N",
                     help="chunks between checkpoint writes (default 4)")
    run.add_argument("--alpha", type=float, default=0.01,
                     help="sketch relative-error bound (default 0.01)")
    run.add_argument("--checkpoint", metavar="PATH", default=None,
                     help="checkpoint file (enables resume after interruption)")
    _add_exec_args(run)
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser("resume", help="continue from a checkpoint")
    resume.add_argument("--checkpoint", metavar="PATH", required=True)
    _add_exec_args(resume)
    resume.set_defaults(func=cmd_resume)

    status = sub.add_parser("status", help="inspect a checkpoint")
    status.add_argument("--checkpoint", metavar="PATH", required=True)
    status.add_argument("--live", action="store_true",
                        help="poll the telemetry directory and render a "
                             "live dashboard until the campaign completes")
    status.add_argument("--telemetry", metavar="DIR", default=None,
                        help="telemetry directory "
                             "(default: <checkpoint>.telemetry)")
    status.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                        help="seconds between live polls (default 2)")
    status.add_argument("--polls", type=int, default=None, metavar="N",
                        help="stop after N live polls (default: until complete)")
    status.set_defaults(func=cmd_status)

    verify = sub.add_parser(
        "verify", help="cross-check telemetry snapshots against a checkpoint"
    )
    verify.add_argument("--checkpoint", metavar="PATH", required=True)
    verify.add_argument("--telemetry", metavar="DIR", default=None,
                        help="telemetry directory "
                             "(default: <checkpoint>.telemetry)")
    verify.set_defaults(func=cmd_verify)

    report = sub.add_parser("report", help="build the report from a checkpoint")
    report.add_argument("--checkpoint", metavar="PATH", required=True)
    report.add_argument("--partial", action="store_true",
                        help="allow a best-effort report of an incomplete campaign")
    report.add_argument("--html", metavar="PATH", default=None,
                        help="also write a self-contained HTML report here")
    report.add_argument("--telemetry", metavar="DIR", default=None,
                        help="telemetry directory for the HTML throughput "
                             "section (default: <checkpoint>.telemetry)")
    _add_report_out(report)
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)  # type: ignore[no-any-return]
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())

"""wira-trace: inspect the JSONL traces ``repro.obs`` writes.

Stdlib-only CLI (like ``tools/wira_lint``) with three subcommands:

* ``validate`` — schema-check trace files against the versioned record
  schema (exit 1 on any defect);
* ``summarize`` — per-session event counts and the FFCT phase breakdown;
* ``diff`` — compare two trace sets (e.g. Wira vs static-init) and
  attribute the first-frame saving to phases.

Usage::

    python -m tools.wira_trace validate traces/
    python -m tools.wira_trace summarize --json traces/
    python -m tools.wira_trace diff traces-baseline/ traces-wira/
"""

from tools.wira_trace.cli import main

__all__ = ["main"]

"""Entry point for ``python -m tools.wira_trace``."""

import sys

from tools.wira_trace.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Command line front end: ``python -m tools.wira_trace <cmd> ...``.

Exit codes: 0 success, 1 validation defects found (``validate``),
2 usage/IO errors (no trace files, unreadable input, bad arguments).

The tool is stdlib-only: it imports the in-repo ``repro.obs`` schema and
profiler (adding ``<repo>/src`` to ``sys.path`` when ``repro`` is not
already importable) and nothing else.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

EXIT_OK = 0
EXIT_INVALID = 1
EXIT_ERROR = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _ensure_repro_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_REPO_ROOT / "src"))


_ensure_repro_importable()

from repro.obs.events import decode_record, validate_trace_lines  # noqa: E402
from repro.obs.profiler import PHASES, PhaseBreakdown, profile_records  # noqa: E402


# ---------------------------------------------------------------------------
# Trace-set loading


def collect_trace_files(paths: List[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.jsonl`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(set(files))


def session_label(path: Path) -> str:
    """Session label from a ``<label>--<conn>.jsonl`` trace file name."""
    stem = path.stem
    return stem.rsplit("--", 1)[0] if "--" in stem else stem


def load_records(path: Path) -> List[Dict[str, object]]:
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.strip():
            records.append(decode_record(line))
    return records


def group_sessions(files: List[Path]) -> Dict[str, List[Path]]:
    """Group per-connection trace files into sessions, sorted by label."""
    sessions: Dict[str, List[Path]] = {}
    for path in files:
        sessions.setdefault(session_label(path), []).append(path)
    return {label: sessions[label] for label in sorted(sessions)}


def summarize_session(label: str, paths: List[Path]) -> Dict[str, object]:
    """One session's event counts, FFCT and phase breakdown."""
    records: List[Dict[str, object]] = []
    for path in paths:
        records.extend(load_records(path))
    counts: Dict[str, int] = {}
    ffct: Optional[float] = None
    for record in records:
        name = record.get("name")
        if not isinstance(name, str) or name == "trace:meta":
            continue
        counts[name] = counts.get(name, 0) + 1
        if name == "session:first_frame" and ffct is None:
            data = record.get("data")
            if isinstance(data, dict) and isinstance(data.get("ffct"), (int, float)):
                ffct = float(data["ffct"])  # type: ignore[arg-type]
    breakdown = profile_records(records)
    return {
        "session": label,
        "files": [p.name for p in paths],
        "events": sum(counts.values()),
        "counts": {k: counts[k] for k in sorted(counts)},
        "ffct": ffct,
        "phases": breakdown.as_dict() if breakdown is not None else None,
    }


def mean_phases(
    summaries: List[Dict[str, object]],
) -> Tuple[Optional[Dict[str, float]], int]:
    """Phase-wise mean over sessions with a breakdown, and their count."""
    dicts = [s["phases"] for s in summaries if s["phases"] is not None]
    if not dicts:
        return None, 0
    means = {
        name: sum(d[name] for d in dicts) / len(dicts)  # type: ignore[index]
        for name in PHASES
    }
    return means, len(dicts)


def _ms(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1000:.1f}ms"


# ---------------------------------------------------------------------------
# Subcommands


def cmd_validate(args: argparse.Namespace) -> int:
    files = collect_trace_files(args.paths)
    if not files:
        print("wira-trace: no trace files found", file=sys.stderr)
        return EXIT_ERROR
    defects: Dict[str, List[str]] = {}
    for path in files:
        errors = validate_trace_lines(
            path.read_text(encoding="utf-8").splitlines(),
            known_names=not args.allow_unknown_names,
        )
        if errors:
            defects[str(path)] = errors
    if args.json:
        print(
            json.dumps(
                {
                    "files_checked": len(files),
                    "files_invalid": len(defects),
                    "defects": defects,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for path_name in sorted(defects):
            for error in defects[path_name]:
                print(f"{path_name}: {error}")
        status = "invalid" if defects else "valid"
        print(f"{len(files)} file(s) checked, {len(defects)} invalid — {status}")
    return EXIT_INVALID if defects else EXIT_OK


def cmd_summarize(args: argparse.Namespace) -> int:
    files = collect_trace_files(args.paths)
    if not files:
        print("wira-trace: no trace files found", file=sys.stderr)
        return EXIT_ERROR
    summaries = [
        summarize_session(label, paths)
        for label, paths in group_sessions(files).items()
    ]
    means, n_profiled = mean_phases(summaries)
    if args.json:
        print(
            json.dumps(
                {
                    "sessions": summaries,
                    "mean_phases": means,
                    "sessions_profiled": n_profiled,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return EXIT_OK
    for summary in summaries:
        phases = summary["phases"]
        print(f"{summary['session']}: {summary['events']} events, ffct {_ms(summary['ffct'])}")
        if phases is not None:
            detail = "  ".join(f"{name}={_ms(phases[name])}" for name in PHASES)
            print(f"  {detail}")
    if means is not None:
        detail = "  ".join(f"{name}={_ms(means[name])}" for name in PHASES)
        print(f"mean over {n_profiled} session(s): {detail}")
    return EXIT_OK


def cmd_diff(args: argparse.Namespace) -> int:
    try:
        files_a = collect_trace_files([args.a])
        files_b = collect_trace_files([args.b])
    except FileNotFoundError as exc:
        print(f"wira-trace: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if not files_a or not files_b:
        print("wira-trace: both sides need at least one trace file", file=sys.stderr)
        return EXIT_ERROR
    sums_a = [summarize_session(l, p) for l, p in group_sessions(files_a).items()]
    sums_b = [summarize_session(l, p) for l, p in group_sessions(files_b).items()]
    means_a, n_a = mean_phases(sums_a)
    means_b, n_b = mean_phases(sums_b)
    if means_a is None or means_b is None:
        print("wira-trace: no profilable sessions on one side", file=sys.stderr)
        return EXIT_ERROR
    deltas = {name: means_b[name] - means_a[name] for name in PHASES}
    total_a = sum(means_a.values())
    total_b = sum(means_b.values())
    if args.json:
        print(
            json.dumps(
                {
                    "a": {"path": args.a, "sessions": n_a, "phases": means_a, "total": total_a},
                    "b": {"path": args.b, "sessions": n_b, "phases": means_b, "total": total_b},
                    "delta": {**deltas, "total": total_b - total_a},
                },
                indent=2,
                sort_keys=True,
            )
        )
        return EXIT_OK
    print(f"a: {args.a} ({n_a} session(s), mean ffct {_ms(total_a)})")
    print(f"b: {args.b} ({n_b} session(s), mean ffct {_ms(total_b)})")
    print(f"{'phase':<10} {'a':>10} {'b':>10} {'delta (b-a)':>12}")
    for name in PHASES:
        print(
            f"{name:<10} {_ms(means_a[name]):>10} {_ms(means_b[name]):>10} "
            f"{deltas[name] * 1000:>+10.1f}ms"
        )
    print(
        f"{'total':<10} {_ms(total_a):>10} {_ms(total_b):>10} "
        f"{(total_b - total_a) * 1000:>+10.1f}ms"
    )
    return EXIT_OK


# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.wira_trace",
        description="Inspect repro.obs JSONL traces: validate, summarize, diff.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="schema-check trace files")
    p_validate.add_argument("paths", nargs="+", help="trace files or directories")
    p_validate.add_argument("--json", action="store_true", help="JSON report")
    p_validate.add_argument(
        "--allow-unknown-names",
        action="store_true",
        help="accept event names outside the registry (forward compat)",
    )
    p_validate.set_defaults(func=cmd_validate)

    p_summarize = sub.add_parser("summarize", help="per-session counts and phases")
    p_summarize.add_argument("paths", nargs="+", help="trace files or directories")
    p_summarize.add_argument("--json", action="store_true", help="JSON report")
    p_summarize.set_defaults(func=cmd_summarize)

    p_diff = sub.add_parser("diff", help="compare two trace sets' phase means")
    p_diff.add_argument("a", help="baseline trace file or directory")
    p_diff.add_argument("b", help="comparison trace file or directory")
    p_diff.add_argument("--json", action="store_true", help="JSON report")
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"wira-trace: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except ValueError as exc:
        print(f"wira-trace: malformed trace input ({exc})", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Duplex network path composed of two (possibly asymmetric) links.

A :class:`Path` wires a *server-side* endpoint to a *client-side* endpoint.
The forward link carries server→client traffic (live-streaming data); the
reverse link carries client→server traffic (requests, ACKs).

:class:`NetworkConditions` is the value object used throughout the
reproduction to describe a path configuration — it corresponds to one row
of the paper's testbed matrix or one sampled origin–destination (OD) pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.simnet.engine import EventLoop
from repro.simnet.link import Datagram, Link


@dataclass(frozen=True)
class NetworkConditions:
    """Describes a duplex path.

    Attributes
    ----------
    bandwidth_bps:
        Bottleneck (forward) bandwidth in bits per second.
    rtt:
        Two-way propagation delay in seconds (split evenly per direction).
    loss_rate:
        Forward-direction random loss probability.
    buffer_bytes:
        Forward bottleneck buffer (drop-tail).
    reverse_bandwidth_bps:
        Reverse-direction bandwidth; defaults to the forward rate.
    reverse_loss_rate:
        Reverse-direction random loss probability (usually small; ACK
        loss is far less damaging than data loss).
    """

    bandwidth_bps: float
    rtt: float
    loss_rate: float = 0.0
    buffer_bytes: int = 256 * 1024
    reverse_bandwidth_bps: Optional[float] = None
    reverse_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt < 0:
            raise ValueError("rtt must be non-negative")

    @property
    def one_way_delay(self) -> float:
        return self.rtt / 2.0

    @property
    def bdp_bytes(self) -> int:
        """Bandwidth-delay product in bytes (forward direction)."""
        return int(self.bandwidth_bps * self.rtt / 8.0)

    def scaled(self, bandwidth_factor: float = 1.0, rtt_factor: float = 1.0) -> "NetworkConditions":
        """Return a copy with bandwidth/RTT scaled (for temporal drift)."""
        return replace(
            self,
            bandwidth_bps=self.bandwidth_bps * bandwidth_factor,
            rtt=self.rtt * rtt_factor,
        )


class Path:
    """Duplex path between a server endpoint and a client endpoint.

    Endpoints attach by assigning the delivery callbacks::

        path = Path(loop, conditions, rng)
        path.deliver_to_client = client.datagram_received
        path.deliver_to_server = server.datagram_received
        path.send_to_client(Datagram(packet_bytes))
    """

    def __init__(
        self,
        loop: EventLoop,
        conditions: NetworkConditions,
        rng: Optional[random.Random] = None,
        fast: bool = False,
    ) -> None:
        # Seeded default keeps zero-argument Paths reproducible; replayed
        # sessions always pass a per-session rng derived from their seed.
        rng = rng or random.Random(0)  # wira-lint: disable=WL002
        self.loop = loop
        self.conditions = conditions
        reverse_bw = conditions.reverse_bandwidth_bps or conditions.bandwidth_bps
        self.forward = Link(
            loop,
            bandwidth_bps=conditions.bandwidth_bps,
            propagation_delay=conditions.one_way_delay,
            buffer_bytes=conditions.buffer_bytes,
            loss_rate=conditions.loss_rate,
            rng=random.Random(rng.getrandbits(64)),
            fast=fast,
        )
        self.reverse = Link(
            loop,
            bandwidth_bps=reverse_bw,
            propagation_delay=conditions.one_way_delay,
            buffer_bytes=conditions.buffer_bytes,
            loss_rate=conditions.reverse_loss_rate,
            rng=random.Random(rng.getrandbits(64)),
            fast=fast,
        )

    @property
    def deliver_to_client(self) -> Optional[Callable[[Datagram], None]]:
        return self.forward.on_deliver

    @deliver_to_client.setter
    def deliver_to_client(self, callback: Callable[[Datagram], None]) -> None:
        self.forward.on_deliver = callback

    @property
    def deliver_to_server(self) -> Optional[Callable[[Datagram], None]]:
        return self.reverse.on_deliver

    @deliver_to_server.setter
    def deliver_to_server(self, callback: Callable[[Datagram], None]) -> None:
        self.reverse.on_deliver = callback

    def send_to_client(self, datagram: Datagram) -> bool:
        """Transmit server→client; returns admission result."""
        return self.forward.send(datagram)

    def send_to_server(self, datagram: Datagram) -> bool:
        """Transmit client→server; returns admission result."""
        return self.reverse.send(datagram)

    def update_conditions(self, conditions: NetworkConditions) -> None:
        """Change path characteristics mid-simulation.

        Applies to packets admitted after the call: every queued packet
        snapshotted its serialisation rate at admission, and the
        serialisation event in flight is not rescheduled, so a change
        never rewrites the timing of packets the link already accepted.
        """
        self.conditions = conditions
        self.forward.bandwidth_bps = conditions.bandwidth_bps
        self.forward.propagation_delay = conditions.one_way_delay
        self.forward.buffer_bytes = conditions.buffer_bytes
        self.forward.loss_rate = conditions.loss_rate
        self.reverse.bandwidth_bps = conditions.reverse_bandwidth_bps or conditions.bandwidth_bps
        self.reverse.propagation_delay = conditions.one_way_delay
        self.reverse.loss_rate = conditions.reverse_loss_rate

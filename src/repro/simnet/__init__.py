"""Discrete-event network simulator underpinning the Wira reproduction.

The paper evaluated Wira on production Internet paths between Tencent CDN
proxies and live-streaming clients.  This package provides the offline
substitute: a deterministic discrete-event simulator with an explicit clock
(:mod:`repro.simnet.engine`), rate/delay/loss/buffer link models
(:mod:`repro.simnet.link`), duplex paths (:mod:`repro.simnet.path`),
time-varying condition traces (:mod:`repro.simnet.trace`) and adverse
schedules — bursty loss, reordering, duplication, outages
(:mod:`repro.simnet.schedule`).

All randomness flows through caller-supplied :class:`random.Random`
instances so experiment runs are reproducible bit-for-bit.
"""

from repro.simnet.engine import Event, EventLoop
from repro.simnet.link import Datagram, Link, LinkStats
from repro.simnet.path import NetworkConditions, Path
from repro.simnet.schedule import (
    GilbertElliott,
    GilbertElliottLoss,
    OutageWindow,
    PathSchedule,
)
from repro.simnet.trace import ConditionTrace, TracePoint

__all__ = [
    "ConditionTrace",
    "Datagram",
    "Event",
    "EventLoop",
    "GilbertElliott",
    "GilbertElliottLoss",
    "Link",
    "LinkStats",
    "NetworkConditions",
    "OutageWindow",
    "Path",
    "PathSchedule",
    "TracePoint",
]

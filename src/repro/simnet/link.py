"""Unidirectional bottleneck link with rate, delay, buffer and loss.

The model matches the paper's testbed configuration knobs (§II footnote 2:
"8Mbps bandwidth, 3% loss rate, 50ms RTT and 25KB network buffer"):

* **bandwidth** — serialisation: a packet of ``n`` bytes occupies the link
  for ``8 n / bandwidth`` seconds,
* **propagation delay** — added after serialisation completes,
* **drop-tail buffer** — packets that arrive while the link is busy queue
  up to ``buffer_bytes``; overflow is a *congestion* loss,
* **random loss** — independent Bernoulli drop applied on admission,
  modelling non-congestive (e.g. wireless) loss.

Packets are opaque :class:`Datagram` objects; the link only reads their
size.  Delivery order is FIFO.  Condition changes (bandwidth, delay, loss)
take effect for packets admitted after the change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional
from collections import deque

from repro.simnet.engine import EventLoop


@dataclass(slots=True)
class Datagram:
    """A packet travelling through the simulated network.

    Attributes
    ----------
    payload:
        Opaque wire bytes (the QUIC-like packet produced by
        :mod:`repro.quic.packet`).
    size:
        Size on the wire in bytes; defaults to ``len(payload)`` but may be
        set larger to account for UDP/IP framing overhead.
    """

    payload: bytes
    size: int = 0

    def __post_init__(self) -> None:
        if self.size == 0:
            self.size = len(self.payload)
        if self.size < len(self.payload):
            raise ValueError("declared size smaller than payload")


@dataclass
class LinkStats:
    """Counters exposed by :class:`Link` for experiment reporting."""

    admitted: int = 0
    delivered: int = 0
    random_losses: int = 0
    buffer_losses: int = 0
    bytes_delivered: int = 0
    max_queue_bytes: int = 0

    @property
    def dropped(self) -> int:
        return self.random_losses + self.buffer_losses

    @property
    def loss_rate(self) -> float:
        sent = self.admitted + self.dropped
        return self.dropped / sent if sent else 0.0


class Link:
    """One-way link: ``send()`` on one side, ``on_deliver`` on the other.

    Parameters
    ----------
    loop:
        Event loop supplying the clock.
    bandwidth_bps:
        Bottleneck rate in bits per second.
    propagation_delay:
        One-way propagation latency in seconds.
    buffer_bytes:
        Drop-tail queue capacity.  The packet currently being serialised
        does not count against the buffer, matching the usual
        router-queue abstraction.
    loss_rate:
        Probability each admitted packet is dropped independently.
    rng:
        Source of randomness for loss decisions.
    on_deliver:
        Callback invoked as ``on_deliver(datagram)`` when a packet exits
        the link.  May be (re)assigned after construction.
    """

    __slots__ = (
        "_loop",
        "bandwidth_bps",
        "propagation_delay",
        "buffer_bytes",
        "loss_rate",
        "_rng",
        "on_deliver",
        "stats",
        "_queue",
        "_queue_bytes",
        "_busy",
    )

    def __init__(
        self,
        loop: EventLoop,
        bandwidth_bps: float,
        propagation_delay: float,
        buffer_bytes: int = 256 * 1024,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        on_deliver: Optional[Callable[[Datagram], None]] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self._loop = loop
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.buffer_bytes = buffer_bytes
        self.loss_rate = loss_rate
        # Seeded default keeps zero-argument Links reproducible; sessions
        # that need independent loss processes pass their own rng (Path
        # derives one per direction from the session seed).
        self._rng = rng or random.Random(0)  # wira-lint: disable=WL002
        self.on_deliver = on_deliver
        self.stats = LinkStats()
        self._queue: Deque[Datagram] = deque()
        self._queue_bytes = 0
        self._busy = False

    @property
    def queue_bytes(self) -> int:
        """Bytes currently waiting in the drop-tail buffer."""
        return self._queue_bytes

    def send(self, datagram: Datagram) -> bool:
        """Offer a packet to the link.

        Returns ``True`` if the packet was admitted (it may still take a
        while to be delivered) and ``False`` if it was lost to random loss
        or buffer overflow.
        """
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.stats.random_losses += 1
            return False
        if self._busy:
            if self._queue_bytes + datagram.size > self.buffer_bytes:
                self.stats.buffer_losses += 1
                return False
            self._queue.append(datagram)
            self._queue_bytes += datagram.size
            if self._queue_bytes > self.stats.max_queue_bytes:
                self.stats.max_queue_bytes = self._queue_bytes
        else:
            self._begin_transmission(datagram)
        self.stats.admitted += 1
        return True

    def _begin_transmission(self, datagram: Datagram) -> None:
        self._busy = True
        tx_time = datagram.size * 8.0 / self.bandwidth_bps
        self._loop.post_later(tx_time, self._finish_transmission, datagram)

    def _finish_transmission(self, datagram: Datagram) -> None:
        self._loop.post_later(self.propagation_delay, self._deliver, datagram)
        if self._queue:
            next_datagram = self._queue.popleft()
            self._queue_bytes -= next_datagram.size
            self._begin_transmission(next_datagram)
        else:
            self._busy = False

    def _deliver(self, datagram: Datagram) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += datagram.size
        if self.on_deliver is not None:
            self.on_deliver(datagram)

"""Unidirectional bottleneck link with rate, delay, buffer and loss.

The model matches the paper's testbed configuration knobs (§II footnote 2:
"8Mbps bandwidth, 3% loss rate, 50ms RTT and 25KB network buffer"):

* **bandwidth** — serialisation: a packet of ``n`` bytes occupies the link
  for ``8 n / bandwidth`` seconds,
* **propagation delay** — added after serialisation completes,
* **drop-tail buffer** — packets that arrive while the link is busy queue
  up to ``buffer_bytes``; overflow is a *congestion* loss,
* **random loss** — independent Bernoulli drop applied on admission,
  modelling non-congestive (e.g. wireless) loss.

Packets are opaque :class:`Datagram` objects; the link only reads their
size.  Delivery order is FIFO unless reordering is enabled.  Condition
changes (bandwidth, delay, loss) take effect for packets admitted after
the change: each packet snapshots the serialisation rate at admission,
so a mid-queue bandwidth change never rewrites the transmission time of
packets already accepted into the buffer.

Adverse-network extensions (driven by
:class:`~repro.simnet.schedule.PathSchedule`):

* ``loss_model`` — a stateful drop process (e.g. Gilbert–Elliott bursty
  loss) replacing the independent Bernoulli draw when set;
* ``reorder_rate`` / ``reorder_delay`` — a fraction of packets receives
  a bounded extra propagation delay, letting later packets overtake;
* ``duplicate_rate`` — a fraction of packets is delivered twice;
* ``down`` — link outage: every offered packet is dropped on admission
  until the flag clears (packets already serialising still complete,
  matching a cut after the bottleneck's input).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Protocol, Sequence, Tuple
from collections import deque

from repro.simnet.engine import EventLoop


class LossModel(Protocol):
    """Stateful per-packet drop process (see :mod:`repro.simnet.schedule`)."""

    def should_drop(self) -> bool:
        """Advance the process one packet; True drops it."""
        ...


@dataclass(slots=True)
class Datagram:
    """A packet travelling through the simulated network.

    Attributes
    ----------
    payload:
        Opaque wire bytes (the QUIC-like packet produced by
        :mod:`repro.quic.packet`).
    size:
        Size on the wire in bytes; defaults to ``len(payload)`` but may be
        set larger to account for UDP/IP framing overhead.
    corrupted:
        Set by the fault injector when it flips bits in ``payload``.  A
        real transport's AEAD rejects a corrupted datagram with
        overwhelming probability; the simulator has no packet AEAD
        (documented substitution, DESIGN.md), so receivers consult this
        flag to model that rejection and drop the datagram.
    """

    payload: bytes
    size: int = 0
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.size == 0:
            self.size = len(self.payload)
        if self.size < len(self.payload):
            raise ValueError("declared size smaller than payload")


@dataclass
class LinkStats:
    """Counters exposed by :class:`Link` for experiment reporting."""

    admitted: int = 0
    delivered: int = 0
    random_losses: int = 0
    buffer_losses: int = 0
    outage_losses: int = 0
    #: Sub-count of ``random_losses`` attributable to a ``loss_model``
    #: (e.g. Gilbert–Elliott bad-state drops).
    burst_losses: int = 0
    reordered: int = 0
    duplicated: int = 0
    bytes_delivered: int = 0
    max_queue_bytes: int = 0

    @property
    def dropped(self) -> int:
        return self.random_losses + self.buffer_losses + self.outage_losses

    @property
    def loss_rate(self) -> float:
        sent = self.admitted + self.dropped
        return self.dropped / sent if sent else 0.0


class Link:
    """One-way link: ``send()`` on one side, ``on_deliver`` on the other.

    Parameters
    ----------
    loop:
        Event loop supplying the clock.
    bandwidth_bps:
        Bottleneck rate in bits per second.
    propagation_delay:
        One-way propagation latency in seconds.
    buffer_bytes:
        Drop-tail queue capacity.  The packet currently being serialised
        does not count against the buffer, matching the usual
        router-queue abstraction.
    loss_rate:
        Probability each admitted packet is dropped independently.
        Ignored while a ``loss_model`` is installed.
    rng:
        Source of randomness for loss/impairment decisions.
    on_deliver:
        Callback invoked as ``on_deliver(datagram)`` when a packet exits
        the link.  May be (re)assigned after construction.

    The impairment attributes (``loss_model``, ``reorder_rate``,
    ``reorder_delay``, ``duplicate_rate``, ``down``) default to inert
    values and are assigned directly by
    :meth:`~repro.simnet.schedule.PathSchedule.install`; when they stay
    at their defaults the link draws no extra randomness, so existing
    seeded runs replay byte-identically.
    """

    __slots__ = (
        "_loop",
        "bandwidth_bps",
        "propagation_delay",
        "buffer_bytes",
        "loss_rate",
        "loss_model",
        "reorder_rate",
        "reorder_delay",
        "duplicate_rate",
        "down",
        "_rng",
        "on_deliver",
        "stats",
        "_queue",
        "_queue_bytes",
        "_busy",
        "fast",
    )

    def __init__(
        self,
        loop: EventLoop,
        bandwidth_bps: float,
        propagation_delay: float,
        buffer_bytes: int = 256 * 1024,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        on_deliver: Optional[Callable[[Datagram], None]] = None,
        fast: bool = False,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self._loop = loop
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.buffer_bytes = buffer_bytes
        self.loss_rate = loss_rate
        self.loss_model: Optional[LossModel] = None
        self.reorder_rate = 0.0
        self.reorder_delay = 0.0
        self.duplicate_rate = 0.0
        self.down = False
        # Seeded default keeps zero-argument Links reproducible; sessions
        # that need independent loss processes pass their own rng (Path
        # derives one per direction from the session seed).
        self._rng = rng or random.Random(0)  # wira-lint: disable=WL002
        self.on_deliver = on_deliver
        self.stats = LinkStats()
        # Queue entries snapshot the serialisation rate at admission.
        self._queue: Deque[Tuple[Datagram, float]] = deque()
        self._queue_bytes = 0
        self._busy = False
        # Batched-admission mode (see ``send_burst``): a whole train is
        # admitted in one hoisted-locals pass.  The event *structure* is
        # deliberately identical to per-packet sends — the serialisation
        # chain's posting instants are part of the simulator's
        # ``(when, seq)`` determinism contract, so a transmit-path
        # optimisation may batch bookkeeping but never move a post.
        # StreamingSession enables it only for schedule-less sessions
        # (gated by ``WIRA_FAST_LINK``).
        self.fast = fast

    @property
    def queue_bytes(self) -> int:
        """Bytes currently waiting in the drop-tail buffer."""
        return self._queue_bytes

    def send(self, datagram: Datagram) -> bool:
        """Offer a packet to the link.

        Returns ``True`` if the packet was admitted (it may still take a
        while to be delivered) and ``False`` if it was lost to an outage,
        random loss or buffer overflow.
        """
        if self.down:
            self.stats.outage_losses += 1
            return False
        if self.loss_model is not None:
            if self.loss_model.should_drop():
                self.stats.random_losses += 1
                self.stats.burst_losses += 1
                return False
        elif self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.stats.random_losses += 1
            return False
        if self._busy:
            if self._queue_bytes + datagram.size > self.buffer_bytes:
                self.stats.buffer_losses += 1
                return False
            self._queue.append((datagram, self.bandwidth_bps))
            self._queue_bytes += datagram.size
            if self._queue_bytes > self.stats.max_queue_bytes:
                self.stats.max_queue_bytes = self._queue_bytes
        else:
            self._begin_transmission(datagram, self.bandwidth_bps)
        self.stats.admitted += 1
        return True

    def send_burst(self, datagrams: Sequence[Datagram]) -> List[bool]:
        """Offer a back-to-back train of packets; one admission per packet.

        Semantically identical to ``[link.send(d) for d in datagrams]``:
        same rng draws, same drop decisions, same delivery timestamps,
        and — crucially — the same event *posting instants*.  Only the
        serialisation-finish event for the head of an idle link is
        posted here; every later packet queues and gets its events
        posted by the serialisation chain itself, exactly when the
        per-packet path would post them.  Moving a post (e.g. scheduling
        every delivery up front) would change the ``seq`` tiebreak of
        events that collide on the same float timestamp and silently
        reorder replays, so a fast link only hoists bookkeeping out of
        the loop: one ``now`` read, bound methods, no impairment
        branches.
        """
        if not self.fast or self.duplicate_rate > 0.0 or self.reorder_rate > 0.0:
            return [self.send(d) for d in datagrams]
        rng_random = self._rng.random
        loss_rate = self.loss_rate
        loss_model = self.loss_model
        stats = self.stats
        rate = self.bandwidth_bps
        buffer_bytes = self.buffer_bytes
        queue_append = self._queue.append
        results: List[bool] = []
        for datagram in datagrams:
            if self.down:
                stats.outage_losses += 1
                results.append(False)
                continue
            if loss_model is not None:
                if loss_model.should_drop():
                    stats.random_losses += 1
                    stats.burst_losses += 1
                    results.append(False)
                    continue
            elif loss_rate > 0.0 and rng_random() < loss_rate:
                stats.random_losses += 1
                results.append(False)
                continue
            if self._busy:
                size = datagram.size
                queued = self._queue_bytes + size
                if queued > buffer_bytes:
                    stats.buffer_losses += 1
                    results.append(False)
                    continue
                queue_append((datagram, rate))
                self._queue_bytes = queued
                if queued > stats.max_queue_bytes:
                    stats.max_queue_bytes = queued
            else:
                self._begin_transmission(datagram, rate)
            stats.admitted += 1
            results.append(True)
        return results

    def _begin_transmission(self, datagram: Datagram, rate_bps: float) -> None:
        self._busy = True
        tx_time = datagram.size * 8.0 / rate_bps
        self._loop.post_later(tx_time, self._finish_transmission, datagram)

    def _finish_transmission(self, datagram: Datagram) -> None:
        delay = self.propagation_delay
        # Impairments draw randomness only when enabled, so unimpaired
        # links keep their historical rng stream.
        if self.duplicate_rate > 0.0 and self._rng.random() < self.duplicate_rate:
            self.stats.duplicated += 1
            self._loop.post_later(delay, self._deliver, datagram)
        if self.reorder_rate > 0.0 and self._rng.random() < self.reorder_rate:
            self.stats.reordered += 1
            delay += self._rng.uniform(0.0, self.reorder_delay)
        self._loop.post_later(delay, self._deliver, datagram)
        if self._queue:
            next_datagram, rate_bps = self._queue.popleft()
            self._queue_bytes -= next_datagram.size
            self._begin_transmission(next_datagram, rate_bps)
        else:
            self._busy = False

    def _deliver(self, datagram: Datagram) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += datagram.size
        if self.on_deliver is not None:
            self.on_deliver(datagram)

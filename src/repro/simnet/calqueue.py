"""Calendar-queue scheduler with an exact ``(when, seq)`` total order.

:class:`CalendarQueue` is the shared timer structure behind
:class:`repro.simnet.batch.BatchEventLoop`.  It stores opaque *entries* —
tuples whose first two fields are ``(when, seq)`` with ``seq`` unique —
and pops them in exactly the order a ``heapq`` of the same tuples would,
which is the property the batched kernel needs to stay byte-identical
with :class:`repro.simnet.engine.EventLoop` (see the property tests in
``tests/simnet/test_calqueue.py``).

Design
------
Near-future events (the pacer ticks and link serialisation/delivery
events that dominate streaming traffic) land together in *buckets* of
``bucket_width`` simulated seconds, keyed by ``int(when / width)``:

* ``push`` appends to the target bucket — O(1) amortised; a heap of
  bucket **indices** is touched only on an empty→non-empty transition,
* ``pop`` activates the minimum-index bucket once, sorts it once
  (Timsort over an almost-sorted batch), and then serves entries by
  popping from the end of the descending-sorted list — O(1) per event,
* callbacks that re-post into the *active* bucket (a pacer re-arming
  within the same millisecond) append to an ``_incoming`` side list that
  is merged and re-sorted only when non-empty, so the steady state pays
  one truthiness test per pop.

Far-future timers (PTO/idle timers seconds out) degenerate to sparse
singleton buckets, i.e. one bucket-heap operation per event — that heap
*is* the heapq fallback for far timers, with the same O(log n) bound as
the flat heap it replaces, so pathological timer spreads never regress
below the old engine.

Entries must have non-negative ``when`` (simulated time starts at zero;
``int()`` truncation is only order-preserving for non-negative input).
The queue itself never interprets fields beyond ``entry[1]`` — lazy
cancellation, member bookkeeping and the like belong to the caller.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

#: An opaque scheduler entry; ordered by its first two fields.
Entry = Tuple[Any, ...]


class CalendarQueue:
    """Min-queue over ``(when, seq)``-prefixed tuples.

    Parameters
    ----------
    bucket_width:
        Bucket granularity in simulated seconds.  The default (1 ms) is
        tuned for streaming workloads where pacer and link events cluster
        well below one millisecond apart; correctness does not depend on
        the choice, only the amortisation factor does.
    """

    __slots__ = ("_width", "_inv_width", "_buckets", "_order", "_current", "_incoming", "_active_idx", "_len", "version")

    def __init__(self, bucket_width: float = 0.001) -> None:
        if bucket_width <= 0.0:
            raise ValueError("bucket width must be positive")
        #: Incremented on every ``push``.  Lets a caller that drained the
        #: head lazily (the kernel's burst lane) detect whether callbacks
        #: inserted anything since it last looked, without re-peeking.
        self.version = 0
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        #: Future buckets by index; values are unsorted append lists.
        self._buckets: Dict[int, List[Entry]] = {}
        #: Min-heap of bucket indices present in ``_buckets``.
        self._order: List[int] = []
        #: The active bucket, sorted descending; served from the end.
        self._current: List[Entry] = []
        #: Entries pushed at or below the active bucket while it drains.
        self._incoming: List[Entry] = []
        #: Index of the bucket currently being served (-1 before first pop).
        self._active_idx = -1
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    @property
    def bucket_width(self) -> float:
        return self._width

    def push(self, entry: Entry) -> None:
        """Insert an entry.  O(1) amortised for near-future times."""
        self.version += 1
        idx = int(entry[0] * self._inv_width)
        if idx <= self._active_idx:
            # Into (or before) the bucket being served: stage on the side
            # list; ``pop`` merges it ahead of everything else.  Entries
            # below the active bucket can only be correct if the caller's
            # clock allows them (the engine forbids past scheduling), and
            # they still pop before the active bucket's remainder.
            self._incoming.append(entry)
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heapq.heappush(self._order, idx)
            else:
                bucket.append(entry)
        self._len += 1

    def pop(self) -> Optional[Entry]:
        """Remove and return the minimum entry, or ``None`` when empty."""
        current = self._current
        if self._incoming:
            current.extend(self._incoming)
            self._incoming.clear()
            current.sort(reverse=True)
        while not current:
            if not self._order:
                return None
            idx = heapq.heappop(self._order)
            self._active_idx = idx
            current = self._current = self._buckets.pop(idx)
            current.sort(reverse=True)
        self._len -= 1
        return current.pop()

    def peek(self) -> Optional[Entry]:
        """Return (without removing) the minimum entry, or ``None``."""
        current = self._current
        if self._incoming:
            current.extend(self._incoming)
            self._incoming.clear()
            current.sort(reverse=True)
        while not current:
            if not self._order:
                return None
            idx = heapq.heappop(self._order)
            self._active_idx = idx
            current = self._current = self._buckets.pop(idx)
            current.sort(reverse=True)
        return current[-1]

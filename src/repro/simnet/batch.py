"""Batched multi-session event loop over a shared calendar queue.

:class:`BatchEventLoop` runs *many* independent sessions inside one
scheduler.  Each session attaches to a :class:`MemberLoop` — an object
exposing the exact :class:`repro.simnet.engine.EventLoop` surface
(``now``, ``call_at``, ``call_later``, ``post_at``, ``post_later``,
``pending_events``, ``processed_events``) — while all timers land in one
shared :class:`~repro.simnet.calqueue.CalendarQueue`.  Per-event Python
overhead (heap discipline, bookkeeping) then amortises across the whole
batch instead of being paid per session.

Byte-identity with the solo engine
----------------------------------
Sessions never exchange events, so correctness reduces to a per-member
guarantee: every member observes its own events in the same relative
``(when, seq)`` order, and the same ``now``, as it would on a private
``EventLoop``.  The kernel allocates ``seq`` from one global counter, so
for any single member the sequence numbers are a strictly increasing
subsequence of the global order — ties *within* a member resolve exactly
as they would solo, and cross-member interleaving is invisible to the
sessions themselves.  The property tests in
``tests/simnet/test_calqueue.py`` pin the scheduler order; the equality
tests in ``tests/cdn/test_batchrun.py`` pin end-to-end results.

Driving members
---------------
A free-running member (``horizon`` unset) just executes until the queue
drains — what the throughput benchmarks use.  Session drivers
(:mod:`repro.cdn.batchrun`) instead replicate the solo slice semantics
by setting ``_horizon``/``_budget`` and installing the ``_on_boundary``
/ ``_on_budget`` / ``_on_drained`` hooks; the kernel consults them with
one comparison per event, so undriven members pay (almost) nothing.

The burst lane
--------------
:meth:`MemberLoop.post_burst` schedules an array of deliveries — e.g. a
packet train whose serialisation times are precomputed — as **one**
queue entry carrying the full timestamp array.  The kernel drains it in
a tight inner loop, re-inserting the remainder only when a foreign event
or the member's horizon interleaves.  Each delivery still owns a unique
``(when, seq)`` slot (the burst reserves a contiguous ``seq`` range at
admission), so the observable order is identical to posting every
delivery individually — asserted by ``tests/simnet/test_batch.py``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import sanitize as _sanitize
from repro.simnet.calqueue import CalendarQueue
from repro.simnet.engine import Event, SimulationError

#: Horizon value for free-running members: never triggers a boundary.
_NO_HORIZON = float("inf")

#: Budget value for free-running members: never exhausts in practice.
_NO_BUDGET = 1 << 62


class _Burst:
    """A scheduled array of deliveries sharing one queue entry.

    ``times`` must be ascending; the burst owns sequence numbers
    ``seq0 .. seq0 + len(times) - 1``, one per delivery.  Bursts are
    fire-and-forget (no cancellation handle), like ``post_at``.
    """

    __slots__ = ("times", "payloads", "callback", "seq0", "index")

    def __init__(
        self,
        times: Sequence[float],
        payloads: Sequence[Any],
        callback: Callable[[Any], None],
        seq0: int,
    ) -> None:
        self.times = times
        self.payloads = payloads
        self.callback = callback
        self.seq0 = seq0
        self.index = 0


class MemberLoop:
    """One session's view of a :class:`BatchEventLoop`.

    API-compatible with :class:`repro.simnet.engine.EventLoop` for every
    operation simulation components perform.  Driving the loop is the
    kernel's job: :meth:`run` / :meth:`run_until` raise, because a member
    cannot advance without its siblings.
    """

    __slots__ = (
        "_kernel",
        "_now",
        "_pending",
        "_processed",
        "_horizon",
        "_budget",
        "_finished",
        "_on_boundary",
        "_on_budget",
        "_on_drained",
    )

    def __init__(self, kernel: "BatchEventLoop", start_time: float = 0.0) -> None:
        self._kernel = kernel
        self._now = start_time
        self._pending = 0
        self._processed = 0
        self._horizon = _NO_HORIZON
        self._budget = _NO_BUDGET
        self._finished = False
        self._on_boundary: Optional[Callable[[float], None]] = None
        self._on_budget: Optional[Callable[[], None]] = None
        self._on_drained: Optional[Callable[[], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time as observed by this member."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events this member has queued."""
        return self._pending

    @property
    def processed_events(self) -> int:
        """Total callbacks executed for this member."""
        return self._processed

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f}, clock is at t={self._now:.6f}"
            )
        kernel = self._kernel
        seq = kernel._seq
        kernel._seq = seq + 1
        event = Event(when, seq, callback, args, self)  # type: ignore[arg-type]
        kernel._queue.push((when, seq, self, event, callback, args))
        self._pending += 1
        return event

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def post_at(self, when: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`call_at`: no :class:`Event` handle."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f}, clock is at t={self._now:.6f}"
            )
        kernel = self._kernel
        seq = kernel._seq
        kernel._seq = seq + 1
        kernel._queue.push((when, seq, self, None, callback, args))
        self._pending += 1

    def post_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`call_later`: no :class:`Event` handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.post_at(self._now + delay, callback, *args)

    def post_burst(
        self,
        times: Sequence[float],
        callback: Callable[[Any], None],
        payloads: Sequence[Any],
    ) -> None:
        """Schedule ``callback(payloads[i])`` at ``times[i]`` for all i.

        ``times`` must be ascending and start at or after :attr:`now`;
        ``payloads`` must have the same length.  Semantically identical
        to ``for t, p in zip(times, payloads): post_at(t, callback, p)``
        (a contiguous ``seq`` range is reserved at admission), but the
        whole train costs one queue entry and is drained by the kernel's
        array lane.
        """
        count = len(times)
        if count != len(payloads):
            raise SimulationError("times and payloads must have equal length")
        if count == 0:
            return
        if times[0] < self._now:
            raise SimulationError(
                f"cannot schedule event at t={times[0]:.6f}, clock is at t={self._now:.6f}"
            )
        kernel = self._kernel
        seq0 = kernel._seq
        kernel._seq = seq0 + count
        burst = _Burst(times, payloads, callback, seq0)
        kernel._queue.push((times[0], seq0, self, burst, None, ()))
        self._pending += count

    def run(self, max_events: Optional[int] = None) -> int:
        raise SimulationError("a MemberLoop is driven by its BatchEventLoop")

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        raise SimulationError("a MemberLoop is driven by its BatchEventLoop")


class BatchEventLoop:
    """Deterministic scheduler shared by a batch of member sessions.

    Parameters
    ----------
    bucket_width:
        Calendar-queue bucket granularity in simulated seconds (see
        :class:`~repro.simnet.calqueue.CalendarQueue`).
    """

    __slots__ = ("_queue", "_seq", "_members", "_running", "_processed")

    def __init__(self, bucket_width: float = 0.001) -> None:
        self._queue = CalendarQueue(bucket_width)
        self._seq = 0
        self._members: List[MemberLoop] = []
        self._running = False
        self._processed = 0

    def member(self, start_time: float = 0.0) -> MemberLoop:
        """Create and register a new member loop."""
        m = MemberLoop(self, start_time)
        self._members.append(m)
        return m

    @property
    def members(self) -> Tuple[MemberLoop, ...]:
        return tuple(self._members)

    @property
    def pending_events(self) -> int:
        """Not-yet-cancelled events across all members.  O(members)."""
        return sum(m._pending for m in self._members)

    @property
    def processed_events(self) -> int:
        """Total callbacks executed across all members."""
        return self._processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the shared queue in global ``(when, seq)`` order.

        Returns the number of callbacks executed by this call.  Members
        with drivers installed are sliced per their horizon/budget state;
        free-running members execute unconditionally.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        if _sanitize.ACTIVE is not None:
            return self._run_checked(max_events, _sanitize.ACTIVE)
        self._running = True
        executed = 0
        queue = self._queue
        pop = queue.pop
        push = queue.push
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                entry = pop()
                if entry is None:
                    break
                member = entry[2]
                if member._finished:
                    continue
                ev = entry[3]
                if ev is not None:
                    if ev.__class__ is _Burst:
                        executed += self._drain_burst(ev, member, None)
                        continue
                    if ev.cancelled:
                        continue
                when = entry[0]
                if when > member._horizon:
                    # The member's driver decides: advance the slice, run
                    # a phase transition, or finish the member.  The entry
                    # goes back in (new events posted by the driver may
                    # now precede it globally).
                    member._on_boundary(when)  # type: ignore[misc]
                    if not member._finished:
                        push(entry)
                    continue
                if ev is not None:
                    ev._finished = True
                member._pending -= 1
                member._now = when
                entry[4](*entry[5])
                executed += 1
                member._processed += 1
                member._budget -= 1
                if member._pending == 0:
                    drained = member._on_drained
                    if drained is not None:
                        drained()
                elif member._budget <= 0:
                    over = member._on_budget
                    if over is not None:
                        over()
        finally:
            self._processed += executed
            self._running = False
        return executed

    def _drain_burst(
        self,
        burst: _Burst,
        member: MemberLoop,
        sanitizer: Optional["_sanitize.TransportSanitizer"],
    ) -> int:
        """Execute a burst's deliveries until a foreign event intervenes.

        Returns the number of deliveries executed.  The remainder (if
        any) is re-inserted as a fresh entry keyed by the next delivery's
        own ``(when, seq)``.

        The uninterrupted stretch is established once per segment: one
        ``peek`` plus a bisect against the (sorted) delivery times finds
        how many items precede the queue's head, and that bound stays
        valid until a callback pushes something (tracked by the queue's
        ``version`` counter) or a driver hook runs (which may move the
        member's horizon).  The steady-state per-delivery cost is the
        callback plus a handful of integer updates.
        """
        queue = self._queue
        times = burst.times
        payloads = burst.payloads
        callback = burst.callback
        seq0 = burst.seq0
        count = len(times)
        i = burst.index
        executed = 0
        while True:
            t = times[i]
            horizon = member._horizon
            if t > horizon:
                member._on_boundary(t)  # type: ignore[misc]
                if not member._finished:
                    burst.index = i
                    queue.push((t, seq0 + i, member, burst, None, ()))
                return executed
            nxt = queue.peek()
            if nxt is None:
                end = count
            else:
                next_when = nxt[0]
                end = bisect_left(times, next_when, i)
                # Equal-instant items: the burst's reserved seqs decide.
                while (
                    end < count
                    and times[end] == next_when
                    and seq0 + end < nxt[1]
                ):
                    end += 1
                if end == i:
                    burst.index = i
                    queue.push((t, seq0 + i, member, burst, None, ()))
                    return executed
            if times[end - 1] > horizon:
                end = bisect_right(times, horizon, i, end)
            version = queue.version
            while True:
                t = times[i]
                if sanitizer is not None and t < member._now:
                    sanitizer.check_clock(member._now, t)
                member._pending -= 1
                member._now = t
                callback(payloads[i])
                executed += 1
                member._processed += 1
                member._budget -= 1
                hook_ran = False
                if member._pending == 0:
                    drained = member._on_drained
                    if drained is not None:
                        drained()
                        hook_ran = True
                elif member._budget <= 0:
                    over = member._on_budget
                    if over is not None:
                        over()
                        hook_ran = True
                i += 1
                if i == count:
                    return executed
                if member._finished:
                    return executed
                if i >= end or hook_ran or queue.version != version:
                    break  # re-establish the safe stretch

    def _run_checked(
        self,
        max_events: Optional[int],
        sanitizer: "_sanitize.TransportSanitizer",
    ) -> int:
        """The :meth:`run` loop with the clock-monotonicity sanitizer.

        Identical semantics; mirrors ``EventLoop._run_checked``: the
        per-event comparison is inlined against the *member's* clock and
        the invariant counter is bulk-updated on exit.
        """
        self._running = True
        executed = 0
        queue = self._queue
        pop = queue.pop
        push = queue.push
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                entry = pop()
                if entry is None:
                    break
                member = entry[2]
                if member._finished:
                    continue
                ev = entry[3]
                if ev is not None:
                    if ev.__class__ is _Burst:
                        executed += self._drain_burst(ev, member, sanitizer)
                        continue
                    if ev.cancelled:
                        continue
                when = entry[0]
                if when > member._horizon:
                    member._on_boundary(when)  # type: ignore[misc]
                    if not member._finished:
                        push(entry)
                    continue
                if when < member._now:
                    sanitizer.check_clock(member._now, when)
                if ev is not None:
                    ev._finished = True
                member._pending -= 1
                member._now = when
                entry[4](*entry[5])
                executed += 1
                member._processed += 1
                member._budget -= 1
                if member._pending == 0:
                    drained = member._on_drained
                    if drained is not None:
                        drained()
                elif member._budget <= 0:
                    over = member._on_budget
                    if over is not None:
                        over()
        finally:
            counts = sanitizer.checks_run
            counts["clock_monotonic"] = counts.get("clock_monotonic", 0) + executed
            self._processed += executed
            self._running = False
        return executed

"""Adverse-network schedules: time-varying, bursty and flapping paths.

The deployment replay's default path is a constant
(:class:`~repro.simnet.path.NetworkConditions`) tuple with independent
Bernoulli loss — fine for the paper's testbed matrix, but none of the
corner cases §IV-C argues about (stale cookies on a changed path, large
initial windows meeting a shrunken buffer, bursty access links) is
exercised by it.  A :class:`PathSchedule` bundles everything
time-varying or adverse about one path:

* **condition trace** — piecewise bandwidth/delay/loss changes at
  simulated times (reusing :class:`~repro.simnet.trace.ConditionTrace`);
* **Gilbert–Elliott loss** — a two-state Markov drop process producing
  loss *bursts* rather than independent drops, the classic model for
  wireless access links ("When BBR Meets Live Streaming" motivates
  exactly this regime);
* **bounded reordering / duplication** — a fraction of packets receives
  a bounded extra delay (letting later packets overtake) or is
  delivered twice;
* **outage (flap) windows** — intervals during which the path drops
  everything offered, in both directions.

Schedules are plain picklable data; :meth:`PathSchedule.install` wires
one onto a live :class:`~repro.simnet.path.Path`, drawing all
randomness from the caller-supplied rng so a session seed fully
determines the adverse behaviour.  Installed schedule transitions are
emitted on the :mod:`repro.obs` trace bus (``fault:*`` events) when it
is active.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro import obs as _obs
from repro.simnet.engine import EventLoop
from repro.simnet.path import NetworkConditions, Path
from repro.simnet.trace import ConditionTrace

#: Connection id used for path-level (not connection-level) trace events.
PATH_TRACE_ID = "path"


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov loss process (good/bad) parameters.

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-packet transition
    probabilities; ``loss_good`` / ``loss_bad`` are the drop
    probabilities inside each state.  The stationary loss rate is
    ``(r·k + p·h) / (p + r)`` with ``p = p_good_to_bad``,
    ``r = p_bad_to_good``, ``k = loss_good``, ``h = loss_bad``.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.p_bad_to_good <= 0.0:
            raise ValueError("p_bad_to_good must be positive (bad state must be escapable)")

    @property
    def stationary_loss_rate(self) -> float:
        p, r = self.p_good_to_bad, self.p_bad_to_good
        if p + r == 0.0:
            return self.loss_good
        return (r * self.loss_good + p * self.loss_bad) / (p + r)

    def bind(self, rng: random.Random) -> "GilbertElliottLoss":
        """Instantiate the process with its own randomness source."""
        return GilbertElliottLoss(self, rng)


class GilbertElliottLoss:
    """Stateful Gilbert–Elliott drop process (a :class:`~repro.simnet.link.LossModel`)."""

    __slots__ = ("spec", "_rng", "in_bad_state", "transitions")

    def __init__(self, spec: GilbertElliott, rng: random.Random) -> None:
        self.spec = spec
        self._rng = rng
        self.in_bad_state = False
        self.transitions = 0

    def should_drop(self) -> bool:
        """Advance one packet: maybe transition states, then draw a drop."""
        if self.in_bad_state:
            if self._rng.random() < self.spec.p_bad_to_good:
                self.in_bad_state = False
                self.transitions += 1
        else:
            if self._rng.random() < self.spec.p_good_to_bad:
                self.in_bad_state = True
                self.transitions += 1
        loss = self.spec.loss_bad if self.in_bad_state else self.spec.loss_good
        return loss > 0.0 and self._rng.random() < loss


@dataclass(frozen=True)
class OutageWindow:
    """The path drops everything during ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError("outage start must be non-negative")
        if self.duration <= 0.0:
            raise ValueError("outage duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class PathSchedule:
    """Everything time-varying or adverse about one simulated path.

    All fields default to "no effect": an empty ``PathSchedule()``
    installed on a path changes nothing, and fields that stay inert draw
    no randomness — seeded sessions without a schedule replay
    byte-identically to sessions that never had one.
    """

    #: Piecewise condition changes; point times are relative to install.
    trace: Optional[ConditionTrace] = None
    #: Bursty loss on the forward (data) direction, replacing Bernoulli.
    gilbert_elliott: Optional[GilbertElliott] = None
    #: Bursty loss on the reverse (ACK) direction.
    reverse_gilbert_elliott: Optional[GilbertElliott] = None
    #: Fraction of forward packets receiving a bounded extra delay.
    reorder_rate: float = 0.0
    #: Upper bound on the extra delay, seconds (draws are uniform).
    reorder_delay: float = 0.0
    #: Fraction of forward packets delivered twice.
    duplicate_rate: float = 0.0
    #: Flap windows; both directions drop everything inside each window.
    outages: Tuple[OutageWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.reorder_rate < 1.0:
            raise ValueError("reorder_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        if self.reorder_delay < 0.0:
            raise ValueError("reorder_delay must be non-negative")
        if self.reorder_rate > 0.0 and self.reorder_delay <= 0.0:
            raise ValueError("reordering needs a positive reorder_delay bound")

    @property
    def is_inert(self) -> bool:
        """True when installing this schedule would change nothing."""
        return (
            self.trace is None
            and self.gilbert_elliott is None
            and self.reverse_gilbert_elliott is None
            and self.reorder_rate <= 0.0
            and self.duplicate_rate <= 0.0
            and not self.outages
        )

    def initial_conditions(self, default: NetworkConditions) -> NetworkConditions:
        """Conditions the path should be built with (trace start or default)."""
        if self.trace is not None:
            return self.trace.initial_conditions
        return default

    def install(self, loop: EventLoop, path: Path, rng: random.Random) -> None:
        """Wire this schedule onto ``path``, times relative to ``loop.now``.

        ``rng`` seeds the loss processes; drawing sub-generators keeps
        forward/reverse streams independent and the whole behaviour a
        pure function of the caller's seed.
        """
        start = loop.now
        if self.trace is not None:
            path.update_conditions(self.trace.initial_conditions)
            for point in self.trace.points[1:]:
                loop.post_at(start + point.time, _apply_conditions, loop, path, point.conditions)
        if self.gilbert_elliott is not None:
            path.forward.loss_model = self.gilbert_elliott.bind(
                random.Random(rng.getrandbits(64))
            )
        if self.reverse_gilbert_elliott is not None:
            path.reverse.loss_model = self.reverse_gilbert_elliott.bind(
                random.Random(rng.getrandbits(64))
            )
        if self.reorder_rate > 0.0:
            path.forward.reorder_rate = self.reorder_rate
            path.forward.reorder_delay = self.reorder_delay
        if self.duplicate_rate > 0.0:
            path.forward.duplicate_rate = self.duplicate_rate
        for window in self.outages:
            loop.post_at(start + window.start, _set_link_state, loop, path, True)
            loop.post_at(start + window.end, _set_link_state, loop, path, False)


def _apply_conditions(loop: EventLoop, path: Path, conditions: NetworkConditions) -> None:
    """Trace-point callback: apply and (optionally) trace the change."""
    path.update_conditions(conditions)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.emit(
            loop.now,
            "fault:conditions_changed",
            PATH_TRACE_ID,
            {
                "bandwidth_bps": conditions.bandwidth_bps,
                "rtt": conditions.rtt,
                "loss_rate": conditions.loss_rate,
            },
        )


def _set_link_state(loop: EventLoop, path: Path, down: bool) -> None:
    """Outage callback: flap both directions together."""
    path.forward.down = down
    path.reverse.down = down
    if _obs.ACTIVE is not None:
        name = "fault:link_down" if down else "fault:link_up"
        _obs.ACTIVE.emit(loop.now, name, PATH_TRACE_ID, {})

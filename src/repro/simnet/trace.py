"""Time-varying link condition schedules.

A :class:`ConditionTrace` replays a piecewise-constant schedule of
:class:`~repro.simnet.path.NetworkConditions` onto a
:class:`~repro.simnet.path.Path`.  Experiments use traces to model
bandwidth/RTT drift within a session (e.g. to study how stale Hx_QoS
cookies degrade Wira(Hx), Fig 13(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.simnet.engine import EventLoop
from repro.simnet.path import NetworkConditions, Path


@dataclass(frozen=True)
class TracePoint:
    """Conditions taking effect at ``time`` (seconds from trace start)."""

    time: float
    conditions: NetworkConditions

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("trace point time must be non-negative")


class ConditionTrace:
    """Ordered schedule of condition changes.

    The first point must be at time 0 so the path always has defined
    conditions from the start of the trace.
    """

    def __init__(self, points: Sequence[TracePoint]) -> None:
        if not points:
            raise ValueError("trace needs at least one point")
        ordered = sorted(points, key=lambda p: p.time)
        # Sentinel check, not arithmetic: segments authored to start the
        # trace carry a literal 0.0, so exact inequality is the right test
        # for "does this trace cover t=0".
        if ordered[0].time != 0.0:  # wira-lint: disable=WL003
            raise ValueError("first trace point must be at time 0")
        self.points: List[TracePoint] = list(ordered)

    @classmethod
    def constant(cls, conditions: NetworkConditions) -> "ConditionTrace":
        """A trace that never changes — the common testbed case."""
        return cls([TracePoint(0.0, conditions)])

    @property
    def initial_conditions(self) -> NetworkConditions:
        return self.points[0].conditions

    def conditions_at(self, time: float) -> NetworkConditions:
        """The conditions in force at ``time`` seconds from trace start."""
        current = self.points[0].conditions
        for point in self.points:
            if point.time <= time:
                current = point.conditions
            else:
                break
        return current

    def install(self, loop: EventLoop, path: Path) -> None:
        """Schedule every change point onto ``loop`` against ``path``.

        Change times are interpreted relative to ``loop.now`` at the time
        of installation.
        """
        start = loop.now
        path.update_conditions(self.points[0].conditions)
        for point in self.points[1:]:
            loop.post_at(start + point.time, path.update_conditions, point.conditions)

"""Event loop with a simulated clock.

The engine is a classic calendar queue: callbacks are scheduled at absolute
simulated times and executed in non-decreasing time order.  Ties are broken
by scheduling order so runs are deterministic.

Typical use::

    loop = EventLoop()
    loop.call_later(0.5, hello)          # run ``hello()`` at t=0.5s
    loop.run()                           # drain every pending event
    assert loop.now >= 0.5

Components built on top of the engine (links, pacers, retransmission
timers) never consult wall-clock time; they only ever observe
:attr:`EventLoop.now`.

The heap stores plain ``(time, seq, event, callback, args)`` tuples.
``event`` is ``None`` for fire-and-forget callbacks scheduled through
:meth:`EventLoop.post_at` / :meth:`EventLoop.post_later` — the common
case for per-packet work (link serialisation, delivery), which avoids an
``Event`` allocation per packet.  ``seq`` is unique, so tuple comparison
never reaches the callback.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro import sanitize as _sanitize


class SimulationError(Exception):
    """Raised for invalid interactions with the event loop."""


class Event:
    """Handle for a scheduled callback.

    Supports cancellation; a cancelled event stays in the heap but is
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_loop", "_finished")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        loop: Optional["EventLoop"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._loop = loop
        self._finished = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self._finished and self._loop is not None:
            self._loop._pending -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class EventLoop:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_processed", "_pending")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._pending = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return self._pending

    @property
    def processed_events(self) -> int:
        """Total number of callbacks executed so far."""
        return self._processed

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``.

        Scheduling in the past is an error: the simulation clock never
        rewinds, so such an event could only fire late and silently skew
        results.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f}, clock is at t={self._now:.6f}"
            )
        event = Event(when, next(self._seq), callback, args, self)
        heapq.heappush(self._heap, (when, event.seq, event, callback, args))
        self._pending += 1
        return event

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def post_at(self, when: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`call_at`: no :class:`Event` handle.

        Use for the non-cancellable common case (per-packet link events);
        it skips the handle allocation entirely.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f}, clock is at t={self._now:.6f}"
            )
        heapq.heappush(self._heap, (when, next(self._seq), None, callback, args))
        self._pending += 1

    def post_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`call_later`: no :class:`Event` handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.post_at(self._now + delay, callback, *args)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue until empty (or ``max_events`` callbacks ran).

        Returns the number of callbacks executed by this call.
        """
        return self._run(until=None, max_events=max_events)

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= deadline`` then set the clock to it.

        Returns the number of callbacks executed by this call.
        """
        executed = self._run(until=deadline, max_events=max_events)
        if self._now < deadline:
            self._now = deadline
        return executed

    def _run(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("event loop is not reentrant")
        if _sanitize.ACTIVE is not None:
            # Sanitized runs take a separate loop so the common path below
            # stays branch-free per event (~0% overhead when disabled).
            return self._run_checked(until, max_events, _sanitize.ACTIVE)
        self._running = True
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                entry = heap[0]
                event = entry[2]
                if event is not None and event.cancelled:
                    heappop(heap)
                    continue
                when = entry[0]
                if until is not None and when > until:
                    break
                heappop(heap)
                self._pending -= 1
                if event is not None:
                    event._finished = True
                self._now = when
                entry[3](*entry[4])
                executed += 1
        finally:
            self._processed += executed
            self._running = False
        return executed

    def _run_checked(
        self,
        until: Optional[float],
        max_events: Optional[int],
        sanitizer: "_sanitize.TransportSanitizer",
    ) -> int:
        """The :meth:`_run` loop with the clock-monotonicity sanitizer.

        Identical semantics; every popped event is checked against the
        ``clock_monotonic`` invariant before the clock advances.  The
        comparison is inlined — :meth:`TransportSanitizer.check_clock`
        (which raises) only runs on an actual violation — and the
        per-invariant counter is bulk-updated on exit, keeping the
        enabled overhead well under the 10% budget.
        """
        self._running = True
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                entry = heap[0]
                event = entry[2]
                if event is not None and event.cancelled:
                    heappop(heap)
                    continue
                when = entry[0]
                if until is not None and when > until:
                    break
                if when < self._now:
                    sanitizer.check_clock(self._now, when)
                heappop(heap)
                self._pending -= 1
                if event is not None:
                    event._finished = True
                self._now = when
                entry[3](*entry[4])
                executed += 1
        finally:
            counts = sanitizer.checks_run
            counts["clock_monotonic"] = counts.get("clock_monotonic", 0) + executed
            self._processed += executed
            self._running = False
        return executed

"""Event loop with a simulated clock.

The engine is a classic calendar queue: callbacks are scheduled at absolute
simulated times and executed in non-decreasing time order.  Ties are broken
by scheduling order so runs are deterministic.

Typical use::

    loop = EventLoop()
    loop.call_later(0.5, hello)          # run ``hello()`` at t=0.5s
    loop.run()                           # drain every pending event
    assert loop.now >= 0.5

Components built on top of the engine (links, pacers, retransmission
timers) never consult wall-clock time; they only ever observe
:attr:`EventLoop.now`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for invalid interactions with the event loop."""


class Event:
    """Handle for a scheduled callback.

    Supports cancellation; a cancelled event stays in the heap but is
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class EventLoop:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed_events(self) -> int:
        """Total number of callbacks executed so far."""
        return self._processed

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``.

        Scheduling in the past is an error: the simulation clock never
        rewinds, so such an event could only fire late and silently skew
        results.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f}, clock is at t={self._now:.6f}"
            )
        event = Event(when, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue until empty (or ``max_events`` callbacks ran).

        Returns the number of callbacks executed by this call.
        """
        return self._run(until=None, max_events=max_events)

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= deadline`` then set the clock to it.

        Returns the number of callbacks executed by this call.
        """
        executed = self._run(until=deadline, max_events=max_events)
        if self._now < deadline:
            self._now = deadline
        return executed

    def _run(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                self._processed += 1
        finally:
            self._running = False
        return executed

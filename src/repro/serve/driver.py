"""The serve-mode measuring client.

One :class:`ServeDriver` multiplexes every session of a campaign over a
single UDP socket (flow-demuxed by connection id), so 10k concurrent
sessions cost one file descriptor, not 10k.  Per session it

1. echoes any stored cookie in a byte-identical HQST tag (built by the
   simulator's own :meth:`~repro.cdn.client.WiraClient.build_hqst_tag`),
2. sends the CHLO with the planned-session spec and waits for the SHLO,
3. sends the GET — the wall-clock measurement anchor — and then runs the
   **real FLV demuxer** over the received stream, timestamping every
   completed video frame exactly as the simulated player does,
4. stores pushed Hx_QoS cookies in a bounded
   :class:`~repro.core.transport_cookie.ClientCookieStore` shared across
   all chains (the long-lived-client RSS story), and
5. repairs datagram gaps with ``RESEND`` requests so loopback drops
   never silently truncate a distribution.

The outcome is a real :class:`~repro.cdn.session.SessionResult`, so
fleet aggregates, reports and the HTML renderer consume socket sessions
unchanged.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.cdn.client import ClientMetrics, WiraClient
from repro.core.schemes import as_spec
from repro.cdn.session import SessionResult
from repro.core.transport_cookie import ClientCookieStore
from repro.media import flv
from repro.quic.connection import ConnectionStats
from repro.quic.frames import HxQosFrame
from repro.quic.handshake import HandshakeMessageType
from repro.quic.packet import Packet, PacketType
from repro.serve import protocol
from repro.serve.transport import Address, UdpEndpoint, open_endpoint
from repro.serve.wire import EnvelopeError, EnvelopeKind, decode_envelope, encode_envelope
from repro.workload.population import PlannedSession

#: Resend cadence for the unreliable handshake/request datagrams.
HANDSHAKE_RETRY = 0.6
HANDSHAKE_ATTEMPTS = 8

#: Gap-repair probe: fired when received data stalls with a known gap.
REPAIR_DELAY = 0.15
REPAIR_ATTEMPTS = 40

#: Wall-clock slack on top of the sim timeline before a session is
#: declared lost.
SESSION_GRACE = 5.0


class WireFailure(RuntimeError):
    """A session could not be completed over the socket."""


@dataclass
class ServeSessionOutcome:
    """One socket-measured session, plus its shard-side summary."""

    planned: PlannedSession
    scheme_value: str
    result: SessionResult
    summary: protocol.ShloSummary
    wall_ffct: Optional[float]
    retransmit_requests: int


@dataclass
class _Flow:
    """Receive-side state of one in-flight session."""

    connection_id: bytes
    shlo: "asyncio.Future[protocol.ShloSummary]"
    chunks: Dict[int, bytes] = field(default_factory=dict)
    contiguous: int = 0
    fin_at: Optional[int] = None
    demuxer: flv.FlvDemuxer = field(default_factory=lambda: flv.FlvDemuxer(expect_header=True))
    first_byte_at: Optional[float] = None
    first_frame_at: Optional[float] = None
    frame_times: List[float] = field(default_factory=list)
    bytes_received: int = 0
    cookies: List[HxQosFrame] = field(default_factory=list)
    progress: Optional[asyncio.Event] = None
    anchor: float = 0.0


class ServeDriver:
    """Campaign-wide client: one socket, many flows, one cookie store."""

    def __init__(
        self,
        server_addr: Address,
        campaign_seed: int,
        store_max_entries: Optional[int] = None,
        store_ttl: Optional[float] = None,
        playback_threshold: int = 1,
    ) -> None:
        self.server_addr = server_addr
        self.campaign_seed = campaign_seed
        self.playback_threshold = playback_threshold
        self.cookie_store = ClientCookieStore(
            max_entries=store_max_entries, ttl=store_ttl, on_evict=self._on_evict
        )
        self.endpoint: Optional[UdpEndpoint] = None
        self._flows: Dict[bytes, _Flow] = {}
        self.stats: Dict[str, int] = {
            "sessions": 0,
            "wire_failures": 0,
            "undecodable": 0,
            "unknown_flow": 0,
            "retransmit_requests": 0,
            "cookie_evictions": 0,
        }

    async def start(self) -> None:
        self.endpoint = await open_endpoint(self._on_datagram)

    def close(self) -> None:
        if self.endpoint is not None:
            self.endpoint.close()

    def _on_evict(self, origin: str, reason: str) -> None:
        self.stats["cookie_evictions"] += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                0.0, "wira:cookie_evicted", "serve", {"origin": origin, "reason": reason}
            )

    def _emit(self, name: str, data: Dict[str, object]) -> None:
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(0.0, name, "serve", data)

    # ------------------------------------------------------------------
    # receive path

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        try:
            envelope = decode_envelope(data)
            if envelope.kind != EnvelopeKind.DATA:
                return
            packet = protocol.parse_data_payload(envelope.payload)
        except ValueError:
            # Same drop-and-count discipline as the simulator's
            # corrupted-datagram path: malformed input never crashes the
            # receive loop and never partially applies.
            self.stats["undecodable"] += 1
            return
        flow = self._flows.get(packet.connection_id)
        if flow is None:
            self.stats["unknown_flow"] += 1
            return
        if packet.packet_type == PacketType.HANDSHAKE:
            self._on_shlo(flow, packet)
            return
        if packet.packet_type != PacketType.ONE_RTT:
            return
        loop_now = asyncio.get_running_loop().time()
        for frame in protocol.stream_frames(packet):
            if frame.stream_id == protocol.REQUEST_STREAM:
                self._on_stream_chunk(flow, frame.offset, frame.data, frame.fin, loop_now)
        for hx in protocol.hx_qos_frames(packet):
            flow.cookies.append(hx)
        if flow.progress is not None:
            flow.progress.set()

    def _on_shlo(self, flow: _Flow, packet: Packet) -> None:
        try:
            message = protocol.decode_handshake_packet(packet)
            if message is None or message.message_type != HandshakeMessageType.SHLO:
                return
            summary = protocol.ShloSummary.from_tags(dict(message.tags))
        except protocol.ProtocolError:
            self.stats["undecodable"] += 1
            return
        if not flow.shlo.done():
            flow.shlo.set_result(summary)

    def _on_stream_chunk(
        self, flow: _Flow, offset: int, data: bytes, fin: bool, now: float
    ) -> None:
        if fin:
            flow.fin_at = offset + len(data)
        if data and offset + len(data) > flow.contiguous:
            flow.chunks[offset] = bytes(data)
        # Advance the contiguous prefix through the demuxer, in order.
        advanced = True
        while advanced:
            advanced = False
            for chunk_offset in sorted(flow.chunks):
                chunk = flow.chunks[chunk_offset]
                if chunk_offset > flow.contiguous:
                    continue
                del flow.chunks[chunk_offset]
                if chunk_offset + len(chunk) <= flow.contiguous:
                    continue  # pure duplicate
                fresh = chunk[flow.contiguous - chunk_offset :]
                flow.contiguous += len(fresh)
                self._feed(flow, fresh, now)
                advanced = True
                break

    def _feed(self, flow: _Flow, data: bytes, now: float) -> None:
        if not data:
            return
        if flow.first_byte_at is None:
            flow.first_byte_at = now
        flow.bytes_received += len(data)
        for tag in flow.demuxer.feed(data):
            if not tag.is_video:
                continue
            flow.frame_times.append(now)
            if (
                len(flow.frame_times) == self.playback_threshold
                and flow.first_frame_at is None
            ):
                flow.first_frame_at = now

    # ------------------------------------------------------------------
    # send side

    def _sendto(self, payload: bytes) -> None:
        assert self.endpoint is not None
        self.endpoint.sendto(payload, self.server_addr)

    def _send_packet(self, od_key: str, packet: Packet) -> None:
        self._sendto(
            encode_envelope(EnvelopeKind.DATA, od_key.encode("utf-8"), packet.encode())
        )

    def _connection_id(self, scheme_value: str, planned: PlannedSession) -> bytes:
        rng = random.Random(
            f"serve-flow:{self.campaign_seed}:{scheme_value}:"
            f"{planned.od.od_id}:{planned.session_index}"
        )
        return rng.getrandbits(64).to_bytes(8, "big")

    # ------------------------------------------------------------------
    # one session

    async def run_session(
        self,
        planned: PlannedSession,
        scheme_value: str,
        od_key: str,
        stream_name: str,
        target_video_frames: int,
    ) -> ServeSessionOutcome:
        """Run one planned session over the socket; measure like a player."""
        loop = asyncio.get_running_loop()
        store_key = f"{scheme_value}|{od_key}"
        # TTL-prune before echoing so a stale cookie is never sent.
        self.cookie_store.get(store_key, now=planned.epoch)
        hqst = WiraClient.build_hqst_tag(self.cookie_store, origin_id=store_key)
        spec = protocol.ServeSpec(
            od_key=od_key,
            stream_name=stream_name,
            scheme=as_spec(scheme_value),
            handshake_mode=planned.handshake_mode,
            epoch=planned.epoch,
            seed=planned.seed,
            session_index=planned.session_index,
            target_video_frames=target_video_frames,
            conditions=planned.conditions,
            profile=planned.stream_profile,
        )
        connection_id = self._connection_id(scheme_value, planned)
        flow = _Flow(connection_id=connection_id, shlo=loop.create_future())
        flow.progress = asyncio.Event()
        self._flows[connection_id] = flow
        self.stats["sessions"] += 1
        self._emit(
            "serve:session_begin",
            {"od": od_key, "scheme": scheme_value, "session": planned.session_index},
        )
        try:
            return await self._run_session_inner(
                loop, flow, planned, scheme_value, od_key, spec, hqst, store_key,
                target_video_frames,
            )
        except WireFailure:
            self.stats["wire_failures"] += 1
            raise
        finally:
            self._flows.pop(connection_id, None)

    async def _run_session_inner(
        self,
        loop: asyncio.AbstractEventLoop,
        flow: _Flow,
        planned: PlannedSession,
        scheme_value: str,
        od_key: str,
        spec: protocol.ServeSpec,
        hqst: bytes,
        store_key: str,
        target_video_frames: int,
    ) -> ServeSessionOutcome:
        chlo = protocol.build_chlo_packet(flow.connection_id, hqst, spec)
        summary = await self._handshake(flow, od_key, chlo)

        # Measured phase: anchor, GET, then receive until terminal.
        flow.anchor = loop.time()
        get_packet = protocol.build_stream_packet(
            flow.connection_id,
            0,
            protocol.REQUEST_STREAM,
            0,
            f"GET /live/{spec.stream_name}.flv\r\n".encode("ascii"),
            fin=True,
        )
        self._send_packet(od_key, get_packet)
        retransmits = await self._receive_stream(flow, od_key, summary, get_packet)

        done = protocol.build_stream_packet(
            flow.connection_id, 1, protocol.CONTROL_STREAM, 0, protocol.DONE_MESSAGE
        )
        self._send_packet(od_key, done)

        cookie_delivered = False
        for hx in flow.cookies:
            if self.cookie_store.on_hx_qos_frame(
                store_key, hx, now=_cookie_receipt_time(hx, planned.epoch)
            ):
                cookie_delivered = True

        metrics = ClientMetrics(
            request_sent_at=0.0,
            first_byte_at=_rel(flow.first_byte_at, flow.anchor),
            first_frame_at=_rel(flow.first_frame_at, flow.anchor),
            video_frame_times=[t - flow.anchor for t in flow.frame_times],
            bytes_received=flow.bytes_received,
            cookies_received=len(flow.cookies),
        )
        completed = len(flow.frame_times) >= target_video_frames
        result = SessionResult(
            scheme=spec.scheme,
            handshake_mode=planned.handshake_mode,
            conditions=planned.conditions,
            completed=completed,
            client_metrics=metrics,
            ff_size_parsed=None,
            initial_params=None,
            # The sim leaves ff_server_stats None when no first frame was
            # delivered; mirror that so fflr excludes the same sessions.
            ff_server_stats=(
                None
                if summary.sim_ffct is None
                else ConnectionStats(
                    data_packets_sent=summary.ff_data_packets_sent,
                    data_packets_lost=summary.ff_data_packets_lost,
                )
            ),
            final_server_stats=ConnectionStats(),
            cookie_delivered=cookie_delivered,
            used_cookie=summary.used_cookie,
        )
        self._emit(
            "serve:session_complete",
            {
                "od": od_key,
                "scheme": scheme_value,
                "session": planned.session_index,
                "completed": completed,
                "ffct": metrics.ffct,
                "sim_ffct": summary.sim_ffct,
                "shard": summary.shard_id,
            },
        )
        return ServeSessionOutcome(
            planned=planned,
            scheme_value=scheme_value,
            result=result,
            summary=summary,
            wall_ffct=metrics.ffct,
            retransmit_requests=retransmits,
        )

    async def _handshake(
        self, flow: _Flow, od_key: str, chlo: Packet
    ) -> protocol.ShloSummary:
        """CHLO with retries until the SHLO lands (unmeasured phase)."""
        for attempt in range(HANDSHAKE_ATTEMPTS):
            self._send_packet(od_key, chlo)
            try:
                # The shard answers only after its sim run; give later
                # attempts progressively longer.
                timeout = HANDSHAKE_RETRY * (attempt + 1)
                return await asyncio.wait_for(asyncio.shield(flow.shlo), timeout)
            except asyncio.TimeoutError:
                continue
        raise WireFailure(f"no SHLO after {HANDSHAKE_ATTEMPTS} attempts for {od_key}")

    async def _receive_stream(
        self,
        flow: _Flow,
        od_key: str,
        summary: protocol.ShloSummary,
        get_packet: Packet,
    ) -> int:
        """Receive the replayed stream; repair gaps; enforce deadlines."""
        loop = asyncio.get_running_loop()
        deadline = flow.anchor + summary.sim_duration + SESSION_GRACE
        repairs = 0
        get_resent = False
        assert flow.progress is not None
        while True:
            if self._terminal(flow, summary):
                return repairs
            now = loop.time()
            if now > deadline:
                if repairs < REPAIR_ATTEMPTS:
                    repairs += 1
                    self._request_repair(flow, od_key)
                    deadline = now + 1.0
                    continue
                raise WireFailure(
                    f"session timed out for {od_key}: "
                    f"{flow.contiguous}/{summary.stream_length} bytes, "
                    f"fin={flow.fin_at is not None}, cookies={len(flow.cookies)}"
                )
            flow.progress.clear()
            try:
                await asyncio.wait_for(flow.progress.wait(), REPAIR_DELAY)
            except asyncio.TimeoutError:
                # Stalled: nothing arrived for a repair interval.
                if flow.first_byte_at is None and not get_resent:
                    # The GET itself may have been lost.
                    if loop.time() - flow.anchor > HANDSHAKE_RETRY:
                        self._send_packet(od_key, get_packet)
                        get_resent = True
                    continue
                if flow.chunks and repairs < REPAIR_ATTEMPTS:
                    # Out-of-order data is buffered: a gap exists now.
                    repairs += 1
                    self._request_repair(flow, od_key)

    def _terminal(self, flow: _Flow, summary: protocol.ShloSummary) -> bool:
        all_data = (
            flow.fin_at is not None
            and flow.contiguous >= summary.stream_length
        )
        cookie_ok = not summary.cookie_pushed or bool(flow.cookies)
        return all_data and cookie_ok

    def _request_repair(self, flow: _Flow, od_key: str) -> None:
        self.stats["retransmit_requests"] += 1
        self._emit(
            "serve:retransmit", {"od": od_key, "from": flow.contiguous}
        )
        packet = protocol.build_stream_packet(
            flow.connection_id,
            2,
            protocol.CONTROL_STREAM,
            0,
            protocol.build_resend_request(flow.contiguous),
        )
        self._send_packet(od_key, packet)


def _rel(stamp: Optional[float], anchor: float) -> Optional[float]:
    return None if stamp is None else stamp - anchor


def _cookie_receipt_time(frame: HxQosFrame, fallback: float) -> float:
    """Scenario-clock receipt time: the sealed frame's own timestamp.

    Cookie freshness lives on the scenario clock (planned epochs), not
    the wall clock, so the store's TTL and the next echo's timestamp
    must both be scenario times.  The pushed frame's cleartext timestamp
    is the seal time — within the session of the true receipt time.
    """
    metrics = frame.decoded_metrics()
    timestamp = metrics.get("timestamp")
    return float(timestamp) if timestamp is not None else fallback


__all__ = [
    "HANDSHAKE_ATTEMPTS",
    "HANDSHAKE_RETRY",
    "ServeDriver",
    "ServeSessionOutcome",
    "WireFailure",
]

"""Thin asyncio UDP endpoint helpers shared by shard, router, driver."""

from __future__ import annotations

import asyncio
import socket
from typing import Callable, Optional, Tuple

Address = Tuple[str, int]
DatagramHandler = Callable[[bytes, Address], None]

#: Socket receive buffer request.  Replayed media bursts can land many
#: 30 KB datagrams back-to-back; the kernel default (often 212 KB) drops
#: under a 10k-session load.  Best effort — the kernel may clamp it.
RCVBUF_BYTES = 8 * 1024 * 1024


class UdpEndpoint(asyncio.DatagramProtocol):
    """One bound UDP socket dispatching datagrams to a handler."""

    def __init__(self, handler: DatagramHandler) -> None:
        self._handler = handler
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.dropped_errors = 0

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        # Not isinstance-checked: CPython's selector datagram transport
        # does not inherit asyncio.DatagramTransport.
        self.transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._handler(data, addr)

    def error_received(self, exc: Exception) -> None:
        # ICMP unreachable etc. — count, keep serving.
        self.dropped_errors += 1

    @property
    def address(self) -> Address:
        assert self.transport is not None
        host, port = self.transport.get_extra_info("sockname")[:2]
        return str(host), int(port)

    def sendto(self, data: bytes, addr: Address) -> None:
        assert self.transport is not None
        self.transport.sendto(data, addr)

    def close(self) -> None:
        if self.transport is not None:
            self.transport.close()


async def open_endpoint(
    handler: DatagramHandler, host: str = "127.0.0.1", port: int = 0
) -> UdpEndpoint:
    """Bind a UDP socket (port 0 = ephemeral) with a boosted rcvbuf."""
    loop = asyncio.get_running_loop()
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, RCVBUF_BYTES)
    except OSError:
        pass
    sock.bind((host, port))
    sock.setblocking(False)
    _, protocol = await loop.create_datagram_endpoint(
        lambda: UdpEndpoint(handler), sock=sock
    )
    assert isinstance(protocol, UdpEndpoint)
    return protocol


__all__ = ["Address", "DatagramHandler", "RCVBUF_BYTES", "UdpEndpoint", "open_endpoint"]

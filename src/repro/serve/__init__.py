"""Service mode: the wire format over real localhost UDP sockets.

Everything below this package is **wall-clock territory**: sessions are
driven by ``asyncio`` against real sockets, so timings carry OS jitter
and nothing here is replay-deterministic.  That is the point — ROADMAP
item 2 asks for the sim-to-socket loop to be closed by measuring the
*same* wire format (varint headers, HQST tags, sealed Hx_QoS cookies,
the :mod:`repro.quic` codecs — no fork) through real I/O and comparing
the FFCT distributions against the simulator's.

Layout:

* :mod:`repro.serve.wire` — the datagram envelope framing `repro.quic`
  packets for transport over UDP, plus truncation-safe decoding.
* :mod:`repro.serve.ring` — consistent-hash ring with virtual nodes,
  keyed on OD pair.
* :mod:`repro.serve.store` — capacity-bounded, TTL-evicting keyed
  stores; the sharded store that survives reshards with bounded key
  movement.
* :mod:`repro.serve.transport` — thin asyncio UDP endpoint helpers.
* :mod:`repro.serve.shard` — the proxy-shard worker process: terminates
  CHLOs, runs the simulator as its timing oracle, replays the delivery
  timeline over the socket, pushes sealed cookies.
* :mod:`repro.serve.router` — consistent-hash front router with sticky
  (chain-pinned) affinity.
* :mod:`repro.serve.driver` — the measuring client: real FLV demux,
  wall-clock FFCT, cookie echo from a bounded client store.
* :mod:`repro.serve.loadtest` — campaign orchestration, the
  sim-vs-socket comparison, JSON/HTML reporting.
"""

from repro.serve.ring import HashRing
from repro.serve.store import BoundedKeyedStore, ShardedCookieStore
from repro.serve.wire import Envelope, EnvelopeError, EnvelopeKind

__all__ = [
    "BoundedKeyedStore",
    "Envelope",
    "EnvelopeError",
    "EnvelopeKind",
    "HashRing",
    "ShardedCookieStore",
]

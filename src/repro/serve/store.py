"""Bounded keyed stores for the serve edge.

:class:`BoundedKeyedStore` is the generic building block: an
insertion-ordered mapping with the same deterministic capacity/TTL
eviction discipline as the client-side
:class:`~repro.core.transport_cookie.ClientCookieStore` (refresh moves a
key to the back; capacity always evicts the front; TTL expiry runs
oldest-insertion first).  The router's flow table and chain pins are
instances of it, so every piece of per-session state at the edge is
RSS-bounded by construction.

:class:`ShardedCookieStore` composes one bounded store per shard behind
a :class:`~repro.serve.ring.HashRing`: reads and writes route by OD key,
and :meth:`ShardedCookieStore.reshard` migrates exactly the entries
whose ring owner changed — the consistent-hash-bounded fraction, pinned
by tests — dropping only what lands on a shard past capacity.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.serve.ring import HashRing

V = TypeVar("V")


class BoundedKeyedStore(Generic[V]):
    """Insertion-ordered keyed store with capacity + TTL eviction."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        ttl: Optional[float] = None,
        on_evict: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self.max_entries = max_entries
        self.ttl = ttl
        self.evicted_capacity = 0
        self.evicted_ttl = 0
        self._on_evict = on_evict
        self._entries: Dict[str, Tuple[V, float]] = {}

    @property
    def evictions(self) -> int:
        return self.evicted_capacity + self.evicted_ttl

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Tuple[str, ...]:
        """Keys in insertion (eviction) order."""
        return tuple(self._entries)

    def items(self) -> Iterator[Tuple[str, V, float]]:
        for key, (value, stamp) in self._entries.items():
            yield key, value, stamp

    def _evict(self, key: str, reason: str) -> None:
        del self._entries[key]
        if reason == "ttl":
            self.evicted_ttl += 1
        else:
            self.evicted_capacity += 1
        if self._on_evict is not None:
            self._on_evict(key, reason)

    def expire(self, now: float) -> None:
        if self.ttl is None:
            return
        for key in [
            k for k, (_, stamp) in self._entries.items() if now - stamp > self.ttl
        ]:
            self._evict(key, "ttl")

    def put(self, key: str, value: V, now: float) -> None:
        self.expire(now)
        self._entries.pop(key, None)
        self._entries[key] = (value, now)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._evict(next(iter(self._entries)), "capacity")

    def get(self, key: str, now: Optional[float] = None) -> Optional[V]:
        if now is not None:
            self.expire(now)
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def touch(self, key: str, now: float) -> bool:
        """Refresh recency/stamp without changing the value."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._entries[key] = (entry[0], now)
        return True

    def pop(self, key: str) -> Optional[V]:
        entry = self._entries.pop(key, None)
        return entry[0] if entry is not None else None


class ShardedCookieStore(Generic[V]):
    """Ring-routed federation of per-shard bounded stores."""

    def __init__(
        self,
        ring: HashRing,
        max_entries_per_shard: Optional[int] = None,
        ttl: Optional[float] = None,
    ) -> None:
        self.ring = ring
        self.max_entries_per_shard = max_entries_per_shard
        self.ttl = ttl
        self.shards: Dict[str, BoundedKeyedStore[V]] = {
            node: BoundedKeyedStore(max_entries_per_shard, ttl) for node in ring.nodes
        }
        self.moved_on_reshard = 0

    def shard_for(self, key: str) -> str:
        return self.ring.node_for(key)

    def put(self, key: str, value: V, now: float) -> str:
        shard = self.shard_for(key)
        self.shards[shard].put(key, value, now)
        return shard

    def get(self, key: str, now: Optional[float] = None) -> Optional[V]:
        return self.shards[self.shard_for(key)].get(key, now)

    def __len__(self) -> int:
        return sum(len(store) for store in self.shards.values())

    def reshard(self, new_ring: HashRing) -> int:
        """Adopt ``new_ring``, migrating only entries whose owner moved.

        Entries on removed shards and entries whose ring owner changed
        re-insert into their new shard (subject to its capacity/TTL
        discipline, in the deterministic old-shard-order).  Returns the
        number of migrated entries and accumulates it in
        :attr:`moved_on_reshard`.
        """
        self.ring = new_ring
        for node in new_ring.nodes:
            if node not in self.shards:
                self.shards[node] = BoundedKeyedStore(self.max_entries_per_shard, self.ttl)
        moved = 0
        for node in sorted(self.shards):
            store = self.shards[node]
            for key, value, stamp in list(store.items()):
                target = new_ring.node_for(key)
                if target != node:
                    store.pop(key)
                    self.shards[target].put(key, value, stamp)
                    moved += 1
        for node in sorted(self.shards):
            if node not in new_ring.nodes and len(self.shards[node]) == 0:
                del self.shards[node]
        self.moved_on_reshard += moved
        return moved


__all__ = ["BoundedKeyedStore", "ShardedCookieStore"]

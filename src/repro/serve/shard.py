"""The proxy-shard worker process.

A shard terminates serve sessions on a real UDP socket.  Per session it
runs the **simulator as its timing oracle**: the CHLO's ``WSPC`` spec
reconstructs the exact :class:`~repro.cdn.session.SessionSpec` the fleet
engine would replay, the echoed HQST cookie seeds a synthetic client
store (so the simulated server sees the same cookie hit/miss the wire
produced), and delivery taps capture *when* the simulated client
received every stream chunk and pushed cookie.  The shard then replays
that timeline over the socket at wall-clock offsets anchored at the
client's GET — so the socket-measured FFCT equals the simulated FFCT up
to scheduling jitter, and any wire-level cookie or codec bug shows up as
a cookie miss and a diverging distribution.

Chain state (origin, live-source caches) is keyed ``(scheme, od)`` and
must stay on one shard for a chain's lifetime — the live source is
stateful across a chain's sessions — which is exactly what the router's
sticky pins guarantee.

The shard's :class:`~repro.core.transport_cookie.ServerCookieManager` is
**per process** and salted with the shard id: N shards share the
deployment cookie key, and without the salt every shard would reuse the
nonce sequence starting at 0 (the two-time-pad regression this PR
fixes).

Run as a worker: ``python -m repro.serve.shard --shard-id 0
--cookie-key-hex … --salt-hex … --ready-file …``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.cdn.origin import Origin
from repro.cdn.session import SessionResult, SessionSpec, StreamingSession
from repro.core.config import WiraConfig
from repro.core.transport_cookie import ClientCookieStore, ServerCookieManager, decode_hqst
from repro.core.cookie_crypto import CookieError
from repro.quic.frames import HxQosFrame
from repro.quic.handshake import TAG_HQST, HandshakeMessageType
from repro.quic.packet import Packet, PacketType
from repro.serve import protocol
from repro.serve.transport import Address, UdpEndpoint, open_endpoint
from repro.simnet.engine import EventLoop as SimLoop
from repro.serve.wire import (
    MAX_CHUNK_BYTES,
    EnvelopeError,
    EnvelopeKind,
    decode_envelope,
    encode_envelope,
)

#: Delivery-tap entries closer together than this replay as one
#: datagram; the bound on the timing distortion coalescing introduces.
COALESCE_GAP = 0.002

#: Idle seconds after which finished session state is swept.
SESSION_LINGER = 30.0


@dataclass
class _ReplayEvent:
    """One scheduled send of the replay timeline."""

    at: float  # seconds relative to the GET anchor (sim clock)
    data: bytes = b""
    offset: int = 0
    fin: bool = False
    hx_frame: Optional[HxQosFrame] = None


@dataclass
class _ChainState:
    origin: Origin
    stream_name: str
    sessions_run: int = 0


@dataclass
class _ShardSession:
    connection_id: bytes
    peer: Address
    od_key: str
    last_active: float = 0.0
    shlo_payload: Optional[bytes] = None
    events: List[_ReplayEvent] = field(default_factory=list)
    replay_started: bool = False
    replay_anchor: float = 0.0
    sent_through: int = 0  # index into events already sent
    packet_number: int = 1
    done: bool = False


class ShardServer:
    """One shard worker: socket front-end plus sim-oracle back-end."""

    def __init__(
        self,
        shard_id: int,
        cookie_key: bytes,
        instance_salt: bytes,
        wira_config: Optional[WiraConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.wira = wira_config or WiraConfig()
        self.cookie_manager = ServerCookieManager(
            cookie_key,
            staleness_delta=self.wira.staleness_delta,
            instance_salt=instance_salt,
        )
        self.endpoint: Optional[UdpEndpoint] = None
        self._chains: Dict[Tuple[str, str], _ChainState] = {}
        self._sessions: Dict[bytes, _ShardSession] = {}
        self._tasks: List[asyncio.Task[None]] = []
        self._stopped = asyncio.Event()
        # When a trace bus is active, sim runs serialize under this lock
        # so per-session trace scopes never interleave.
        self._sim_lock = asyncio.Lock()
        self.stats: Dict[str, int] = {
            "sessions": 0,
            "sims_run": 0,
            "replays": 0,
            "retransmits": 0,
            "undecodable": 0,
            "unknown_flow": 0,
            "bytes_sent": 0,
            "datagrams_sent": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> Address:
        self.endpoint = await open_endpoint(self._on_datagram, self.host, self.port)
        self._tasks.append(asyncio.create_task(self._sweeper()))
        return self.endpoint.address

    async def run_until_shutdown(self) -> None:
        await self._stopped.wait()

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        if self.endpoint is not None:
            self.endpoint.close()

    async def _sweeper(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(5.0)
            now = loop.time()
            for cid in [
                c
                for c, s in self._sessions.items()
                if s.done or (s.shlo_payload is not None and now - s.last_active > SESSION_LINGER)
            ]:
                del self._sessions[cid]

    # ------------------------------------------------------------------
    # receive path

    def _send(self, data: bytes, addr: Address) -> None:
        assert self.endpoint is not None
        self.endpoint.sendto(data, addr)
        self.stats["bytes_sent"] += len(data)
        self.stats["datagrams_sent"] += 1

    def _send_packet(self, packet: Packet, addr: Address) -> None:
        self._send(encode_envelope(EnvelopeKind.DATA, b"", packet.encode()), addr)

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        try:
            envelope = decode_envelope(data)
        except EnvelopeError:
            # Drop-and-count: the socket twin of Datagram.corrupted.
            self.stats["undecodable"] += 1
            return
        if envelope.kind == EnvelopeKind.CONTROL:
            self._on_control(envelope.payload, addr)
            return
        try:
            packet = protocol.parse_data_payload(envelope.payload)
        except ValueError:
            self.stats["undecodable"] += 1
            return
        if packet.packet_type == PacketType.INITIAL:
            self._on_chlo(packet, envelope.od_key, addr)
        else:
            self._on_session_packet(packet, addr)

    def _on_control(self, payload: bytes, addr: Address) -> None:
        try:
            request = json.loads(payload.decode("utf-8"))
            op = request["op"]
            req_id = request.get("req", 0)
        except (ValueError, KeyError, UnicodeDecodeError):
            self.stats["undecodable"] += 1
            return
        if op == "stats":
            reply = {
                "op": "stats",
                "req": req_id,
                "shard_id": self.shard_id,
                "stats": dict(self.stats),
                "rejected_cookies": self.cookie_manager.rejected_cookies,
                "stale_cookies": self.cookie_manager.stale_cookies,
                "chains": len(self._chains),
                "live_sessions": len(self._sessions),
            }
        elif op == "ping":
            reply = {"op": "pong", "req": req_id, "shard_id": self.shard_id}
        elif op == "shutdown":
            reply = {"op": "bye", "req": req_id, "shard_id": self.shard_id}
            self._stopped.set()
        else:
            self.stats["undecodable"] += 1
            return
        blob = json.dumps(reply, sort_keys=True).encode("utf-8")
        self._send(encode_envelope(EnvelopeKind.CONTROL, b"", blob), addr)

    def _on_chlo(self, packet: Packet, od_key: bytes, addr: Address) -> None:
        loop = asyncio.get_running_loop()
        session = self._sessions.get(packet.connection_id)
        if session is not None:
            # Duplicate CHLO (client retry): re-answer once ready.
            session.last_active = loop.time()
            session.peer = addr
            if session.shlo_payload is not None:
                self._send(session.shlo_payload, addr)
            return
        try:
            message = protocol.decode_handshake_packet(packet)
        except protocol.ProtocolError:
            self.stats["undecodable"] += 1
            return
        if message is None or message.message_type != HandshakeMessageType.CHLO:
            self.stats["undecodable"] += 1
            return
        session = _ShardSession(
            connection_id=packet.connection_id,
            peer=addr,
            od_key=od_key.decode("utf-8", "replace"),
            last_active=loop.time(),
        )
        self._sessions[packet.connection_id] = session
        self.stats["sessions"] += 1
        self._tasks.append(
            asyncio.create_task(self._handle_session(session, dict(message.tags)))
        )

    def _on_session_packet(self, packet: Packet, addr: Address) -> None:
        session = self._sessions.get(packet.connection_id)
        if session is None:
            self.stats["unknown_flow"] += 1
            return
        session.last_active = asyncio.get_running_loop().time()
        session.peer = addr
        for frame in protocol.stream_frames(packet):
            if frame.stream_id == protocol.REQUEST_STREAM:
                if frame.data.startswith(b"GET ") and not session.replay_started:
                    session.replay_started = True
                    session.replay_anchor = asyncio.get_running_loop().time()
                    self.stats["replays"] += 1
                    self._tasks.append(asyncio.create_task(self._replay(session)))
            elif frame.stream_id == protocol.CONTROL_STREAM:
                if frame.data == protocol.DONE_MESSAGE:
                    session.done = True
                elif frame.data.startswith(protocol.RESEND_PREFIX):
                    try:
                        offset = protocol.parse_resend_request(frame.data)
                    except protocol.ProtocolError:
                        self.stats["undecodable"] += 1
                        continue
                    self._resend_from(session, offset)

    # ------------------------------------------------------------------
    # sim oracle

    def _chain_state(self, spec: protocol.ServeSpec) -> _ChainState:
        key = (spec.scheme.value, spec.od_key)
        state = self._chains.get(key)
        if state is None:
            origin = Origin()
            origin.add_stream(spec.stream_name, spec.profile)
            state = _ChainState(origin=origin, stream_name=spec.stream_name)
            self._chains[key] = state
        return state

    async def _handle_session(
        self, session: _ShardSession, tags: Dict[bytes, bytes]
    ) -> None:
        try:
            spec = protocol.ServeSpec.from_json_bytes(tags.get(protocol.TAG_WSPC, b""))
        except protocol.ProtocolError:
            self.stats["undecodable"] += 1
            self._sessions.pop(session.connection_id, None)
            return

        # Seed a synthetic client store with the echoed cookie so the
        # simulated handshake sees the exact sealed bytes the wire
        # carried — this is where a forked wire format would break.
        synthetic_store = ClientCookieStore()
        supports = True
        try:
            supported, received_at_ms, sealed = decode_hqst(tags.get(TAG_HQST, b"\x01"))
            supports = supported
            if sealed is not None:
                synthetic_store.update(
                    "origin", sealed, (received_at_ms or 0) / 1e3
                )
        except CookieError:
            # A corrupt echo behaves like no echo; the sim server will
            # count the rejection when the blob fails to open.
            pass

        chain = self._chain_state(spec)
        sim_spec = SessionSpec(
            conditions=spec.conditions,
            scheme=spec.scheme,
            handshake_mode=spec.handshake_mode,
            epoch=spec.epoch,
            seed=spec.seed,
            target_video_frames=spec.target_video_frames,
            wira_config=self.wira,
            client_supports_cookies=supports,
            trace_label=(
                f"serve-{spec.scheme.value}-{spec.od_key}-s{spec.session_index}"
            ),
        )
        stream_tap: List[Tuple[float, int, bytes, bool]] = []
        hx_tap: List[Tuple[float, HxQosFrame]] = []
        sim_session = StreamingSession.from_spec(
            sim_spec,
            chain.origin,
            chain.stream_name,
            cookie_store=synthetic_store,
            cookie_manager=self.cookie_manager,
            stream_data_tap=lambda t, sid, data, fin: stream_tap.append(
                (t, sid, data, fin)
            ),
            hx_qos_tap=lambda t, frame: hx_tap.append((t, frame)),  # type: ignore[arg-type]
        )
        result, sim_end = await self._run_sim(sim_session)
        if sim_end is None:
            # Traced (blocking) runs don't expose their loop clock; the
            # timeline end is the last tapped delivery plus a margin.
            last_stream = max((t for t, _, _, _ in stream_tap), default=0.0)
            last_hx = max((t for t, _ in hx_tap), default=0.0)
            sim_end = max(last_stream, last_hx) + 0.05
        chain.sessions_run += 1
        self.stats["sims_run"] += 1

        events, stream_length = _build_replay_events(stream_tap, hx_tap, sim_end)
        session.events = events
        summary = protocol.ShloSummary(
            completed=result.completed,
            used_cookie=result.used_cookie,
            cookie_pushed=result.cookie_delivered,
            sim_ffct=result.ffct,
            stream_length=stream_length,
            sim_duration=sim_end,
            ff_data_packets_sent=(
                result.ff_server_stats.data_packets_sent
                if result.ff_server_stats is not None
                else 0
            ),
            ff_data_packets_lost=(
                result.ff_server_stats.data_packets_lost
                if result.ff_server_stats is not None
                else 0
            ),
            frames_delivered=len(result.client_metrics.video_frame_times),
            shard_id=self.shard_id,
        )
        shlo = protocol.build_shlo_packet(session.connection_id, 0, summary)
        session.shlo_payload = encode_envelope(EnvelopeKind.DATA, b"", shlo.encode())
        session.last_active = asyncio.get_running_loop().time()
        self._send(session.shlo_payload, session.peer)

    async def _run_sim(
        self, sim_session: StreamingSession
    ) -> Tuple[SessionResult, Optional[float]]:
        """Run the sim, yielding to the socket loop between slices.

        With a trace bus active the whole run serializes under a lock
        (scoped trace files cannot interleave) and uses the plain
        blocking driver; otherwise the run is sliced with the solo
        driver's exact slice discipline, so results are identical.
        Returns ``(result, sim clock at drain end)`` — the clock is
        ``None`` on the traced path, which hides its loop.
        """
        if _obs.ACTIVE is not None:
            async with self._sim_lock:
                return sim_session.run(), None

        sim_loop = SimLoop()
        live = sim_session._setup(sim_loop)
        while (
            not live.client.done
            and sim_loop.pending_events
            and sim_loop.now < sim_session.timeout
        ):
            sim_loop.run_until(
                min(sim_session.timeout, sim_loop.now + 0.25), max_events=100_000
            )
            await asyncio.sleep(0)
        pushed = False
        if live.client.done and sim_session.client_supports_cookies:
            pushed = live.server.flush_cookie()
            if pushed:
                drained = sim_loop.now + max(4 * sim_session.conditions.rtt, 0.2)
                while sim_loop.pending_events and sim_loop.now < drained:
                    sim_loop.run_until(drained, max_events=100_000)
                    await asyncio.sleep(0)
        cookie_delivered = pushed and live.client.metrics.cookies_received > 0
        result = sim_session._finalize(live, cookie_delivered)
        return result, sim_loop.now

    # ------------------------------------------------------------------
    # replay

    async def _replay(self, session: _ShardSession) -> None:
        loop = asyncio.get_running_loop()
        for index, event in enumerate(session.events):
            delay = session.replay_anchor + event.at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if session.done:
                return
            self._send_event(session, event)
            session.sent_through = index + 1

    def _send_event(self, session: _ShardSession, event: _ReplayEvent) -> None:
        if event.hx_frame is not None:
            packet = protocol.build_hx_qos_packet(
                session.connection_id, session.packet_number, event.hx_frame
            )
        else:
            packet = protocol.build_stream_packet(
                session.connection_id,
                session.packet_number,
                protocol.REQUEST_STREAM,
                event.offset,
                event.data,
                fin=event.fin,
            )
        session.packet_number += 1
        self._send_packet(packet, session.peer)

    def _resend_from(self, session: _ShardSession, offset: int) -> None:
        """Re-send already-due events covering stream bytes >= offset.

        Duplicates are harmless — the client reassembles by offset — so
        the repair path favours simplicity: everything due again.
        """
        for event in session.events[: session.sent_through]:
            if event.hx_frame is not None or event.fin or event.offset + len(event.data) > offset:
                self._send_event(session, event)
                self.stats["retransmits"] += 1


def _build_replay_events(
    stream_tap: List[Tuple[float, int, bytes, bool]],
    hx_tap: List[Tuple[float, HxQosFrame]],
    sim_end: float,
) -> Tuple[List[_ReplayEvent], int]:
    """Coalesce the delivery taps into a send schedule.

    Adjacent stream deliveries within :data:`COALESCE_GAP` merge into
    one datagram (bounded by :data:`MAX_CHUNK_BYTES`); cookie pushes
    keep their own timestamps.  A session whose sim never FINished gets
    an explicit empty FIN at the timeline end so the client can
    terminate.
    """
    events: List[_ReplayEvent] = []
    offset = 0
    saw_fin = False
    for at, stream_id, data, fin in stream_tap:
        if stream_id != protocol.REQUEST_STREAM:
            continue
        saw_fin = saw_fin or fin
        # A single sim delivery can be an arbitrarily large reassembled
        # burst — far beyond one UDP datagram — so slice FIRST, then
        # coalesce: every event stays under MAX_CHUNK_BYTES and sendto
        # never hits EMSGSIZE.
        view = memoryview(data)
        for start in range(0, max(1, len(view)), MAX_CHUNK_BYTES):
            piece = bytes(view[start : start + MAX_CHUNK_BYTES])
            piece_fin = fin and start + MAX_CHUNK_BYTES >= len(view)
            if (
                events
                and events[-1].hx_frame is None
                and not events[-1].fin
                and at - events[-1].at <= COALESCE_GAP
                and len(events[-1].data) + len(piece) <= MAX_CHUNK_BYTES
            ):
                events[-1].data += piece
                events[-1].fin = piece_fin
            else:
                events.append(
                    _ReplayEvent(at=at, data=piece, offset=offset, fin=piece_fin)
                )
            offset += len(piece)
    stream_length = offset
    for at, frame in hx_tap:
        events.append(_ReplayEvent(at=at, hx_frame=frame))
    if not saw_fin:
        events.append(_ReplayEvent(at=sim_end, offset=stream_length, fin=True))
    events.sort(key=lambda e: e.at)
    return events, stream_length


# ----------------------------------------------------------------------
# worker entry point


def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.serve.shard", description="Wira serve-mode shard worker"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--shard-id", type=int, required=True)
    parser.add_argument("--cookie-key-hex", required=True)
    parser.add_argument("--salt-hex", required=True)
    parser.add_argument("--wira-json", default=None, help="WiraConfig fields as JSON")
    parser.add_argument(
        "--ready-file",
        required=True,
        help="File to write {'port': …} JSON to once the socket is bound",
    )
    return parser.parse_args(argv)


async def _amain(args: argparse.Namespace) -> None:
    wira = (
        WiraConfig(**json.loads(args.wira_json)) if args.wira_json is not None else None
    )
    server = ShardServer(
        shard_id=args.shard_id,
        cookie_key=bytes.fromhex(args.cookie_key_hex),
        instance_salt=bytes.fromhex(args.salt_hex),
        wira_config=wira,
        host=args.host,
        port=args.port,
    )
    host, port = await server.start()
    ready = {"host": host, "port": port, "shard_id": args.shard_id}
    ready_path = Path(args.ready_file)
    tmp = ready_path.with_suffix(ready_path.suffix + ".tmp")
    tmp.write_text(json.dumps(ready))
    tmp.rename(ready_path)
    try:
        await server.run_until_shutdown()
    finally:
        await server.close()


def main(argv: Optional[List[str]] = None) -> int:
    asyncio.run(_amain(_parse_args(argv)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

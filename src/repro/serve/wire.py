"""Datagram envelope for serve-mode UDP traffic.

One UDP datagram carries one envelope:

====================  =================================================
byte 0                magic ``0x57`` (``'W'``)
byte 1                kind — ``0`` DATA, ``1`` CONTROL
varint                protocol version (currently 1)
varint + bytes        OD-pair routing key (length may be 0)
rest                  payload
====================  =================================================

DATA payloads are :class:`repro.quic.packet.Packet` encodings — the
simulator's exact packet codec, reused unforked; the 8-byte connection
id doubles as the serve flow id, and :func:`peek_connection_id` reads it
without a full parse so the router can forward on a fixed-offset peek.
CONTROL payloads are UTF-8 JSON objects (shard stats/shutdown plumbing).

Decoding is strict and total: any truncated or malformed datagram
raises :class:`EnvelopeError`, and receive paths drop-and-count exactly
like the simulator handles ``Datagram.corrupted`` — never crash, never
guess (the parity is pinned by tests/serve/test_truncation.py).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.quic.packet import CONNECTION_ID_BYTES
from repro.quic.varint import decode_varint, encode_varint

MAGIC = 0x57
WIRE_VERSION = 1

#: Stay well under the 65,507-byte UDP payload ceiling while keeping
#: datagram counts low for replayed media bursts.
MAX_CHUNK_BYTES = 30_000


class EnvelopeError(ValueError):
    """Raised on malformed or truncated serve datagrams."""


class EnvelopeKind(enum.IntEnum):
    DATA = 0
    CONTROL = 1


@dataclass(frozen=True)
class Envelope:
    """One decoded serve datagram."""

    kind: EnvelopeKind
    od_key: bytes
    payload: bytes


def encode_envelope(kind: EnvelopeKind, od_key: bytes, payload: bytes) -> bytes:
    out = bytearray([MAGIC, int(kind)])
    out += encode_varint(WIRE_VERSION)
    out += encode_varint(len(od_key))
    out += od_key
    out += payload
    return bytes(out)


def decode_envelope(data: bytes) -> Envelope:
    if len(data) < 3:
        raise EnvelopeError("datagram too short for an envelope header")
    if data[0] != MAGIC:
        raise EnvelopeError(f"bad magic byte 0x{data[0]:02x}")
    try:
        kind = EnvelopeKind(data[1])
    except ValueError as exc:
        raise EnvelopeError(f"unknown envelope kind {data[1]}") from exc
    try:
        version, offset = decode_varint(data, 2)
        key_len, offset = decode_varint(data, offset)
    except ValueError as exc:
        raise EnvelopeError(f"malformed envelope header: {exc}") from exc
    if version != WIRE_VERSION:
        raise EnvelopeError(f"unsupported envelope version {version}")
    if offset + key_len > len(data):
        raise EnvelopeError("truncated OD key")
    od_key = bytes(data[offset : offset + key_len])
    return Envelope(kind, od_key, bytes(data[offset + key_len :]))


def peek_connection_id(packet_payload: bytes) -> bytes:
    """The 8-byte connection (flow) id of a DATA payload, header-only.

    Mirrors the :class:`~repro.quic.packet.Packet` layout — one flags
    byte, then the connection id — without parsing frames, so the
    router's forwarding cost is independent of payload size.
    """
    if len(packet_payload) < 1 + CONNECTION_ID_BYTES:
        raise EnvelopeError("payload too short for a packet header")
    return bytes(packet_payload[1 : 1 + CONNECTION_ID_BYTES])


__all__ = [
    "Envelope",
    "EnvelopeError",
    "EnvelopeKind",
    "MAGIC",
    "MAX_CHUNK_BYTES",
    "WIRE_VERSION",
    "decode_envelope",
    "encode_envelope",
    "peek_connection_id",
]

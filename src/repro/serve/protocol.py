"""Serve-mode session protocol: messages, spec codec, receive parsing.

The exchange per session, all inside the existing codecs (handshake
messages ride :class:`~repro.quic.frames.CryptoFrame` in INITIAL
packets; data and control ride :class:`~repro.quic.frames.StreamFrame`
in 1-RTT packets; cookies ride :class:`~repro.quic.frames.HxQosFrame`):

1. client → shard  ``CHLO`` carrying the standard ``HQST`` cookie echo
   (byte-identical to the simulator's tag) plus a serve-only ``WSPC``
   tag: the planned-session spec as canonical JSON.
2. shard → client  ``SHLO`` whose tags report the shard's sim outcome
   (completion, sim FFCT, stream length, FF loss counts, …) — the
   unmeasured phase ends here.
3. client → shard  the ``GET`` request on stream 0 — the measured phase
   anchor; the shard replays the sim's delivery timeline from here.
4. shard → client  stream-0 data at the sim's offsets, then any pushed
   Hx_QoS frame, then FIN.  Gap repair uses ``RESEND:<offset>`` on
   stream 1; the client's final ``DONE`` releases shard state.

Receive-path parsing (:func:`parse_data_payload`) is drop-and-count on
any malformed datagram, mirroring the simulator's
``Datagram.corrupted``/undecodable handling in
:meth:`repro.quic.connection.Connection.datagram_received`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.core.schemes import SchemeSpec, as_spec
from repro.media.source import StreamProfile
from repro.quic.connection import HandshakeMode
from repro.quic.frames import CryptoFrame, HxQosFrame, StreamFrame
from repro.quic.handshake import (
    TAG_HQST,
    HandshakeMessage,
    HandshakeMessageType,
    HandshakeParseError,
    chlo,
)
from repro.quic.packet import CONNECTION_ID_BYTES, Packet, PacketType
from repro.quic.varint import decode_varint, encode_varint
from repro.simnet.path import NetworkConditions

#: Serve-only handshake tags (4 bytes each, like every gQUIC tag).
TAG_WSPC = b"WSPC"  # CHLO: planned-session spec, canonical JSON
TAG_CMPL = b"CMPL"  # SHLO: sim session completed (0/1)
TAG_COKH = b"COKH"  # SHLO: sim accepted the echoed cookie (0/1)
TAG_COKP = b"COKP"  # SHLO: a sealed cookie will be pushed after data (0/1)
TAG_SFCT = b"SFCT"  # SHLO: sim FFCT, microseconds (absent if none)
TAG_SLEN = b"SLEN"  # SHLO: total stream-0 bytes the replay will send
TAG_SDUR = b"SDUR"  # SHLO: sim timeline duration, milliseconds
TAG_FFSN = b"FFSN"  # SHLO: data packets sent through first frame (sim)
TAG_FFSL = b"FFSL"  # SHLO: data packets lost through first frame (sim)
TAG_NFRM = b"NFRM"  # SHLO: video frames the sim delivered
TAG_SHRD = b"SHRD"  # SHLO: serving shard id

REQUEST_STREAM = 0
CONTROL_STREAM = 1

RESEND_PREFIX = b"RESEND:"
DONE_MESSAGE = b"DONE"


class ProtocolError(ValueError):
    """Raised on serve messages that parse but violate the protocol."""


@dataclass(frozen=True)
class ServeSpec:
    """Everything a shard needs to reconstruct one planned session."""

    od_key: str
    stream_name: str
    scheme: SchemeSpec
    handshake_mode: HandshakeMode
    epoch: float
    seed: int
    session_index: int
    target_video_frames: int
    conditions: NetworkConditions
    profile: StreamProfile

    def to_json_bytes(self) -> bytes:
        payload = {
            "od": self.od_key,
            "stream": self.stream_name,
            "scheme": self.scheme.value,
            "mode": self.handshake_mode.value,
            "epoch": self.epoch,
            "seed": self.seed,
            "session_index": self.session_index,
            "frames": self.target_video_frames,
            "conditions": asdict(self.conditions),
            "profile": asdict(self.profile),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "ServeSpec":
        try:
            payload = json.loads(data.decode("utf-8"))
            return cls(
                od_key=str(payload["od"]),
                stream_name=str(payload["stream"]),
                scheme=as_spec(str(payload["scheme"])),
                handshake_mode=HandshakeMode(payload["mode"]),
                epoch=float(payload["epoch"]),
                seed=int(payload["seed"]),
                session_index=int(payload["session_index"]),
                target_video_frames=int(payload["frames"]),
                conditions=NetworkConditions(**payload["conditions"]),
                profile=StreamProfile(**payload["profile"]),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed WSPC spec: {exc}") from exc


@dataclass(frozen=True)
class ShloSummary:
    """The sim outcome a shard reports before the measured phase."""

    completed: bool
    used_cookie: bool
    cookie_pushed: bool
    sim_ffct: Optional[float]  # seconds
    stream_length: int
    sim_duration: float  # seconds
    ff_data_packets_sent: int
    ff_data_packets_lost: int
    frames_delivered: int
    shard_id: int

    def to_tags(self) -> Dict[bytes, bytes]:
        tags = {
            TAG_CMPL: b"\x01" if self.completed else b"\x00",
            TAG_COKH: b"\x01" if self.used_cookie else b"\x00",
            TAG_COKP: b"\x01" if self.cookie_pushed else b"\x00",
            TAG_SLEN: encode_varint(self.stream_length),
            TAG_SDUR: encode_varint(max(0, int(self.sim_duration * 1e3))),
            TAG_FFSN: encode_varint(self.ff_data_packets_sent),
            TAG_FFSL: encode_varint(self.ff_data_packets_lost),
            TAG_NFRM: encode_varint(self.frames_delivered),
            TAG_SHRD: encode_varint(self.shard_id),
        }
        if self.sim_ffct is not None:
            tags[TAG_SFCT] = encode_varint(max(0, int(self.sim_ffct * 1e6)))
        return tags

    @classmethod
    def from_tags(cls, tags: Dict[bytes, bytes]) -> "ShloSummary":
        try:
            sim_ffct = None
            if TAG_SFCT in tags:
                sim_ffct = decode_varint(tags[TAG_SFCT])[0] / 1e6
            return cls(
                completed=tags[TAG_CMPL] == b"\x01",
                used_cookie=tags[TAG_COKH] == b"\x01",
                cookie_pushed=tags[TAG_COKP] == b"\x01",
                sim_ffct=sim_ffct,
                stream_length=decode_varint(tags[TAG_SLEN])[0],
                sim_duration=decode_varint(tags[TAG_SDUR])[0] / 1e3,
                ff_data_packets_sent=decode_varint(tags[TAG_FFSN])[0],
                ff_data_packets_lost=decode_varint(tags[TAG_FFSL])[0],
                frames_delivered=decode_varint(tags[TAG_NFRM])[0],
                shard_id=decode_varint(tags[TAG_SHRD])[0],
            )
        except (KeyError, ValueError) as exc:
            raise ProtocolError(f"malformed SHLO summary: {exc}") from exc


# ----------------------------------------------------------------------
# Packet builders


def build_chlo_packet(connection_id: bytes, hqst_tag: bytes, spec: ServeSpec) -> Packet:
    message = chlo(full=True, extra_tags={TAG_HQST: hqst_tag, TAG_WSPC: spec.to_json_bytes()})
    return Packet(
        PacketType.INITIAL,
        connection_id,
        0,
        (CryptoFrame(offset=0, data=message.encode()),),
    )


def build_shlo_packet(
    connection_id: bytes, packet_number: int, summary: ShloSummary
) -> Packet:
    message = HandshakeMessage(HandshakeMessageType.SHLO, summary.to_tags())
    return Packet(
        PacketType.HANDSHAKE,
        connection_id,
        packet_number,
        (CryptoFrame(offset=0, data=message.encode()),),
    )


def build_stream_packet(
    connection_id: bytes,
    packet_number: int,
    stream_id: int,
    offset: int,
    data: bytes,
    fin: bool = False,
) -> Packet:
    return Packet(
        PacketType.ONE_RTT,
        connection_id,
        packet_number,
        (StreamFrame(stream_id=stream_id, offset=offset, data=data, fin=fin),),
    )


def build_hx_qos_packet(
    connection_id: bytes, packet_number: int, frame: HxQosFrame
) -> Packet:
    return Packet(PacketType.ONE_RTT, connection_id, packet_number, (frame,))


def build_resend_request(offset: int) -> bytes:
    return RESEND_PREFIX + encode_varint(offset)


def parse_resend_request(data: bytes) -> int:
    if not data.startswith(RESEND_PREFIX):
        raise ProtocolError("not a RESEND control message")
    try:
        offset, end = decode_varint(data, len(RESEND_PREFIX))
    except ValueError as exc:
        raise ProtocolError(f"malformed RESEND offset: {exc}") from exc
    if end != len(data):
        raise ProtocolError("trailing bytes after RESEND offset")
    return offset


# ----------------------------------------------------------------------
# Receive-path parsing


def decode_handshake_packet(
    packet: Packet,
) -> Optional[HandshakeMessage]:
    """The handshake message of an INITIAL/HANDSHAKE packet, if any."""
    if packet.packet_type not in (PacketType.INITIAL, PacketType.HANDSHAKE):
        return None
    for frame in packet.frames:
        if isinstance(frame, CryptoFrame):
            try:
                return HandshakeMessage.decode(frame.data)
            except HandshakeParseError as exc:
                raise ProtocolError(f"bad crypto payload: {exc}") from exc
    return None


def parse_data_payload(payload: bytes) -> Packet:
    """Decode a DATA envelope payload, strictly.

    Raises ``ValueError`` (via the underlying codecs) on anything
    malformed — callers drop the datagram and bump a counter, exactly
    the simulator's corrupted/undecodable discipline.
    """
    if len(payload) < 1 + CONNECTION_ID_BYTES + 1:
        raise ProtocolError("payload too short for a packet")
    return Packet.decode(payload)


def stream_frames(packet: Packet) -> Tuple[StreamFrame, ...]:
    return tuple(f for f in packet.frames if isinstance(f, StreamFrame))


def hx_qos_frames(packet: Packet) -> Tuple[HxQosFrame, ...]:
    return tuple(f for f in packet.frames if isinstance(f, HxQosFrame))


__all__ = [
    "CONTROL_STREAM",
    "DONE_MESSAGE",
    "ProtocolError",
    "REQUEST_STREAM",
    "RESEND_PREFIX",
    "ServeSpec",
    "ShloSummary",
    "TAG_WSPC",
    "build_chlo_packet",
    "build_hx_qos_packet",
    "build_resend_request",
    "build_shlo_packet",
    "build_stream_packet",
    "decode_handshake_packet",
    "hx_qos_frames",
    "parse_data_payload",
    "parse_resend_request",
    "stream_frames",
]

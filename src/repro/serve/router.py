"""Consistent-hash front router with sticky chain affinity.

Clients talk to one router address; the router forwards each DATA
envelope to the shard that owns its OD key and relays shard replies back
by flow id.  Two bounded stores hold all routing state:

* **pins** — OD key → shard.  The first datagram of a chain pins it to
  the ring's current owner; later reshards leave pinned chains where
  their state (origin caches, live sources) already lives.  Sticky
  affinity is what keeps a chain's sim-oracle state on one shard.
* **flows** — connection id → client address, refreshed per datagram,
  for reply routing.

Adding/removing a shard swaps in a new ring: only *unpinned* (future)
chains see the new assignment, and the fraction of keys that move is
the consistent-hash bound (~1/(n+1) for an add), pinned by tests.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from repro import obs as _obs
from repro.serve.ring import HashRing
from repro.serve.store import BoundedKeyedStore
from repro.serve.transport import Address, UdpEndpoint, open_endpoint
from repro.serve.wire import (
    EnvelopeError,
    decode_envelope,
    peek_connection_id,
)


class Router:
    """UDP front/back relay keyed by the consistent-hash ring."""

    def __init__(
        self,
        ring: HashRing,
        shard_addrs: Dict[str, Address],
        max_flows: Optional[int] = None,
        flow_ttl: Optional[float] = 120.0,
        max_pins: Optional[int] = None,
        pin_ttl: Optional[float] = None,
    ) -> None:
        for node in ring.nodes:
            if node not in shard_addrs:
                raise ValueError(f"ring node {node!r} has no shard address")
        self.ring = ring
        self.shard_addrs = dict(shard_addrs)
        self.front: Optional[UdpEndpoint] = None
        self.back: Optional[UdpEndpoint] = None
        self.flows: BoundedKeyedStore[Address] = BoundedKeyedStore(max_flows, flow_ttl)
        self.pins: BoundedKeyedStore[str] = BoundedKeyedStore(max_pins, pin_ttl)
        self.stats: Dict[str, int] = {
            "forwarded": 0,
            "returned": 0,
            "undecodable": 0,
            "unroutable": 0,
            "reshards": 0,
        }

    async def start(self, host: str = "127.0.0.1") -> Address:
        self.front = await open_endpoint(self._on_front, host, 0)
        self.back = await open_endpoint(self._on_back, host, 0)
        return self.front.address

    def close(self) -> None:
        if self.front is not None:
            self.front.close()
        if self.back is not None:
            self.back.close()

    # ------------------------------------------------------------------

    def shard_for(self, od_key: str, now: float) -> str:
        """Sticky lookup: pinned shard, else ring owner (then pinned)."""
        pinned = self.pins.get(od_key, now)
        if pinned is not None and pinned in self.shard_addrs:
            self.pins.touch(od_key, now)
            return pinned
        shard = self.ring.node_for(od_key)
        self.pins.put(od_key, shard, now)
        return shard

    def _on_front(self, data: bytes, addr: Address) -> None:
        assert self.back is not None
        try:
            envelope = decode_envelope(data)
            connection_id = peek_connection_id(envelope.payload)
        except EnvelopeError:
            self.stats["undecodable"] += 1
            return
        now = asyncio.get_running_loop().time()
        od_key = envelope.od_key.decode("utf-8", "replace")
        shard = self.shard_for(od_key, now)
        target = self.shard_addrs.get(shard)
        if target is None:
            self.stats["unroutable"] += 1
            return
        self.flows.put(connection_id.hex(), addr, now)
        self.back.sendto(data, target)
        self.stats["forwarded"] += 1

    def _on_back(self, data: bytes, addr: Address) -> None:
        assert self.front is not None
        try:
            envelope = decode_envelope(data)
            connection_id = peek_connection_id(envelope.payload)
        except EnvelopeError:
            self.stats["undecodable"] += 1
            return
        client = self.flows.get(connection_id.hex())
        if client is None:
            self.stats["unroutable"] += 1
            return
        self.front.sendto(data, client)
        self.stats["returned"] += 1

    # ------------------------------------------------------------------
    # reshard

    def add_shard(self, name: str, addr: Address) -> None:
        self.shard_addrs[name] = addr
        self.ring = self.ring.with_node(name)
        self._note_reshard("add", name)

    def remove_shard(self, name: str) -> None:
        """Drop a shard from the ring; its pinned chains unpin.

        In-flight flows to the removed shard are lost (their chains
        re-route on the next datagram), which is the honest semantics of
        killing a stateful worker.
        """
        self.ring = self.ring.without_node(name)
        self.shard_addrs.pop(name, None)
        for od_key in self.pins.keys():
            if self.pins.get(od_key) == name:
                self.pins.pop(od_key)
        self._note_reshard("remove", name)

    def _note_reshard(self, action: str, name: str) -> None:
        self.stats["reshards"] += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                0.0,
                "serve:reshard",
                "serve",
                {"action": action, "shard": name, "nodes": len(self.ring)},
            )


__all__ = ["Router"]

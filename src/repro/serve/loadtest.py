"""Serve-mode load test: real sockets, sharded edge, sim as ground truth.

Drives a whole fleet campaign through ``repro.serve``: N shard workers
(in-process servers or real ``python -m repro.serve.shard`` processes)
behind the consistent-hash router, one :class:`ServeDriver` pushing
every planned session over UDP, and — the point of the exercise — the
**same campaign replayed in the simulator** as the reference.  The two
must agree exactly on the discrete outcomes (sessions, completions,
cookie deliveries, cookie uses) and within a documented tolerance on
the FFCT distribution, because the shards use the simulator as their
timing oracle; any disagreement is a wire bug, not noise.

Outputs are fleet-native: a :class:`CampaignAggregate`, the standard
JSON report, and the standard HTML report with a serve-vs-sim
comparison section appended.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import WiraConfig
from repro.fleet.aggregate import DEFAULT_ALPHA, CampaignAggregate, merge_chunks
from repro.fleet.engine import FleetConfig, run_chunk
from repro.fleet.report import build_report
from repro.serve.driver import ServeDriver, ServeSessionOutcome, WireFailure
from repro.serve.ring import HashRing
from repro.serve.router import Router
from repro.serve.shard import ShardServer
from repro.serve.transport import Address, UdpEndpoint, open_endpoint
from repro.serve.wire import EnvelopeKind, decode_envelope, encode_envelope
from repro.workload.population import DeploymentConfig, FleetPopulation

#: Default FFCT agreement tolerance: relative on the sim value, plus an
#: absolute floor for near-zero FFCTs.  The replay clock is asyncio
#: wall time, so each measured FFCT carries scheduling jitter roughly
#: bounded by the event-loop lag under load; the floor absorbs that,
#: the relative term scales with congested-path FFCTs.
FFCT_REL_TOL = 0.20
FFCT_ABS_TOL = 0.075  # seconds

SHARD_SPAWN_TIMEOUT = 30.0


@dataclass(frozen=True)
class ServeLoadtestConfig:
    """One serve campaign (fleet config + serve topology)."""

    population: DeploymentConfig = field(default_factory=DeploymentConfig)
    schemes: Tuple[str, ...] = ("baseline", "wira")
    wira: WiraConfig = field(default_factory=WiraConfig)
    shards: int = 2
    #: Chains in flight at once (each chain's sessions run in order).
    concurrency: int = 64
    #: Spawn real worker processes; False runs shards in-process (fast,
    #: still real sockets — used by tests).
    subprocess_shards: bool = True
    #: After this many chains complete, add one more shard mid-run to
    #: exercise reshard + sticky affinity.  None = never.
    reshard_after_chains: Optional[int] = None
    ffct_rel_tol: float = FFCT_REL_TOL
    ffct_abs_tol: float = FFCT_ABS_TOL
    sketch_alpha: float = DEFAULT_ALPHA
    #: Driver cookie-store bounds (None = effectively unbounded).
    store_max_entries: Optional[int] = None
    store_ttl: Optional[float] = None

    def cookie_key(self) -> bytes:
        return hashlib.sha256(
            b"wira-serve-key:%d" % self.population.seed
        ).digest()

    def shard_salt(self, shard_id: int) -> bytes:
        return hashlib.sha256(
            b"wira-serve-salt:%d:%d" % (self.population.seed, shard_id)
        ).digest()[:16]

    def fleet_config(self) -> FleetConfig:
        return FleetConfig(
            population=self.population,
            schemes=self.schemes,
            wira=self.wira,
            sketch_alpha=self.sketch_alpha,
        )


class ControlClient:
    """Request/reply over CONTROL envelopes to shard admin sockets."""

    def __init__(self) -> None:
        self.endpoint: Optional[UdpEndpoint] = None
        self._pending: Dict[int, "asyncio.Future[Dict[str, object]]"] = {}
        self._next_req = 1

    async def start(self) -> None:
        self.endpoint = await open_endpoint(self._on_datagram)

    def close(self) -> None:
        if self.endpoint is not None:
            self.endpoint.close()

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        try:
            envelope = decode_envelope(data)
            if envelope.kind != EnvelopeKind.CONTROL:
                return
            reply = json.loads(envelope.payload.decode("utf-8"))
            req_id = int(reply.get("req", -1))
        except (ValueError, UnicodeDecodeError):
            return
        future = self._pending.pop(req_id, None)
        if future is not None and not future.done():
            future.set_result(reply)

    async def request(
        self, addr: Address, op: str, attempts: int = 5, timeout: float = 1.0
    ) -> Dict[str, object]:
        assert self.endpoint is not None
        loop = asyncio.get_running_loop()
        for _ in range(attempts):
            req_id = self._next_req
            self._next_req += 1
            future: "asyncio.Future[Dict[str, object]]" = loop.create_future()
            self._pending[req_id] = future
            blob = json.dumps({"op": op, "req": req_id}).encode("utf-8")
            self.endpoint.sendto(
                encode_envelope(EnvelopeKind.CONTROL, b"", blob), addr
            )
            try:
                return await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                self._pending.pop(req_id, None)
        raise RuntimeError(f"shard at {addr} did not answer {op!r}")


@dataclass
class _ShardHandle:
    name: str
    shard_id: int
    address: Address
    server: Optional[ShardServer] = None  # in-process
    process: Optional[subprocess.Popen] = None  # worker process


async def _spawn_shard(
    config: ServeLoadtestConfig, shard_id: int, workdir: Path
) -> _ShardHandle:
    name = f"shard-{shard_id}"
    if not config.subprocess_shards:
        server = ShardServer(
            shard_id=shard_id,
            cookie_key=config.cookie_key(),
            instance_salt=config.shard_salt(shard_id),
            wira_config=config.wira,
        )
        address = await server.start()
        return _ShardHandle(name, shard_id, address, server=server)
    ready_file = workdir / f"{name}.ready.json"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve.shard",
            "--shard-id",
            str(shard_id),
            "--cookie-key-hex",
            config.cookie_key().hex(),
            "--salt-hex",
            config.shard_salt(shard_id).hex(),
            "--wira-json",
            json.dumps(vars(config.wira)),
            "--ready-file",
            str(ready_file),
        ],
    )
    deadline = time.monotonic() + SHARD_SPAWN_TIMEOUT
    while not ready_file.exists():
        if process.poll() is not None:
            raise RuntimeError(f"{name} exited before binding (rc={process.returncode})")
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError(f"{name} did not come up in {SHARD_SPAWN_TIMEOUT}s")
        await asyncio.sleep(0.05)
    ready = json.loads(ready_file.read_text())
    return _ShardHandle(
        name, shard_id, (str(ready["host"]), int(ready["port"])), process=process
    )


async def _stop_shard(handle: _ShardHandle, control: ControlClient) -> None:
    if handle.server is not None:
        await handle.server.close()
        return
    assert handle.process is not None
    try:
        await control.request(handle.address, "shutdown", attempts=3, timeout=1.0)
    except RuntimeError:
        handle.process.kill()
    try:
        handle.process.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        handle.process.kill()
        handle.process.wait(timeout=10.0)


def _simulate_reference(config: ServeLoadtestConfig) -> CampaignAggregate:
    """The exact campaign, replayed in-process by the fleet engine."""
    fleet = config.fleet_config()
    payloads = [run_chunk(fleet, i) for i in range(fleet.n_chunks)]
    return merge_chunks(fleet.schemes, fleet.sketch_alpha, payloads)


def _scheme_numbers(aggregate: CampaignAggregate, value: str) -> Dict[str, object]:
    agg = aggregate.schemes[value]
    return {
        "sessions": agg.sessions,
        "completed": agg.completed,
        "cookie_delivered": agg.cookie_delivered,
        "used_cookie": agg.used_cookie,
        "ffct_count": agg.ffct_stats.count,
        "ffct_mean": agg.ffct_stats.mean,
        "ffct_p50": agg.ffct_sketch.quantile(0.50) if agg.ffct_stats.count else None,
        "ffct_p90": agg.ffct_sketch.quantile(0.90) if agg.ffct_stats.count else None,
    }


def compare_schemes(
    serve: CampaignAggregate,
    sim: CampaignAggregate,
    rel_tol: float,
    abs_tol: float,
) -> Dict[str, object]:
    """Per-scheme serve-vs-sim comparison with pass/fail gates.

    Discrete outcomes must match exactly (the shard sims ARE the
    reference sims); FFCT mean/p50/p90 must agree within
    ``abs_tol + rel_tol * sim_value`` — the documented socket-jitter
    tolerance.
    """
    out: Dict[str, object] = {"rel_tol": rel_tol, "abs_tol": abs_tol, "schemes": {}}
    all_ok = True
    for value in sorted(serve.schemes):
        serve_n = _scheme_numbers(serve, value)
        sim_n = _scheme_numbers(sim, value)
        exact_ok = all(
            serve_n[k] == sim_n[k]
            for k in ("sessions", "completed", "cookie_delivered", "used_cookie", "ffct_count")
        )
        ffct_checks: Dict[str, object] = {}
        ffct_ok = True
        for stat in ("ffct_mean", "ffct_p50", "ffct_p90"):
            serve_v, sim_v = serve_n[stat], sim_n[stat]
            if serve_v is None or sim_v is None:
                ok = serve_v is None and sim_v is None
                delta = None
            else:
                delta = abs(float(serve_v) - float(sim_v))
                ok = delta <= abs_tol + rel_tol * abs(float(sim_v))
            ffct_checks[stat] = {
                "serve": serve_v,
                "sim": sim_v,
                "delta": delta,
                "ok": ok,
            }
            ffct_ok = ffct_ok and ok
        scheme_ok = exact_ok and ffct_ok
        all_ok = all_ok and scheme_ok
        out["schemes"][value] = {  # type: ignore[index]
            "serve": serve_n,
            "sim": sim_n,
            "exact_ok": exact_ok,
            "ffct": ffct_checks,
            "ok": scheme_ok,
        }
    out["ok"] = all_ok
    return out


def comparison_html_section(comparison: Dict[str, object]) -> str:
    """The serve-vs-sim table appended to the fleet HTML report."""
    from repro.fleet.htmlreport import _esc  # shared escaping helper

    rows = [
        "<section><h2>Serve vs sim (socket-measured vs oracle)</h2>",
        '<table class="kv"><thead><tr><th>scheme</th><th>metric</th>'
        "<th>serve</th><th>sim</th><th>status</th></tr></thead><tbody>",
    ]
    schemes = comparison.get("schemes", {})
    assert isinstance(schemes, dict)
    for value in sorted(schemes):
        entry = schemes[value]
        for k in ("sessions", "completed", "cookie_delivered", "used_cookie"):
            serve_v = entry["serve"][k]
            sim_v = entry["sim"][k]
            status = "match" if serve_v == sim_v else "MISMATCH"
            rows.append(
                f"<tr><td>{_esc(value)}</td><td>{_esc(k)}</td>"
                f"<td>{_esc(serve_v)}</td><td>{_esc(sim_v)}</td>"
                f"<td>{_esc(status)}</td></tr>"
            )
        for stat, check in entry["ffct"].items():
            serve_v = check["serve"]
            sim_v = check["sim"]
            status = "within tolerance" if check["ok"] else "OUT OF TOLERANCE"
            fmt = lambda v: "—" if v is None else f"{float(v) * 1e3:.1f} ms"
            rows.append(
                f"<tr><td>{_esc(value)}</td><td>{_esc(stat)}</td>"
                f"<td>{_esc(fmt(serve_v))}</td><td>{_esc(fmt(sim_v))}</td>"
                f"<td>{_esc(status)}</td></tr>"
            )
    verdict = "PASS" if comparison.get("ok") else "FAIL"
    rows.append("</tbody></table>")
    rows.append(
        f'<p class="key">gates: exact discrete outcomes; FFCT within '
        f"abs {_esc(comparison.get('abs_tol'))}s + rel "
        f"{_esc(comparison.get('rel_tol'))} · verdict: {_esc(verdict)}</p>"
    )
    rows.append("</section>")
    return "\n".join(rows)


async def _run_campaign(
    config: ServeLoadtestConfig, workdir: Path
) -> Tuple[CampaignAggregate, Dict[str, object]]:
    """Everything socket-side: shards, router, driver, chain fan-out."""
    handles: List[_ShardHandle] = []
    control = ControlClient()
    router: Optional[Router] = None
    driver: Optional[ServeDriver] = None
    try:
        for shard_id in range(config.shards):
            handles.append(await _spawn_shard(config, shard_id, workdir))
        ring = HashRing(h.name for h in handles)
        router = Router(ring, {h.name: h.address for h in handles})
        front = await router.start()
        await control.start()

        driver = ServeDriver(
            front,
            campaign_seed=config.population.seed,
            store_max_entries=config.store_max_entries,
            store_ttl=config.store_ttl,
        )
        await driver.start()

        population = FleetPopulation(config.population)
        aggregate = CampaignAggregate(config.schemes, alpha=config.sketch_alpha)
        outcomes: List[ServeSessionOutcome] = []
        failures: List[str] = []
        chains_done = 0
        resharded = False
        semaphore = asyncio.Semaphore(config.concurrency)
        lock = asyncio.Lock()

        async def run_chain(od_index: int) -> None:
            nonlocal chains_done, resharded
            assert driver is not None and router is not None
            chain = population.chain(od_index)
            od_key = f"od-{od_index}"
            stream_name = f"stream-{od_index}"
            async with semaphore:
                chain_outcomes: List[ServeSessionOutcome] = []
                for scheme_value in config.schemes:
                    for planned in chain:
                        try:
                            outcome = await driver.run_session(
                                planned,
                                scheme_value,
                                od_key,
                                stream_name,
                                config.population.video_frames_per_session,
                            )
                        except WireFailure as exc:
                            failures.append(str(exc))
                            return
                        chain_outcomes.append(outcome)
            async with lock:
                for outcome in chain_outcomes:
                    aggregate.fold(
                        outcome.scheme_value, outcome.planned, outcome.result
                    )
                    outcomes.append(outcome)
                chains_done += 1
                if (
                    config.reshard_after_chains is not None
                    and chains_done >= config.reshard_after_chains
                    and not resharded
                ):
                    resharded = True
                    extra = await _spawn_shard(config, len(handles), workdir)
                    handles.append(extra)
                    router.add_shard(extra.name, extra.address)

        await asyncio.gather(
            *(run_chain(i) for i in range(config.population.n_od_pairs))
        )

        shard_stats = []
        for handle in handles:
            shard_stats.append(await control.request(handle.address, "stats"))

        telemetry: Dict[str, object] = {
            "shards": shard_stats,
            "router": dict(router.stats),
            "driver": dict(driver.stats),
            "wire_failures": failures,
            "sessions_measured": len(outcomes),
            "retransmit_requests": sum(o.retransmit_requests for o in outcomes),
            "resharded": resharded,
            "shard_count_final": len(handles),
        }
        return aggregate, telemetry
    finally:
        if driver is not None:
            driver.close()
        if router is not None:
            router.close()
        for handle in handles:
            await _stop_shard(handle, control)
        control.close()


def run_loadtest(config: ServeLoadtestConfig) -> Dict[str, object]:
    """Run the socket campaign + the sim reference; return the verdict.

    The returned payload is the ``serve-smoke`` CI artifact: per-scheme
    comparison with gates, shard/router/driver counters, and the
    standard fleet report of the socket-measured campaign.
    """
    with tempfile.TemporaryDirectory(prefix="wira-serve-") as tmp:
        serve_aggregate, telemetry = asyncio.run(
            _run_campaign(config, Path(tmp))
        )
    sim_aggregate = _simulate_reference(config)
    comparison = compare_schemes(
        serve_aggregate, sim_aggregate, config.ffct_rel_tol, config.ffct_abs_tol
    )
    rejected = sum(
        int(s.get("rejected_cookies", 0)) for s in telemetry["shards"]  # type: ignore[union-attr]
    )
    gates = {
        "comparison_ok": bool(comparison["ok"]),
        "wire_failures": len(telemetry["wire_failures"]),  # type: ignore[arg-type]
        "rejected_cookies": rejected,
        "ok": bool(comparison["ok"])
        and not telemetry["wire_failures"]
        and rejected == 0,
    }
    report = build_report(serve_aggregate, key=f"serve-{config.population.seed}")
    return {
        "config": {
            "population": vars(config.population),
            "schemes": list(config.schemes),
            "shards": config.shards,
            "concurrency": config.concurrency,
            "subprocess_shards": config.subprocess_shards,
            "reshard_after_chains": config.reshard_after_chains,
        },
        "gates": gates,
        "comparison": comparison,
        "telemetry": telemetry,
        "report": report,
        "aggregate": serve_aggregate.to_json(),
    }


def render_serve_html(results: Dict[str, object], config: ServeLoadtestConfig) -> str:
    """The fleet HTML report of the socket campaign, plus the verdict."""
    from repro.fleet.htmlreport import render_html_report

    aggregate = CampaignAggregate.from_json(results["aggregate"])  # type: ignore[arg-type]
    comparison = results["comparison"]
    assert isinstance(comparison, dict)
    return render_html_report(
        results["report"],  # type: ignore[arg-type]
        aggregate,
        config={"schemes": list(config.schemes), "shards": config.shards},
        telemetry=None,
        title="Wira serve-mode campaign",
        extra_sections=[comparison_html_section(comparison)],
    )


__all__ = [
    "FFCT_ABS_TOL",
    "FFCT_REL_TOL",
    "ControlClient",
    "ServeLoadtestConfig",
    "compare_schemes",
    "comparison_html_section",
    "render_serve_html",
    "run_loadtest",
]

"""Consistent-hash ring with virtual nodes, keyed on OD pair.

The serve edge routes every chain (OD pair) to one shard.  A modulo
assignment would move ~``(n-1)/n`` of all keys when a shard joins; the
ring moves only the keys whose nearest virtual node changed — in
expectation ``1/(n+1)`` of them — which is the "bounded key movement"
property the sharded cookie store's reshard test pins.

Hashing is ``sha256`` over UTF-8/bytes keys, so placement is a pure
function of (node names, replica count, key): every process — router,
loadtest driver, tests — computes identical assignments with no
coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple, Union

Key = Union[str, bytes]

DEFAULT_REPLICAS = 64


def _hash64(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


def _as_bytes(key: Key) -> bytes:
    return key.encode("utf-8") if isinstance(key, str) else key


class HashRing:
    """Immutable-feeling consistent-hash ring (copy to reshard)."""

    def __init__(self, nodes: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: Dict[str, None] = {}
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes[node] = None
        for replica in range(self.replicas):
            point = _hash64(f"{node}#{replica}".encode("utf-8"))
            index = bisect.bisect(self._keys, point)
            self._keys.insert(index, point)
            self._points.insert(index, (point, node))

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        del self._nodes[node]
        kept = [(point, name) for point, name in self._points if name != node]
        self._points = kept
        self._keys = [point for point, _ in kept]

    def node_for(self, key: Key) -> str:
        """The owning node: first virtual node clockwise of the key."""
        if not self._points:
            raise ValueError("ring has no nodes")
        point = _hash64(_as_bytes(key))
        index = bisect.bisect(self._keys, point)
        if index == len(self._keys):
            index = 0
        return self._points[index][1]

    def copy(self) -> "HashRing":
        return HashRing(self.nodes, replicas=self.replicas)

    def with_node(self, node: str) -> "HashRing":
        ring = self.copy()
        ring.add_node(node)
        return ring

    def without_node(self, node: str) -> "HashRing":
        ring = self.copy()
        ring.remove_node(node)
        return ring


def moved_fraction(before: HashRing, after: HashRing, keys: Sequence[Key]) -> float:
    """Fraction of ``keys`` whose owner differs between two rings."""
    if not keys:
        return 0.0
    moved = sum(1 for key in keys if before.node_for(key) != after.node_for(key))
    return moved / len(keys)


__all__ = ["DEFAULT_REPLICAS", "HashRing", "moved_fraction"]

"""Opt-in runtime transport sanitizer (``WIRA_SANITIZE=1``).

The simulator's correctness story rests on invariants no test asserts
continuously: the event clock never rewinds, pacer debt stays bounded,
packet numbers grow strictly, ACKs stay within the sent range, BBR only
takes legal state-machine edges, and Wira's initial-parameter overrides
are applied at most once (plus the documented corner-case-1 re-init).
This package installs cheap checks for all of them at the same attach
points the Wira hooks use, so **any** test or experiment run doubles as
a sanitized run::

    WIRA_SANITIZE=1 python -m pytest -x -q

Design constraints:

* **~0 % overhead when disabled** — hook sites test one module global
  (``ACTIVE is not None``); the EventLoop keeps its unchecked hot loop
  entirely separate.
* **<= 10 % overhead when enabled** — each check is a handful of
  comparisons; verified by ``benchmarks/test_bench_speed.py``.
* violations raise :class:`~repro.sanitize.errors.SanitizerError`
  carrying the invariant name, connection id and simulated time.

Programmatic use::

    from repro import sanitize

    with sanitize.sanitized() as san:
        run_session(...)
    assert san.checks_run["clock_monotonic"] > 0
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.sanitize.checks import (
    LEGAL_BBR_TRANSITIONS,
    MAX_CWND_BYTES,
    MAX_INITIAL_OVERRIDES,
    MIN_CWND_MSS,
    PACER_DEBT_BURSTS,
    TransportSanitizer,
)
from repro.sanitize.errors import INVARIANTS, SanitizerError

__all__ = [
    "ACTIVE",
    "INVARIANTS",
    "LEGAL_BBR_TRANSITIONS",
    "MAX_CWND_BYTES",
    "MAX_INITIAL_OVERRIDES",
    "MIN_CWND_MSS",
    "PACER_DEBT_BURSTS",
    "SanitizerError",
    "TransportSanitizer",
    "disable",
    "enable",
    "enabled",
    "env_requested",
    "sanitized",
    "suppressed",
]

#: The installed sanitizer, or ``None`` when disabled.  Hook sites read
#: this module attribute directly (``sanitize.ACTIVE is not None``), so
#: enabling/disabling is a single rebind with no import-order coupling.
ACTIVE: Optional[TransportSanitizer] = None


def env_requested() -> bool:
    """True when ``WIRA_SANITIZE`` asks for the sanitizer.

    Delegates to :mod:`repro.runtime.settings`, the single parse point
    for every ``WIRA_*`` knob.
    """
    from repro.runtime import settings

    return settings.current().sanitize


def enable(sanitizer: Optional[TransportSanitizer] = None) -> TransportSanitizer:
    """Install (or replace) the global sanitizer and return it."""
    global ACTIVE
    ACTIVE = sanitizer or TransportSanitizer()
    return ACTIVE


def disable() -> None:
    """Remove the global sanitizer; hook sites revert to zero-cost."""
    global ACTIVE
    ACTIVE = None


def enabled() -> bool:
    return ACTIVE is not None


@contextmanager
def suppressed() -> Iterator[None]:
    """Scoped *disable*, restoring the previous sanitizer afterwards.

    For tests that deliberately inject peer misbehaviour (e.g. ACKs for
    never-sent packets) which production code tolerates but the
    sanitizer — by design — reports.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    try:
        yield
    finally:
        ACTIVE = previous


@contextmanager
def sanitized(
    sanitizer: Optional[TransportSanitizer] = None,
) -> Iterator[TransportSanitizer]:
    """Scoped enable/restore, for tests and ad-hoc debugging."""
    global ACTIVE
    previous = ACTIVE
    installed = enable(sanitizer)
    try:
        yield installed
    finally:
        ACTIVE = previous


if env_requested():  # pragma: no cover - exercised by the sanitized CI job
    enable()

"""Invariant checks installed at the Wira hook attach points.

The checks mirror what LSQUIC asserts in C at the same layer:

===========================  ==============================================
Invariant                    Attach point
===========================  ==============================================
``clock_monotonic``          :meth:`EventLoop._run` (checked pop loop)
``pacer_tokens``             :class:`Pacer` refill / consume
``packet_number_monotonic``  :meth:`Connection._send_packet`
``cwnd_bounds``              :meth:`Connection._send_packet`
``ack_range``                :meth:`LossRecovery.on_ack_received`
``bbr_transition``           :meth:`BbrSender._set_mode`
``init_override_once``       ``set_initial_window`` / ``set_initial_pacing_rate``
===========================  ==============================================

Each check is a few comparisons; per-object bookkeeping lives in
``_san_*`` attributes on the (unslotted) transport objects so the
sanitizer itself holds no global state and never outlives a session.

Deliberate deviations from the strict textbook form, both visible in the
transport code they guard:

* the token bucket may legitimately go *bounded* negative — debt
  scheduling is how the pacer spaces the next release, and handshake
  packets bypass pacing entirely — so the floor is one extra burst of
  debt rather than zero;
* the cwnd floor is **1 MSS**, not LSQUIC's 2: Wira's ``min(FF_Size,
  BDP)`` clamp (Eq. 3) deliberately admits a single-packet window on
  very low-BDP paths, and the initializer's own floor is one wire
  packet.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sanitize.errors import SanitizerError

#: Absolute ceiling for any congestion window (bytes).  2.885x the
#: largest plausible BDP in the deployment matrix; anything above it is
#: state corruption, not a fast path.
MAX_CWND_BYTES = 1 << 27

#: cwnd floor in MSS units (see module docstring for why it is 1, not 2).
MIN_CWND_MSS = 1

#: Extra bursts of token debt tolerated beyond a drained bucket.
PACER_DEBT_BURSTS = 1.0

#: Legal BBR state-machine edges (mode.value -> mode.value):
#: STARTUP->DRAIN->PROBE_BW, PROBE_RTT entered from any post-startup
#: mode once the min-RTT estimate expires, and left to PROBE_BW (model
#: filled) or back to STARTUP (model still empty).
LEGAL_BBR_TRANSITIONS = frozenset(
    {
        ("startup", "drain"),
        ("drain", "probe_bw"),
        ("probe_bw", "probe_rtt"),
        ("drain", "probe_rtt"),
        ("probe_rtt", "probe_bw"),
        ("probe_rtt", "startup"),
    }
)

#: Maximum times an initial-parameter override may be applied per
#: controller: once up front, plus one corner-case-1 re-initialization
#: after the frame parser completes (SS IV-C).
MAX_INITIAL_OVERRIDES = 2


class TransportSanitizer:
    """Cheap invariant checks; raises :class:`SanitizerError` on breach.

    One instance is installed globally through :mod:`repro.sanitize`;
    :attr:`checks_run` counts executed checks per invariant so tests can
    verify the sanitizer was genuinely active during a run.
    """

    __slots__ = ("checks_run",)

    def __init__(self) -> None:
        self.checks_run: Dict[str, int] = {}

    def _count(self, invariant: str) -> None:
        self.checks_run[invariant] = self.checks_run.get(invariant, 0) + 1

    # -- EventLoop ------------------------------------------------------

    def check_clock(self, now: float, when: float) -> None:
        """Simulated time never decreases across event executions."""
        self._count("clock_monotonic")
        if when < now:
            raise SanitizerError(
                "clock_monotonic",
                f"event scheduled at t={when:.9f} would rewind the clock from t={now:.9f}",
                sim_time=now,
            )

    # -- Pacer ----------------------------------------------------------

    def check_pacer(self, pacer: object, now: float) -> None:
        """Token bucket stays within [-debt bound, burst capacity]."""
        self._count("pacer_tokens")
        tokens = pacer._tokens  # type: ignore[attr-defined]
        burst = pacer.burst_bytes  # type: ignore[attr-defined]
        rate = pacer._rate_bps  # type: ignore[attr-defined]
        if rate <= 0:
            raise SanitizerError(
                "pacer_tokens", f"pacing rate {rate!r} is not positive", sim_time=now
            )
        if tokens > burst + 1e-6:
            raise SanitizerError(
                "pacer_tokens",
                f"token bucket overfilled: {tokens:.1f} tokens > burst capacity {burst}",
                sim_time=now,
            )
        debt_floor = -(1.0 + PACER_DEBT_BURSTS) * burst
        if tokens < debt_floor:
            raise SanitizerError(
                "pacer_tokens",
                f"token bucket {tokens:.1f} below the bounded-debt floor {debt_floor:.1f} "
                "(runaway unpaced sends)",
                sim_time=now,
            )

    # -- Connection send path -------------------------------------------

    def check_packet_sent(self, connection: object, packet_number: int, now: float) -> None:
        """Packet numbers strictly monotonic; cwnd within sane bounds."""
        self._count("packet_number_monotonic")
        connection_id = getattr(connection, "connection_id", None)
        largest = getattr(connection, "_san_largest_pn", None)
        if largest is not None and packet_number <= largest:
            raise SanitizerError(
                "packet_number_monotonic",
                f"packet number {packet_number} after {largest} (must be strictly increasing)",
                connection_id=connection_id,
                sim_time=now,
            )
        connection._san_largest_pn = packet_number  # type: ignore[attr-defined]

        self._count("cwnd_bounds")
        cc = connection.cc  # type: ignore[attr-defined]
        cwnd = cc.congestion_window
        mss = connection.config.mss  # type: ignore[attr-defined]
        if cwnd < MIN_CWND_MSS * mss:
            raise SanitizerError(
                "cwnd_bounds",
                f"cwnd {cwnd} below {MIN_CWND_MSS} MSS ({MIN_CWND_MSS * mss})",
                connection_id=connection_id,
                sim_time=now,
            )
        if cwnd > MAX_CWND_BYTES:
            raise SanitizerError(
                "cwnd_bounds",
                f"cwnd {cwnd} above the {MAX_CWND_BYTES}-byte ceiling",
                connection_id=connection_id,
                sim_time=now,
            )

    # -- Loss recovery --------------------------------------------------

    def note_sent_tracked(self, recovery: object, packet_number: int) -> None:
        """Record the largest packet number handed to loss recovery."""
        largest = getattr(recovery, "_san_largest_sent", None)
        if largest is None or packet_number > largest:
            recovery._san_largest_sent = packet_number  # type: ignore[attr-defined]

    def check_ack(self, recovery: object, ack: object, now: float) -> None:
        """ACK ranges must lie within [0, largest sent] and be well formed."""
        self._count("ack_range")
        largest_sent = getattr(recovery, "_san_largest_sent", None)
        largest_acked = ack.largest_acked  # type: ignore[attr-defined]
        ranges: Tuple[Tuple[int, int], ...] = ack.ranges  # type: ignore[attr-defined]
        if largest_sent is not None and largest_acked > largest_sent:
            raise SanitizerError(
                "ack_range",
                f"ACK for packet {largest_acked} but largest sent is {largest_sent}",
                sim_time=now,
            )
        previous_low: Optional[int] = None
        for low, high in ranges:
            if low < 0 or low > high:
                raise SanitizerError(
                    "ack_range",
                    f"malformed ACK range ({low}, {high})",
                    sim_time=now,
                )
            if previous_low is not None and high >= previous_low:
                raise SanitizerError(
                    "ack_range",
                    f"ACK ranges overlap or are unordered near ({low}, {high})",
                    sim_time=now,
                )
            previous_low = low
        if ranges and ranges[0][1] != largest_acked:
            raise SanitizerError(
                "ack_range",
                f"largest_acked {largest_acked} disagrees with leading range {ranges[0]}",
                sim_time=now,
            )

    # -- BBR state machine ----------------------------------------------

    def check_bbr_transition(self, old_mode: object, new_mode: object, now: float) -> None:
        self._count("bbr_transition")
        old = getattr(old_mode, "value", str(old_mode))
        new = getattr(new_mode, "value", str(new_mode))
        if old == new:
            return
        if (old, new) not in LEGAL_BBR_TRANSITIONS:
            raise SanitizerError(
                "bbr_transition",
                f"illegal BBR transition {old} -> {new}",
                sim_time=now,
            )

    # -- Wira initial-parameter overrides --------------------------------

    def check_initial_override(self, cc: object, kind: str) -> None:
        self._count("init_override_once")
        counts = getattr(cc, "_san_override_counts", None)
        if counts is None:
            counts = {}
            cc._san_override_counts = counts  # type: ignore[attr-defined]
        counts[kind] = counts.get(kind, 0) + 1
        if counts[kind] > MAX_INITIAL_OVERRIDES:
            raise SanitizerError(
                "init_override_once",
                f"initial {kind} override applied {counts[kind]} times "
                f"(allowed: once, plus one corner-case-1 re-initialization)",
            )

"""Structured sanitizer failures.

A :class:`SanitizerError` pinpoints *which* transport invariant broke,
*on which connection*, and *at what simulated time* — the three facts
needed to replay the offending session deterministically and debug it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: Canonical invariant names, mirrored by the unit tests.
INVARIANTS: Tuple[str, ...] = (
    "clock_monotonic",
    "pacer_tokens",
    "packet_number_monotonic",
    "ack_range",
    "cwnd_bounds",
    "bbr_transition",
    "init_override_once",
)


class SanitizerError(AssertionError):
    """A runtime transport invariant was violated.

    Subclasses :class:`AssertionError` so existing "no assertion fired"
    harnesses treat sanitizer trips as test failures without special
    casing.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        connection_id: Optional[bytes] = None,
        sim_time: Optional[float] = None,
    ) -> None:
        if invariant not in INVARIANTS:
            raise ValueError(
                f"unknown sanitizer invariant {invariant!r}; expected one of {INVARIANTS}"
            )
        self.invariant = invariant
        self.detail = detail
        self.connection_id = connection_id
        self.sim_time = sim_time
        # Post-mortem context: when the trace bus is active, capture the
        # tail of recent transport events leading up to the violation.
        # Lazy import — obs and sanitize must stay independently loadable.
        self.trace_tail: List[object] = []
        try:
            from repro import obs as _obs

            if _obs.ACTIVE is not None:
                self.trace_tail = list(_obs.ACTIVE.ring_events())
        except ImportError:  # pragma: no cover - obs is part of the package
            pass
        parts = [f"[{invariant}]", detail]
        if connection_id is not None:
            parts.append(f"connection={connection_id.hex()}")
        if sim_time is not None:
            parts.append(f"t={sim_time:.6f}s")
        super().__init__(" ".join(parts))

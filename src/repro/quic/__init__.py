"""QUIC-like transport substrate for the Wira reproduction.

The paper implemented Wira inside LiteSpeed's LSQUIC (Q043).  This package
provides an offline, pure-Python equivalent with the pieces Wira touches:

* byte-exact wire format — variable-length integers
  (:mod:`repro.quic.varint`), frames (:mod:`repro.quic.frames`) including
  the Wira ``Hx_QoS`` frame (type ``0x1f``, §IV-B), and packets
  (:mod:`repro.quic.packet`);
* RFC 9002-style RTT estimation (:mod:`repro.quic.rtt`), ACK tracking
  (:mod:`repro.quic.ack_manager`) and loss recovery — packet-threshold,
  time-threshold and PTO (:mod:`repro.quic.loss_recovery`);
* a token-bucket pacer (:mod:`repro.quic.pacer`);
* pluggable congestion control (:mod:`repro.quic.cc`) with BBRv1 — the CC
  the paper deploys Wira on — plus CUBIC and NewReno;
* stream send/receive machinery (:mod:`repro.quic.stream`) and the
  endpoint state machine (:mod:`repro.quic.connection`) supporting both
  0-RTT and 1-RTT handshakes, whose distinction §VI evaluates.

Wira's hooks are the :meth:`~repro.quic.cc.base.CongestionController.
set_initial_window` / ``set_initial_pacing_rate`` overrides applied by the
send controller before the first data packet leaves.
"""

from repro.quic.config import QuicConfig
from repro.quic.connection import Connection, ConnectionStats, HandshakeMode, Role

__all__ = [
    "Connection",
    "ConnectionStats",
    "HandshakeMode",
    "QuicConfig",
    "Role",
]

"""Token-bucket pacer.

The pacer spaces packet departures at the congestion controller's pacing
rate.  Wira's second headline knob — ``init_pacing`` (§IV-C, Eq. 2) — is
simply the rate this bucket starts with: too low and the first frame
dribbles out (Fig 2(b), 0.8 Mbps → 302 ms FFCT); too high and the burst
overflows the bottleneck buffer (40 Mbps → >40 % loss).

A small burst allowance (default 10 packets, matching Linux's initial
quantum behaviour) lets short control exchanges go out immediately.
"""

from __future__ import annotations

from repro import sanitize as _sanitize


class Pacer:
    """Leaky-bucket packet release scheduler.

    Parameters
    ----------
    rate_bps:
        Initial pacing rate in bits per second.
    burst_bytes:
        Bucket capacity: bytes that may leave back-to-back after idle.
    """

    __slots__ = ("_rate_bps", "burst_bytes", "_tokens", "_last_update")

    def __init__(self, rate_bps: float, burst_bytes: int = 10 * 1252) -> None:
        if rate_bps <= 0:
            raise ValueError("pacing rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self._rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_update = 0.0

    @property
    def rate_bps(self) -> float:
        return self._rate_bps

    def set_rate(self, rate_bps: float, now: float) -> None:
        """Change the pacing rate; accrued credit is preserved."""
        if rate_bps <= 0:
            raise ValueError("pacing rate must be positive")
        self._refill(now)
        self._rate_bps = rate_bps

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_update
        if elapsed > 0:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens + elapsed * self._rate_bps / 8.0,
            )
            self._last_update = now
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_pacer(self, now)

    def time_until_send(self, size: int, now: float) -> float:
        """Seconds to wait before a ``size``-byte packet may depart.

        Returns 0.0 when the packet can leave immediately.
        """
        self._refill(now)
        if self._tokens >= size:
            return 0.0
        deficit = size - self._tokens
        return deficit * 8.0 / self._rate_bps

    def on_packet_sent(self, size: int, now: float) -> None:
        """Consume credit for a departing packet.

        Tokens may go negative, which naturally delays subsequent
        packets — equivalent to scheduling the next release time.
        """
        self._refill(now)
        self._tokens -= size
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_pacer(self, now)

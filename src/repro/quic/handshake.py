"""Handshake messages: tag-encoded CHLO / REJ / SHLO.

Modelled on gQUIC's crypto handshake (the paper implements against LSQUIC
Q043, a gQUIC version): messages are a type byte followed by
``<Tag, TagLen, TagValue>`` entries, where tags are 4-byte ASCII names.
Wira's ``HQST`` tag (§IV-B, Fig 8) rides in the CHLO exactly this way;
its *value* encoding lives with the cookie logic in
:mod:`repro.core.transport_cookie`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.quic.varint import decode_varint, encode_varint


class HandshakeMessageType(enum.IntEnum):
    CHLO = 0x01  # client hello (inchoate or full)
    REJ = 0x02  # server reject — forces the 1-RTT path
    SHLO = 0x03  # server hello — handshake complete


TAG_FULL = b"FULL"  # CHLO: b"\x01" when the hello is full (post-REJ or 0-RTT)
TAG_HQST = b"HQST"  # Wira: Hx_QoS synchronisation support + cookie echo
TAG_SNI = b"SNI\x00"  # requested host, for flavour/diagnostics


class HandshakeParseError(ValueError):
    """Raised on malformed handshake messages."""


@dataclass(frozen=True)
class HandshakeMessage:
    """One crypto-stream message."""

    message_type: HandshakeMessageType
    tags: Dict[bytes, bytes] = field(default_factory=dict)

    def encode(self) -> bytes:
        out = bytearray([self.message_type])
        out += encode_varint(len(self.tags))
        for tag, value in sorted(self.tags.items()):
            if len(tag) != 4:
                raise ValueError(f"tag {tag!r} must be exactly 4 bytes")
            out += tag
            out += encode_varint(len(value))
            out += value
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "HandshakeMessage":
        if not data:
            raise HandshakeParseError("empty handshake message")
        try:
            message_type = HandshakeMessageType(data[0])
        except ValueError as exc:
            raise HandshakeParseError(f"unknown message type 0x{data[0]:02x}") from exc
        try:
            count, offset = decode_varint(data, 1)
            tags: Dict[bytes, bytes] = {}
            for _ in range(count):
                if offset + 4 > len(data):
                    raise HandshakeParseError("truncated tag name")
                tag = bytes(data[offset : offset + 4])
                offset += 4
                length, offset = decode_varint(data, offset)
                if offset + length > len(data):
                    raise HandshakeParseError("truncated tag value")
                tags[tag] = bytes(data[offset : offset + length])
                offset += length
        except ValueError as exc:
            raise HandshakeParseError(f"malformed handshake message: {exc}") from exc
        return cls(message_type, tags)

    @property
    def is_full_hello(self) -> bool:
        """For CHLOs: whether this hello may be answered with data."""
        return self.tags.get(TAG_FULL, b"\x00") == b"\x01"


def chlo(full: bool, extra_tags: Dict[bytes, bytes]) -> HandshakeMessage:
    """Build a client hello."""
    tags = dict(extra_tags)
    tags[TAG_FULL] = b"\x01" if full else b"\x00"
    return HandshakeMessage(HandshakeMessageType.CHLO, tags)


def rej() -> HandshakeMessage:
    """Build a server reject (demands a full CHLO — the 1-RTT path)."""
    return HandshakeMessage(HandshakeMessageType.REJ, {})


def shlo() -> HandshakeMessage:
    """Build a server hello (handshake complete)."""
    return HandshakeMessage(HandshakeMessageType.SHLO, {})

"""Endpoint state machine: packetisation, handshake, recovery, pacing.

A :class:`Connection` is one side of a QUIC-like session running on the
discrete-event simulator.  It owns

* the handshake (0-RTT or 1-RTT, §VI of the paper evaluates both),
* stream packetisation under congestion-window and pacing constraints,
* ACK generation and loss recovery,
* the Wira extension points: handshake tags surface to the application
  (``on_client_hello``) so the server can read the ``HQST`` cookie, and
  ``send_hx_qos`` pushes Hx_QoS frames for periodic synchronisation.

Simplifications vs. RFC 9000, chosen because they do not affect
first-frame timing: a single packet-number space, no AEAD on packets, no
flow control (windows are assumed ample for a ≤250 KB first frame), no
connection migration, no datagram coalescing.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs as _obs
from repro import sanitize as _sanitize
from repro.quic.ack_manager import AckManager
from repro.quic.cc import make_controller
from repro.quic.cc.base import CongestionController
from repro.quic.config import QuicConfig
from repro.quic.frames import (
    AckFrame,
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    HxQosFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
)
from repro.quic.handshake import (
    HandshakeMessage,
    HandshakeMessageType,
    chlo,
    rej,
    shlo,
)
from repro.quic.loss_recovery import LossRecovery
from repro.quic.packet import Packet, PacketType
from repro.quic.pacer import Pacer
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket
from repro.quic.stream import RecvStream, SendStream
from repro.simnet.engine import Event, EventLoop
from repro.simnet.link import Datagram

_STREAM_FRAME_OVERHEAD = 40  # header + stream-frame field upper bound


class Role(enum.Enum):
    CLIENT = "client"
    SERVER = "server"


class HandshakeMode(enum.Enum):
    """How the connection is established (paper §VI).

    ``ZERO_RTT``: the client has a cached server config and sends the
    request together with its (full) CHLO — ~90 % of production streams.
    ``ONE_RTT``: the server rejects the inchoate CHLO once, gaining an
    accurate RTT sample before any data flows.
    """

    ZERO_RTT = "0rtt"
    ONE_RTT = "1rtt"


@dataclass
class ConnectionStats:
    """Counters the experiments read off a finished session."""

    packets_sent: int = 0
    packets_received: int = 0
    packets_lost: int = 0
    data_packets_sent: int = 0
    data_packets_lost: int = 0
    bytes_sent: int = 0
    bytes_retransmitted: int = 0
    duplicate_packets: int = 0
    corrupt_packets: int = 0
    undecodable_packets: int = 0
    pto_count: int = 0
    handshake_completed_at: Optional[float] = None
    handshake_rtt_sample: Optional[float] = None

    def data_loss_rate(self) -> float:
        """Fraction of data packets declared lost (FFLR numerator)."""
        if self.data_packets_sent == 0:
            return 0.0
        return self.data_packets_lost / self.data_packets_sent

    def snapshot(self) -> "ConnectionStats":
        return ConnectionStats(**vars(self))


class Connection:
    """One endpoint of a simulated QUIC-like connection.

    Parameters
    ----------
    loop:
        Simulator event loop.
    role:
        ``Role.CLIENT`` or ``Role.SERVER``.
    send_datagram:
        Transmit hook, e.g. ``path.send_to_server``.
    config:
        Transport knobs; see :class:`~repro.quic.config.QuicConfig`.
    handshake_mode:
        Client only: 0-RTT vs 1-RTT establishment.
    handshake_tags:
        Client only: extra CHLO tags — Wira's ``HQST`` cookie goes here.
    rng:
        Randomness source (connection-ID generation).
    send_burst:
        Optional train-transmit hook, e.g. ``link.send_burst``.  When
        set, ``_pump`` hands every datagram of one pump pass to the link
        in a single call (admissions and timing are identical to
        per-datagram sends; the link may vectorise the train).
    """

    def __init__(
        self,
        loop: EventLoop,
        role: Role,
        send_datagram: Callable[[Datagram], bool],
        config: Optional[QuicConfig] = None,
        handshake_mode: HandshakeMode = HandshakeMode.ZERO_RTT,
        handshake_tags: Optional[Dict[bytes, bytes]] = None,
        rng: Optional[random.Random] = None,
        send_burst: Optional[Callable[[Sequence[Datagram]], List[bool]]] = None,
    ) -> None:
        self.loop = loop
        self.role = role
        self.config = config or QuicConfig()
        self.handshake_mode = handshake_mode
        self._handshake_tags = dict(handshake_tags or {})
        self._send_datagram = send_datagram
        self._send_burst = send_burst
        self._burst_buffer: Optional[List[Datagram]] = None
        # Seeded default is deliberate: the rng only feeds connection-ID
        # generation, which never influences timing or scheme comparisons.
        rng = rng or random.Random(0)  # wira-lint: disable=WL002
        self.connection_id = bytes(rng.getrandbits(8) for _ in range(8))
        self._trace_id = self.connection_id.hex()
        # Last (cwnd, pacing) pair the trace bus saw, so the high-volume
        # recovery:metrics_updated event only fires on actual change.
        self._last_traced_metrics: Tuple[int, float] = (-1, -1.0)

        self.rtt = RttEstimator(
            initial_rtt=self.config.initial_rtt,
            min_rtt_window=self.config.min_rtt_window,
        )
        self.cc: CongestionController = make_controller(
            self.config.congestion_controller,
            rtt=self.rtt,
            mss=self.config.mss,
            initial_window_packets=self.config.initial_window_packets,
            **dict(self.config.cc_params),
        )
        self.cc._trace_conn = self._trace_id
        self.pacer = Pacer(
            rate_bps=self.cc.pacing_rate_bps,
            burst_bytes=self.config.pacer_burst_packets * self.config.mss,
        )
        self.loss_recovery = LossRecovery(
            self.rtt,
            self.config.max_ack_delay,
            packet_threshold=self.config.loss_packet_threshold,
            time_factor=self.config.loss_time_factor,
            probe_count=self.config.pto_probe_count,
            backoff=self.config.pto_backoff,
        )
        self.ack_manager = AckManager(self.config.max_ack_delay, self.config.ack_every)
        self.stats = ConnectionStats()

        self._next_packet_number = 0
        self._send_streams: Dict[int, SendStream] = {}
        self._recv_streams: Dict[int, RecvStream] = {}
        self._fin_reported: Set[int] = set()
        self._crypto_queue: List[HandshakeMessage] = []
        self._crypto_offset = 0
        self._seen_crypto_offsets: Set[int] = set()
        self._control_queue: List[Frame] = []
        self._timer: Optional[Event] = None
        self._closed = False

        # Handshake state.
        self.handshake_complete = False
        self._chlo_sent_at: Optional[float] = None
        self._rej_sent_at: Optional[float] = None
        self._rej_received = False

        # Application callbacks.
        self.on_stream_data: Optional[Callable[[int, bytes, bool], None]] = None
        self.on_client_hello: Optional[
            Callable[[Dict[bytes, bytes], Optional[float]], None]
        ] = None
        self.on_handshake_complete: Optional[Callable[[], None]] = None
        self.on_hx_qos: Optional[Callable[[HxQosFrame], None]] = None

    # ------------------------------------------------------------------
    # Public API

    def start(self) -> None:
        """Client only: launch the handshake (and any queued 0-RTT data)."""
        if self.role != Role.CLIENT:
            raise ValueError("only clients initiate the handshake")
        full = self.handshake_mode == HandshakeMode.ZERO_RTT
        self._queue_crypto(chlo(full=full, extra_tags=self._handshake_tags))
        self._chlo_sent_at = self.loop.now
        self._pump()

    def send_stream_data(self, stream_id: int, data: bytes, fin: bool = False) -> None:
        """Queue application bytes on a stream and try to transmit."""
        stream = self._send_streams.get(stream_id)
        if stream is None:
            stream = SendStream(stream_id)
            self._send_streams[stream_id] = stream
        stream.write(data, fin)
        self._pump()

    def send_hx_qos(self, frame: HxQosFrame) -> None:
        """Queue a Wira Hx_QoS frame (periodic cookie synchronisation)."""
        self._control_queue.append(frame)
        self._pump()

    def recv_stream(self, stream_id: int) -> Optional[RecvStream]:
        return self._recv_streams.get(stream_id)

    def measured_min_rtt(self) -> Optional[float]:
        """Windowed MinRTT — the first Hx_QoS metric (§IV-B)."""
        return self.rtt.min_rtt

    def measured_max_bw(self) -> Optional[float]:
        """Max delivery rate (bps) — the second Hx_QoS metric (§IV-B)."""
        estimate = getattr(self.cc, "bandwidth_estimate", lambda: None)()
        return estimate

    @property
    def bytes_in_flight(self) -> int:
        return self.loss_recovery.bytes_in_flight

    def close(self) -> None:
        """Stop all timers; the connection no longer reacts to input."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Receive path

    def datagram_received(self, datagram: Datagram) -> None:
        if self._closed:
            return
        if datagram.corrupted:
            # A real transport's AEAD rejects a corrupted datagram; the
            # simulator has no packet AEAD, so the fault injector marks
            # the datagrams it mutilates and we model the rejection here.
            self.stats.corrupt_packets += 1
            self._trace_packet_dropped("corrupt", datagram.size)
            return
        try:
            packet = Packet.decode(datagram.payload)
        except ValueError:
            # Malformed on the wire (PacketParseError and friends): drop,
            # count, and survive — garbage input must never crash the
            # endpoint (§IV-C graceful degradation).
            self.stats.undecodable_packets += 1
            self._trace_packet_dropped("undecodable", datagram.size)
            return
        self.stats.packets_received += 1
        now = self.loop.now
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now,
                "transport:packet_received",
                self._trace_id,
                {"pn": packet.packet_number, "size": datagram.size, "role": self.role.value},
            )
        duplicate = self.ack_manager.on_packet_received(
            packet.packet_number, packet.ack_eliciting(), now
        )
        if duplicate:
            self.stats.duplicate_packets += 1
        else:
            for frame in packet.frames:
                self._process_frame(frame, now)
        self._pump()

    def _process_frame(self, frame: Frame, now: float) -> None:
        if isinstance(frame, AckFrame):
            self._on_ack(frame, now)
        elif isinstance(frame, CryptoFrame):
            self._on_crypto(frame, now)
        elif isinstance(frame, StreamFrame):
            self._on_stream(frame)
        elif isinstance(frame, HxQosFrame):
            if self.on_hx_qos is not None:
                self.on_hx_qos(frame)
        elif isinstance(frame, (PingFrame, PaddingFrame, HandshakeDoneFrame)):
            pass
        else:  # pragma: no cover - parse layer rejects unknown types
            raise ValueError(f"unhandled frame {frame!r}")

    def _on_ack(self, ack: AckFrame, now: float) -> None:
        result = self.loss_recovery.on_ack_received(ack, now)
        if result.newly_lost:
            self._handle_losses(result.newly_lost, now)
        if result.newly_acked:
            self.cc.on_packets_acked(result.newly_acked, self.bytes_in_flight, now)
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    now,
                    "transport:packet_acked",
                    self._trace_id,
                    {"pns": [p.packet_number for p in result.newly_acked]},
                )
                self._trace_cc_metrics(now)
        self.stats.pto_count = max(self.stats.pto_count, self.loss_recovery.pto_count)

    def _trace_packet_dropped(self, reason: str, size: int) -> None:
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.loop.now,
                "transport:packet_dropped",
                self._trace_id,
                {"reason": reason, "size": size, "role": self.role.value},
            )

    def _trace_cc_metrics(self, now: float) -> None:
        """Emit ``recovery:metrics_updated`` when cwnd/pacing changed.

        Callers hold the ``_obs.ACTIVE`` guard; deduplicating here keeps
        the high-volume event proportional to actual controller updates.
        """
        bus = _obs.ACTIVE
        if bus is None:
            return
        metrics = (self.cc.congestion_window, self.cc.pacing_rate_bps)
        if metrics == self._last_traced_metrics:
            return
        self._last_traced_metrics = metrics
        bus.emit(
            now,
            "recovery:metrics_updated",
            self._trace_id,
            {
                "cwnd": metrics[0],
                "pacing_bps": metrics[1],
                "inflight": self.bytes_in_flight,
            },
        )

    def _on_crypto(self, frame: CryptoFrame, now: float) -> None:
        if frame.offset in self._seen_crypto_offsets:
            return
        self._seen_crypto_offsets.add(frame.offset)
        try:
            message = HandshakeMessage.decode(frame.data)
        except ValueError:
            # HandshakeParseError on hostile crypto bytes: drop the
            # message, keep the connection alive.
            self.stats.undecodable_packets += 1
            self._trace_packet_dropped("bad_handshake", len(frame.data))
            return
        if message.message_type == HandshakeMessageType.CHLO:
            self._on_chlo(message, now)
        elif message.message_type == HandshakeMessageType.REJ:
            self._on_rej(now)
        elif message.message_type == HandshakeMessageType.SHLO:
            self._on_shlo(now)

    def _on_chlo(self, message: HandshakeMessage, now: float) -> None:
        if self.role != Role.SERVER:
            return
        if not message.is_full_hello:
            # 1-RTT path: demand a full CHLO and remember when we asked,
            # which yields an RTT sample before any data is sent.
            self._queue_crypto(rej())
            self._rej_sent_at = now
            return
        if self.handshake_complete:
            return
        rtt_sample: Optional[float] = None
        if self._rej_sent_at is not None:
            rtt_sample = now - self._rej_sent_at
            if rtt_sample > 0:
                self.rtt.update(rtt_sample, now=now)
        self.handshake_complete = True
        self.stats.handshake_completed_at = now
        self.stats.handshake_rtt_sample = rtt_sample
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now,
                "transport:handshake_complete",
                self._trace_id,
                {"role": self.role.value, "rtt_sample": rtt_sample},
            )
        if self.on_client_hello is not None:
            self.on_client_hello(message.tags, rtt_sample)
        self._queue_crypto(shlo())

    def _on_rej(self, now: float) -> None:
        if self.role != Role.CLIENT or self._rej_received:
            return
        self._rej_received = True
        if self._chlo_sent_at is not None:
            sample = now - self._chlo_sent_at
            if sample > 0:
                self.rtt.update(sample, now=now)
        self._queue_crypto(chlo(full=True, extra_tags=self._handshake_tags))

    def _on_shlo(self, now: float) -> None:
        if self.role != Role.CLIENT or self.handshake_complete:
            return
        self.handshake_complete = True
        self.stats.handshake_completed_at = now
        if self._chlo_sent_at is not None and self.rtt.min_rtt is None:
            sample = now - self._chlo_sent_at
            if sample > 0:
                self.rtt.update(sample, now=now)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now,
                "transport:handshake_complete",
                self._trace_id,
                {"role": self.role.value, "rtt_sample": self.rtt.min_rtt},
            )
        if self.on_handshake_complete is not None:
            self.on_handshake_complete()

    def _on_stream(self, frame: StreamFrame) -> None:
        stream = self._recv_streams.get(frame.stream_id)
        if stream is None:
            stream = RecvStream(frame.stream_id)
            self._recv_streams[frame.stream_id] = stream
        fresh = stream.on_frame(frame.offset, frame.data, frame.fin)
        newly_finished = stream.finished and frame.stream_id not in self._fin_reported
        if newly_finished:
            self._fin_reported.add(frame.stream_id)
        if (fresh or newly_finished) and self.on_stream_data is not None:
            self.on_stream_data(frame.stream_id, fresh, stream.finished)

    # ------------------------------------------------------------------
    # Loss handling

    def _handle_losses(self, lost: List[SentPacket], now: float) -> None:
        for packet in lost:
            self.stats.packets_lost += 1
            if any(isinstance(f, StreamFrame) for f in packet.frames):
                self.stats.data_packets_lost += 1
            self._requeue_frames(packet)
        self.cc.on_packets_lost(lost, self.bytes_in_flight, now)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now,
                "transport:packet_lost",
                self._trace_id,
                {"pns": [p.packet_number for p in lost]},
            )
            self._trace_cc_metrics(now)

    def _requeue_frames(self, packet: SentPacket) -> None:
        for frame in packet.frames:
            if isinstance(frame, StreamFrame):
                stream = self._send_streams.get(frame.stream_id)
                if stream is None:
                    continue
                if frame.data:
                    stream.on_chunk_lost(frame.offset, len(frame.data))
                    self.stats.bytes_retransmitted += len(frame.data)
                elif frame.fin:
                    stream.resend_fin()
            elif isinstance(frame, CryptoFrame):
                message = HandshakeMessage.decode(frame.data)
                self._queue_crypto(message)
            elif isinstance(frame, HxQosFrame):
                self._control_queue.append(frame)

    # ------------------------------------------------------------------
    # Send path

    def _queue_crypto(self, message: HandshakeMessage) -> None:
        self._crypto_queue.append(message)

    def _can_send_app_data(self) -> bool:
        if self.role == Role.SERVER:
            return self.handshake_complete
        if self.handshake_mode == HandshakeMode.ZERO_RTT:
            return True  # request rides with the CHLO
        return self._rej_received  # 1-RTT: wait out the extra round trip

    def _app_packet_type(self) -> PacketType:
        if self.handshake_complete:
            return PacketType.ONE_RTT
        if self.role == Role.CLIENT:
            return PacketType.ZERO_RTT
        return PacketType.ONE_RTT

    def _pump(self) -> None:
        """Transmit whatever the handshake, cwnd and pacer allow."""
        if self._closed:
            return
        now = self.loop.now
        self.pacer.set_rate(max(self.cc.pacing_rate_bps, 1.0), now)

        # With a burst hook, collect this pass's datagrams and hand the
        # whole train to the link at once (before the timer is armed, so
        # the delivery events keep their historical scheduling order).
        buffer: Optional[List[Datagram]] = None
        if self._send_burst is not None:
            self._burst_buffer = buffer = []

        # If only control/handshake traffic is pending, mark the sampler
        # app-limited *before* those packets snapshot their state, so
        # their tiny delivery-rate samples cannot poison the model.
        if self._next_pending_stream() is None:
            self.cc.on_app_limited(self.bytes_in_flight)

        # Handshake messages leave immediately (tiny, latency-critical).
        while self._crypto_queue:
            message = self._crypto_queue.pop(0)
            frame = CryptoFrame(self._crypto_offset, message.encode())
            self._crypto_offset += len(frame.data)
            packet_type = (
                PacketType.INITIAL if self.role == Role.CLIENT else PacketType.HANDSHAKE
            )
            self._send_packet(packet_type, [frame], in_flight=True, now=now)

        # Application data: congestion-window and pacing constrained.
        pacing_deadline: Optional[float] = None
        if self._can_send_app_data():
            while True:
                pending_stream = self._next_pending_stream()
                if pending_stream is None and not self._control_queue:
                    break
                if not self.cc.can_send(self.bytes_in_flight):
                    break
                wait = self.pacer.time_until_send(self.config.mss, now)
                if wait > 1e-12:
                    pacing_deadline = now + wait
                    if _obs.ACTIVE is not None:
                        _obs.ACTIVE.emit(
                            now,
                            "pacer:tokens_depleted",
                            self._trace_id,
                            {"wait": wait, "rate_bps": self.cc.pacing_rate_bps},
                        )
                    break
                frames: List[Frame] = []
                if self._control_queue:
                    frames.extend(self._control_queue)
                    self._control_queue.clear()
                if pending_stream is not None:
                    budget = self.config.mss - _STREAM_FRAME_OVERHEAD
                    chunk = pending_stream.next_chunk(budget)
                    if chunk is not None:
                        frames.append(
                            StreamFrame(chunk.stream_id, chunk.offset, chunk.data, chunk.fin)
                        )
                if not frames:
                    break
                self._send_packet(self._app_packet_type(), frames, in_flight=True, now=now)
            if (
                self._next_pending_stream() is None
                and not self._control_queue
                and self.cc.can_send(self.bytes_in_flight)
            ):
                self.cc.on_app_limited(self.bytes_in_flight)

        # Standalone ACK if one is due and nothing carried it.
        if self.ack_manager.should_ack_now(now):
            ack = self.ack_manager.build_ack(now)
            if ack is not None:
                self._send_packet(self._app_packet_type(), [ack], in_flight=False, now=now)

        if buffer is not None:
            self._burst_buffer = None
            if len(buffer) == 1:
                self._send_datagram(buffer[0])
            elif buffer:
                assert self._send_burst is not None
                self._send_burst(buffer)

        self._reschedule_timer(pacing_deadline)

    def _next_pending_stream(self) -> Optional[SendStream]:
        for stream in self._send_streams.values():
            if stream.has_data_to_send():
                return stream
        return None

    def _send_packet(
        self,
        packet_type: PacketType,
        frames: List[Frame],
        in_flight: bool,
        now: float,
    ) -> None:
        # Piggyback a pending ACK on any outgoing packet.
        if in_flight and self.ack_manager.ack_deadline(now) is not None:
            ack = self.ack_manager.build_ack(now)
            if ack is not None:
                frames = [ack] + frames
        packet = Packet(
            packet_type=packet_type,
            connection_id=self.connection_id,
            packet_number=self._next_packet_number,
            frames=tuple(frames),
        )
        self._next_packet_number += 1
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_packet_sent(self, packet.packet_number, now)
        wire = packet.encode()
        size = len(wire) + self.config.udp_overhead
        sent = SentPacket(
            packet_number=packet.packet_number,
            sent_time=now,
            size=size,
            ack_eliciting=packet.ack_eliciting(),
            in_flight=in_flight and packet.ack_eliciting(),
            frames=packet.frames,
        )
        prior_in_flight = self.bytes_in_flight
        self.cc.on_packet_sent(sent, prior_in_flight, now)
        self.loss_recovery.on_packet_sent(sent)
        if sent.in_flight:
            self.pacer.on_packet_sent(size, now)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += size
        has_stream_data = any(isinstance(f, StreamFrame) for f in frames)
        if has_stream_data:
            self.stats.data_packets_sent += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now,
                "transport:packet_sent",
                self._trace_id,
                {
                    "pn": packet.packet_number,
                    "size": size,
                    "type": packet_type.value,
                    "stream_data": has_stream_data,
                    "role": self.role.value,
                },
            )
        datagram = Datagram(wire, size=size)
        if self._burst_buffer is not None:
            self._burst_buffer.append(datagram)
        else:
            self._send_datagram(datagram)

    # ------------------------------------------------------------------
    # Timers

    def _reschedule_timer(self, pacing_deadline: Optional[float] = None) -> None:
        if self._closed:
            return
        deadlines = []
        ack_deadline = self.ack_manager.ack_deadline(self.loop.now)
        if ack_deadline is not None:
            deadlines.append(ack_deadline)
        if self.loss_recovery.loss_time is not None:
            deadlines.append(self.loss_recovery.loss_time)
        pto = self.loss_recovery.pto_deadline()
        if pto is not None:
            deadlines.append(pto)
        if pacing_deadline is not None:
            deadlines.append(pacing_deadline)
        timer = self._timer
        if not deadlines:
            if timer is not None:
                timer.cancel()
                self._timer = None
            return
        when = max(min(deadlines), self.loop.now)
        if timer is not None and not timer.cancelled and not timer._finished:
            if timer.time == when:  # wira-lint: disable=WL003 - exact reschedule
                # Most pumps recompute the very same deadline; keep the
                # live event instead of a cancel + re-allocate churn.
                return
            timer.cancel()
        self._timer = self.loop.call_at(when, self._on_timer)

    def _on_timer(self) -> None:
        if self._closed:
            return
        now = self.loop.now
        lost = self.loss_recovery.check_loss_timer(now)
        if lost:
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    now,
                    "recovery:loss_timer_fired",
                    self._trace_id,
                    {"n_lost": len(lost)},
                )
            self._handle_losses(lost, now)
        pto = self.loss_recovery.pto_deadline()
        if pto is not None and pto <= now + 1e-12:
            self._on_pto(now)
        self._pump()

    def _on_pto(self, now: float) -> None:
        if self.loss_recovery.pto_count >= self.config.max_pto_count:
            # The peer has been unreachable across every backoff level;
            # abandon the connection rather than retry into a black hole.
            self.close()
            return
        probes = self.loss_recovery.on_pto_fired(now)
        self.stats.pto_count = max(self.stats.pto_count, self.loss_recovery.pto_count)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now,
                "recovery:pto_fired",
                self._trace_id,
                {"pto_count": self.loss_recovery.pto_count, "n_probes": len(probes)},
            )
        retransmitted = False
        for packet in probes:
            has_payload = any(
                isinstance(f, (StreamFrame, CryptoFrame, HxQosFrame)) for f in packet.frames
            )
            if has_payload:
                self._requeue_frames(packet)
                retransmitted = True
        if not retransmitted:
            self._control_queue.append(PingFrame())

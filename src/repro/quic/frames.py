"""QUIC frame codecs, including the Wira ``Hx_QoS`` frame.

Implemented frame types (a working subset of RFC 9000 plus the paper's
extension):

====================  ======  =====================================
Frame                 Type    Role in the reproduction
====================  ======  =====================================
PADDING               0x00    datagram size normalisation
PING                  0x01    PTO probes
ACK                   0x02    loss recovery / RTT / delivery rate
CRYPTO                0x06    handshake messages (CHLO/REJ/SHLO)
STREAM                0x08-f  live-streaming payload
HANDSHAKE_DONE        0x1e    handshake confirmation
HX_QOS                0x1f    Wira transport-cookie synchronisation
====================  ======  =====================================

The ``Hx_QoS`` frame follows §IV-B: a sequence of
``<HxID, HxLen, Hx_QoS_Value>`` triples.  Standard HxIDs are defined in
:class:`HxId`; the *sealed* triple carries the server-encrypted cookie
blob that clients store and echo without being able to read
(see :mod:`repro.core.cookie_crypto`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.quic.varint import decode_varint, encode_varint


class FrameParseError(ValueError):
    """Raised when a packet payload cannot be parsed into frames."""


class FrameType(enum.IntEnum):
    PADDING = 0x00
    PING = 0x01
    ACK = 0x02
    CRYPTO = 0x06
    STREAM_BASE = 0x08
    HANDSHAKE_DONE = 0x1E
    HX_QOS = 0x1F  # paper §IV-B: "whose 'type' is set to 0x1f"


class HxId(enum.IntEnum):
    """Identifiers for Hx_QoS triples carried in an Hx_QoS frame."""

    MIN_RTT_US = 0x01  # minimum RTT observed, microseconds
    MAX_BW_BPS = 0x02  # maximum delivery rate observed, bits/second
    TIMESTAMP_MS = 0x03  # server clock at measurement, milliseconds
    SEALED = 0x10  # opaque server-encrypted cookie blob


@dataclass(frozen=True)
class PaddingFrame:
    length: int = 1

    def encode(self) -> bytes:
        return b"\x00" * self.length


@dataclass(frozen=True)
class PingFrame:
    def encode(self) -> bytes:
        return bytes([FrameType.PING])


@dataclass(frozen=True)
class AckFrame:
    """ACK with ranges, RFC 9000 §19.3.

    ``ranges`` lists acknowledged packet-number intervals as inclusive
    ``(low, high)`` pairs sorted descending by ``high``; the first range
    must contain ``largest_acked``.
    """

    largest_acked: int
    ack_delay_us: int
    ranges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError("ACK frame needs at least one range")
        if self.ranges[0][1] != self.largest_acked:
            raise ValueError("first range must end at largest_acked")
        for low, high in self.ranges:
            if low > high:
                raise ValueError(f"invalid range ({low}, {high})")

    def encode(self) -> bytes:
        out = bytearray([FrameType.ACK])
        out += encode_varint(self.largest_acked)
        out += encode_varint(self.ack_delay_us)
        out += encode_varint(len(self.ranges) - 1)
        first_low, first_high = self.ranges[0]
        out += encode_varint(first_high - first_low)
        prev_low = first_low
        for low, high in self.ranges[1:]:
            gap = prev_low - high - 2
            if gap < 0:
                raise ValueError("ACK ranges must be descending and disjoint")
            out += encode_varint(gap)
            out += encode_varint(high - low)
            prev_low = low
        return bytes(out)

    def acked_packet_numbers(self) -> List[int]:
        """All packet numbers covered, descending."""
        numbers: List[int] = []
        for low, high in self.ranges:
            numbers.extend(range(high, low - 1, -1))
        return numbers


@dataclass(frozen=True)
class CryptoFrame:
    offset: int
    data: bytes

    def encode(self) -> bytes:
        out = bytearray([FrameType.CRYPTO])
        out += encode_varint(self.offset)
        out += encode_varint(len(self.data))
        out += self.data
        return bytes(out)


@dataclass(frozen=True)
class StreamFrame:
    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    def encode(self) -> bytes:
        # Always emit OFF|LEN (0x04|0x02); FIN is bit 0x01.
        frame_type = FrameType.STREAM_BASE | 0x04 | 0x02 | (0x01 if self.fin else 0x00)
        out = bytearray([frame_type])
        out += encode_varint(self.stream_id)
        out += encode_varint(self.offset)
        out += encode_varint(len(self.data))
        out += self.data
        return bytes(out)


@dataclass(frozen=True)
class HandshakeDoneFrame:
    def encode(self) -> bytes:
        return bytes([FrameType.HANDSHAKE_DONE])


@dataclass(frozen=True)
class HxQosFrame:
    """Wira Hx_QoS frame: ``<HxID, HxLen, Hx_QoS_Value>`` triples."""

    triples: Tuple[Tuple[int, bytes], ...]

    def encode(self) -> bytes:
        out = bytearray([FrameType.HX_QOS])
        out += encode_varint(len(self.triples))
        for hx_id, value in self.triples:
            out += encode_varint(hx_id)
            out += encode_varint(len(value))
            out += value
        return bytes(out)

    @classmethod
    def from_metrics(
        cls,
        min_rtt: float,
        max_bw_bps: float,
        timestamp: float,
        sealed: bytes = b"",
    ) -> "HxQosFrame":
        """Build a frame from QoS metrics in natural units.

        ``min_rtt``/``timestamp`` are in seconds, ``max_bw_bps`` in bits
        per second.  ``sealed`` optionally appends the encrypted cookie
        blob as a fourth triple.
        """
        triples = [
            (int(HxId.MIN_RTT_US), encode_varint(max(0, int(min_rtt * 1e6)))),
            (int(HxId.MAX_BW_BPS), encode_varint(max(0, int(max_bw_bps)))),
            (int(HxId.TIMESTAMP_MS), encode_varint(max(0, int(timestamp * 1e3)))),
        ]
        if sealed:
            triples.append((int(HxId.SEALED), sealed))
        return cls(tuple(triples))

    def metric(self, hx_id: int) -> bytes:
        """Raw value of the first triple with ``hx_id``.

        Raises :class:`KeyError` if absent.
        """
        for tid, value in self.triples:
            if tid == hx_id:
                return value
        raise KeyError(hx_id)

    def decoded_metrics(self) -> dict:
        """Decode the standard triples into natural units.

        Returns a dict with any of ``min_rtt`` (s), ``max_bw_bps``,
        ``timestamp`` (s) and ``sealed`` (bytes) that are present.
        """
        out: dict = {}
        for tid, value in self.triples:
            if tid == HxId.MIN_RTT_US:
                out["min_rtt"] = decode_varint(value)[0] / 1e6
            elif tid == HxId.MAX_BW_BPS:
                out["max_bw_bps"] = float(decode_varint(value)[0])
            elif tid == HxId.TIMESTAMP_MS:
                out["timestamp"] = decode_varint(value)[0] / 1e3
            elif tid == HxId.SEALED:
                out["sealed"] = value
        return out


Frame = Union[
    PaddingFrame,
    PingFrame,
    AckFrame,
    CryptoFrame,
    StreamFrame,
    HandshakeDoneFrame,
    HxQosFrame,
]


def encode_frames(frames: Sequence[Frame]) -> bytes:
    """Serialise frames back-to-back into a packet payload."""
    return b"".join(frame.encode() for frame in frames)


def parse_frames(data: bytes) -> List[Frame]:
    """Parse a packet payload into frames.

    Runs of PADDING bytes collapse into a single :class:`PaddingFrame`.
    """
    frames: List[Frame] = []
    offset = 0
    length = len(data)
    while offset < length:
        frame_type = data[offset]
        if frame_type == FrameType.PADDING:
            run_start = offset
            while offset < length and data[offset] == FrameType.PADDING:
                offset += 1
            frames.append(PaddingFrame(length=offset - run_start))
        elif frame_type == FrameType.PING:
            frames.append(PingFrame())
            offset += 1
        elif frame_type == FrameType.ACK:
            frame, offset = _parse_ack(data, offset + 1)
            frames.append(frame)
        elif frame_type == FrameType.CRYPTO:
            frame, offset = _parse_crypto(data, offset + 1)
            frames.append(frame)
        elif FrameType.STREAM_BASE <= frame_type <= FrameType.STREAM_BASE | 0x07:
            frame, offset = _parse_stream(data, offset)
            frames.append(frame)
        elif frame_type == FrameType.HANDSHAKE_DONE:
            frames.append(HandshakeDoneFrame())
            offset += 1
        elif frame_type == FrameType.HX_QOS:
            frame, offset = _parse_hx_qos(data, offset + 1)
            frames.append(frame)
        else:
            raise FrameParseError(f"unknown frame type 0x{frame_type:02x} at offset {offset}")
    return frames


def _parse_ack(data: bytes, offset: int) -> Tuple[AckFrame, int]:
    try:
        largest, offset = decode_varint(data, offset)
        ack_delay, offset = decode_varint(data, offset)
        extra_ranges, offset = decode_varint(data, offset)
        first_len, offset = decode_varint(data, offset)
        ranges = [(largest - first_len, largest)]
        prev_low = largest - first_len
        for _ in range(extra_ranges):
            gap, offset = decode_varint(data, offset)
            range_len, offset = decode_varint(data, offset)
            high = prev_low - gap - 2
            low = high - range_len
            if low < 0:
                raise FrameParseError("ACK range below zero")
            ranges.append((low, high))
            prev_low = low
        return AckFrame(largest, ack_delay, tuple(ranges)), offset
    except ValueError as exc:
        raise FrameParseError(f"malformed ACK frame: {exc}") from exc


def _parse_crypto(data: bytes, offset: int) -> Tuple[CryptoFrame, int]:
    try:
        crypto_offset, offset = decode_varint(data, offset)
        data_len, offset = decode_varint(data, offset)
    except ValueError as exc:
        raise FrameParseError(f"malformed CRYPTO frame: {exc}") from exc
    if offset + data_len > len(data):
        raise FrameParseError("CRYPTO frame truncated")
    return CryptoFrame(crypto_offset, bytes(data[offset : offset + data_len])), offset + data_len


def _parse_stream(data: bytes, offset: int) -> Tuple[StreamFrame, int]:
    frame_type = data[offset]
    has_offset = bool(frame_type & 0x04)
    has_length = bool(frame_type & 0x02)
    fin = bool(frame_type & 0x01)
    offset += 1
    try:
        stream_id, offset = decode_varint(data, offset)
        stream_offset = 0
        if has_offset:
            stream_offset, offset = decode_varint(data, offset)
        if has_length:
            data_len, offset = decode_varint(data, offset)
        else:
            data_len = len(data) - offset
    except ValueError as exc:
        raise FrameParseError(f"malformed STREAM frame: {exc}") from exc
    if offset + data_len > len(data):
        raise FrameParseError("STREAM frame truncated")
    payload = bytes(data[offset : offset + data_len])
    return StreamFrame(stream_id, stream_offset, payload, fin), offset + data_len


def _parse_hx_qos(data: bytes, offset: int) -> Tuple[HxQosFrame, int]:
    try:
        count, offset = decode_varint(data, offset)
        triples = []
        for _ in range(count):
            hx_id, offset = decode_varint(data, offset)
            hx_len, offset = decode_varint(data, offset)
            if offset + hx_len > len(data):
                raise FrameParseError("Hx_QoS triple truncated")
            triples.append((hx_id, bytes(data[offset : offset + hx_len])))
            offset += hx_len
        return HxQosFrame(tuple(triples)), offset
    except ValueError as exc:
        raise FrameParseError(f"malformed Hx_QoS frame: {exc}") from exc

"""Packet-level wire format.

A deliberately simplified—but still byte-exact—take on RFC 9000 headers:

* **long header** (``flags & 0x80``) for INITIAL / 0-RTT / HANDSHAKE
  packets, with the packet type in the low two bits;
* **short header** for 1-RTT packets;
* a fixed 8-byte connection ID;
* the packet number encoded as a full varint rather than RFC 9000's
  truncated-and-reconstructed form — the reproduction does not exercise
  packet-number ambiguity, and full numbers keep the codec honest and
  debuggable (documented substitution, see DESIGN.md).

The payload is a frame sequence (:mod:`repro.quic.frames`).  There is no
AEAD: payload confidentiality is irrelevant to FFCT, while the paper's
cookie-confidentiality requirement is handled where it matters, in
:mod:`repro.core.cookie_crypto`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.quic.frames import Frame, encode_frames, parse_frames
from repro.quic.varint import VarintError, decode_varint, encode_varint

CONNECTION_ID_BYTES = 8

_LONG_HEADER_BIT = 0x80
_FIXED_BIT = 0x40


class PacketParseError(ValueError):
    """Raised on malformed packet headers or payloads."""


class PacketType(enum.IntEnum):
    INITIAL = 0x00  # carries CHLO / REJ crypto messages
    ZERO_RTT = 0x01  # carries early application data (0-RTT)
    HANDSHAKE = 0x02  # carries SHLO / handshake completion
    ONE_RTT = 0x03  # short header, post-handshake data


@dataclass(frozen=True)
class Packet:
    """A parsed or to-be-encoded transport packet."""

    packet_type: PacketType
    connection_id: bytes
    packet_number: int
    frames: Tuple[Frame, ...]

    def __post_init__(self) -> None:
        if len(self.connection_id) != CONNECTION_ID_BYTES:
            raise ValueError(f"connection id must be {CONNECTION_ID_BYTES} bytes")
        if self.packet_number < 0:
            raise ValueError("packet number must be non-negative")

    @property
    def is_long_header(self) -> bool:
        return self.packet_type != PacketType.ONE_RTT

    def encode(self) -> bytes:
        if self.is_long_header:
            flags = _LONG_HEADER_BIT | _FIXED_BIT | int(self.packet_type)
        else:
            flags = _FIXED_BIT
        out = bytearray([flags])
        out += self.connection_id
        out += encode_varint(self.packet_number)
        out += encode_frames(self.frames)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        if len(data) < 1 + CONNECTION_ID_BYTES + 1:
            raise PacketParseError("datagram too short for a packet header")
        flags = data[0]
        if not flags & _FIXED_BIT:
            raise PacketParseError("fixed bit not set")
        if flags & _LONG_HEADER_BIT:
            packet_type = PacketType(flags & 0x03)
        else:
            packet_type = PacketType.ONE_RTT
        connection_id = bytes(data[1 : 1 + CONNECTION_ID_BYTES])
        try:
            packet_number, offset = decode_varint(data, 1 + CONNECTION_ID_BYTES)
        except VarintError as exc:
            raise PacketParseError(f"bad packet number: {exc}") from exc
        frames = tuple(parse_frames(bytes(data[offset:])))
        return cls(packet_type, connection_id, packet_number, frames)

    def ack_eliciting(self) -> bool:
        """True if the packet must be acknowledged (RFC 9002 §2)."""
        from repro.quic.frames import AckFrame, PaddingFrame

        return any(not isinstance(f, (AckFrame, PaddingFrame)) for f in self.frames)

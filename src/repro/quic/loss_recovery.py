"""Sender-side loss detection: packet threshold, time threshold and PTO.

Implements the RFC 9002 recovery core the reproduction needs:

* **packet threshold** — a packet is lost once ``kPacketThreshold`` (3)
  later packets are acknowledged;
* **time threshold** — a packet older than ``9/8 · max(sRTT, latestRTT)``
  below the largest acked is lost after a timer;
* **PTO** — when ack-eliciting data is in flight and nothing fires,
  the probe timeout backs off exponentially.

Losses matter doubly here: they feed the congestion controller *and* the
paper's first-frame loss rate metric (FFLR, Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import sanitize as _sanitize
from repro.quic.frames import AckFrame
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket

K_PACKET_THRESHOLD = 3


@dataclass
class AckResult:
    """Outcome of processing one ACK frame."""

    newly_acked: List[SentPacket] = field(default_factory=list)
    newly_lost: List[SentPacket] = field(default_factory=list)
    rtt_sample: Optional[float] = None
    ack_delay: float = 0.0


class LossRecovery:
    """Tracks unacknowledged packets and classifies their fate."""

    def __init__(
        self,
        rtt: RttEstimator,
        max_ack_delay: float = 0.025,
        *,
        packet_threshold: int = K_PACKET_THRESHOLD,
        time_factor: float = 9.0 / 8.0,
        probe_count: int = 2,
        backoff: float = 2.0,
    ) -> None:
        self.rtt = rtt
        self.max_ack_delay = max_ack_delay
        self.packet_threshold = packet_threshold
        self.time_factor = time_factor
        self.probe_count = probe_count
        self.backoff = backoff
        self.sent_packets: Dict[int, SentPacket] = {}
        self.largest_acked: Optional[int] = None
        self.pto_count = 0
        self.bytes_in_flight = 0
        self._loss_time: Optional[float] = None
        # Unresolved views of ``sent_packets``, insertion-ordered (packet
        # numbers are assigned in send order, so iteration order == pn
        # order).  Every query that used to scan ``sent_packets`` — PTO
        # deadline, probe selection, oldest-unacked, loss detection —
        # reads these instead, turning O(packets-ever-sent) scans into
        # O(unresolved) or O(1) lookups.  Resolution (ack / loss) always
        # happens inside this class, which is what keeps them exact.
        self._unresolved: Dict[int, SentPacket] = {}
        self._ae_unresolved: Dict[int, SentPacket] = {}

    def on_packet_sent(self, packet: SentPacket) -> None:
        pn = packet.packet_number
        self.sent_packets[pn] = packet
        self._unresolved[pn] = packet
        if packet.ack_eliciting:
            self._ae_unresolved[pn] = packet
        if packet.in_flight:
            self.bytes_in_flight += packet.size
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.note_sent_tracked(self, packet.packet_number)

    def _resolve(self, pn: int) -> None:
        """Drop a now-acked/lost packet from the unresolved views."""
        self._unresolved.pop(pn, None)
        self._ae_unresolved.pop(pn, None)

    def on_ack_received(self, ack: AckFrame, now: float) -> AckResult:
        """Process an ACK; updates RTT, detects losses, frees state."""
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_ack(self, ack, now)
        result = AckResult()
        result.ack_delay = ack.ack_delay_us / 1e6

        acked_numbers = [
            pn
            for pn in ack.acked_packet_numbers()
            if pn in self.sent_packets and not self.sent_packets[pn].acked
        ]
        # Advance largest_acked on every ACK, including pure duplicates:
        # a duplicate whose acked numbers were all seen (or GC'd) can
        # still carry a larger largest_acked, and packet-threshold loss
        # detection must not stall behind it.
        if self.largest_acked is None or ack.largest_acked > self.largest_acked:
            self.largest_acked = ack.largest_acked
        if not acked_numbers:
            # Pure duplicate; still run loss detection (the advanced
            # largest_acked may have pushed packets over the threshold).
            result.newly_lost = self._detect_lost(now)
            return result

        largest_newly_acked = max(acked_numbers)

        for pn in acked_numbers:
            packet = self.sent_packets[pn]
            packet.acked = True
            self._resolve(pn)
            if packet.in_flight and not packet.lost:
                self.bytes_in_flight -= packet.size
            result.newly_acked.append(packet)

        # RTT sample only from the largest newly-acked, and only if it is
        # ack-eliciting (RFC 9002 §5.1).
        largest_packet = self.sent_packets[largest_newly_acked]
        if largest_packet.ack_eliciting and ack.largest_acked == largest_newly_acked:
            result.rtt_sample = now - largest_packet.sent_time
            self.rtt.update(result.rtt_sample, result.ack_delay, now)

        result.newly_lost = self._detect_lost(now)
        self.pto_count = 0
        self._garbage_collect()
        return result

    def _detect_lost(self, now: float) -> List[SentPacket]:
        largest_acked = self.largest_acked
        if largest_acked is None:
            return []
        lost: List[SentPacket] = []
        resolved_pns: List[int] = []
        loss_delay = self.rtt.loss_delay(self.time_factor)
        self._loss_time = None
        # pn-ordered, so everything past largest_acked is out of scope.
        for pn, packet in self._unresolved.items():
            if pn > largest_acked:
                break
            if packet.acked or packet.lost:
                resolved_pns.append(pn)
                continue
            if not packet.in_flight:
                # ACK-only packets are not tracked for loss (RFC 9002 §2);
                # resolve them silently once overtaken.
                if largest_acked - pn >= self.packet_threshold:
                    packet.acked = True
                    resolved_pns.append(pn)
                continue
            by_threshold = largest_acked - pn >= self.packet_threshold
            lost_deadline = packet.sent_time + loss_delay
            by_time = lost_deadline <= now
            if by_threshold or by_time:
                packet.lost = True
                if packet.in_flight:
                    self.bytes_in_flight -= packet.size
                lost.append(packet)
                resolved_pns.append(pn)
            elif self._loss_time is None or lost_deadline < self._loss_time:
                self._loss_time = lost_deadline
        for pn in resolved_pns:
            del self._unresolved[pn]
            self._ae_unresolved.pop(pn, None)
        return lost

    def check_loss_timer(self, now: float) -> List[SentPacket]:
        """Run time-threshold detection when the loss timer fires."""
        return self._detect_lost(now)

    @property
    def loss_time(self) -> Optional[float]:
        """Earliest time a pending time-threshold loss will be declared."""
        return self._loss_time

    def _newest_ack_eliciting(self) -> Optional[SentPacket]:
        """Newest unresolved ack-eliciting packet (lazy tail cleanup)."""
        ae = self._ae_unresolved
        while ae:
            pn = next(reversed(ae))
            packet = ae[pn]
            if packet.acked or packet.lost:
                del ae[pn]
                continue
            return packet
        return None

    def has_ack_eliciting_in_flight(self) -> bool:
        return self._newest_ack_eliciting() is not None

    def pto_deadline(self) -> Optional[float]:
        """Absolute PTO expiry, or ``None`` if nothing needs probing."""
        packet = self._newest_ack_eliciting()
        if packet is None:
            return None
        pto = self.rtt.pto(self.max_ack_delay) * (self.backoff**self.pto_count)
        # sent_time never decreases with pn, so the newest unresolved
        # ack-eliciting packet carries the latest send time.
        return packet.sent_time + pto

    def on_pto_fired(self, now: float) -> List[SentPacket]:
        """Back off and return the unresolved packets to probe with.

        Following RFC 9002, PTO does not itself declare loss; the caller
        retransmits data from the oldest unacked packet(s).
        """
        self.pto_count += 1
        probes: List[SentPacket] = []
        for packet in self._ae_unresolved.values():
            if packet.acked or packet.lost:
                continue
            probes.append(packet)
            if len(probes) == self.probe_count:
                break
        return probes

    def oldest_unacked(self) -> Optional[SentPacket]:
        unresolved = self._unresolved
        while unresolved:
            pn = next(iter(unresolved))
            packet = unresolved[pn]
            if packet.acked or packet.lost:
                del unresolved[pn]
                self._ae_unresolved.pop(pn, None)
                continue
            return packet
        return None

    def _garbage_collect(self, keep_window: int = 4096) -> None:
        """Drop long-resolved packets to bound memory in long sessions."""
        if len(self.sent_packets) < 2 * keep_window or self.largest_acked is None:
            return
        horizon = self.largest_acked - keep_window
        stale = [
            pn
            for pn, packet in self.sent_packets.items()
            if packet.resolved and pn < horizon
        ]
        for pn in stale:
            del self.sent_packets[pn]

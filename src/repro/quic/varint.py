"""RFC 9000 §16 variable-length integer encoding.

QUIC varints store 62-bit unsigned integers in 1, 2, 4 or 8 bytes; the two
most-significant bits of the first byte give the length (00→1, 01→2, 10→4,
11→8).  All frame and packet codecs in :mod:`repro.quic` are built on
these helpers.
"""

from __future__ import annotations

from typing import Tuple

MAX_VARINT = (1 << 62) - 1

_PREFIX_TO_LENGTH = {0: 1, 1: 2, 2: 4, 3: 8}


class VarintError(ValueError):
    """Raised on malformed or out-of-range varints."""


def varint_size(value: int) -> int:
    """Number of bytes :func:`encode_varint` will use for ``value``."""
    if value < 0 or value > MAX_VARINT:
        raise VarintError(f"value {value} out of varint range")
    if value < (1 << 6):
        return 1
    if value < (1 << 14):
        return 2
    if value < (1 << 30):
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` in the shortest RFC 9000 varint form."""
    size = varint_size(value)
    if size == 1:
        return bytes([value])
    if size == 2:
        return bytes([0x40 | (value >> 8), value & 0xFF])
    if size == 4:
        return bytes(
            [
                0x80 | (value >> 24),
                (value >> 16) & 0xFF,
                (value >> 8) & 0xFF,
                value & 0xFF,
            ]
        )
    out = bytearray(8)
    for i in range(7, -1, -1):
        out[i] = value & 0xFF
        value >>= 8
    out[0] |= 0xC0
    return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`VarintError` if the
    buffer is too short.
    """
    if offset >= len(data):
        raise VarintError("buffer exhausted before varint")
    first = data[offset]
    length = _PREFIX_TO_LENGTH[first >> 6]
    if offset + length > len(data):
        raise VarintError("buffer truncated inside varint")
    value = first & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, offset + length

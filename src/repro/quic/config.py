"""Transport configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass
class QuicConfig:
    """Knobs for a :class:`~repro.quic.connection.Connection`.

    Defaults mirror the common QUIC deployment values the paper's LSQUIC
    baseline would use; the Wira schemes override the *initial* cwnd and
    pacing rate through the congestion-controller hooks instead of
    through this config.
    """

    mss: int = 1252
    """Max payload bytes per packet (1500 MTU − IP/UDP/QUIC overhead)."""

    udp_overhead: int = 28
    """IPv4 + UDP header bytes added to each datagram on the wire."""

    initial_rtt: float = 0.1
    """RTT assumed before any sample exists (PTO seeding)."""

    max_ack_delay: float = 0.025
    """How long a receiver may sit on a pending ACK."""

    ack_every: int = 2
    """Ack-eliciting packets per immediate ACK."""

    initial_window_packets: int = 10
    """Default initial congestion window (RFC 6928) in packets."""

    congestion_controller: str = "bbr"
    """A :data:`repro.quic.cc.CONTROLLERS` name (``bbr``, ``bbrv2``,
    ``cubic``, ``reno``)."""

    cc_params: Tuple[Tuple[str, float], ...] = ()
    """Extra keyword arguments for the selected controller, as sorted
    ``(name, value)`` pairs (kept a tuple so the config stays hashable
    and canonically serializable).  Empty for the stock controllers."""

    loss_packet_threshold: int = 3
    """Packets-past threshold for loss declaration (RFC 9002 §6.1.1)."""

    loss_time_factor: float = 1.125
    """Time-threshold multiplier on max(sRTT, latestRTT) (RFC 9002's
    9/8).  AutoRec-style recovery lowers it to declare tail losses
    sooner."""

    pto_probe_count: int = 2
    """Packets retransmitted per probe timeout."""

    pto_backoff: float = 2.0
    """PTO backoff base (RFC 9002 doubles; accelerated recovery backs
    off more gently)."""

    pacer_burst_packets: int = 10
    """Token-bucket burst allowance in packets."""

    min_rtt_window: float = 10.0
    """Horizon of the windowed minimum RTT estimate, seconds."""

    max_pto_count: int = 10
    """Consecutive probe timeouts before the connection gives up
    (a pragmatic stand-in for RFC 9000's idle timeout: after ~10
    doublings the peer is unreachable for all practical purposes)."""

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.initial_rtt <= 0:
            raise ValueError("initial_rtt must be positive")
        if self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        if self.loss_packet_threshold < 1:
            raise ValueError("loss_packet_threshold must be >= 1")
        if self.loss_time_factor <= 0:
            raise ValueError("loss_time_factor must be positive")
        if self.pto_probe_count < 1:
            raise ValueError("pto_probe_count must be >= 1")
        if self.pto_backoff < 1.0:
            raise ValueError("pto_backoff must be >= 1")

"""Stream send/receive machinery.

``SendStream`` hands out in-order chunks for packetisation, remembers what
each packet carried, and re-queues ranges when packets are declared lost.
``RecvStream`` reassembles out-of-order STREAM frames and surfaces the
contiguous prefix to the application — which, at the Wira client, is the
FLV demuxer measuring first-frame completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class StreamChunk:
    """A contiguous byte range handed to the packetiser."""

    stream_id: int
    offset: int
    data: bytes
    fin: bool

    @property
    def end(self) -> int:
        return self.offset + len(self.data)


class SendStream:
    """Sender half of one stream.

    Fresh application bytes live in ``_buffer``; ranges from lost packets
    go to ``_retransmit`` and take priority, since first-frame recovery
    latency dominates high-percentile FFCT (§II-B).
    """

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self._buffer = bytearray()
        self._buffer_base = 0  # stream offset of _buffer[0]
        self._next_offset = 0  # next fresh byte to send
        self._fin_offset: Optional[int] = None
        self._fin_sent = False
        self._retransmit: List[Tuple[int, int]] = []  # (offset, length) pairs
        self.bytes_written = 0

    def write(self, data: bytes, fin: bool = False) -> None:
        """Append application data; ``fin`` marks the final byte."""
        if self._fin_offset is not None:
            raise ValueError("stream already finished")
        self._buffer += data
        self.bytes_written += len(data)
        if fin:
            self._fin_offset = self._buffer_base + len(self._buffer)

    def has_data_to_send(self) -> bool:
        if self._retransmit:
            return True
        if self._next_offset < self._buffer_base + len(self._buffer):
            return True
        return self._fin_offset is not None and not self._fin_sent

    def next_chunk(self, max_bytes: int) -> Optional[StreamChunk]:
        """Produce the next chunk to transmit, at most ``max_bytes`` long."""
        if max_bytes <= 0:
            return None
        if self._retransmit:
            offset, length = self._retransmit[0]
            take = min(length, max_bytes)
            data = self._slice(offset, take)
            if take == length:
                self._retransmit.pop(0)
            else:
                self._retransmit[0] = (offset + take, length - take)
            fin = self._fin_offset is not None and offset + take == self._fin_offset
            return StreamChunk(self.stream_id, offset, data, fin)

        available = self._buffer_base + len(self._buffer) - self._next_offset
        if available <= 0:
            if self._fin_offset is not None and not self._fin_sent:
                self._fin_sent = True
                return StreamChunk(self.stream_id, self._next_offset, b"", True)
            return None
        take = min(available, max_bytes)
        data = self._slice(self._next_offset, take)
        offset = self._next_offset
        self._next_offset += take
        fin = self._fin_offset is not None and self._next_offset == self._fin_offset
        if fin:
            self._fin_sent = True
        return StreamChunk(self.stream_id, offset, data, fin)

    def on_chunk_lost(self, offset: int, length: int) -> None:
        """Re-queue a byte range carried by a lost packet."""
        if length <= 0:
            return
        self._retransmit.append((offset, length))
        self._retransmit.sort()
        self._coalesce()

    def resend_fin(self) -> None:
        """Re-arm the FIN after an empty FIN-only frame was lost."""
        self._fin_sent = False

    def _coalesce(self) -> None:
        merged: List[Tuple[int, int]] = []
        for offset, length in self._retransmit:
            if merged and offset <= merged[-1][0] + merged[-1][1]:
                last_offset, last_length = merged[-1]
                end = max(last_offset + last_length, offset + length)
                merged[-1] = (last_offset, end - last_offset)
            else:
                merged.append((offset, length))
        self._retransmit = merged

    def _slice(self, offset: int, length: int) -> bytes:
        start = offset - self._buffer_base
        if start < 0:
            raise ValueError(f"offset {offset} already discarded")
        return bytes(self._buffer[start : start + length])


class RecvStream:
    """Receiver half of one stream: reassembly plus completion tracking."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self._segments: Dict[int, bytes] = {}
        self._delivered = 0  # contiguous prefix length handed to app
        self._fin_offset: Optional[int] = None
        self.bytes_received = 0
        self.duplicate_bytes = 0

    @property
    def delivered_offset(self) -> int:
        return self._delivered

    @property
    def finished(self) -> bool:
        return self._fin_offset is not None and self._delivered >= self._fin_offset

    def on_frame(self, offset: int, data: bytes, fin: bool) -> bytes:
        """Ingest a STREAM frame; returns newly contiguous bytes."""
        if fin:
            end = offset + len(data)
            if self._fin_offset is not None and self._fin_offset != end:
                raise ValueError("conflicting FIN offsets")
            self._fin_offset = end
        if data:
            self.bytes_received += len(data)
            if offset + len(data) <= self._delivered:
                self.duplicate_bytes += len(data)
            else:
                existing = self._segments.get(offset)
                if existing is None or len(existing) < len(data):
                    self._segments[offset] = data
                else:
                    self.duplicate_bytes += len(data)
        return self._drain()

    def _drain(self) -> bytes:
        out = bytearray()
        while True:
            progressed = False
            for offset in sorted(self._segments):
                data = self._segments[offset]
                end = offset + len(data)
                if end <= self._delivered:
                    del self._segments[offset]
                    progressed = True
                    break
                if offset <= self._delivered:
                    fresh = data[self._delivered - offset :]
                    out += fresh
                    self._delivered += len(fresh)
                    del self._segments[offset]
                    progressed = True
                    break
            if not progressed:
                break
        return bytes(out)

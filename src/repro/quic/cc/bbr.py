"""BBRv1 congestion control (Cardwell et al., CACM 2017).

This is the controller the paper layers Wira on (§VI).  The port follows
the QUIC BBRv1 implementations (Chromium / LSQUIC):

* STARTUP — pacing gain 2/ln 2 ≈ 2.885 until bandwidth stops growing
  25 % per round for three rounds;
* DRAIN — inverse gain until in-flight falls to the estimated BDP;
* PROBE_BW — eight-phase pacing-gain cycle ``[1.25, 0.75, 1×6]``;
* PROBE_RTT — cwnd clamped to 4 packets for 200 ms when the min-RTT
  sample is older than 10 s;
* loss recovery — conservation-style recovery window, since BBRv1
  otherwise ignores loss.

Wira hooks
----------
``set_initial_window`` replaces the 10-packet default with
``min(FF_Size, BDP)`` (Eq. 3); ``set_initial_pacing_rate`` makes the very
first flight leave at ``MaxBW`` (Eq. 2) instead of
``2.885 · init_cwnd / init_RTT``.  Both overrides govern only until real
measurements flow into the model — exactly the cold-start interval that
determines first-frame completion time.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro import obs as _obs
from repro import sanitize as _sanitize
from repro.quic.cc.bandwidth_sampler import BandwidthSampler
from repro.quic.cc.base import CongestionController, DEFAULT_MSS
from repro.quic.cc.windowed_filter import WindowedFilter
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket

HIGH_GAIN = 2.885  # 2/ln(2)
DRAIN_GAIN = 1.0 / HIGH_GAIN
PROBE_BW_CWND_GAIN = 2.0
PACING_GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
BW_WINDOW_ROUNDS = 10
MIN_RTT_WINDOW = 10.0  # seconds
PROBE_RTT_DURATION = 0.2  # seconds
STARTUP_GROWTH_TARGET = 1.25
STARTUP_FULL_BW_ROUNDS = 3
MIN_CWND_PACKETS = 4


class BbrMode(enum.Enum):
    STARTUP = "startup"
    DRAIN = "drain"
    PROBE_BW = "probe_bw"
    PROBE_RTT = "probe_rtt"


class BbrSender(CongestionController):
    """BBRv1 with Wira initialisation hooks."""

    def __init__(
        self,
        rtt: Optional[RttEstimator] = None,
        mss: int = DEFAULT_MSS,
        initial_window_packets: int = 10,
    ) -> None:
        super().__init__(rtt or RttEstimator(), mss, initial_window_packets)
        self.mode = BbrMode.STARTUP
        self.sampler = BandwidthSampler()
        self.max_bw = WindowedFilter(window=BW_WINDOW_ROUNDS, is_max=True)

        self._initial_cwnd = self._cwnd
        self._min_cwnd = MIN_CWND_PACKETS * mss

        # Round counting (a "round" is one delivered-data round trip).
        self.round_count = 0
        self._next_round_delivered = 0
        self._round_start = False

        # STARTUP full-bandwidth detection.
        self._full_bw = 0.0
        self._full_bw_count = 0
        self.full_bandwidth_reached = False

        # PROBE_BW cycle.
        self._cycle_index = 0
        self._cycle_start = 0.0

        # PROBE_RTT.
        self._min_rtt: Optional[float] = None
        self._min_rtt_timestamp = 0.0
        self._probe_rtt_done_time: Optional[float] = None
        self._probe_rtt_round_done = False
        self._exit_probe_rtt_at: Optional[float] = None

        # Loss recovery (conservation window).
        self._recovery_window: Optional[int] = None
        self._end_recovery_at: Optional[int] = None  # packet number
        self._largest_sent = -1

        self.pacing_gain = HIGH_GAIN
        self.cwnd_gain = HIGH_GAIN

    # ------------------------------------------------------------------
    # Wira hooks

    def on_initial_window_set(self, window_bytes: int) -> None:
        self._initial_cwnd = window_bytes

    # ------------------------------------------------------------------
    # Model accessors

    def bandwidth_estimate(self) -> Optional[float]:
        """Windowed-max delivery rate, bits per second."""
        return self.max_bw.get()

    def bdp_bytes(self, gain: float = 1.0) -> Optional[int]:
        bw = self.bandwidth_estimate()
        min_rtt = self._min_rtt
        if bw is None or min_rtt is None:
            return None
        return int(gain * bw * min_rtt / 8.0)

    @property
    def pacing_rate_bps(self) -> float:
        bw = self.bandwidth_estimate()
        if bw is None:
            # Cold start: Wira override if present, else the classic
            # high-gain estimate from the initial window and RTT.
            if self._initial_pacing_rate_bps is not None:
                return self._initial_pacing_rate_bps
            return HIGH_GAIN * self._initial_cwnd * 8.0 / self.rtt.smoothed_or_initial()
        return max(self.pacing_gain * bw, 1.0)

    @property
    def congestion_window(self) -> int:
        if self.mode == BbrMode.PROBE_RTT:
            return self._min_cwnd
        target = self.bdp_bytes(self.cwnd_gain)
        if target is None:
            cwnd = self._cwnd
        else:
            # BBR never shrinks below the configured initial window while
            # still in STARTUP; afterwards the model rules.
            cwnd = max(target, self._min_cwnd)
            if self.mode == BbrMode.STARTUP:
                cwnd = max(cwnd, self._initial_cwnd)
        if self._recovery_window is not None:
            cwnd = min(cwnd, max(self._recovery_window, self._min_cwnd))
        return cwnd

    # ------------------------------------------------------------------
    # Event feed

    def on_packet_sent(self, packet: SentPacket, bytes_in_flight: int, now: float) -> None:
        self.sampler.on_packet_sent(packet, bytes_in_flight, now)
        self._largest_sent = max(self._largest_sent, packet.packet_number)

    def on_packets_acked(
        self,
        acked: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        if not acked:
            return
        acked_bytes = sum(p.size for p in acked)
        self._round_start = False
        for packet in acked:
            sample = self.sampler.on_packet_acked(packet, now)
            if packet.delivered >= self._next_round_delivered:
                self._next_round_delivered = self.sampler.delivered
                self.round_count += 1
                self._round_start = True
            if sample is None:
                continue
            current = self.max_bw.get()
            if current is None:
                # Never seed the model from an app-limited sample: a
                # handshake-only exchange would poison the estimate (and
                # override Wira's cookie-derived initial pacing rate).
                if not sample.is_app_limited:
                    self.max_bw.update(sample.bandwidth_bps, self.round_count)
            elif not sample.is_app_limited or sample.bandwidth_bps > current:
                self.max_bw.update(sample.bandwidth_bps, self.round_count)
            self._update_min_rtt(sample.rtt, now)

        self._maybe_exit_recovery(acked)
        if self._recovery_window is not None:
            self._recovery_window += acked_bytes

        self._update_mode(bytes_in_flight, now)

    def on_packets_lost(
        self,
        lost: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        if not lost:
            return
        if self._end_recovery_at is None or self._end_recovery_at < self._largest_sent:
            # Enter (or refresh) recovery: conserve packets.
            self._end_recovery_at = self._largest_sent
            self._recovery_window = max(bytes_in_flight, self._min_cwnd)

    def on_app_limited(self, bytes_in_flight: int) -> None:
        if bytes_in_flight > 0:
            self.sampler.note_in_flight(bytes_in_flight)
        else:
            self.sampler.on_app_limited()

    # ------------------------------------------------------------------
    # Internals

    def _set_mode(self, mode: BbrMode, now: float) -> None:
        """Single funnel for mode changes — the sanitizer's attach point
        for the BBR state-machine legality invariant."""
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_bbr_transition(self.mode, mode, now)
        if _obs.ACTIVE is not None and mode != self.mode:
            _obs.ACTIVE.emit(
                now,
                "bbr:state_updated",
                self._trace_conn,
                {"old": self.mode.value, "new": mode.value},
            )
        self.mode = mode

    def _maybe_exit_recovery(self, acked: List[SentPacket]) -> None:
        if self._end_recovery_at is None:
            return
        if any(p.packet_number > self._end_recovery_at for p in acked):
            self._end_recovery_at = None
            self._recovery_window = None

    def _update_min_rtt(self, rtt_sample: float, now: float) -> None:
        expired = now - self._min_rtt_timestamp > MIN_RTT_WINDOW
        if self._min_rtt is None or rtt_sample < self._min_rtt or expired:
            if (
                expired
                and self._min_rtt is not None
                and rtt_sample > self._min_rtt
                and self.mode != BbrMode.PROBE_RTT
                and self.full_bandwidth_reached
            ):
                self._enter_probe_rtt(now)
            self._min_rtt = rtt_sample
            self._min_rtt_timestamp = now

    def _update_mode(self, bytes_in_flight: int, now: float) -> None:
        if self.mode == BbrMode.STARTUP:
            self._check_full_bandwidth()
            if self.full_bandwidth_reached:
                self._set_mode(BbrMode.DRAIN, now)
                self.pacing_gain = DRAIN_GAIN
                self.cwnd_gain = HIGH_GAIN
        if self.mode == BbrMode.DRAIN:
            target = self.bdp_bytes()
            if target is not None and bytes_in_flight <= target:
                self._enter_probe_bw(now)
        if self.mode == BbrMode.PROBE_BW:
            self._advance_cycle(bytes_in_flight, now)
        if self.mode == BbrMode.PROBE_RTT:
            self._handle_probe_rtt(bytes_in_flight, now)

    def _check_full_bandwidth(self) -> None:
        if not self._round_start or self.full_bandwidth_reached:
            return
        bw = self.bandwidth_estimate()
        if bw is None:
            return
        if bw >= self._full_bw * STARTUP_GROWTH_TARGET:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        if self.sampler.is_app_limited:
            # App-limited rounds say nothing about path capacity.
            return
        self._full_bw_count += 1
        if self._full_bw_count >= STARTUP_FULL_BW_ROUNDS:
            self.full_bandwidth_reached = True

    def _enter_probe_bw(self, now: float) -> None:
        self._set_mode(BbrMode.PROBE_BW, now)
        self.cwnd_gain = PROBE_BW_CWND_GAIN
        # Start in a random-ish but deterministic phase that is not the
        # 0.75 drain phase (mirrors Chromium's choice of excluding it).
        self._cycle_index = (self.round_count % (len(PACING_GAIN_CYCLE) - 1)) + 1
        if PACING_GAIN_CYCLE[self._cycle_index] == 0.75:
            self._cycle_index += 1
        self._cycle_index %= len(PACING_GAIN_CYCLE)
        self.pacing_gain = PACING_GAIN_CYCLE[self._cycle_index]
        self._cycle_start = now

    def _advance_cycle(self, bytes_in_flight: int, now: float) -> None:
        min_rtt = self._min_rtt or self.rtt.smoothed_or_initial()
        should_advance = now - self._cycle_start > min_rtt
        if self.pacing_gain > 1.0:
            # Stay in the probing phase until it actually created a queue.
            target = self.bdp_bytes(self.pacing_gain)
            should_advance = should_advance and (
                target is None or bytes_in_flight >= target or bytes_in_flight == 0
            )
        elif self.pacing_gain < 1.0:
            # Leave the drain phase early once the queue is gone.
            target = self.bdp_bytes()
            if target is not None and bytes_in_flight <= target:
                should_advance = True
        if should_advance:
            self._cycle_index = (self._cycle_index + 1) % len(PACING_GAIN_CYCLE)
            self.pacing_gain = PACING_GAIN_CYCLE[self._cycle_index]
            self._cycle_start = now

    def _enter_probe_rtt(self, now: float) -> None:
        self._set_mode(BbrMode.PROBE_RTT, now)
        self.pacing_gain = 1.0
        self._probe_rtt_done_time = None

    def _handle_probe_rtt(self, bytes_in_flight: int, now: float) -> None:
        if self._probe_rtt_done_time is None:
            if bytes_in_flight <= self._min_cwnd:
                self._probe_rtt_done_time = now + PROBE_RTT_DURATION
            return
        if now >= self._probe_rtt_done_time:
            self._min_rtt_timestamp = now
            if self.full_bandwidth_reached:
                self._enter_probe_bw(now)
            else:
                self._set_mode(BbrMode.STARTUP, now)
                self.pacing_gain = HIGH_GAIN
                self.cwnd_gain = HIGH_GAIN

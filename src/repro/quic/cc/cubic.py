"""CUBIC congestion control (RFC 8312) with paced sending.

Used as a substrate ablation: the paper deploys Wira on BBRv1, but the
initial-window/initial-rate hooks are controller-agnostic, and comparing
their effect under a loss-based controller is an interesting extension
(see ``benchmarks/test_bench_ablation_cc.py``).

Pacing follows Linux's heuristic for loss-based controllers: 2 × cwnd/RTT
while in slow start, 1.2 × cwnd/RTT in congestion avoidance.
"""

from __future__ import annotations

from typing import List, Optional

from repro.quic.cc.base import CongestionController, DEFAULT_MSS
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket

C_CUBIC = 0.4
BETA_CUBIC = 0.7
SLOW_START_PACING_GAIN = 2.0
CA_PACING_GAIN = 1.2


class CubicSender(CongestionController):
    """RFC 8312 CUBIC with fast convergence."""

    def __init__(
        self,
        rtt: Optional[RttEstimator] = None,
        mss: int = DEFAULT_MSS,
        initial_window_packets: int = 10,
    ) -> None:
        super().__init__(rtt or RttEstimator(), mss, initial_window_packets)
        self.ssthresh = float("inf")
        self._w_max = 0.0  # bytes
        self._k = 0.0
        self._epoch_start: Optional[float] = None
        self._recovery_until = -1  # packet number guarding one reaction per RTT
        self._largest_sent = -1
        self._ack_accumulator = 0

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self.ssthresh

    @property
    def pacing_rate_bps(self) -> float:
        if self._initial_pacing_rate_bps is not None and not self.rtt.has_samples:
            return self._initial_pacing_rate_bps
        gain = SLOW_START_PACING_GAIN if self.in_slow_start else CA_PACING_GAIN
        return gain * self._cwnd * 8.0 / self.rtt.smoothed_or_initial()

    def on_packet_sent(self, packet: SentPacket, bytes_in_flight: int, now: float) -> None:
        self._largest_sent = max(self._largest_sent, packet.packet_number)

    def on_packets_acked(
        self,
        acked: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        for packet in acked:
            if packet.packet_number <= self._recovery_until:
                continue  # no growth for packets sent before the loss
            if self.in_slow_start:
                self._cwnd += packet.size
            else:
                self._cubic_growth(packet.size, now)

    def _cubic_growth(self, acked_bytes: int, now: float) -> None:
        if self._epoch_start is None:
            self._epoch_start = now
            if self._w_max > self._cwnd:
                self._k = ((self._w_max - self._cwnd) / (C_CUBIC * self.mss)) ** (1.0 / 3.0)
            else:
                self._k = 0.0
        t = now - self._epoch_start + self.rtt.smoothed_or_initial()
        w_cubic = C_CUBIC * self.mss * (t - self._k) ** 3 + self._w_max
        if w_cubic > self._cwnd:
            # Approach the cubic target over one RTT.
            self._cwnd += int(
                max(1.0, (w_cubic - self._cwnd) / max(1, self._cwnd)) * acked_bytes / self.mss * self.mss
            )
        else:
            # TCP-friendly region / plateau: grow slowly.
            self._ack_accumulator += acked_bytes
            if self._ack_accumulator >= self._cwnd:
                self._ack_accumulator = 0
                self._cwnd += self.mss

    def on_packets_lost(
        self,
        lost: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        if not lost:
            return
        largest_lost = max(p.packet_number for p in lost)
        if largest_lost <= self._recovery_until:
            return  # already reacted to this loss episode
        self._recovery_until = self._largest_sent
        if self._cwnd < self._w_max:
            # Fast convergence: release bandwidth for newcomers.
            self._w_max = self._cwnd * (1.0 + BETA_CUBIC) / 2.0
        else:
            self._w_max = float(self._cwnd)
        self._cwnd = max(int(self._cwnd * BETA_CUBIC), 2 * self.mss)
        self.ssthresh = self._cwnd
        self._epoch_start = None

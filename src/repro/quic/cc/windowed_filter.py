"""Windowed min/max estimator, as used by BBR.

Tracks the extremum (max or min) of samples over a sliding window
measured in arbitrary "time" units (BBR uses round-trip counts for the
bandwidth filter and seconds for the RTT filter).

The classic implementation — Kathleen Nichols' three-sample filter in
Linux's ``lib/win_minmax.c`` — is approximate: a sample that is dominated
on arrival is discarded, so when the then-best expires the filter can
report a value *below* the true in-window extremum (e.g. max samples
``2.0@t=0, 1.0@t=1, 0.0@t=11`` with a window of 10 yield ``0.0`` instead
of ``1.0``).  This module instead keeps a monotonic deque of candidate
samples, which is exact: ``get()`` always equals the true extremum over
samples whose age relative to the newest sample is within the window.
Each sample is appended and popped at most once, so ``update`` remains
amortised O(1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, Tuple, TypeVar

T = TypeVar("T", int, float)


class WindowedFilter(Generic[T]):
    """Exact sliding-window extremum filter.

    Parameters
    ----------
    window:
        Window length in the caller's time unit.  A sample at time ``t``
        is considered expired once a newer sample arrives at
        ``now > t + window``.
    is_max:
        ``True`` for a max filter (bandwidth), ``False`` for min (RTT).
    """

    __slots__ = ("window", "is_max", "_samples")

    def __init__(self, window: float, is_max: bool = True) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.is_max = is_max
        # (time, value) candidates: times increasing, values strictly
        # worsening front-to-back (front is the current best).
        self._samples: Deque[Tuple[float, T]] = deque()

    def _better_or_equal(self, a: T, b: T) -> bool:
        return a >= b if self.is_max else a <= b

    def reset(self, value: T, time: float) -> None:
        """Forget history and restart from a single sample."""
        self._samples.clear()
        self._samples.append((time, value))

    def update(self, value: T, time: float) -> T:
        """Insert a sample at ``time``; returns the current best."""
        samples = self._samples
        # Newer-and-better samples dominate older-and-worse ones: any
        # candidate the new sample beats can never be the windowed
        # extremum again (it would expire first).
        while samples and self._better_or_equal(value, samples[-1][1]):
            samples.pop()
        samples.append((time, value))
        # Evict candidates that have aged out of the window.
        window = self.window
        while time - samples[0][0] > window:
            samples.popleft()
        return samples[0][1]

    def get(self) -> Optional[T]:
        """Current best estimate, or ``None`` before any sample."""
        if not self._samples:
            return None
        return self._samples[0][1]

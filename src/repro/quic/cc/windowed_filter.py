"""Kathleen Nichols' windowed min/max estimator, as used by BBR.

Keeps the best (max or min) three samples over a sliding window measured
in arbitrary "time" units (BBR uses round-trip counts for the bandwidth
filter and seconds for the RTT filter).  This is a faithful port of the
algorithm in Linux's ``lib/win_minmax.c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Optional, TypeVar

T = TypeVar("T", int, float)


@dataclass
class _Sample(Generic[T]):
    time: float
    value: T


class WindowedFilter(Generic[T]):
    """Windowed extremum filter with three-sample recency tracking.

    Parameters
    ----------
    window:
        Window length in the caller's time unit.
    is_max:
        ``True`` for a max filter (bandwidth), ``False`` for min (RTT).
    """

    def __init__(self, window: float, is_max: bool = True) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.is_max = is_max
        self._estimates: Optional[list] = None

    def _better(self, a: T, b: T) -> bool:
        return a >= b if self.is_max else a <= b

    def reset(self, value: T, time: float) -> None:
        sample = _Sample(time, value)
        self._estimates = [sample, sample, sample]

    def update(self, value: T, time: float) -> T:
        """Insert a sample at ``time``; returns the current best."""
        if self._estimates is None:
            self.reset(value, time)
            assert self._estimates is not None
            return self._estimates[0].value

        best, second, third = self._estimates
        sample = _Sample(time, value)

        if self._better(value, best.value) or time - third.time > self.window:
            # New overall best, or the window wholly expired.
            self.reset(value, time)
            return value

        if self._better(value, second.value):
            self._estimates[1] = sample
            self._estimates[2] = sample
        elif self._better(value, third.value):
            self._estimates[2] = sample

        # Expire stale bests by promoting newer estimates.
        best, second, third = self._estimates
        if time - best.time > self.window:
            self._estimates = [second, third, sample]
        elif time - second.time > self.window / 2 and second is best:
            self._estimates[1] = sample
            self._estimates[2] = sample
        elif time - third.time > self.window / 4 and third is second:
            self._estimates[2] = sample
        return self._estimates[0].value

    def get(self) -> Optional[T]:
        """Current best estimate, or ``None`` before any sample."""
        if self._estimates is None:
            return None
        return self._estimates[0].value

"""Pluggable congestion control.

The paper deploys Wira's initial-parameter overrides on **BBRv1**
("we select the BBR (with version 1) scheme to support the above
parameter configurations", §VI).  :mod:`repro.quic.cc.bbr` is therefore
the primary controller; :mod:`repro.quic.cc.cubic` and
:mod:`repro.quic.cc.reno` exist for substrate ablations.

Every controller honours the two Wira hooks on
:class:`~repro.quic.cc.base.CongestionController`:
``set_initial_window`` and ``set_initial_pacing_rate``.
"""

from typing import Any

from repro.quic.cc.base import CongestionController
from repro.quic.cc.bbr import BbrSender
from repro.quic.cc.bbr2 import Bbr2Sender
from repro.quic.cc.cubic import CubicSender
from repro.quic.cc.reno import RenoSender

CONTROLLERS = {
    "bbr": BbrSender,
    "bbrv2": Bbr2Sender,
    "cubic": CubicSender,
    "reno": RenoSender,
}


def make_controller(name: str, **kwargs: Any) -> CongestionController:
    """Instantiate a controller by name (``bbr``/``bbrv2``/``cubic``/``reno``)."""
    try:
        cls = CONTROLLERS[name]
    except KeyError:
        raise ValueError(f"unknown congestion controller {name!r}") from None
    return cls(**kwargs)


__all__ = [
    "Bbr2Sender",
    "BbrSender",
    "CongestionController",
    "CubicSender",
    "RenoSender",
    "CONTROLLERS",
    "make_controller",
]

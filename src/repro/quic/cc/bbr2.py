"""BBRv2-style sender: BBRv1 plus inflight caps and a loss response.

"When BBR Meets Live Streaming" (PAPERS.md) observes that BBRv1's
indifference to loss lets its probing phases hold standing queues and
loss bursts exactly where first-frame latency is decided.  BBRv2's
remedies, ported here onto :class:`~repro.quic.cc.bbr.BbrSender` in the
same simplified spirit as the rest of the transport:

* **inflight_hi** — an upper bound on in-flight data, learned from loss.
  The congestion window is clamped to it, so probing can no longer
  overshoot a previously lossy operating point;
* **loss response** — each loss event multiplies the bound by ``beta``
  (0.7, the BBRv2 default), seeding it from the current in-flight level
  on first loss;
* **probe up** — loss-free rounds in PROBE_BW's probing phase raise the
  bound additively (packets per round), reclaiming headroom;
* **startup loss exit** — too many loss events inside one startup round
  ends STARTUP (BBRv2's ``full_loss_cnt``), where BBRv1 would keep
  pushing at 2.885× gain.

Selected via ``QuicConfig(congestion_controller="bbrv2")``; tunables
arrive through ``QuicConfig.cc_params`` (``beta``, ``full_loss_count``,
``probe_up_packets``), which is how a ``SchemeSpec``'s transport params
reach the controller without any session-code edits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.quic.cc.base import DEFAULT_MSS
from repro.quic.cc.bbr import BbrMode, BbrSender
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket

BETA = 0.7
FULL_LOSS_COUNT = 8
PROBE_UP_PACKETS = 2


class Bbr2Sender(BbrSender):
    """BBRv1 with BBRv2-style inflight caps and loss response."""

    def __init__(
        self,
        rtt: Optional[RttEstimator] = None,
        mss: int = DEFAULT_MSS,
        initial_window_packets: int = 10,
        beta: float = BETA,
        full_loss_count: float = FULL_LOSS_COUNT,
        probe_up_packets: float = PROBE_UP_PACKETS,
    ) -> None:
        super().__init__(rtt, mss, initial_window_packets)
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        self._beta = beta
        self._full_loss_count = int(full_loss_count)
        self._probe_up_bytes = int(probe_up_packets) * mss
        self.inflight_hi: Optional[int] = None
        self._loss_events_in_round = 0
        self._loss_round_end = -1  # packet number closing the loss round

    @property
    def congestion_window(self) -> int:
        cwnd = super().congestion_window
        if self.mode == BbrMode.PROBE_RTT:
            return cwnd
        if self.inflight_hi is not None:
            cwnd = min(cwnd, max(self.inflight_hi, self._min_cwnd))
        return cwnd

    def on_packets_acked(
        self,
        acked: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        super().on_packets_acked(acked, bytes_in_flight, now)
        if not acked:
            return
        if self._round_start:
            if (
                self._loss_events_in_round == 0
                and self.inflight_hi is not None
                and self.mode == BbrMode.PROBE_BW
                and self.pacing_gain > 1.0
            ):
                # Loss-free probing round: reclaim headroom additively.
                self.inflight_hi += self._probe_up_bytes
            self._loss_events_in_round = 0

    def on_packets_lost(
        self,
        lost: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        if not lost:
            return
        super().on_packets_lost(lost, bytes_in_flight, now)
        # One loss *event* per loss round (a burst detected together
        # counts once; later bursts past the round-closing packet start
        # a new event), mirroring BBRv2's per-round loss accounting.
        largest_lost = max(p.packet_number for p in lost)
        if largest_lost > self._loss_round_end:
            self._loss_round_end = self._largest_sent
            self._loss_events_in_round += 1
            current = self.inflight_hi
            if current is None:
                current = max(bytes_in_flight, self._min_cwnd)
            self.inflight_hi = max(self._min_cwnd, int(current * self._beta))
            if (
                self.mode == BbrMode.STARTUP
                and self._loss_events_in_round >= self._full_loss_count
            ):
                # BBRv2 startup loss exit: the path told us where the
                # ceiling is; stop probing at high gain.
                self.full_bandwidth_reached = True

"""Per-ACK delivery-rate sampling (BBR bandwidth sampler).

Implements the estimator from draft-cheng-iccrg-delivery-rate-estimation:
each sent packet snapshots the connection's ``delivered`` counter; when
the packet is acknowledged, the delivery rate over the interval is
``Δdelivered / Δtime`` where the interval honours both the send and ack
clocks.  Samples taken while the sender was application-limited are
flagged so BBR does not let them *decrease* the bandwidth estimate — a
detail that matters for short first-frame flows, which are app-limited
almost by definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.quic.sent_packet import SentPacket


@dataclass(frozen=True)
class BandwidthSample:
    """One delivery-rate observation."""

    bandwidth_bps: float
    rtt: float
    is_app_limited: bool


class BandwidthSampler:
    """Tracks delivered bytes and produces per-ACK rate samples."""

    def __init__(self) -> None:
        self.delivered = 0
        self.delivered_time = 0.0
        self.first_sent_time = 0.0
        self._app_limited_until = 0  # `delivered` value that clears the flag
        self.total_sent = 0

    @property
    def is_app_limited(self) -> bool:
        return self._app_limited_until > self.delivered

    def on_packet_sent(self, packet: SentPacket, bytes_in_flight: int, now: float) -> None:
        """Snapshot delivery state into the departing packet."""
        if bytes_in_flight == 0:
            # Restarting from idle: reset the send-side clock.
            self.delivered_time = now
            self.first_sent_time = now
        packet.delivered = self.delivered
        packet.delivered_time = self.delivered_time
        packet.first_sent_time = self.first_sent_time
        packet.is_app_limited = self.is_app_limited
        self.total_sent += packet.size
        self.first_sent_time = now

    def on_packet_acked(self, packet: SentPacket, now: float) -> Optional[BandwidthSample]:
        """Advance delivery state and compute the packet's rate sample."""
        self.delivered += packet.size
        self.delivered_time = now

        send_elapsed = packet.sent_time - packet.first_sent_time
        ack_elapsed = now - packet.delivered_time
        interval = max(send_elapsed, ack_elapsed)
        delivered_delta = self.delivered - packet.delivered
        if interval <= 0:
            return None
        bandwidth = delivered_delta * 8.0 / interval
        return BandwidthSample(
            bandwidth_bps=bandwidth,
            rtt=now - packet.sent_time,
            is_app_limited=packet.is_app_limited,
        )

    def on_app_limited(self) -> None:
        """Mark the sampler app-limited until current in-flight drains."""
        self._app_limited_until = self.delivered + 1
        # The flag is effectively cleared once `delivered` catches up,
        # i.e. every packet outstanding at this moment has been acked.

    def note_in_flight(self, bytes_in_flight: int) -> None:
        """Extend the app-limited horizon to cover current in-flight."""
        self._app_limited_until = self.delivered + max(1, bytes_in_flight)

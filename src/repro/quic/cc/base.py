"""Congestion-controller interface and the Wira initialisation hooks.

Wira's contribution is *where the controller starts*, not how it adapts:
``set_initial_window`` and ``set_initial_pacing_rate`` are the exact
attachment points the paper adds to LSQUIC's send controller (§V —
"Send Controller will perform the initialization for both cwnd and
pacing rate based FF_Size and Hx_QoS").  They must be called before the
first data packet; implementations may additionally honour later calls
(used when 1-RTT handshakes refine the RTT estimate, §VI).
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro import sanitize as _sanitize
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket

DEFAULT_MSS = 1252  # QUIC payload bytes per packet at a 1500B MTU
DEFAULT_INITIAL_WINDOW_PACKETS = 10  # RFC 6928 / Google recommendation


class CongestionController(abc.ABC):
    """Abstract sender-side congestion controller.

    Subclasses maintain :attr:`congestion_window` (bytes) and
    :attr:`pacing_rate_bps` (bits/second); the connection enforces both.
    """

    #: Hex id of the owning connection, set by ``Connection.__init__`` so
    #: controller-level trace events (e.g. BBR mode transitions) can be
    #: attributed without a back-reference cycle.
    _trace_conn: str = ""

    def __init__(
        self,
        rtt: RttEstimator,
        mss: int = DEFAULT_MSS,
        initial_window_packets: int = DEFAULT_INITIAL_WINDOW_PACKETS,
    ) -> None:
        self.rtt = rtt
        self.mss = mss
        self._cwnd = initial_window_packets * mss
        self._pacing_rate_bps: Optional[float] = None
        self._initial_pacing_rate_bps: Optional[float] = None

    # ---- Wira hooks -----------------------------------------------------

    def set_initial_window(self, window_bytes: int) -> None:
        """Override the initial congestion window (Eq. 3 of the paper)."""
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_initial_override(self, "window")
        if window_bytes < self.mss:
            window_bytes = self.mss
        self._cwnd = window_bytes
        self.on_initial_window_set(window_bytes)

    def set_initial_pacing_rate(self, rate_bps: float) -> None:
        """Override the initial pacing rate (Eq. 2 of the paper)."""
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_initial_override(self, "pacing")
        if rate_bps <= 0:
            raise ValueError("initial pacing rate must be positive")
        self._initial_pacing_rate_bps = rate_bps
        self.on_initial_pacing_rate_set(rate_bps)

    def on_initial_window_set(self, window_bytes: int) -> None:
        """Subclass hook; default is no extra work."""

    def on_initial_pacing_rate_set(self, rate_bps: float) -> None:
        """Subclass hook; default is no extra work."""

    # ---- State exposed to the connection --------------------------------

    @property
    def congestion_window(self) -> int:
        return self._cwnd

    @property
    def pacing_rate_bps(self) -> float:
        """Current pacing rate.

        Until the controller has measurements it returns the Wira-provided
        initial rate if set, else a conservative ``cwnd / RTT`` estimate.
        """
        if self._pacing_rate_bps is not None:
            return self._pacing_rate_bps
        if self._initial_pacing_rate_bps is not None:
            return self._initial_pacing_rate_bps
        return self._cwnd * 8.0 / self.rtt.smoothed_or_initial()

    def can_send(self, bytes_in_flight: int) -> bool:
        # Compare against the (possibly overridden) window property, not
        # the raw attribute: model-based controllers compute their
        # window dynamically.
        return bytes_in_flight < self.congestion_window

    # ---- Event feed ------------------------------------------------------

    @abc.abstractmethod
    def on_packet_sent(self, packet: SentPacket, bytes_in_flight: int, now: float) -> None:
        """Called after a packet is handed to the network."""

    @abc.abstractmethod
    def on_packets_acked(
        self,
        acked: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        """Called with the newly acknowledged packets of one ACK."""

    @abc.abstractmethod
    def on_packets_lost(
        self,
        lost: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        """Called with packets newly declared lost."""

    def on_app_limited(self, bytes_in_flight: int) -> None:
        """The sender ran out of application data (optional hook)."""

"""NewReno congestion control (RFC 9002 appendix) — secondary baseline."""

from __future__ import annotations

from typing import List, Optional

from repro.quic.cc.base import CongestionController, DEFAULT_MSS
from repro.quic.rtt import RttEstimator
from repro.quic.sent_packet import SentPacket

LOSS_REDUCTION_FACTOR = 0.5


class RenoSender(CongestionController):
    """Slow start + AIMD congestion avoidance, one reduction per episode."""

    def __init__(
        self,
        rtt: Optional[RttEstimator] = None,
        mss: int = DEFAULT_MSS,
        initial_window_packets: int = 10,
    ) -> None:
        super().__init__(rtt or RttEstimator(), mss, initial_window_packets)
        self.ssthresh = float("inf")
        self._recovery_until = -1
        self._largest_sent = -1
        self._ack_accumulator = 0

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self.ssthresh

    @property
    def pacing_rate_bps(self) -> float:
        if self._initial_pacing_rate_bps is not None and not self.rtt.has_samples:
            return self._initial_pacing_rate_bps
        gain = 2.0 if self.in_slow_start else 1.2
        return gain * self._cwnd * 8.0 / self.rtt.smoothed_or_initial()

    def on_packet_sent(self, packet: SentPacket, bytes_in_flight: int, now: float) -> None:
        self._largest_sent = max(self._largest_sent, packet.packet_number)

    def on_packets_acked(
        self,
        acked: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        for packet in acked:
            if packet.packet_number <= self._recovery_until:
                continue
            if self.in_slow_start:
                self._cwnd += packet.size
            else:
                self._ack_accumulator += packet.size
                if self._ack_accumulator >= self._cwnd:
                    self._ack_accumulator = 0
                    self._cwnd += self.mss

    def on_packets_lost(
        self,
        lost: List[SentPacket],
        bytes_in_flight: int,
        now: float,
    ) -> None:
        if not lost:
            return
        largest_lost = max(p.packet_number for p in lost)
        if largest_lost <= self._recovery_until:
            return
        self._recovery_until = self._largest_sent
        self._cwnd = max(int(self._cwnd * LOSS_REDUCTION_FACTOR), 2 * self.mss)
        self.ssthresh = self._cwnd

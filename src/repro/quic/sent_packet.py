"""Per-packet bookkeeping for loss recovery and delivery-rate sampling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.quic.frames import Frame


@dataclass(slots=True)
class SentPacket:
    """Metadata kept by the sender for every transmitted packet.

    The delivery-rate fields (``delivered`` … ``is_app_limited``) snapshot
    the connection's delivery state at send time, in the style of the BBR
    bandwidth sampler (draft-cheng-iccrg-delivery-rate-estimation).
    """

    packet_number: int
    sent_time: float
    size: int
    ack_eliciting: bool
    in_flight: bool
    frames: Tuple[Frame, ...] = field(default_factory=tuple)

    # Delivery-rate sampler snapshot (filled by the connection).
    delivered: int = 0
    delivered_time: float = 0.0
    first_sent_time: float = 0.0
    is_app_limited: bool = False

    # Lifecycle flags.
    acked: bool = False
    lost: bool = False

    @property
    def resolved(self) -> bool:
        """True once the packet is either acknowledged or declared lost."""
        return self.acked or self.lost

"""RTT estimation per RFC 9002 §5, with a windowed minimum.

Besides loss-recovery needs (smoothed RTT, variance, PTO), the estimator
maintains the **windowed MinRTT** that Wira's cookie module synchronises
to clients (§IV-B) and that BBR uses for its model.
"""

from __future__ import annotations

from typing import Optional

K_GRANULARITY = 0.001  # 1ms timer granularity (RFC 9002)


class RttEstimator:
    """Tracks latest / smoothed / min RTT and computes the PTO interval.

    Parameters
    ----------
    initial_rtt:
        Seed value used for the PTO before any sample exists
        (RFC 9002 recommends 333 ms; CDN deployments use lower).
    min_rtt_window:
        Horizon of the windowed minimum, seconds.  BBRv1 uses 10 s.
    """

    def __init__(self, initial_rtt: float = 0.1, min_rtt_window: float = 10.0) -> None:
        if initial_rtt <= 0:
            raise ValueError("initial_rtt must be positive")
        self.initial_rtt = initial_rtt
        self.min_rtt_window = min_rtt_window
        self.latest_rtt: Optional[float] = None
        self.smoothed_rtt: Optional[float] = None
        self.rtt_var: Optional[float] = None
        self._min_rtt: Optional[float] = None
        self._min_rtt_time: float = 0.0

    @property
    def has_samples(self) -> bool:
        return self.latest_rtt is not None

    @property
    def min_rtt(self) -> Optional[float]:
        """Windowed minimum RTT; ``None`` until the first sample."""
        return self._min_rtt

    def update(self, rtt_sample: float, ack_delay: float = 0.0, now: float = 0.0) -> None:
        """Feed one RTT sample (seconds).

        ``ack_delay`` is the peer-reported delay between receiving the
        packet and sending the ACK; it is subtracted when doing so does
        not take the sample below the current minimum (RFC 9002 §5.3).
        """
        if rtt_sample <= 0:
            raise ValueError("RTT sample must be positive")
        self.latest_rtt = rtt_sample

        if self._min_rtt is None or now - self._min_rtt_time > self.min_rtt_window:
            self._min_rtt = rtt_sample
            self._min_rtt_time = now
        elif rtt_sample < self._min_rtt:
            self._min_rtt = rtt_sample
            self._min_rtt_time = now

        adjusted = rtt_sample
        if self._min_rtt is not None and rtt_sample - ack_delay >= self._min_rtt:
            adjusted = rtt_sample - ack_delay

        if self.smoothed_rtt is None:
            self.smoothed_rtt = adjusted
            self.rtt_var = adjusted / 2.0
        else:
            assert self.rtt_var is not None
            self.rtt_var = 0.75 * self.rtt_var + 0.25 * abs(self.smoothed_rtt - adjusted)
            self.smoothed_rtt = 0.875 * self.smoothed_rtt + 0.125 * adjusted

    def pto(self, max_ack_delay: float = 0.025) -> float:
        """Probe timeout interval (RFC 9002 §6.2.1), seconds."""
        if self.smoothed_rtt is None:
            return 2.0 * self.initial_rtt
        assert self.rtt_var is not None
        return self.smoothed_rtt + max(4.0 * self.rtt_var, K_GRANULARITY) + max_ack_delay

    def loss_delay(self, factor: float = 9.0 / 8.0) -> float:
        """Time-threshold loss delay, ``factor`` × max(smoothed, latest).

        RFC 9002 uses 9/8; accelerated-recovery schemes pass a lower
        factor to declare tail losses sooner.
        """
        if self.smoothed_rtt is None or self.latest_rtt is None:
            return factor * self.initial_rtt
        return max(
            factor * max(self.smoothed_rtt, self.latest_rtt),
            K_GRANULARITY,
        )

    def smoothed_or_initial(self) -> float:
        """Smoothed RTT, falling back to the configured initial value."""
        return self.smoothed_rtt if self.smoothed_rtt is not None else self.initial_rtt

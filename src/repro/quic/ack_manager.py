"""Receiver-side ACK generation.

Tracks received packet numbers, coalesces them into ranges, and decides
when an ACK should be emitted: immediately on every second ack-eliciting
packet or on reordering, otherwise after ``max_ack_delay`` (RFC 9000
§13.2 behaviour, simplified).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.quic.frames import AckFrame


class AckManager:
    """Collects received packet numbers and builds ACK frames."""

    def __init__(self, max_ack_delay: float = 0.025, ack_every: int = 2) -> None:
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        self.max_ack_delay = max_ack_delay
        self.ack_every = ack_every
        self._received: Set[int] = set()
        self._largest: Optional[int] = None
        self._largest_recv_time: float = 0.0
        self._unacked_eliciting = 0
        self._ack_pending = False

    @property
    def largest_received(self) -> Optional[int]:
        return self._largest

    def on_packet_received(self, packet_number: int, ack_eliciting: bool, now: float) -> bool:
        """Record a packet; returns True if it is a duplicate."""
        duplicate = packet_number in self._received
        self._received.add(packet_number)
        reordered = self._largest is not None and packet_number < self._largest
        if self._largest is None or packet_number > self._largest:
            self._largest = packet_number
            self._largest_recv_time = now
        if ack_eliciting and not duplicate:
            self._unacked_eliciting += 1
            self._ack_pending = True
            if reordered:
                # Out-of-order arrival: ack immediately to speed recovery.
                self._unacked_eliciting = self.ack_every
        return duplicate

    def ack_deadline(self, now: float) -> Optional[float]:
        """Absolute time by which an ACK must be sent, or ``None``."""
        if not self._ack_pending:
            return None
        if self._unacked_eliciting >= self.ack_every:
            return now
        return self._largest_recv_time + self.max_ack_delay

    def should_ack_now(self, now: float) -> bool:
        deadline = self.ack_deadline(now)
        return deadline is not None and deadline <= now

    def build_ack(self, now: float) -> Optional[AckFrame]:
        """Produce an ACK frame covering everything received so far."""
        if self._largest is None:
            return None
        ranges = self._ranges()
        ack_delay = max(0.0, now - self._largest_recv_time)
        self._unacked_eliciting = 0
        self._ack_pending = False
        return AckFrame(
            largest_acked=self._largest,
            ack_delay_us=int(ack_delay * 1e6),
            ranges=ranges,
        )

    def _ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Received packet numbers as descending inclusive ranges."""
        numbers = sorted(self._received, reverse=True)
        ranges: List[Tuple[int, int]] = []
        high = low = numbers[0]
        for number in numbers[1:]:
            if number == low - 1:
                low = number
            else:
                ranges.append((low, high))
                high = low = number
        ranges.append((low, high))
        return tuple(ranges)

"""Workload generators calibrated to the paper's measurements.

* :mod:`repro.workload.streams` — first-frame size / stream profile
  sampling matching Fig 1(a) (mean 43.1 KB, 30 % < 30 KB, 20 % > 60 KB);
* :mod:`repro.workload.network` — user-group and OD-pair QoS processes
  matching the dispersion statistics of Fig 3 (UG CV 36.4 % MinRTT /
  51.6 % MaxBW) and Fig 4 (OD CV ≈ 10 % / 27 % at 5-minute intervals,
  growing slowly with the interval);
* :mod:`repro.workload.population` — the deployment mix: OD pairs with
  session chains, inter-session gaps, 0-RTT/1-RTT split, cookie
  persistence.
"""

from repro.workload.network import NetworkModel, OdPairModel, UserGroup

# The re-export below IS the deprecation shim WL016 polices; it stays
# until the alias is dropped outright.
from repro.workload.population import (  # wira-lint: disable=WL016
    Deployment,
    DeploymentConfig,
    FleetPopulation,
    PlannedSession,
    SessionSpec,
)
from repro.workload.streams import sample_ff_size, sample_stream_profile

__all__ = [
    "Deployment",
    "DeploymentConfig",
    "FleetPopulation",
    "NetworkModel",
    "OdPairModel",
    "PlannedSession",
    "SessionSpec",  # deprecated alias of PlannedSession
    "UserGroup",
    "sample_ff_size",
    "sample_stream_profile",
]

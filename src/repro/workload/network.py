"""User-group and OD-pair network QoS processes (Fig 3, Fig 4).

Hierarchy, mirroring the paper's measurement structure:

* a **user group** (same network type + geography + AS, §II-C) has base
  path characteristics;
* each **OD pair** inside a UG deviates from the UG base with lognormal
  factors whose dispersion reproduces Fig 3's within-UG CVs
  (MinRTT ≈ 36.4 %, MaxBW ≈ 51.6 %);
* each **session** of an OD pair drifts from the OD base with a small
  lognormal factor whose sigma grows with the inter-session interval,
  reproducing Fig 4's within-OD CVs (MinRTT 9.9 % → 11.2 % over
  5 → 60 minutes, MaxBW ≈ 27 % at 5 minutes).

For small sigma, the CV of ``base · exp(N(0, σ))`` samples is
``sqrt(exp(σ²) − 1) ≈ σ``, which is how the constants below were chosen;
the benchmark for Fig 3/4 *measures* the resulting CVs rather than
assuming them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.simnet.path import NetworkConditions

# Within-UG dispersion (Fig 3): lognormal sigma giving the target CV.
UG_RTT_SIGMA = 0.355  # -> CV ~ 36.4%
UG_BW_SIGMA = 0.49  # -> CV ~ 51.6%

# Within-OD temporal drift (Fig 4): sigma(interval).
OD_RTT_SIGMA_5MIN = 0.099
OD_RTT_SIGMA_GROWTH = 0.0052  # per ln(interval/5min)
OD_BW_SIGMA_5MIN = 0.265
OD_BW_SIGMA_GROWTH = 0.012


def od_rtt_sigma(interval_minutes: float) -> float:
    """Session-drift sigma for MinRTT at a given revisit interval."""
    interval_minutes = max(interval_minutes, 0.5)
    return OD_RTT_SIGMA_5MIN + OD_RTT_SIGMA_GROWTH * max(
        0.0, math.log(interval_minutes / 5.0)
    )


def od_bw_sigma(interval_minutes: float) -> float:
    """Session-drift sigma for MaxBW at a given revisit interval."""
    interval_minutes = max(interval_minutes, 0.5)
    return OD_BW_SIGMA_5MIN + OD_BW_SIGMA_GROWTH * max(
        0.0, math.log(interval_minutes / 5.0)
    )


@dataclass(frozen=True)
class UserGroup:
    """Base path characteristics shared by one user group."""

    ug_id: int
    base_bandwidth_bps: float
    base_rtt: float
    loss_rate: float
    network_type: str  # "wifi" / "4g" / "5g" — flavour for reports


@dataclass
class OdPairModel:
    """One origin–destination pair's own path process."""

    od_id: int
    group: UserGroup
    base_bandwidth_bps: float
    base_rtt: float
    loss_rate: float
    buffer_bytes: int

    def conditions_at(
        self,
        rng: random.Random,
        interval_minutes: float = 5.0,
    ) -> NetworkConditions:
        """Sample this OD pair's conditions for a session.

        ``interval_minutes`` is the time since the pair's previous
        session; longer gaps drift further from the base (Fig 4).
        """
        bw = self.base_bandwidth_bps * rng.lognormvariate(0.0, od_bw_sigma(interval_minutes))
        rtt = self.base_rtt * rng.lognormvariate(0.0, od_rtt_sigma(interval_minutes))
        bw = max(300_000.0, bw)
        rtt = min(0.8, max(0.008, rtt))
        return NetworkConditions(
            bandwidth_bps=bw,
            rtt=rtt,
            loss_rate=self.loss_rate,
            buffer_bytes=self.buffer_bytes,
        )


class NetworkModel:
    """Samples user groups and OD pairs for a deployment region.

    Defaults model the paper's Southeast-Asia CDN vantage: bandwidths
    spanning the Fig 13(c) buckets (0–60 Mbps), RTTs spanning Fig 13(b)
    (tens of ms to >100 ms), and a loss mix wide enough to populate
    Fig 13(d)'s retransmission-ratio buckets up to ~20 %.
    """

    NETWORK_TYPES = (
        # (name, weight, bw lognormal (mu, sigma), rtt lognormal (mu, sigma))
        ("wifi", 0.45, (16.3, 0.55), (-3.25, 0.40)),  # ~12 Mbps, ~39 ms
        ("4g", 0.35, (15.6, 0.55), (-2.95, 0.40)),  # ~6 Mbps, ~52 ms
        ("5g", 0.20, (16.9, 0.50), (-3.40, 0.40)),  # ~22 Mbps, ~33 ms
    )

    LOSS_MIX = (
        # (probability, loss-rate sampler bounds).  The mix is loss-heavy:
        # the paper's baseline *average* first-frame loss rate is 8.8 %
        # (Fig 14), so a large share of its mobile paths lose packets.
        (0.35, (0.0, 0.0)),
        (0.25, (0.005, 0.02)),
        (0.20, (0.02, 0.06)),
        (0.15, (0.06, 0.12)),
        (0.05, (0.12, 0.20)),
    )

    SHALLOW_BUFFER_FRACTION = 0.12

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._next_ug = 0
        self._next_od = 0

    def sample_user_group(self) -> UserGroup:
        r = self._rng.random()
        acc = 0.0
        name, bw_params, rtt_params = self.NETWORK_TYPES[0][0], None, None
        for type_name, weight, bw_p, rtt_p in self.NETWORK_TYPES:
            acc += weight
            if r <= acc:
                name, bw_params, rtt_params = type_name, bw_p, rtt_p
                break
        else:  # pragma: no cover - float edge
            name, _, bw_params, rtt_params = self.NETWORK_TYPES[-1]
        loss = self._sample_loss()
        ug = UserGroup(
            ug_id=self._next_ug,
            base_bandwidth_bps=self._rng.lognormvariate(*bw_params),
            base_rtt=self._rng.lognormvariate(*rtt_params),
            loss_rate=loss,
            network_type=name,
        )
        self._next_ug += 1
        return ug

    def _sample_loss(self) -> float:
        r = self._rng.random()
        acc = 0.0
        for probability, (low, high) in self.LOSS_MIX:
            acc += probability
            if r <= acc:
                return self._rng.uniform(low, high)
        return 0.0

    def sample_od_pair(self, group: Optional[UserGroup] = None) -> OdPairModel:
        """An OD pair deviating from its UG base per Fig 3 dispersion."""
        if group is None:
            group = self.sample_user_group()
        bw = group.base_bandwidth_bps * self._rng.lognormvariate(0.0, UG_BW_SIGMA)
        rtt = group.base_rtt * self._rng.lognormvariate(0.0, UG_RTT_SIGMA)
        bw = max(300_000.0, min(80e6, bw))
        rtt = min(0.8, max(0.008, rtt))
        # Buffers are sized by *drain time* (queue depth at line rate):
        # a shallow-buffered population where pacing overshoot costs
        # real losses (the paper's baseline FFLR averages 8.8 %, so such
        # paths are common), a moderate middle, and a bufferbloated tail.
        r = self._rng.random()
        if r < 0.20:
            drain_time = self._rng.uniform(0.02, 0.06)
            floor = 20_000
        elif r < 0.75:
            drain_time = self._rng.uniform(0.08, 0.30)
            floor = 48_000
        else:
            drain_time = self._rng.uniform(0.30, 0.80)
            floor = 96_000
        buffer_bytes = max(floor, int(bw * drain_time / 8.0))
        od = OdPairModel(
            od_id=self._next_od,
            group=group,
            base_bandwidth_bps=bw,
            base_rtt=rtt,
            loss_rate=group.loss_rate,
            buffer_bytes=buffer_bytes,
        )
        self._next_od += 1
        return od

"""Deployment population: OD pairs, session chains, and their timing.

The paper's evaluation observes a production proxy for six months; every
connection contributes a sample.  The reproduction's equivalent is a
:class:`Deployment`: a set of OD pairs, each with a chain of sessions at
lognormal inter-session gaps.  Every session

* is the *measurement* unit (FFCT/FFLR are recorded for all sessions,
  including first-time viewers that have no cookie yet),
* leaves behind the cookie the next session of the same OD pair echoes,
* takes the 0-RTT path with probability ≈ 0.9 (§VI: 0-RTT "accounts for
  ~90 %" of streams).

Gaps beyond Δ = 60 minutes make the previous cookie stale (corner
case 2); first sessions have none at all — both populations are what
separates full Wira from Wira(Hx) in Fig 11.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.media.source import StreamProfile
from repro.quic.connection import HandshakeMode
from repro.simnet.path import NetworkConditions
from repro.workload.network import NetworkModel, OdPairModel
from repro.workload.streams import sample_stream_profile


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to run one session under any scheme."""

    od: OdPairModel
    stream_profile: StreamProfile
    conditions: NetworkConditions
    handshake_mode: HandshakeMode
    epoch: float  # wall-clock seconds at session start
    gap_minutes: float  # time since this OD pair's previous session
    session_index: int  # 0 = first ever session of the pair
    seed: int

    @property
    def is_first_session(self) -> bool:
        return self.session_index == 0


@dataclass
class DeploymentConfig:
    """Size and mix of a simulated deployment."""

    n_od_pairs: int = 150
    mean_extra_sessions: float = 4.0  # sessions per OD = 1 + Geometric
    max_sessions_per_od: int = 8
    p_zero_rtt: float = 0.9
    gap_minutes_median: float = 8.0
    gap_minutes_sigma: float = 1.3
    video_frames_per_session: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_od_pairs < 1:
            raise ValueError("need at least one OD pair")
        if not 0.0 <= self.p_zero_rtt <= 1.0:
            raise ValueError("p_zero_rtt must be a probability")


class Deployment:
    """Generates the session chains of one deployment."""

    def __init__(self, config: DeploymentConfig) -> None:
        self.config = config
        self._rng = random.Random(f"deployment:{config.seed}")
        self._network = NetworkModel(random.Random(f"network:{config.seed}"))

    def generate(self) -> List[List[SessionSpec]]:
        """Session chains, one inner list per OD pair, time-ordered."""
        chains: List[List[SessionSpec]] = []
        for od_index in range(self.config.n_od_pairs):
            chains.append(self._generate_chain(od_index))
        return chains

    def sessions(self) -> List[SessionSpec]:
        """All sessions flattened (chains stay internally ordered)."""
        return [spec for chain in self.generate() for spec in chain]

    def _generate_chain(self, od_index: int) -> List[SessionSpec]:
        rng = random.Random(f"chain:{self.config.seed}:{od_index}")
        od = self._network.sample_od_pair()
        profile = sample_stream_profile(
            rng,
            stream_seed=od_index * 31 + 7,
            viewer_bandwidth_bps=od.base_bandwidth_bps,
        )
        n_sessions = 1 + self._geometric(rng, self.config.mean_extra_sessions)
        n_sessions = min(n_sessions, self.config.max_sessions_per_od)

        specs: List[SessionSpec] = []
        epoch = rng.uniform(0.0, 600.0)
        gap_minutes = 0.0
        for index in range(n_sessions):
            if index > 0:
                gap_minutes = rng.lognormvariate(
                    _ln(self.config.gap_minutes_median), self.config.gap_minutes_sigma
                )
                epoch += gap_minutes * 60.0
            conditions = od.conditions_at(rng, interval_minutes=max(gap_minutes, 5.0))
            mode = (
                HandshakeMode.ZERO_RTT
                if rng.random() < self.config.p_zero_rtt
                else HandshakeMode.ONE_RTT
            )
            specs.append(
                SessionSpec(
                    od=od,
                    stream_profile=profile,
                    conditions=conditions,
                    handshake_mode=mode,
                    epoch=epoch,
                    gap_minutes=gap_minutes,
                    session_index=index,
                    seed=rng.getrandbits(48),
                )
            )
        return specs

    @staticmethod
    def _geometric(rng: random.Random, mean: float) -> int:
        """Geometric (k >= 0) with the given mean."""
        if mean <= 0:
            return 0
        p = 1.0 / (1.0 + mean)
        count = 0
        while rng.random() > p and count < 50:
            count += 1
        return count


def _ln(x: float) -> float:
    import math

    return math.log(x)
